// Wire protocol for `kmatch serve`: length-prefixed frames over any byte
// stream (a TCP connection or stdin/stdout — the latter is what the
// deterministic chaos tests drive).
//
// One frame is a single ASCII header line followed by a raw body and a
// trailing newline:
//
//   kmatch/1 <KIND> id=<id> [deadline_ms=<ms>] [retry_after_ms=<ms>] len=<n>\n
//   <n body bytes>\n
//
// Request kinds:  SOLVE (body = a kstable-kpartite v1 instance), PING,
//                 METRICS (body empty; response body is the
//                 kstable.stats.v1 JSON object).
// Response kinds: OK / DEGRADED (body = kstable-kary v1 matching), SHED
//                 (carries retry_after_ms), TIMEOUT, ERROR, PONG, STATS.
//
// Robustness contract (what tests/serve_test.cpp pins):
//   * read_frame() never blocks forever on garbage: a malformed header or a
//     truncated body throws ParseError after consuming at most the bad
//     frame's bytes; resync_to_frame() then scans forward to the next
//     "kmatch/1 " line so one corrupt frame cannot poison the stream.
//   * Bodies above kMaxBodyBytes are rejected before any allocation — a
//     hostile length cannot make the server reserve gigabytes.
//   * The "serve/frame_parse" fault point fires after the frame's bytes are
//     fully consumed, so an injected parse fault behaves exactly like a
//     corrupt frame (ERROR response) without desynchronizing the stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace kstable::serve {

/// Frame discriminator. `unknown` is returned (not thrown) for a
/// well-framed header with an unrecognized kind token, so servers can
/// answer ERROR and keep the stream synchronized.
enum class FrameKind : std::uint8_t {
  solve,
  ping,
  metrics,
  ok,
  degraded,
  shed,
  timeout,
  error,
  pong,
  stats,
  unknown
};

[[nodiscard]] const char* to_string(FrameKind kind) noexcept;

/// One parsed frame. Absent numeric attributes are 0.
struct Frame {
  FrameKind kind = FrameKind::unknown;
  std::uint64_t id = 0;
  double deadline_ms = 0.0;     ///< request: client's wall budget (0 = server default)
  double retry_after_ms = 0.0;  ///< SHED response: backoff hint for the client
  std::string body;

  [[nodiscard]] static Frame request(FrameKind kind, std::uint64_t id,
                                     std::string body = {},
                                     double deadline_ms = 0.0) {
    Frame f;
    f.kind = kind;
    f.id = id;
    f.body = std::move(body);
    f.deadline_ms = deadline_ms;
    return f;
  }
  [[nodiscard]] static Frame response(FrameKind kind, std::uint64_t id,
                                      std::string body = {},
                                      double retry_after_ms = 0.0) {
    Frame f;
    f.kind = kind;
    f.id = id;
    f.body = std::move(body);
    f.retry_after_ms = retry_after_ms;
    return f;
  }
};

/// Upper bound on a frame body; larger `len=` values are rejected with
/// ParseError before any buffer is reserved.
inline constexpr std::size_t kMaxBodyBytes = std::size_t{16} << 20;

/// Reads one frame. Returns nullopt on clean EOF (no bytes of a new frame
/// seen); throws ParseError on a malformed header, oversized/truncated
/// body, or missing body terminator. May also throw InjectedFault via the
/// "serve/frame_parse" point (fired after the frame is consumed).
std::optional<Frame> read_frame(std::istream& is);

/// Serializes `frame` (id always; deadline_ms / retry_after_ms only when
/// positive). Does not flush.
void write_frame(std::ostream& os, const Frame& frame);

/// After a ParseError: discards input up to (and not including) the next
/// line that starts with "kmatch/1 ". Returns false when EOF was reached
/// first.
bool resync_to_frame(std::istream& is);

}  // namespace kstable::serve
