#include "serve/server.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "observability/metrics.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "serve/fd_stream.hpp"
#include "serve/protocol.hpp"

namespace kstable::serve {

ServeEngine::ResponseSink make_stream_sink(std::ostream& os) {
  // The mutex is owned by the sink (shared_ptr) because sink copies travel
  // into pool worker tasks: every copy must serialize on the same lock.
  auto mutex = std::make_shared<std::mutex>();
  return [&os, mutex](const Frame& frame) {
    std::scoped_lock lock(*mutex);
    write_frame(os, frame);
    os.flush();
    if (!os) throw std::runtime_error("stream sink write failed");
  };
}

void pump_stream(ServeEngine& engine, std::istream& is,
                 const ServeEngine::ResponseSink& sink) {
  while (!engine.drain_requested()) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(is);
    } catch (const InjectedFault& e) {
      // The frame_parse fault fires after the frame's bytes are consumed:
      // the stream is synchronized, no resync needed.
      KSTABLE_COUNTER_ADD("serve.faults.frame_parse", 1);
      engine.on_bad_frame(e.what(), sink);
      continue;
    } catch (const ParseError& e) {
      engine.on_bad_frame(e.what(), sink);
      if (!resync_to_frame(is)) break;
      continue;
    }
    if (!frame) break;  // clean EOF (or a drain signal popped the read)
    engine.handle(*frame, sink);
  }
}

void pump_stream(ServeEngine& engine, std::istream& is) {
  pump_stream(engine, is, engine.default_sink());
}

namespace {

std::atomic<ServeEngine*> g_drain_engine{nullptr};
volatile std::sig_atomic_t g_drain_signal = 0;

// Async-signal-safe: one sig_atomic_t store plus one lock-free atomic store
// (request_drain). No locks, no allocation, no I/O.
void drain_signal_handler(int /*signo*/) {
  g_drain_signal = 1;
  if (ServeEngine* engine = g_drain_engine.load(std::memory_order_relaxed)) {
    engine->request_drain();
  }
}

}  // namespace

void install_drain_signal_handlers(ServeEngine& engine) {
  g_drain_engine.store(&engine, std::memory_order_relaxed);

  struct sigaction action {};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately NOT SA_RESTART: blocked reads must
                        // return EINTR so the transport observes the drain
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  // A peer that hangs up mid-response must surface as a failed send
  // (counted in responses_dropped), never as process death.
  std::signal(SIGPIPE, SIG_IGN);
}

bool drain_signal_seen() noexcept { return g_drain_signal != 0; }

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// One accepted connection. The fd is closed when the LAST reference drops —
/// pool workers hold sink copies that may outlive the reader thread, and a
/// closed-and-reused fd number must never receive another request's response.
struct TcpServer::Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  const int fd;
  std::mutex write_mutex;
};

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

TcpServer::TcpServer(ServeEngine& engine, std::uint16_t port)
    : engine_(engine) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ") failed");
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen() failed");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  // conns_ drops its references here; each fd closes when pool workers drop
  // the last sink copy (the engine outlives this object in the CLI, and its
  // destructor joins the pool).
}

void TcpServer::run() {
  std::vector<std::thread> readers;

  while (!engine_.drain_requested()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms drain-flag heartbeat
    if (ready <= 0) continue;  // timeout or EINTR: re-check the drain flag

    const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd < 0) continue;

    // Accept-path fault: the connection is dropped before any frame is
    // read. The client sees a closed socket and reconnects with backoff —
    // no request was acknowledged, so nothing can be lost.
    try {
      KSTABLE_FAULT_POINT("serve/accept");
    } catch (const ExecutionAborted&) {
      KSTABLE_COUNTER_ADD("serve.faults.accept", 1);
      ::close(conn_fd);
      continue;
    }

    auto conn = std::make_shared<Conn>(conn_fd);
    {
      std::scoped_lock lock(conns_mutex_);
      conns_.push_back(conn);
    }
    KSTABLE_COUNTER_ADD("serve.connections.accepted", 1);

    // Per-connection sink: serialize the whole frame first so the locked
    // section is one send burst — interleaved partial frames from two
    // workers would corrupt the stream for the client.
    ServeEngine::ResponseSink sink = [conn](const Frame& frame) {
      std::ostringstream os;
      write_frame(os, frame);
      const std::string bytes = os.str();
      std::scoped_lock lock(conn->write_mutex);
      if (!send_all(conn->fd, bytes.data(), bytes.size())) {
        throw std::runtime_error("connection write failed");
      }
    };
    readers.emplace_back([this, conn, sink = std::move(sink)] {
      FdReadBuf buffer(conn->fd);
      std::istream is(&buffer);
      pump_stream(engine_, is, sink);
    });
  }

  // Drain: stop reading everywhere. SHUT_RD pops blocked readers out of
  // ::read with EOF while leaving write sides open, so in-flight responses
  // still reach their clients while engine.drain() waits.
  {
    std::scoped_lock lock(conns_mutex_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RD);
  }
  for (auto& reader : readers) reader.join();
}

}  // namespace kstable::serve
