// `kmatch ping`: the bundled test client for `kmatch serve` (ISSUE 6).
//
// A single-threaded, windowed driver: it keeps at most `window` requests
// outstanding, generates deterministic SOLVE bodies from `seed`, and
// implements the client half of the service's resilience contract:
//
//   * SHED  → back off for the server's retry_after_ms hint, then resend.
//   * No response within response_timeout_ms → resend the same id.
//   * Connection refused / reset / EOF → reconnect with linear backoff and
//     resend every unacknowledged request.
//   * Duplicate responses (a natural consequence of resending) are deduped
//     by id; a duplicate that DISAGREES with the first answer is an
//     inconsistency — the one thing the protocol promises cannot happen.
//
// The kill-and-restart leg of the serve-smoke CI job rides entirely on
// this: the client observes the dead server as reconnect-and-resend, and
// the exit code says whether every request was eventually acknowledged
// exactly-once-consistently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace kstable::serve {

struct PingOptions {
  std::uint16_t port = 0;          ///< server port (loopback)
  std::size_t requests = 100;      ///< SOLVE requests to drive
  std::size_t window = 8;          ///< max outstanding at once
  std::int32_t k = 3;              ///< genders per generated instance
  std::int32_t n = 4;              ///< members per gender
  std::uint64_t seed = 1;          ///< body-generation seed (deterministic)
  double deadline_ms = 0.0;        ///< per-request deadline attr (0 = none)
  double response_timeout_ms = 2000.0;  ///< resend trigger
  std::size_t max_attempts = 100;  ///< per-request send cap before "lost"
  double connect_wait_ms = 10000.0;     ///< total (re)connect patience
};

struct PingReport {
  std::size_t acked = 0;        ///< requests with a final answer
  std::size_t ok = 0;           ///< ... OK
  std::size_t degraded = 0;     ///< ... DEGRADED
  std::size_t timeouts = 0;     ///< ... TIMEOUT
  std::size_t errors = 0;       ///< ... ERROR
  std::size_t lost = 0;         ///< no answer within max_attempts / dead server
  std::size_t shed_retries = 0; ///< SHED responses honored with backoff
  std::size_t resends = 0;      ///< response-timeout resends
  std::size_t reconnects = 0;   ///< connection losses recovered
  std::size_t duplicates = 0;   ///< duplicate answers (deduped)
  std::size_t inconsistent = 0; ///< duplicate answers that DISAGREED
  std::string metrics_body;     ///< STATS body when metrics were requested

  /// Success = every request acknowledged, and every duplicate agreed.
  [[nodiscard]] bool success() const noexcept {
    return lost == 0 && inconsistent == 0;
  }
};

/// Generates the deterministic SOLVE bodies `run_ping` would send.
/// body[i] pairs with frame id i+1.
std::vector<std::string> make_request_bodies(const PingOptions& options);

/// Writes the workload as raw frames (ids 1..requests) — the stdio-mode
/// driver: `kmatch ping --emit=F` then `kmatch serve --stdio < F`.
void emit_request_frames(const PingOptions& options, std::ostream& os);

/// Drives the workload against 127.0.0.1:port. When `fetch_metrics` is
/// true, a METRICS request follows the workload and the STATS body lands in
/// the report. Never throws for server-behavior failures — they are counted.
PingReport run_ping(const PingOptions& options, bool fetch_metrics = false);

}  // namespace kstable::serve
