#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "prefs/generators.hpp"
#include "prefs/io.hpp"
#include "resilience/errors.hpp"
#include "serve/fd_stream.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace kstable::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration ms(double value) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(value));
}

/// One request's client-side lifecycle.
struct RequestState {
  std::string body;
  std::size_t attempts = 0;
  bool outstanding = false;  ///< sent, awaiting an answer
  bool acked = false;
  bool lost = false;
  Clock::time_point last_send{};
  Clock::time_point not_before{};  ///< SHED backoff / reconnect gate
  FrameKind outcome = FrameKind::unknown;
  std::string answer;  ///< recorded for duplicate-consistency checking
};

int connect_once(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Linear-backoff reconnect: the kill-and-restart smoke leg depends on the
/// client outliving a server restart window.
int connect_with_retry(std::uint16_t port, double total_wait_ms) {
  const auto deadline = Clock::now() + ms(total_wait_ms);
  double backoff_ms = 25.0;
  while (true) {
    const int fd = connect_once(port);
    if (fd >= 0) return fd;
    if (Clock::now() + ms(backoff_ms) > deadline) return -1;
    std::this_thread::sleep_for(ms(backoff_ms));
    backoff_ms = std::min(backoff_ms + 25.0, 500.0);
  }
}

bool send_frame(int fd, const Frame& frame) {
  std::ostringstream os;
  write_frame(os, frame);
  const std::string bytes = os.str();
  return send_all(fd, bytes.data(), bytes.size());
}

}  // namespace

std::vector<std::string> make_request_bodies(const PingOptions& options) {
  std::vector<std::string> bodies;
  bodies.reserve(options.requests);
  for (std::size_t i = 0; i < options.requests; ++i) {
    // One fork per request: bodies are a pure function of (seed, i), so a
    // failing request replays from its frame id alone.
    Rng rng(options.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    bodies.push_back(io::to_string(
        gen::uniform(static_cast<Gender>(options.k),
                     static_cast<Index>(options.n), rng)));
  }
  return bodies;
}

void emit_request_frames(const PingOptions& options, std::ostream& os) {
  const auto bodies = make_request_bodies(options);
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    write_frame(os, Frame::request(FrameKind::solve, i + 1, bodies[i],
                                   options.deadline_ms));
  }
}

PingReport run_ping(const PingOptions& options, bool fetch_metrics) {
  PingReport report;
  auto bodies = make_request_bodies(options);
  std::vector<RequestState> states(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    states[i].body = std::move(bodies[i]);
  }

  int fd = connect_with_retry(options.port, options.connect_wait_ms);
  std::unique_ptr<FdReadBuf> buffer;
  std::unique_ptr<std::istream> input;
  auto attach = [&] {
    buffer = std::make_unique<FdReadBuf>(fd);
    input = std::make_unique<std::istream>(buffer.get());
  };
  if (fd >= 0) attach();

  std::size_t settled = 0;      // acked + lost
  std::size_t outstanding = 0;  // window occupancy

  // Connection loss: drop the socket, reconnect, and requeue every
  // outstanding request (an unacknowledged request may or may not have been
  // processed — resending is safe because responses dedupe by id). The
  // window counter resets with the flags: a full window at disconnect would
  // otherwise block every resend forever (nothing outstanding to time out,
  // no slot free to send) and wedge the client.
  auto reconnect = [&]() -> bool {
    if (fd >= 0) ::close(fd);
    fd = connect_with_retry(options.port, options.connect_wait_ms);
    if (fd < 0) return false;
    attach();
    ++report.reconnects;
    const auto now = Clock::now();
    for (auto& state : states) {
      if (state.outstanding) {
        state.outstanding = false;
        state.not_before = now;
      }
    }
    outstanding = 0;
    return true;
  };

  auto give_up_all = [&] {
    for (auto& state : states) {
      if (!state.acked && !state.lost) {
        state.lost = true;
        ++report.lost;
      }
    }
  };

  if (fd < 0) {
    give_up_all();
    return report;
  }

  while (settled < states.size()) {
    const auto now = Clock::now();

    // Launch / resend under the window.
    bool send_failed = false;
    for (std::size_t i = 0; i < states.size() && !send_failed; ++i) {
      auto& state = states[i];
      if (state.acked || state.lost) continue;
      const bool timed_out =
          state.outstanding &&
          now - state.last_send >= ms(options.response_timeout_ms);
      const bool ready = !state.outstanding && now >= state.not_before &&
                         outstanding < options.window;
      if (!timed_out && !ready) continue;
      if (state.attempts >= options.max_attempts) {
        if (state.outstanding) --outstanding;
        state.outstanding = false;
        state.lost = true;
        ++report.lost;
        ++settled;
        continue;
      }
      if (timed_out) ++report.resends;
      ++state.attempts;
      state.last_send = now;
      if (!state.outstanding) {
        state.outstanding = true;
        ++outstanding;
      }
      if (!send_frame(fd, Frame::request(FrameKind::solve, i + 1, state.body,
                                         options.deadline_ms))) {
        send_failed = true;
      }
    }
    if (send_failed) {
      if (!reconnect()) {
        give_up_all();
        break;
      }
      continue;
    }

    // Wait for data: buffered leftovers first, else poll the socket. The
    // slice is short so backoff gates and resend timers stay responsive.
    if (buffer->in_avail() <= 0) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, 50);
      if (ready <= 0) continue;  // timeout/EINTR: rerun the send pass
    }

    std::optional<Frame> frame;
    try {
      frame = read_frame(*input);
    } catch (const ExecutionAborted&) {
      // In-process chaos tests arm "serve/frame_parse" globally, so the
      // fault can fire in the CLIENT's reader too. The frame's bytes are
      // consumed (stream synced); drop it and let the resend timer recover.
      continue;
    } catch (const ParseError&) {
      frame = std::nullopt;  // corrupt stream: treat as connection loss
    }
    if (!frame) {
      if (!reconnect()) {
        give_up_all();
        break;
      }
      continue;
    }

    if (frame->id == 0 || frame->id > states.size()) continue;  // stale
    auto& state = states[frame->id - 1];

    if (frame->kind == FrameKind::shed) {
      if (state.acked || state.lost) continue;
      ++report.shed_retries;
      if (state.outstanding) {
        state.outstanding = false;
        --outstanding;
      }
      // Honor the server's hint — this is the cooperative half of load
      // shedding. A zero hint still backs off one timer slice.
      state.not_before =
          Clock::now() + ms(std::max(frame->retry_after_ms, 1.0));
      continue;
    }

    // Final answers: OK / DEGRADED / TIMEOUT / ERROR all acknowledge the
    // request (the server accounted it); they differ only in outcome.
    if (state.acked) {
      ++report.duplicates;
      if (state.outcome != frame->kind || state.answer != frame->body) {
        ++report.inconsistent;
      }
      continue;
    }
    state.acked = true;
    state.outcome = frame->kind;
    state.answer = frame->body;
    if (state.outstanding) {
      state.outstanding = false;
      --outstanding;
    }
    ++settled;
    ++report.acked;
    switch (frame->kind) {
      case FrameKind::ok: ++report.ok; break;
      case FrameKind::degraded: ++report.degraded; break;
      case FrameKind::timeout: ++report.timeouts; break;
      default: ++report.errors; break;
    }
  }

  if (fetch_metrics && fd >= 0) {
    // One METRICS round-trip after the workload; id beyond the workload
    // range so a stale SOLVE answer cannot be mistaken for it.
    const std::uint64_t metrics_id = states.size() + 1;
    if (send_frame(fd, Frame::request(FrameKind::metrics, metrics_id))) {
      const auto deadline = Clock::now() + ms(options.response_timeout_ms);
      while (Clock::now() < deadline) {
        if (buffer->in_avail() <= 0) {
          pollfd pfd{};
          pfd.fd = fd;
          pfd.events = POLLIN;
          if (::poll(&pfd, 1, 50) <= 0) continue;
        }
        std::optional<Frame> frame;
        try {
          frame = read_frame(*input);
        } catch (const ExecutionAborted&) {
          continue;  // injected parse fault: frame consumed, stream synced
        } catch (const ParseError&) {
          break;
        }
        if (!frame) break;
        if (frame->kind == FrameKind::stats && frame->id == metrics_id) {
          report.metrics_body = frame->body;
          break;
        }
      }
    }
  }

  if (fd >= 0) ::close(fd);
  return report;
}

}  // namespace kstable::serve
