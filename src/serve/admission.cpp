#include "serve/admission.hpp"

#include <chrono>

namespace kstable::serve {

AdmissionController::Ticket AdmissionController::try_admit(
    double base_retry_ms) noexcept {
  Ticket ticket;
  if (closed_.load(std::memory_order_acquire)) {
    // Draining: the hint tells clients to come back after a restart, not to
    // hammer a server that is going away.
    ticket.retry_after_ms = base_retry_ms * 4.0;
    return ticket;
  }
  // CAS loop: pending_ may be raced by other reader/connection threads.
  std::size_t depth = pending_.load(std::memory_order_relaxed);
  while (depth < queue_depth_) {
    if (pending_.compare_exchange_weak(depth, depth + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      ticket.admitted = true;
      return ticket;
    }
  }
  // Shed: scale the hint with how far past capacity the backlog sits, so
  // the client's backoff is proportional to the overload (deterministic —
  // no randomness; jitter is the client's job).
  const double backlog =
      static_cast<double>(in_flight()) / static_cast<double>(queue_depth_);
  ticket.retry_after_ms = base_retry_ms * (1.0 + backlog);
  return ticket;
}

void AdmissionController::on_start() noexcept {
  running_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_sub(1, std::memory_order_acq_rel);
}

void AdmissionController::on_finish() noexcept {
  const std::size_t before = running_.fetch_sub(1, std::memory_order_acq_rel);
  if (before == 1 && pending_.load(std::memory_order_acquire) == 0) {
    // Possibly idle; wake waiters (they re-check under the lock).
    std::scoped_lock lock(mutex_);
    idle_.notify_all();
  }
}

void AdmissionController::on_abandoned() noexcept {
  const std::size_t before = pending_.fetch_sub(1, std::memory_order_acq_rel);
  if (before == 1 && running_.load(std::memory_order_acquire) == 0) {
    std::scoped_lock lock(mutex_);
    idle_.notify_all();
  }
}

void AdmissionController::close() noexcept {
  closed_.store(true, std::memory_order_release);
  std::scoped_lock lock(mutex_);
  idle_.notify_all();
}

bool AdmissionController::await_idle(double deadline_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(deadline_ms));
  std::unique_lock lock(mutex_);
  return idle_.wait_until(lock, deadline, [this] { return in_flight() == 0; });
}

}  // namespace kstable::serve
