// Minimal buffered std::streambuf over a POSIX file descriptor, shared by
// the TCP transport (server.cpp) and the kmatch ping client (client.cpp).
//
// Read side: blocking ::read with a 4 KiB buffer; EOF and errors both map to
// streambuf EOF (the frame reader treats either as end of stream — for a
// server, a client that vanished mid-frame is routine, not exceptional).
// EINTR returns EOF too, ON PURPOSE: the serve signal handlers are installed
// without SA_RESTART, so a SIGTERM must pop the transport out of a blocking
// read to start the drain.
//
// Write side: none — frames are written with send_all() (MSG_NOSIGNAL, full
// write loop), bypassing buffering so a response is on the wire when the
// response sink returns and a dead peer surfaces as an exception in the
// sink (counted as a dropped response) instead of a SIGPIPE.
#pragma once

#include <cerrno>
#include <cstddef>
#include <streambuf>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace kstable::serve {

class FdReadBuf final : public std::streambuf {
 public:
  explicit FdReadBuf(int fd) : fd_(fd) { setg(buffer_, buffer_, buffer_); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t got = ::read(fd_, buffer_, sizeof buffer_);
    if (got <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + got);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buffer_[4096];
};

/// Writes all of [data, data+size) to `fd`; returns false on any error
/// (EPIPE/ECONNRESET included — MSG_NOSIGNAL keeps SIGPIPE away). Retries
/// EINTR: a drain signal must not corrupt a half-written response frame.
inline bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace kstable::serve
