// ServeEngine: the transport-independent core of `kmatch serve`.
//
// The engine composes the pieces the ROADMAP said a server needs:
//   * AdmissionController  — bounded backlog, load shedding with retry-after
//   * ThreadPool           — in-flight solves (owned; workers = limits.workers)
//   * ExecControl          — the request's deadline_ms (clamped to the
//                            server max) becomes the per-attempt wall budget
//   * solve_with_fallback  — tight budgets degrade through the ladder to the
//                            Algorithm 2 priority model instead of failing
//   * GsEdgeCache          — one cache per request, owned by the worker task
//                            and destroyed with it: the per-request lifecycle
//                            answer to "who owns the cache, when is it
//                            evicted" (a cache is bound to one instance)
//   * MetricsRegistry      — serve.* counters/gauges (docs/SERVE.md table)
//
// Transports (stdio / TCP in server.cpp, the in-process chaos tests) parse
// frames and call handle(); responses come back asynchronously through the
// sink callback, which must be thread-safe — pool workers call it.
//
// Accounting contract (pinned by tests/serve_test.cpp and the serve-smoke
// CI job): every SOLVE frame handed to handle() ends in EXACTLY one of
//   completed | degraded | shed | timed_out | errors
// and stats().received equals their sum — under overload, injected faults
// on all four service points, and drain. Response-delivery failures
// (the "serve/respond" fault, a dead socket) are counted separately in
// responses_dropped: the request stays accounted, the client's resend
// protocol covers the delivery.
//
// Drain protocol: request_drain() is async-signal-safe-adjacent (one relaxed
// store; the transports' signal handlers set a sig_atomic_t and their loops
// call it); drain() closes admission, waits drain_deadline_ms for in-flight
// work, then cancels cooperatively via the shared drain token and waits
// drain_grace_ms more. DrainResult::clean == false (workers still busy after
// cancel + grace, e.g. a wedged solve) maps to exit code 3 in the CLI.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "parallel/thread_pool.hpp"
#include "resilience/control.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"

namespace kstable::serve {

/// Tunables of one server instance; every field has a CLI flag.
struct ServeLimits {
  std::size_t workers = 2;          ///< pool size for in-flight solves
  std::size_t queue_depth = 16;     ///< admitted-but-not-started backlog cap
  double default_deadline_ms = 1000.0;  ///< request budget when none is sent
  double max_deadline_ms = 10000.0;     ///< clamp on client-sent deadlines
  double shed_retry_ms = 25.0;      ///< base retry-after hint when shedding
  double drain_deadline_ms = 2000.0;    ///< natural-completion drain window
  double drain_grace_ms = 500.0;    ///< post-cancel cooperative-abort window
  std::int64_t max_proposals = 0;   ///< optional per-request proposal cap
  std::int32_t max_tree_attempts = 2;   ///< strict ladder rungs per request
  bool allow_degraded = true;       ///< permit the Algorithm 2 last rung
  double chaos_stall_ms = 0.0;      ///< "serve/stall" fault: wedge a worker
                                    ///< this long (ignores cancellation)
};

/// Engine-local accounting (relaxed atomics; mirrored into the global
/// MetricsRegistry as serve.* instruments). Tests assert on these rather
/// than the process-global registry so suites stay independent.
struct ServeStats {
  std::atomic<std::int64_t> received{0};   ///< SOLVE frames seen
  std::atomic<std::int64_t> completed{0};  ///< OK (strict rung)
  std::atomic<std::int64_t> degraded{0};   ///< OK via degraded priority rung
  std::atomic<std::int64_t> shed{0};       ///< refused by admission/enqueue
  std::atomic<std::int64_t> timed_out{0};  ///< aborted (deadline/budget/
                                           ///< cancel/stall) — no matching
  std::atomic<std::int64_t> errors{0};     ///< unparsable SOLVE body / solve
                                           ///< threw a non-abort exception
  std::atomic<std::int64_t> pings{0};      ///< PING control frames
  std::atomic<std::int64_t> metrics_requests{0};  ///< METRICS control frames
  std::atomic<std::int64_t> bad_frames{0};        ///< frame-level parse errors
  std::atomic<std::int64_t> responses_sent{0};
  std::atomic<std::int64_t> responses_dropped{0};  ///< respond fault/IO error
  std::atomic<std::int64_t> drain_cancelled{0};    ///< solves cancelled by drain

  /// The chaos-soak invariant: every received SOLVE is in exactly one bucket.
  [[nodiscard]] std::int64_t accounted() const noexcept {
    return completed.load() + degraded.load() + shed.load() +
           timed_out.load() + errors.load();
  }
};

/// Outcome of a drain.
struct DrainResult {
  bool clean = false;        ///< all in-flight work finished (or cancelled
                             ///< cooperatively) inside deadline + grace
  bool cancelled = false;    ///< the drain token had to be pulled
  double wall_ms = 0.0;      ///< total drain time
  std::size_t abandoned = 0; ///< requests still running after cancel + grace
};

class ServeEngine {
 public:
  /// `sink` delivers response frames; it MUST be thread-safe (pool workers
  /// call it concurrently) and should not throw for flow-control — a throw
  /// is counted as a dropped response, never propagated into the worker.
  using ResponseSink = std::function<void(const Frame&)>;

  ServeEngine(ServeLimits limits, ResponseSink sink);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Routes one parsed frame. SOLVE goes through admission and the pool;
  /// PING/METRICS are answered synchronously on the calling thread; anything
  /// else gets an ERROR response. Never throws for request-level failures.
  /// The overload with `sink` routes this request's responses to a specific
  /// transport endpoint (the TCP server passes the originating connection's
  /// writer; the sink is copied into the worker task and may outlive the
  /// connection — it must fail by throwing, which counts as a dropped
  /// response).
  void handle(const Frame& request) { handle(request, sink_); }
  void handle(const Frame& request, const ResponseSink& sink);

  /// A transport failed to parse a frame: counts it and emits an ERROR
  /// response (id 0 — the header never yielded one).
  void on_bad_frame(const std::string& what) { on_bad_frame(what, sink_); }
  void on_bad_frame(const std::string& what, const ResponseSink& sink);

  /// Signal-handler entry: flags drain intent. The owning transport loop
  /// observes draining() and calls drain().
  void request_drain() noexcept {
    drain_requested_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool drain_requested() const noexcept {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// Closes admission, waits for in-flight work (deadline), cancels and
  /// waits again (grace). Idempotent; the second call reports the settled
  /// state. Pool join happens in the destructor.
  DrainResult drain();

  /// The constructor sink (what the sink-less handle() overload uses);
  /// transports with one shared output stream pump through this.
  [[nodiscard]] const ResponseSink& default_sink() const noexcept {
    return sink_;
  }

  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServeLimits& limits() const noexcept { return limits_; }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }

 private:
  void handle_solve(const Frame& request, const ResponseSink& sink);
  void respond(const Frame& frame, const ResponseSink& sink);
  /// Builds the kstable.stats.v1 JSON body for METRICS responses.
  [[nodiscard]] static std::string metrics_json();

  ServeLimits limits_;
  ResponseSink sink_;
  AdmissionController admission_;
  resilience::CancellationToken drain_token_;
  ServeStats stats_;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> drained_{false};
  // Declared last: the pool must be destroyed (joined) before the members
  // its tasks use.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kstable::serve
