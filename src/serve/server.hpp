// Transports for `kmatch serve`: the byte-stream pump shared by every
// transport, plus the two concrete ones — stdio (deterministic, what the
// chaos tests and cli_regression drive) and TCP (what the serve-smoke CI
// job and `kmatch ping` drive).
//
// Layering: transports only parse frames and move bytes. All policy —
// admission, shedding, deadlines, degradation, accounting — lives in
// ServeEngine; a transport's job is to (a) never let one bad client poison
// the stream for others, and (b) translate process signals into the
// engine's drain protocol without losing in-flight responses.
//
// Signal contract (audited in docs/RESILIENCE.md):
//   * install_drain_signal_handlers() registers SIGINT/SIGTERM with
//     sigaction and NO SA_RESTART, so a signal pops blocked reads out of
//     the kernel; the handler does two async-signal-safe stores (a
//     sig_atomic_t flag and the engine's lock-free drain flag) and returns.
//   * SIGPIPE is ignored: a client that disconnects mid-response must
//     surface as a counted dropped response, not kill the server.
//   * No other handlers are installed anywhere in libkstable (the library
//     itself is signal-agnostic); the serve layer owns process signals.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

namespace kstable::serve {

/// Wraps `os` in a thread-safe response sink: frames are serialized under a
/// per-sink mutex and flushed immediately (a response must be on the wire
/// when respond() returns — buffering would turn a crash into lost acks).
/// A failed write throws, which ServeEngine counts as a dropped response.
ServeEngine::ResponseSink make_stream_sink(std::ostream& os);

/// Reads frames from `is` and feeds them to the engine until clean EOF or
/// the engine's drain flag rises; responses go through `sink`. Robust by
/// construction: a ParseError answers ERROR and resyncs to the next
/// "kmatch/1 " header; an injected "serve/frame_parse" fault answers ERROR
/// with the stream already synchronized. Never throws for input-level
/// failures.
void pump_stream(ServeEngine& engine, std::istream& is,
                 const ServeEngine::ResponseSink& sink);

/// As above, responding through the engine's constructor sink. This is the
/// whole stdio transport: `pump_stream(engine, stdin_stream)` on the main
/// thread, with the ctor sink wrapping stdout.
void pump_stream(ServeEngine& engine, std::istream& is);

/// Installs the SIGINT/SIGTERM drain handlers (no SA_RESTART) targeting
/// `engine`, and ignores SIGPIPE. Call once, before the transport loop;
/// passing a second engine retargets the handlers (single-server process).
void install_drain_signal_handlers(ServeEngine& engine);

/// True once a drain signal has been observed by the handlers above.
[[nodiscard]] bool drain_signal_seen() noexcept;

/// Loopback TCP transport. One acceptor loop (poll-gated so it observes the
/// drain flag within ~100 ms even without a signal) plus one reader thread
/// per connection; each connection gets its own response sink so answers
/// return to the socket that asked.
class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port — the
  /// serve-smoke script reads the real port from the "listening on port N"
  /// line the CLI prints). Throws std::runtime_error when the socket
  /// cannot be created, bound, or listened on.
  TcpServer(ServeEngine& engine, std::uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolved after an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts and serves until the engine's drain flag rises, then stops
  /// reading everywhere — shutdown(SHUT_RD) pops blocked readers out with
  /// EOF while write sides stay open, so responses for in-flight solves
  /// still reach their clients during the drain window — and joins every
  /// reader thread before returning. The caller then runs engine.drain().
  void run();

 private:
  struct Conn;

  ServeEngine& engine_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Conn>> conns_;
};

}  // namespace kstable::serve
