#include "serve/protocol.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "util/parse.hpp"

namespace kstable::serve {

namespace {

constexpr std::string_view kMagic = "kmatch/1";

struct KindName {
  FrameKind kind;
  std::string_view name;
};
constexpr std::array<KindName, 10> kKindNames{{
    {FrameKind::solve, "SOLVE"},
    {FrameKind::ping, "PING"},
    {FrameKind::metrics, "METRICS"},
    {FrameKind::ok, "OK"},
    {FrameKind::degraded, "DEGRADED"},
    {FrameKind::shed, "SHED"},
    {FrameKind::timeout, "TIMEOUT"},
    {FrameKind::error, "ERROR"},
    {FrameKind::pong, "PONG"},
    {FrameKind::stats, "STATS"},
}};

FrameKind kind_of(std::string_view token) noexcept {
  for (const auto& entry : kKindNames) {
    if (entry.name == token) return entry.kind;
  }
  return FrameKind::unknown;
}

}  // namespace

const char* to_string(FrameKind kind) noexcept {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name.data();
  }
  return "UNKNOWN";
}

std::optional<Frame> read_frame(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) return std::nullopt;  // clean EOF
  KSTABLE_PARSE_REQUIRE(header.rfind(kMagic, 0) == 0 &&
                            header.size() > kMagic.size() &&
                            header[kMagic.size()] == ' ',
                        "frame header does not start with 'kmatch/1 '");

  Frame frame;
  std::istringstream tokens(header.substr(kMagic.size() + 1));
  std::string token;
  KSTABLE_PARSE_REQUIRE(tokens >> token, "frame header missing kind token");
  frame.kind = kind_of(token);

  std::optional<std::uint64_t> id;
  std::optional<std::size_t> len;
  while (tokens >> token) {
    const auto eq = token.find('=');
    KSTABLE_PARSE_REQUIRE(eq != std::string::npos && eq > 0,
                          "frame attribute '" << token << "' is not key=value");
    const std::string key = token.substr(0, eq);
    const char* value = token.c_str() + eq + 1;
    if (key == "id") {
      id = util::parse_number<std::uint64_t>(
          value, 0, std::numeric_limits<std::uint64_t>::max());
      KSTABLE_PARSE_REQUIRE(id.has_value(), "bad frame id '" << value << "'");
    } else if (key == "len") {
      const auto parsed =
          util::parse_number<std::uint64_t>(value, 0, kMaxBodyBytes);
      KSTABLE_PARSE_REQUIRE(parsed.has_value(),
                            "bad frame len '" << value << "' (max "
                                              << kMaxBodyBytes << ")");
      len = static_cast<std::size_t>(*parsed);
    } else if (key == "deadline_ms") {
      const auto parsed = util::parse_number<double>(value, 0.0, 1e15);
      KSTABLE_PARSE_REQUIRE(parsed.has_value(),
                            "bad frame deadline_ms '" << value << "'");
      frame.deadline_ms = *parsed;
    } else if (key == "retry_after_ms") {
      const auto parsed = util::parse_number<double>(value, 0.0, 1e15);
      KSTABLE_PARSE_REQUIRE(parsed.has_value(),
                            "bad frame retry_after_ms '" << value << "'");
      frame.retry_after_ms = *parsed;
    } else {
      // Unknown attributes are skipped (forward compatibility) as long as
      // they are well-formed key=value tokens.
    }
  }
  KSTABLE_PARSE_REQUIRE(id.has_value(), "frame header missing id=");
  KSTABLE_PARSE_REQUIRE(len.has_value(), "frame header missing len=");
  frame.id = *id;

  frame.body.resize(*len);
  if (*len > 0) {
    is.read(frame.body.data(), static_cast<std::streamsize>(*len));
    KSTABLE_PARSE_REQUIRE(is.gcount() == static_cast<std::streamsize>(*len),
                          "truncated frame body (wanted " << *len << " bytes, got "
                                                          << is.gcount() << ")");
  }
  const int terminator = is.get();
  KSTABLE_PARSE_REQUIRE(terminator == '\n',
                        "frame body not terminated by newline");

  // Fires only after the frame's bytes are fully consumed: an injected parse
  // fault is indistinguishable from a corrupt frame to the server, but the
  // stream stays synchronized for the next read.
  KSTABLE_FAULT_POINT("serve/frame_parse");
  return frame;
}

void write_frame(std::ostream& os, const Frame& frame) {
  os << kMagic << ' ' << to_string(frame.kind) << " id=" << frame.id;
  if (frame.deadline_ms > 0.0) os << " deadline_ms=" << frame.deadline_ms;
  if (frame.retry_after_ms > 0.0) {
    os << " retry_after_ms=" << frame.retry_after_ms;
  }
  os << " len=" << frame.body.size() << '\n';
  os.write(frame.body.data(), static_cast<std::streamsize>(frame.body.size()));
  os << '\n';
}

bool resync_to_frame(std::istream& is) {
  // A ParseError may leave the stream mid-line; scan line by line until a
  // frame header appears, then put it back by buffering? istream cannot
  // unread a whole line, so resync peeks character-wise: discard until '\n',
  // then peek whether the next line starts with the magic.
  std::string line;
  while (is.good()) {
    const int next = is.peek();
    if (next == std::char_traits<char>::eof()) return false;
    if (next == 'k') {
      // Possible frame start at the current position; stop discarding.
      return true;
    }
    if (!std::getline(is, line)) return false;
  }
  return false;
}

}  // namespace kstable::serve
