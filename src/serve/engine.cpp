#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/gs_cache.hpp"
#include "observability/metrics.hpp"
#include "prefs/io.hpp"
#include "prefs/matching_io.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/solve_ladder.hpp"

namespace kstable::serve {

namespace {

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ServeEngine::ServeEngine(ServeLimits limits, ResponseSink sink)
    : limits_(limits),
      sink_(std::move(sink)),
      admission_(limits.queue_depth == 0 ? 1 : limits.queue_depth),
      pool_(std::make_unique<ThreadPool>(
          limits.workers == 0 ? 1 : limits.workers)) {
  // Pre-register every request-outcome instrument: a metrics scrape must
  // always carry the full accounting set (received == completed + degraded
  // + shed + timeout + error), including the outcomes that never happened.
  KSTABLE_COUNTER_ADD("serve.requests.received", 0);
  KSTABLE_COUNTER_ADD("serve.requests.completed", 0);
  KSTABLE_COUNTER_ADD("serve.requests.degraded", 0);
  KSTABLE_COUNTER_ADD("serve.requests.shed", 0);
  KSTABLE_COUNTER_ADD("serve.requests.timeout", 0);
  KSTABLE_COUNTER_ADD("serve.requests.error", 0);
  KSTABLE_COUNTER_ADD("serve.responses.sent", 0);
  KSTABLE_COUNTER_ADD("serve.responses.dropped", 0);
  KSTABLE_COUNTER_ADD("serve.frames.bad", 0);
}

ServeEngine::~ServeEngine() {
  // Joining the pool runs every still-queued task (ThreadPool drains its
  // queue before workers exit), so no admitted request is ever lost — its
  // TaskGuard accounts it even if the server is torn down without drain().
  pool_.reset();
}

void ServeEngine::respond(const Frame& frame, const ResponseSink& sink) {
  try {
    KSTABLE_FAULT_POINT("serve/respond");
    sink(frame);
    stats_.responses_sent.fetch_add(1, std::memory_order_relaxed);
    KSTABLE_COUNTER_ADD("serve.responses.sent", 1);
  } catch (...) {
    // A dropped response is a delivery failure, not an accounting failure:
    // the request keeps its outcome bucket and the client's resend protocol
    // recovers the answer (docs/SERVE.md).
    stats_.responses_dropped.fetch_add(1, std::memory_order_relaxed);
    KSTABLE_COUNTER_ADD("serve.responses.dropped", 1);
  }
}

std::string ServeEngine::metrics_json() {
  std::ostringstream os;
  os << "{\"schema\":\"kstable.stats.v1\",\"telemetry\":null,\"metrics\":";
  obs::MetricsRegistry::global().write_json(os);
  os << "}";
  return os.str();
}

void ServeEngine::on_bad_frame(const std::string& what,
                               const ResponseSink& sink) {
  stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
  KSTABLE_COUNTER_ADD("serve.frames.bad", 1);
  respond(Frame::response(FrameKind::error, 0, "bad frame: " + what), sink);
}

void ServeEngine::handle(const Frame& request, const ResponseSink& sink) {
  switch (request.kind) {
    case FrameKind::solve:
      handle_solve(request, sink);
      return;
    case FrameKind::ping:
      stats_.pings.fetch_add(1, std::memory_order_relaxed);
      KSTABLE_COUNTER_ADD("serve.control.pings", 1);
      respond(Frame::response(FrameKind::pong, request.id), sink);
      return;
    case FrameKind::metrics:
      stats_.metrics_requests.fetch_add(1, std::memory_order_relaxed);
      respond(Frame::response(FrameKind::stats, request.id, metrics_json()),
              sink);
      return;
    default:
      // A response kind (or unknown verb) sent as a request: well-framed,
      // so the stream is fine — answer ERROR and move on.
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      KSTABLE_COUNTER_ADD("serve.frames.bad", 1);
      respond(Frame::response(FrameKind::error, request.id,
                              std::string("unsupported request kind ") +
                                  to_string(request.kind)),
              sink);
      return;
  }
}

void ServeEngine::handle_solve(const Frame& request,
                               const ResponseSink& sink) {
  stats_.received.fetch_add(1, std::memory_order_relaxed);
  KSTABLE_COUNTER_ADD("serve.requests.received", 1);

  auto shed_response = [&](double retry_after_ms) {
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    KSTABLE_COUNTER_ADD("serve.requests.shed", 1);
    respond(Frame::response(FrameKind::shed, request.id, {}, retry_after_ms),
            sink);
  };

  // The enqueue fault point models a failure between parse and admission
  // (allocation pressure, a poisoned queue): the request sheds — the client
  // retries after backoff — rather than crashing the reader thread.
  try {
    KSTABLE_FAULT_POINT("serve/enqueue");
  } catch (const ExecutionAborted&) {
    KSTABLE_COUNTER_ADD("serve.faults.enqueue", 1);
    shed_response(limits_.shed_retry_ms);
    return;
  }

  const auto ticket = admission_.try_admit(limits_.shed_retry_ms);
  KSTABLE_GAUGE_SET("serve.queue.depth",
                    static_cast<std::int64_t>(admission_.pending()));
  KSTABLE_GAUGE_SET("serve.inflight",
                    static_cast<std::int64_t>(admission_.in_flight()));
  if (!ticket.admitted) {
    shed_response(ticket.retry_after_ms);
    return;
  }

  // Guard with shared_ptr lifetime, not task execution: if the pool task is
  // destroyed without running (an armed "thread_pool/task" fault, a torn-down
  // pool), the destructor still accounts the request and releases admission —
  // the drain can never wait on a request that will not report back.
  struct TaskGuard {
    ServeEngine* engine;
    Frame request;
    ResponseSink sink;
    bool accounted = false;
    bool started = false;  ///< a worker ran on_start() for this request
    ~TaskGuard() {
      if (!accounted) {
        engine->stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
        KSTABLE_COUNTER_ADD("serve.requests.timeout", 1);
        engine->respond(Frame::response(FrameKind::timeout, request.id,
                                        "aborted before solve"),
                        sink);
      }
      if (started) {
        engine->admission_.on_finish();
      } else {
        engine->admission_.on_abandoned();
      }
    }
  };
  auto guard = std::make_shared<TaskGuard>();
  guard->engine = this;
  guard->request = request;
  guard->sink = sink;

  pool_->submit([this, guard] {
    admission_.on_start();
    guard->started = true;
    KSTABLE_GAUGE_SET("serve.queue.depth",
                      static_cast<std::int64_t>(admission_.pending()));
    // [[maybe_unused]]: consumed only by the metrics macro below, which
    // compiles to ((void)0) under KSTABLE_METRICS=OFF.
    [[maybe_unused]] const auto start = std::chrono::steady_clock::now();
    const Frame& req = guard->request;

    auto finish = [&](FrameKind kind, std::string body,
                      std::atomic<std::int64_t>& bucket) {
      bucket.fetch_add(1, std::memory_order_relaxed);
      guard->accounted = true;
      KSTABLE_HISTOGRAM_OBSERVE_MS("serve.solve_wall_ms",
                                   elapsed_ms_since(start));
      respond(Frame::response(kind, req.id, std::move(body)), guard->sink);
    };

    // Chaos hook: a wedged worker that ignores cancellation for a while —
    // the one failure mode cooperative ExecControl cannot unstick. Used by
    // the drain-deadline-exceeded tests.
    try {
      KSTABLE_FAULT_POINT("serve/stall");
    } catch (const ExecutionAborted&) {
      KSTABLE_COUNTER_ADD("serve.faults.stall", 1);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          limits_.chaos_stall_ms));
      KSTABLE_COUNTER_ADD("serve.requests.timeout", 1);
      finish(FrameKind::timeout, "stalled worker", stats_.timed_out);
      return;
    }

    std::optional<KPartiteInstance> inst;
    try {
      inst = io::from_string(req.body);
    } catch (const ContractViolation& e) {
      KSTABLE_COUNTER_ADD("serve.requests.error", 1);
      finish(FrameKind::error, std::string("bad instance: ") + e.what(),
             stats_.errors);
      return;
    }

    // Per-request budget: the client's deadline (clamped) or the server
    // default, split evenly across the ladder rungs so the whole ladder —
    // retries and the degraded last rung included — fits the request budget.
    const double deadline_ms =
        req.deadline_ms > 0.0
            ? std::min(req.deadline_ms, limits_.max_deadline_ms)
            : limits_.default_deadline_ms;
    const int rungs =
        limits_.max_tree_attempts + (limits_.allow_degraded ? 1 : 0);
    resilience::FallbackOptions opts;
    opts.per_attempt.wall_ms = deadline_ms / std::max(rungs, 1);
    if (limits_.max_proposals > 0) {
      opts.per_attempt.max_proposals =
          std::max<std::int64_t>(1, limits_.max_proposals / std::max(rungs, 1));
    }
    opts.max_tree_attempts = limits_.max_tree_attempts;
    opts.allow_degraded = limits_.allow_degraded;
    opts.token = drain_token_;  // drain cancels in-flight ladders

    try {
      // Per-request cache ownership: built for this instance, shared across
      // the ladder's rungs (edges completed by an aborted attempt replay for
      // free), destroyed — evicted — when the request finishes.
      core::GsEdgeCache cache(inst->genders());
      opts.cache = &cache;
      auto report = resilience::solve_with_fallback(*inst, opts);
      if (report.succeeded) {
        std::string body = io::to_string(report.matching());
        if (report.degraded()) {
          KSTABLE_COUNTER_ADD("serve.requests.degraded", 1);
          finish(FrameKind::degraded, std::move(body), stats_.degraded);
        } else {
          KSTABLE_COUNTER_ADD("serve.requests.completed", 1);
          finish(FrameKind::ok, std::move(body), stats_.completed);
        }
      } else {
        if (report.status.abort_reason == AbortReason::cancelled) {
          stats_.drain_cancelled.fetch_add(1, std::memory_order_relaxed);
          KSTABLE_COUNTER_ADD("serve.drain.cancelled", 1);
        }
        KSTABLE_COUNTER_ADD("serve.requests.timeout", 1);
        finish(FrameKind::timeout, report.status.summary(), stats_.timed_out);
      }
    } catch (const std::exception& e) {
      // A server must not die for one poisoned request: even a
      // ContractViolation (programming error for this instance) becomes an
      // ERROR response; the instance body is in the client's hands for a
      // repro.
      KSTABLE_COUNTER_ADD("serve.requests.error", 1);
      finish(FrameKind::error, std::string("solve failed: ") + e.what(),
             stats_.errors);
    }
  });
}

DrainResult ServeEngine::drain() {
  const auto start = std::chrono::steady_clock::now();
  admission_.close();
  DrainResult result;
  bool idle = admission_.await_idle(limits_.drain_deadline_ms);
  if (!idle) {
    // Past the drain deadline: pull the shared token — every in-flight
    // ladder observes it at its next charge/check_now and aborts — then
    // give cooperative abort a bounded grace window.
    drain_token_.request_cancel();
    result.cancelled = true;
    idle = admission_.await_idle(limits_.drain_grace_ms);
  }
  result.clean = idle;
  result.abandoned = admission_.in_flight();
  result.wall_ms = elapsed_ms_since(start);
  drained_.store(true, std::memory_order_release);
  KSTABLE_GAUGE_SET_MS("serve.drain.wall_ms", result.wall_ms);
  if (!result.clean) KSTABLE_COUNTER_ADD("serve.drain.exceeded", 1);
  return result;
}

}  // namespace kstable::serve
