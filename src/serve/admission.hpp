// Bounded admission control for the matching service: the component that
// turns overload into fast, honest SHED responses instead of unbounded
// queueing (ISSUE: the server must stay up under offered load well above
// capacity).
//
// Model: a request that passes try_admit() is "in flight" from admission
// until release — first pending (admitted, sitting in the pool's queue),
// then running (a worker picked it up). Admission is denied when the
// pending backlog has reached `queue_depth` or the controller was closed
// for drain; the returned retry-after hint grows deterministically with the
// backlog so a well-behaved client (kmatch ping) backs off harder the
// deeper the overload.
//
// Drain protocol (what ServeEngine::drain and the SIGTERM path use):
//   close()       — every later try_admit sheds; in-flight work continues.
//   await_idle(ms)— blocks until in_flight() == 0 or the deadline passes.
// The controller never owns threads; it is a counter + condvar, safe to
// call from the reader thread, pool workers, and the signal-driven drain
// concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace kstable::serve {

class AdmissionController {
 public:
  /// `queue_depth` bounds the admitted-but-not-started backlog (>= 1).
  explicit AdmissionController(std::size_t queue_depth)
      : queue_depth_(queue_depth) {}

  struct Ticket {
    bool admitted = false;
    double retry_after_ms = 0.0;  ///< set when shed
  };

  /// Admits the request (pending++) or sheds it with a backlog-scaled
  /// retry-after hint derived from `base_retry_ms`.
  Ticket try_admit(double base_retry_ms) noexcept;

  /// A worker started an admitted request: pending-- running++.
  void on_start() noexcept;

  /// An admitted request finished (any outcome). Wakes await_idle waiters
  /// when the controller goes idle.
  void on_finish() noexcept;

  /// An admitted request was destroyed before any worker started it (e.g.
  /// an injected "thread_pool/task" fault dropped the task unrun): releases
  /// the pending slot without touching the running count.
  void on_abandoned() noexcept;

  /// Enters drain mode: every subsequent try_admit sheds.
  void close() noexcept;
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Blocks until no request is in flight or `deadline_ms` elapsed.
  /// Returns true when idle was reached.
  bool await_idle(double deadline_ms);

  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return pending() + running();
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_depth_;
  }

 private:
  const std::size_t queue_depth_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> running_{0};
  std::atomic<bool> closed_{false};
  std::mutex mutex_;
  std::condition_variable idle_;
};

}  // namespace kstable::serve
