#include "incremental/rematch.hpp"

#include <utility>

#include "incremental/warm_gs.hpp"
#include "util/check.hpp"

namespace kstable::incremental {

DeltaWarmStart::DeltaWarmStart(const core::BindingResult& previous,
                               const MutationDelta& delta)
    : previous_(previous), delta_(delta) {
  KSTABLE_REQUIRE(!delta.shape_changed,
                  "DeltaWarmStart cannot warm a shape-changed delta; "
                  "cold-solve the rebuilt instance");
}

std::optional<gs::GsResult> DeltaWarmStart::warm_solve(
    const KPartiteInstance& inst, GenderEdge edge,
    const core::BindingOptions& options) const {
  const gs::GsResult* prev = nullptr;
  for (const gs::GsResult& r : previous_.edge_results) {
    if (r.proposer_gender == edge.a && r.responder_gender == edge.b) {
      prev = &r;
      break;
    }
  }
  if (prev == nullptr ||
      prev->proposer_match.size() !=
          static_cast<std::size_t>(inst.per_gender())) {
    // A tree edge the previous solve never ran (retry ladder on a different
    // tree) — nothing to continue from.
    edges_cold_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (!delta_.touches(edge.a, edge.b)) {
    // Neither side's rows over the other changed: the previous result is the
    // new instance's proposer-optimal matching verbatim.
    edges_reused_.fetch_add(1, std::memory_order_relaxed);
    return *prev;
  }
  gs::GsOptions gs_options;
  gs_options.control = options.control;
  gs_options.trace = options.trace;
  gs::GsResult warm =
      warm_gale_shapley(inst, edge.a, edge.b, *prev, delta_, gs_options);
  edges_warm_.fetch_add(1, std::memory_order_relaxed);
  warm_executed_.fetch_add(warm.proposals, std::memory_order_relaxed);
  return warm;
}

DeltaWarmStart::Stats DeltaWarmStart::stats() const noexcept {
  return {edges_reused_.load(std::memory_order_relaxed),
          edges_warm_.load(std::memory_order_relaxed),
          edges_cold_.load(std::memory_order_relaxed),
          warm_executed_.load(std::memory_order_relaxed)};
}

RematchReport rematch(const KPartiteInstance& inst,
                      const BindingStructure& tree,
                      const core::BindingResult& previous,
                      const MutationDelta& delta,
                      const RematchOptions& options) {
  KSTABLE_REQUIRE(delta.to_generation == inst.generation(),
                  "delta ends at generation "
                      << delta.to_generation << " but instance is at "
                      << inst.generation()
                      << " — rematch needs the delta covering every mutation "
                         "since the previous solve");
  RematchReport report;

  // Step 1: bring the cache forward. Targeted invalidation for row deltas,
  // full clear for shape churn (slot results are sized for the old n).
  if (options.cache != nullptr) {
    if (delta.shape_changed) {
      report.slots_invalidated = options.cache->clear();
    } else {
      for (const GenderEdge pair : delta.touched_pairs()) {
        // Both orientations: responder preferences decide accept/reject, so
        // GS(a,b) and GS(b,a) are both stale (gs_cache.hpp contract).
        report.slots_invalidated +=
            options.cache->invalidate({pair.a, pair.b});
        report.slots_invalidated +=
            options.cache->invalidate({pair.b, pair.a});
      }
    }
    options.cache->rebind(inst);
  }

  // Step 2: re-solve, warm where the delta permits.
  core::BindingOptions bopts;
  bopts.engine = options.engine;
  bopts.pool = options.pool;
  bopts.control = options.control;
  bopts.cache = options.cache;
  if (delta.shape_changed || !options.warm_start) {
    report.cold_fallback = delta.shape_changed;
    report.result = core::iterative_binding(inst, tree, bopts);
    return report;
  }
  const DeltaWarmStart provider(previous, delta);
  bopts.warm_start = &provider;
  report.result = core::iterative_binding(inst, tree, bopts);
  const DeltaWarmStart::Stats stats = provider.stats();
  report.edges_reused = stats.edges_reused;
  report.edges_warm = stats.edges_warm;
  report.edges_cold = stats.edges_cold;
  report.warm_executed_proposals = stats.warm_executed_proposals;
  return report;
}

}  // namespace kstable::incremental
