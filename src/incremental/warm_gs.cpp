#include "incremental/warm_gs.hpp"

#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::incremental {

namespace {

/// The pre-delta row of `m` over `g`: the delta's captured old row when the
/// delta rewrote it (earliest capture wins, matching MutationDelta::merge),
/// the instance's current row otherwise (unchanged => current == old).
std::span<const Index> old_row_of(const KPartiteInstance& inst,
                                  const MutationDelta& delta, MemberId m,
                                  Gender g, bool* changed) {
  for (const RowDelta& row : delta.rows) {
    if (row.member == m && row.target == g) {
      *changed = true;
      return {row.old_row.data(), row.old_row.size()};
    }
  }
  *changed = false;
  return inst.pref_row(m, g);
}

/// The seeded queue-loop continuation, monomorphized on the rank width like
/// the cold engines. Identical proposal mechanics to gale_shapley_queue's
/// loop; the only difference is that match arrays, next_choice, and the free
/// stack arrive pre-seeded from the closure instead of all-free.
template <typename R>
void warm_loop(const KPartiteInstance& inst, Gender i, Gender j,
               const gs::GsOptions& options, std::vector<Index>& next_choice,
               std::vector<Index>& free_stack, gs::GsResult& result) {
  Index* const proposer_match = result.proposer_match.data();
  Index* const responder_match = result.responder_match.data();
  Index* const next = next_choice.data();
  const Index* const pref = inst.pref_row({i, 0}, j).data();
  const R* const rank_table = inst.rank_base<R>();
  const std::size_t stride = static_cast<std::size_t>(inst.genders() - 1) *
                             static_cast<std::size_t>(inst.per_gender());
  const std::size_t resp_base = inst.row_base({j, 0}, i);

  while (!free_stack.empty()) {
    const Index p = free_stack.back();
    free_stack.pop_back();
    const Index* const list = pref + static_cast<std::size_t>(p) * stride;
    // Same pigeonhole as the cold engine: a proposer can never be displaced
    // off the end of its list (responders once matched stay matched), and
    // warm seeding preserves that invariant.
    KSTABLE_ASSERT(next[static_cast<std::size_t>(p)] < inst.per_gender());
    const Index r =
        list[static_cast<std::size_t>(next[static_cast<std::size_t>(p)]++)];
    ++result.proposals;
    if (options.control != nullptr) options.control->charge();

    const Index holder = responder_match[static_cast<std::size_t>(r)];
    const R* const ranks =
        rank_table + resp_base + static_cast<std::size_t>(r) * stride;
    gs::ProposalEvent event{p, r, false, -1};
    if (holder < 0) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      event.accepted = true;
    } else if (ranks[static_cast<std::size_t>(p)] <
               ranks[static_cast<std::size_t>(holder)]) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      proposer_match[static_cast<std::size_t>(holder)] = -1;
      free_stack.push_back(holder);
      event.accepted = true;
      event.displaced = holder;
    } else {
      free_stack.push_back(p);
    }
    if (options.trace != nullptr) options.trace->push_back(event);
  }
}

}  // namespace

gs::GsResult warm_gale_shapley(const KPartiteInstance& inst, Gender i,
                               Gender j, const gs::GsResult& previous,
                               const MutationDelta& delta,
                               const gs::GsOptions& options,
                               WarmGsStats* stats) {
  const WallTimer timer;
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  KSTABLE_REQUIRE(i >= 0 && i < k && j >= 0 && j < k && i != j,
                  "warm GS(" << i << ',' << j << ") out of range, k=" << k);
  KSTABLE_REQUIRE(
      previous.proposer_gender == i && previous.responder_gender == j,
      "previous result is for GS(" << previous.proposer_gender << ','
                                   << previous.responder_gender
                                   << "), not GS(" << i << ',' << j << ')');
  KSTABLE_REQUIRE(previous.proposer_match.size() ==
                          static_cast<std::size_t>(n) &&
                      previous.responder_match.size() ==
                          static_cast<std::size_t>(n),
                  "previous result sized for n="
                      << previous.proposer_match.size()
                      << ", instance has n=" << n);
  KSTABLE_REQUIRE(!delta.shape_changed,
                  "shape-changed delta: warm restart is undefined, cold-solve "
                  "the rebuilt instance");
  KSTABLE_REQUIRE(delta.to_generation == inst.generation(),
                  "delta ends at generation " << delta.to_generation
                                              << " but instance is at "
                                              << inst.generation());

  // Per-proposer pre-delta state: old row over j and opr = old rank of the
  // old partner (the walked-prefix length minus one). Unchanged rows read
  // opr straight off the current rank table; changed rows scan their
  // captured old order.
  std::vector<std::span<const Index>> old_rows(static_cast<std::size_t>(n));
  std::vector<Index> opr(static_cast<std::size_t>(n));
  std::vector<char> dirty_p(static_cast<std::size_t>(n), 0);
  std::vector<char> dirty_r(static_cast<std::size_t>(n), 0);
  std::vector<Index> queue_p;
  std::vector<Index> queue_r;
  const auto mark_p = [&](Index p) {
    if (dirty_p[static_cast<std::size_t>(p)] == 0) {
      dirty_p[static_cast<std::size_t>(p)] = 1;
      queue_p.push_back(p);
    }
  };
  const auto mark_r = [&](Index r) {
    if (dirty_r[static_cast<std::size_t>(r)] == 0) {
      dirty_r[static_cast<std::size_t>(r)] = 1;
      queue_r.push_back(r);
    }
  };

  for (Index p = 0; p < n; ++p) {
    bool changed = false;
    const auto row = old_row_of(inst, delta, {i, p}, j, &changed);
    KSTABLE_REQUIRE(row.size() == static_cast<std::size_t>(n),
                    "delta old row for proposer " << p << " has "
                                                  << row.size()
                                                  << " entries, expected "
                                                  << n);
    old_rows[static_cast<std::size_t>(p)] = row;
    const Index r0 = previous.proposer_match[static_cast<std::size_t>(p)];
    KSTABLE_REQUIRE(r0 >= 0 && r0 < n,
                    "previous matching not perfect at proposer " << p);
    if (changed) {
      Index rank = -1;
      for (Index t = 0; t < n; ++t) {
        if (row[static_cast<std::size_t>(t)] == r0) {
          rank = t;
          break;
        }
      }
      KSTABLE_REQUIRE(rank >= 0, "old row of proposer "
                                     << p << " is missing old partner " << r0);
      opr[static_cast<std::size_t>(p)] = rank;
      mark_p(p);  // P0: p's own list over j changed
    } else {
      opr[static_cast<std::size_t>(p)] =
          static_cast<Index>(inst.rank_row({i, p}, j)[
              static_cast<std::size_t>(r0)]);
    }
  }
  for (const RowDelta& row : delta.rows) {
    // R0: responders whose list over the proposer gender changed. Rows over
    // any other gender pair are someone else's problem (another edge's warm
    // restart); they cannot affect GS(i, j).
    if (row.member.gender == j && row.target == i) {
      KSTABLE_REQUIRE(row.member.index >= 0 && row.member.index < n,
                      "delta row member " << row.member << " out of range");
      mark_r(row.member.index);
    }
  }

  // suitors[r] = proposers whose old STRICT walked prefix contains r (they
  // were rejected by r, or displaced from it, before settling). Built in
  // O(total old proposals); this is the rule-5 adjacency.
  std::vector<std::vector<Index>> suitors(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) {
    const auto row = old_rows[static_cast<std::size_t>(p)];
    for (Index t = 0; t < opr[static_cast<std::size_t>(p)]; ++t) {
      suitors[static_cast<std::size_t>(row[static_cast<std::size_t>(t)])]
          .push_back(p);
    }
  }

  // Dirty closure to a fixpoint (BFS over the bipartite reachability graph).
  while (!queue_p.empty() || !queue_r.empty()) {
    if (!queue_p.empty()) {
      const Index p = queue_p.back();
      queue_p.pop_back();
      // Rule 3: everything p proposed to (inclusive of its old partner at
      // rank opr) may have answered differently post-delta.
      const auto row = old_rows[static_cast<std::size_t>(p)];
      for (Index t = 0; t <= opr[static_cast<std::size_t>(p)]; ++t) {
        mark_r(row[static_cast<std::size_t>(t)]);
      }
    } else {
      const Index r = queue_r.back();
      queue_r.pop_back();
      // Rule 4: the held match may not survive.
      mark_p(previous.responder_match[static_cast<std::size_t>(r)]);
      // Rule 5: a rejection r issued might now be an acceptance.
      for (const Index q : suitors[static_cast<std::size_t>(r)]) mark_p(q);
    }
  }

  // Seed the warm state. The closure guarantees a clean proposer's old
  // partner is clean (rule 3 dirties the inclusive prefix), so clean pairs
  // re-form exactly and dirty responders start unmatched.
  gs::GsResult result;
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});
  std::vector<Index> next_choice(static_cast<std::size_t>(n), Index{0});
  std::vector<Index> free_stack;
  WarmGsStats local{};
  for (Index p = 0; p < n; ++p) {
    if (dirty_p[static_cast<std::size_t>(p)] != 0) {
      ++local.dirty_proposers;
      continue;
    }
    const Index r0 = previous.proposer_match[static_cast<std::size_t>(p)];
    result.proposer_match[static_cast<std::size_t>(p)] = r0;
    result.responder_match[static_cast<std::size_t>(r0)] = p;
    next_choice[static_cast<std::size_t>(p)] =
        opr[static_cast<std::size_t>(p)] + 1;
  }
  for (Index r = 0; r < n; ++r) {
    local.dirty_responders += dirty_r[static_cast<std::size_t>(r)] != 0;
  }
  // Descending push so pops ascend by index, matching the cold engine's
  // order (any order is correct by confluence; sameness aids debugging).
  for (Index p = n - 1; p >= 0; --p) {
    if (dirty_p[static_cast<std::size_t>(p)] != 0) free_stack.push_back(p);
  }
  if (options.trace != nullptr) {
    options.trace->reserve(options.trace->size() +
                           static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n));
  }

  if (inst.rank_width() == prefs::RankWidth::narrow16) {
    warm_loop<std::uint16_t>(inst, i, j, options, next_choice, free_stack,
                             result);
  } else {
    warm_loop<std::uint32_t>(inst, i, j, options, next_choice, free_stack,
                             result);
  }
  result.rounds = result.proposals;
  result.engine = "gs.warm";
  result.wall_ms = timer.millis();

  // Same perfect-matching postcondition as the cold engines.
  for (Index p = 0; p < n; ++p) {
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] >= 0,
                   "warm restart left proposer " << p << " unmatched");
  }
  for (Index r = 0; r < n; ++r) {
    const Index p = result.responder_match[static_cast<std::size_t>(r)];
    KSTABLE_ENSURE(p >= 0, "warm restart left responder " << r << " unmatched");
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] == r,
                   "warm restart match arrays inconsistent at responder " << r);
  }
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace kstable::incremental
