#include "incremental/mutation.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace kstable::incremental {

namespace {

/// Copies a pref row span into owned storage (the row is about to be
/// overwritten in place, so the delta must own the old order).
std::vector<Index> snapshot(std::span<const Index> row) {
  return {row.begin(), row.end()};
}

/// Rank width for a rebuilt instance of per-gender size `n`: preserve the
/// source's layout choice unless n outgrew narrow16.
prefs::RankWidth width_for(const KPartiteInstance& src, Index n) {
  if (src.rank_width() == prefs::RankWidth::narrow16 &&
      prefs::natural_rank_width(n) == prefs::RankWidth::wide32) {
    return prefs::RankWidth::wide32;
  }
  return src.rank_width();
}

}  // namespace

bool MutationDelta::touches(Gender a, Gender b) const noexcept {
  if (shape_changed) return true;
  for (const RowDelta& row : rows) {
    const Gender observer = row.member.gender;
    if ((observer == a && row.target == b) ||
        (observer == b && row.target == a)) {
      return true;
    }
  }
  return false;
}

std::vector<GenderEdge> MutationDelta::touched_pairs() const {
  std::vector<GenderEdge> pairs;
  pairs.reserve(rows.size());
  for (const RowDelta& row : rows) {
    pairs.push_back(GenderEdge{row.member.gender, row.target}.normalized());
  }
  std::sort(pairs.begin(), pairs.end(),
            [](GenderEdge lhs, GenderEdge rhs) {
              return lhs.a != rhs.a ? lhs.a < rhs.a : lhs.b < rhs.b;
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](GenderEdge lhs, GenderEdge rhs) {
                            return lhs.a == rhs.a && lhs.b == rhs.b;
                          }),
              pairs.end());
  return pairs;
}

void MutationDelta::merge(const MutationDelta& later) {
  KSTABLE_REQUIRE(later.from_generation == to_generation,
                  "merging non-adjacent deltas: this ends at generation "
                      << to_generation << ", later starts at "
                      << later.from_generation);
  for (const RowDelta& row : later.rows) {
    // Earliest old row wins: if this delta already rewrote (member, target),
    // its old_row is the state the last solve saw; later rewrites of the
    // same row only move the *current* contents, which the instance holds.
    const bool seen =
        std::any_of(rows.begin(), rows.end(), [&](const RowDelta& mine) {
          return mine.member == row.member && mine.target == row.target;
        });
    if (!seen) rows.push_back(row);
  }
  shape_changed = shape_changed || later.shape_changed;
  to_generation = later.to_generation;
}

MutationDelta swap_entries(KPartiteInstance& inst, MemberId m, Gender g,
                           Index rank_a, Index rank_b) {
  MutationDelta delta;
  delta.from_generation = inst.generation();
  delta.rows.push_back({m, g, snapshot(inst.pref_list(m, g))});
  inst.swap_pref_entries(m, g, rank_a, rank_b);
  delta.to_generation = inst.generation();
  return delta;
}

MutationDelta replace_list(KPartiteInstance& inst, MemberId m, Gender g,
                           std::span<const Index> order) {
  MutationDelta delta;
  delta.from_generation = inst.generation();
  delta.rows.push_back({m, g, snapshot(inst.pref_list(m, g))});
  inst.set_pref_list(m, g, order);
  delta.to_generation = inst.generation();
  return delta;
}

ResizeResult add_member(const KPartiteInstance& inst, Rng& rng) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  const Index grown = n + 1;
  KPartiteInstance out(k, grown, width_for(inst, grown));
  std::vector<Index> list(static_cast<std::size_t>(grown));
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        // Existing list, with the new index spliced in at a random position.
        const auto old = inst.pref_list({g, i}, h);
        const auto pos =
            static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(grown)));
        list.assign(old.begin(), old.begin() + static_cast<std::ptrdiff_t>(pos));
        list.push_back(n);
        list.insert(list.end(), old.begin() + static_cast<std::ptrdiff_t>(pos),
                    old.end());
        out.set_pref_list({g, i}, h, list);
      }
    }
    for (Gender h = 0; h < k; ++h) {
      if (h == g) continue;
      out.set_pref_list({g, n}, h, rng.permutation(grown));
    }
  }
  MutationDelta delta;
  delta.from_generation = inst.generation();
  delta.to_generation = out.generation();
  delta.shape_changed = true;
  return {std::move(out), std::move(delta)};
}

ResizeResult remove_member(const KPartiteInstance& inst, Index victim) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  KSTABLE_REQUIRE(n >= 2, "remove_member needs n >= 2, got n=" << n);
  KSTABLE_REQUIRE(victim >= 0 && victim < n,
                  "victim index " << victim << " out of range for n=" << n);
  const Index shrunk = n - 1;
  KPartiteInstance out(k, shrunk, width_for(inst, shrunk));
  std::vector<Index> list;
  list.reserve(static_cast<std::size_t>(shrunk));
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      if (i == victim) continue;
      const Index reindexed = i - (i > victim ? 1 : 0);
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        list.clear();
        for (const Index entry : inst.pref_list({g, i}, h)) {
          if (entry == victim) continue;
          list.push_back(entry - (entry > victim ? 1 : 0));
        }
        out.set_pref_list({g, reindexed}, h, list);
      }
    }
  }
  MutationDelta delta;
  delta.from_generation = inst.generation();
  delta.to_generation = out.generation();
  delta.shape_changed = true;
  return {std::move(out), std::move(delta)};
}

MutationDelta random_mutation(KPartiteInstance& inst, Rng& rng) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  const auto g = static_cast<Gender>(rng.below(static_cast<std::uint64_t>(k)));
  const auto i = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
  auto target =
      static_cast<Gender>(rng.below(static_cast<std::uint64_t>(k - 1)));
  target += target >= g ? 1 : 0;
  // Mostly cheap single-pair swaps (the realistic churn unit); occasionally a
  // full list replacement to exercise the many-rows-dirty path. n == 1 lists
  // have nothing to swap, so they always replace (a generation-bumping no-op).
  if (n >= 2 && !rng.chance(0.125)) {
    const auto rank_a =
        static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    auto rank_b =
        static_cast<Index>(rng.below(static_cast<std::uint64_t>(n - 1)));
    rank_b += rank_b >= rank_a ? 1 : 0;
    return swap_entries(inst, {g, i}, target, rank_a, rank_b);
  }
  const auto order = rng.permutation(n);
  return replace_list(inst, {g, i}, target, order);
}

}  // namespace kstable::incremental
