// rematch(): one-call incremental re-stabilization (docs/INCREMENTAL.md).
//
// The driver that ties the churn pipeline together. Given the mutated
// instance, the binding tree, the PREVIOUS solve's BindingResult, and the
// MutationDelta bridging the two generations, it:
//   1. invalidates exactly the stale cache slots (both orientations of every
//      gender pair the delta touched) and rebinds the cache to the new
//      generation — or clear()s everything when the shape changed;
//   2. re-runs Algorithm 1 with a DeltaWarmStart provider attached, so
//      untouched edges reuse the previous per-edge results verbatim and
//      touched edges run the warm GS continuation instead of a cold solve;
//   3. reports exact work accounting: slots invalidated, edges
//      reused/warm/cold, and the continuation proposals actually executed —
//      the counters the churn batteries prove "strictly less than a cold
//      re-solve" with.
// The resulting matching is bitwise-identical to a cold solve of the mutated
// instance (GS confluence; pinned by the DiffRunner churn battery).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/binding.hpp"
#include "core/gs_cache.hpp"
#include "graph/binding_structure.hpp"
#include "incremental/mutation.hpp"
#include "parallel/thread_pool.hpp"
#include "resilience/control.hpp"

namespace kstable::incremental {

/// WarmStartProvider backed by a previous BindingResult plus the delta since
/// it was computed. Per oriented edge: an edge the delta does not touch
/// returns the previous result verbatim (zero proposals executed); a touched
/// edge runs warm_gale_shapley; an edge absent from the previous result
/// (different tree) answers nullopt and falls back to the cold engine.
/// Thread-safe: const with atomic counters (TreeSweep workers may share it).
/// Holds references — `previous` and `delta` must outlive the provider.
class DeltaWarmStart final : public core::WarmStartProvider {
 public:
  /// Requires !delta.shape_changed (membership churn cannot warm-start;
  /// rematch() answers it with a cold solve instead of building a provider).
  DeltaWarmStart(const core::BindingResult& previous,
                 const MutationDelta& delta);

  [[nodiscard]] std::optional<gs::GsResult> warm_solve(
      const KPartiteInstance& inst, GenderEdge edge,
      const core::BindingOptions& options) const override;

  /// Exact work accounting, independent of the cache's hit/miss counters
  /// (which cannot distinguish a warm compute from a cold one).
  struct Stats {
    std::int64_t edges_reused = 0;  ///< untouched: previous result returned
    std::int64_t edges_warm = 0;    ///< touched: warm continuation ran
    std::int64_t edges_cold = 0;    ///< not in previous result: cold fallback
    std::int64_t warm_executed_proposals = 0;  ///< continuation work only
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  const core::BindingResult& previous_;
  const MutationDelta& delta_;
  mutable std::atomic<std::int64_t> edges_reused_{0};
  mutable std::atomic<std::int64_t> edges_warm_{0};
  mutable std::atomic<std::int64_t> edges_cold_{0};
  mutable std::atomic<std::int64_t> warm_executed_{0};
};

struct RematchOptions {
  /// Cold-fallback engine (and the engine key cached results publish under).
  core::GsEngine engine = core::GsEngine::queue;
  ThreadPool* pool = nullptr;
  resilience::ExecControl* control = nullptr;
  /// Optional edge cache carried across re-stabilizations. rematch() performs
  /// the targeted invalidation + rebind itself; the caller only guarantees
  /// quiescence (no concurrent solve is using the cache during rematch).
  core::GsEdgeCache* cache = nullptr;
  /// Escape hatch: false forces a cold re-solve (cache still invalidated),
  /// for A/B measurement of what the warm start buys.
  bool warm_start = true;
};

struct RematchReport {
  core::BindingResult result;
  /// Ready cache slots dropped by the targeted invalidation (or by clear()
  /// when the shape changed); 0 without a cache. Strictly fewer than a
  /// clear() would drop for single-pair deltas at k >= 3 — the churn battery
  /// asserts this.
  std::size_t slots_invalidated = 0;
  std::int64_t edges_reused = 0;
  std::int64_t edges_warm = 0;
  std::int64_t edges_cold = 0;
  /// Proposals the warm continuations executed (reused edges add zero).
  std::int64_t warm_executed_proposals = 0;
  /// True when the delta's shape_changed forced a full cold solve.
  bool cold_fallback = false;
};

/// Re-stabilizes `inst` (already mutated; delta.to_generation must equal
/// inst.generation()) over `tree`, warm-starting from `previous` — the
/// binding result solved on the pre-delta instance over the same tree.
/// Returns the new proposer-optimal matching, bitwise-identical to a cold
/// iterative_binding of the mutated instance.
RematchReport rematch(const KPartiteInstance& inst,
                      const BindingStructure& tree,
                      const core::BindingResult& previous,
                      const MutationDelta& delta,
                      const RematchOptions& options = {});

}  // namespace kstable::incremental
