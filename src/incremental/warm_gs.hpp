// Warm-restart Gale-Shapley: re-solve one binary binding GS(i, j) after a
// preference delta, starting from the previous proposer-optimal matching
// instead of from scratch (docs/INCREMENTAL.md).
//
// Soundness rests on GS confluence (the proposer-optimal matching is
// independent of proposal order) plus a replay argument: the previous
// execution, filtered down to the proposers the delta did NOT disturb, is a
// valid GS execution prefix on the NEW instance — so seeding the engine with
// that prefix's state and running the ordinary queue loop to quiescence
// reaches the new instance's proposer-optimal matching bit for bit.
//
// "Disturbed" is computed as a closure, not just the mutated rows. Dirty
// seeds: proposers whose list over j changed (P0) and responders whose list
// over i changed (R0). Closure rules, to a fixpoint:
//   * a dirty proposer dirties every responder in its OLD walked prefix
//     (ranks 0..opr inclusive, opr = old rank of its old partner): those
//     responders may have replied differently;
//   * a dirty responder dirties its old holder (the held match may not
//     survive) and every proposer that had walked past it (old rank < opr):
//     a rejection that might now be an acceptance.
// Clean proposers keep their old partner with next_choice = opr + 1; dirty
// proposers restart free at rank 0; responders held by dirty proposers start
// unmatched (the closure guarantees a clean proposer's partner is clean).
// Extra conservative dirt is always sound — it only replays more work.
//
// The continuation runs the queue algorithm regardless of the engine the
// previous result came from; by confluence the match arrays equal every
// engine's cold output (the churn battery pins this bitwise across engines
// and both rank widths).
#pragma once

#include "gs/gale_shapley.hpp"
#include "incremental/mutation.hpp"
#include "prefs/kpartite.hpp"

namespace kstable::incremental {

/// Closure bookkeeping of one warm restart, for the counter-proof batteries
/// (a single swapped pair should dirty few proposers; proposals executed is
/// GsResult::proposals — continuation work only, old work is not recounted).
struct WarmGsStats {
  Index dirty_proposers = 0;
  Index dirty_responders = 0;
};

/// Re-solves GS(i, j) on `inst` (already mutated) given `previous` — the
/// solved result for the SAME oriented pair on the pre-delta instance — and
/// the delta bridging the two. Returns a result bitwise-identical in its
/// match arrays to a cold solve of `inst`, with proposals counting only the
/// continuation work; engine is "gs.warm". Requires !delta.shape_changed and
/// delta.to_generation == inst.generation() (rows outside (i<->j) are
/// ignored). Throws ContractViolation on a mismatched previous result.
gs::GsResult warm_gale_shapley(const KPartiteInstance& inst, Gender i,
                               Gender j, const gs::GsResult& previous,
                               const MutationDelta& delta,
                               const gs::GsOptions& options = {},
                               WarmGsStats* stats = nullptr);

}  // namespace kstable::incremental
