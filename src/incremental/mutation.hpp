// Preference-churn mutation API (docs/INCREMENTAL.md).
//
// A service at scale does not rebuild a KPartiteInstance because one user
// edited one preference list. The mutators here rewrite the arena pref/rank
// rows IN PLACE (KPartiteInstance::swap_pref_entries / set_pref_list), bump
// the per-instance generation counter, and return a MutationDelta — the
// record every downstream consumer needs:
//
//   * core::GsEdgeCache — which oriented edges to invalidate() before
//     rebind()ing to the new generation;
//   * incremental::warm_gale_shapley — the OLD rows of the changed lists,
//     from which the dirty-proposer closure is computed;
//   * incremental::rematch — the one-call driver tying both together.
//
// Deltas compose: merge() folds a later delta into an earlier one, keeping
// the EARLIEST old row per (member, target) — exactly the row state the last
// solved matching was computed against, which is what the warm restart needs
// after several mutations between re-stabilizations.
//
// Membership changes (add_member / remove_member) cannot rewrite in place —
// the arena is sized by n — so they rebuild a new instance and mark the
// delta shape_changed; rematch() answers those with a cold solve.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/binding_structure.hpp"
#include "prefs/ids.hpp"
#include "prefs/kpartite.hpp"
#include "util/rng.hpp"

namespace kstable::incremental {

/// One rewritten preference row: `member`'s list over gender `target`,
/// with the full pre-mutation order captured for the warm-restart closure.
struct RowDelta {
  MemberId member{};
  Gender target = -1;
  std::vector<Index> old_row;
};

/// The difference between two instance generations, as a set of rewritten
/// rows (plus the shape_changed escape hatch for membership churn).
struct MutationDelta {
  std::uint64_t from_generation = 0;  ///< generation the old rows belong to
  std::uint64_t to_generation = 0;    ///< instance generation after applying
  bool shape_changed = false;         ///< add/remove member: everything stale
  std::vector<RowDelta> rows;

  [[nodiscard]] bool empty() const noexcept {
    return rows.empty() && !shape_changed;
  }

  /// True iff the memoized GS(a,b) / GS(b,a) results are stale: some
  /// rewritten row involves the (a, b) gender pair in either direction, or
  /// the shape changed (which staled everything).
  [[nodiscard]] bool touches(Gender a, Gender b) const noexcept;

  /// Normalized unique gender pairs touched by the delta (both orientations
  /// of each are stale — see GsEdgeCache::invalidate).
  [[nodiscard]] std::vector<GenderEdge> touched_pairs() const;

  /// Folds `later` (a delta that starts where this one ends) into this one:
  /// per (member, target) the EARLIEST old row wins, so the merged delta
  /// still describes the change since from_generation. Requires
  /// later.from_generation == to_generation.
  void merge(const MutationDelta& later);
};

/// Swaps the entries at `rank_a`/`rank_b` of m's list over `g` in place and
/// returns the single-row delta (old row captured before the swap).
MutationDelta swap_entries(KPartiteInstance& inst, MemberId m, Gender g,
                           Index rank_a, Index rank_b);

/// Replaces m's whole list over `g` (order must be a permutation of [0, n),
/// enforced by set_pref_list) and returns the single-row delta.
MutationDelta replace_list(KPartiteInstance& inst, MemberId m, Gender g,
                           std::span<const Index> order);

/// A rebuilt instance plus the delta describing how it differs from the
/// source (membership churn: delta.shape_changed is always true).
struct ResizeResult {
  KPartiteInstance instance;
  MutationDelta delta;
};

/// Grows every gender by one member (balanced instances stay balanced): the
/// new member of each gender draws uniform-random lists from `rng`, and
/// every existing list gains the new index at a random position. The source
/// is untouched; the result is a fresh instance with its own generation
/// counter, and the delta bridges the two (from = source generation, to =
/// result generation, shape_changed).
ResizeResult add_member(const KPartiteInstance& inst, Rng& rng);

/// Shrinks every gender by one, deleting index `victim` from each gender and
/// reindexing (entries > victim shift down). Requires n >= 2.
ResizeResult remove_member(const KPartiteInstance& inst, Index victim);

/// Draws one random in-place mutation (mostly entry swaps, occasionally a
/// full list replacement) and applies it. The churn batteries' step
/// primitive: deterministic in `rng`.
MutationDelta random_mutation(KPartiteInstance& inst, Rng& rng);

}  // namespace kstable::incremental
