#include "verify/diff_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "core/binding.hpp"
#include "core/gs_cache.hpp"
#include "core/tree_sweep.hpp"
#include "graph/binding_structure.hpp"
#include "gs/parallel_gs.hpp"
#include "gs/scan_gs.hpp"
#include "incremental/mutation.hpp"
#include "incremental/rematch.hpp"
#include "resilience/control.hpp"
#include "resilience/errors.hpp"
#include "resilience/solve_ladder.hpp"
#include "roommates/adapters.hpp"
#include "roommates/solver.hpp"
#include "util/rng.hpp"
#include "verify/cert_checker.hpp"

namespace kstable::verify {
namespace {

/// Accumulates mismatches with the battery's replay provenance attached.
struct Recorder {
  BatteryResult* out;
  Shape shape;
  Dist dist;
  std::uint64_t seed;
  Gender k;
  Index n;

  void check(bool ok, const char* id, const std::string& detail) const {
    ++out->checks;
    if (!ok) {
      out->mismatches.push_back(
          Mismatch{id, detail, shape, dist, seed, k, n});
    }
  }

  /// Certificate check as one relation: nullopt is agreement.
  void cert(const std::optional<CertFailure>& failure, const char* id) const {
    check(!failure.has_value(), id, failure ? failure->what : "");
  }
};

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string describe_diff(const std::vector<Index>& expected,
                          const std::vector<Index>& got) {
  std::ostringstream os;
  const std::size_t limit = std::min(expected.size(), got.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (expected[i] != got[i]) {
      os << "first divergence at index " << i << ": expected " << expected[i]
         << ", got " << got[i];
      return os.str();
    }
  }
  os << "length mismatch: expected " << expected.size() << ", got "
     << got.size();
  return os.str();
}

/// GS engine cross-checks for one ordered gender pair. The queue engine is
/// the reference; every other engine must reproduce its match arrays bitwise
/// (GS confluence), and the sequential engines must also agree on the
/// proposal count (each proposer walks exactly the prefix of its list down
/// to its final partner, independent of order — the parallel engine's
/// speculative proposals are exempt). Returns the reference result so the
/// bipartite fair-SMP check can reuse it.
gs::GsResult gs_engine_checks(const KPartiteInstance& inst, Gender i, Gender j,
                              const Recorder& rec,
                              const DiffOptions& options) {
  auto reference = gs::gale_shapley_queue(inst, i, j);
  rec.cert(check_gs_certificate(inst, i, j, reference), "gs.queue.cert");

  auto compare = [&](const gs::GsResult& other, const char* id_bits,
                     bool check_proposals, const char* id_props) {
    const bool bits_ok = other.proposer_match == reference.proposer_match &&
                         other.responder_match == reference.responder_match;
    std::ostringstream os;
    if (!bits_ok) {
      os << "engine " << other.engine << " diverges from " << reference.engine
         << " on GS(" << i << "," << j << "): "
         << (other.proposer_match == reference.proposer_match
                 ? describe_diff(reference.responder_match,
                                 other.responder_match)
                 : describe_diff(reference.proposer_match,
                                 other.proposer_match));
    }
    rec.check(bits_ok, id_bits, os.str());
    if (check_proposals) {
      std::ostringstream ps;
      ps << "GS(" << i << "," << j << "): " << reference.engine << " made "
         << reference.proposals << " proposals, " << other.engine << " made "
         << other.proposals;
      rec.check(other.proposals == reference.proposals, id_props, ps.str());
    }
  };

  compare(gs::gale_shapley_rounds(inst, i, j), "gs.engine.rounds.bitwise",
          true, "gs.engine.rounds.proposals");

  auto scan = gs::gale_shapley_scan(inst, i, j);
  if (options.sabotage == Sabotage::gs_swap && i == 0 && j == 1) {
    sabotage_gs_result(scan);
  }
  compare(scan, "gs.engine.scan.bitwise", true, "gs.engine.scan.proposals");

  compare(gs::gale_shapley_scan_simd(inst, i, j),
          "gs.engine.scan_simd.bitwise", true,
          "gs.engine.scan_simd.proposals");
  compare(gs::gale_shapley_prefetch(inst, i, j),
          "gs.engine.prefetch.bitwise", true,
          "gs.engine.prefetch.proposals");

  if (options.pool != nullptr) {
    compare(gs::gale_shapley_parallel(inst, i, j, *options.pool, 8),
            "gs.engine.parallel.bitwise", false, "");
  }
  return reference;
}

/// Memory-layout agreement: the same instance re-laid at the other rank
/// width (prefs/compact_ranks.hpp) must stay semantically equal and must
/// produce bitwise-identical solves from both the scalar queue engine and
/// the width-monomorphized prefetch engine — rank width is a layout choice,
/// never a semantic one.
void layout_checks(const KPartiteInstance& inst, const Recorder& rec) {
  const auto other = inst.rank_width() == prefs::RankWidth::narrow16
                         ? prefs::RankWidth::wide32
                         : prefs::RankWidth::narrow16;
  if (other == prefs::RankWidth::narrow16 && inst.per_gender() >= 65536) {
    return;  // narrow16 cannot represent this instance's ranks
  }
  const auto relaid = KPartiteInstance::relaid(inst, other);
  rec.check(relaid == inst, "layout.relaid.equal",
            "re-laid copy is not semantically equal to the original");

  auto compare_widths = [&](const gs::GsResult& a, const gs::GsResult& b,
                            const char* id) {
    const bool ok = a.proposer_match == b.proposer_match &&
                    a.responder_match == b.responder_match &&
                    a.proposals == b.proposals;
    std::ostringstream os;
    if (!ok) {
      os << a.engine << " diverges between " << prefs::to_string(
             inst.rank_width()) << " and " << prefs::to_string(other)
         << " rank layouts: "
         << (a.proposer_match == b.proposer_match
                 ? describe_diff(a.responder_match, b.responder_match)
                 : describe_diff(a.proposer_match, b.proposer_match))
         << " (proposals " << a.proposals << " vs " << b.proposals << ")";
    }
    rec.check(ok, id, os.str());
  };
  compare_widths(gs::gale_shapley_queue(inst, 0, 1),
                 gs::gale_shapley_queue(relaid, 0, 1),
                 "layout.width.queue.bitwise");
  compare_widths(gs::gale_shapley_prefetch(inst, 0, 1),
                 gs::gale_shapley_prefetch(relaid, 0, 1),
                 "layout.width.prefetch.bitwise");
}

/// Implicit-backend cross-checks (docs/PERFORMANCE.md §Implicit
/// preferences). An implicit instance derived from the battery's replay seed
/// is materialized into explicit tables; the generator and the tables must
/// then be indistinguishable to every consumer: bitwise-equal matchings,
/// identical proposal counts AND identical proposal traces from every
/// sequential engine (the strongest confluence pin: not just the same fixed
/// point, the same path to it), rank_of inverting pref_at exactly, and the
/// binding/ladder layers agreeing across backends. Runs for both generator
/// families so the Feistel path and the closed-form path are each pinned.
void implicit_checks(const Recorder& rec, const DiffOptions& options) {
  const Gender k = rec.k;
  const Index n = rec.n;
  for (const auto family :
       {prefs::imp::Family::uniform, prefs::imp::Family::cyclic}) {
    // Derived seed: decoupled from the generator's own stream.
    const prefs::imp::ImplicitSpec spec{family,
                                        rec.seed ^ 0x8f1bbcdc9aab5a2dULL};
    const auto implicit = KPartiteInstance::make_implicit(k, n, spec);
    const char* fam = prefs::imp::to_string(family);

    // Materialization doubles as the bijectivity certificate: set_pref_list
    // rejects any row that is not a permutation, so a broken PRP cannot
    // produce an explicit twin at all.
    const auto wide = implicit.materialized(prefs::RankWidth::wide32);
    rec.check(wide == implicit, "implicit.materialized.equal",
              std::string("materialized explicit copy (") + fam +
                  ") is not element-wise equal to its implicit source");

    {  // pref_at and rank_of must be exact inverses on the generator.
      bool inverse_ok = true;
      std::ostringstream os;
      for (Gender g = 0; inverse_ok && g < k; ++g) {
        for (Index m = 0; inverse_ok && m < n; ++m) {
          for (Gender h = 0; inverse_ok && h < k; ++h) {
            if (h == g) continue;
            for (Index r = 0; r < n; ++r) {
              const Index p = implicit.pref_at({g, m}, h, r);
              const std::int32_t back = implicit.rank_of({g, m}, {h, p});
              if (back != static_cast<std::int32_t>(r)) {
                os << fam << ": rank_of(pref_at(" << g << ',' << m << ','
                   << h << ',' << r << ")=" << p << ") = " << back;
                inverse_ok = false;
                break;
              }
            }
          }
        }
      }
      rec.check(inverse_ok, "implicit.rank.inverse", os.str());
    }

    // Engine sweep over every ordered gender pair: queue-with-trace on the
    // implicit instance vs queue-with-trace on the materialized twin, then
    // every other engine on the implicit backend against that reference.
    for (Gender i = 0; i < k; ++i) {
      for (Gender j = 0; j < k; ++j) {
        if (i == j) continue;
        std::vector<gs::ProposalEvent> trace_imp;
        std::vector<gs::ProposalEvent> trace_exp;
        gs::GsOptions topt;
        topt.trace = &trace_imp;
        const auto reference = gs::gale_shapley_queue(implicit, i, j, topt);
        topt.trace = &trace_exp;
        const auto explicit_ref = gs::gale_shapley_queue(wide, i, j, topt);

        auto compare = [&](const gs::GsResult& other, const char* id_bits,
                           bool check_proposals, const char* id_props) {
          const bool bits_ok =
              other.proposer_match == reference.proposer_match &&
              other.responder_match == reference.responder_match;
          std::ostringstream os;
          if (!bits_ok) {
            os << fam << ": engine " << other.engine
               << " diverges from the implicit queue reference on GS(" << i
               << "," << j << "): "
               << (other.proposer_match == reference.proposer_match
                       ? describe_diff(reference.responder_match,
                                       other.responder_match)
                       : describe_diff(reference.proposer_match,
                                       other.proposer_match));
          }
          rec.check(bits_ok, id_bits, os.str());
          if (check_proposals) {
            std::ostringstream ps;
            ps << fam << ": GS(" << i << "," << j << "): implicit queue made "
               << reference.proposals << " proposals, " << other.engine
               << " made " << other.proposals;
            rec.check(other.proposals == reference.proposals, id_props,
                      ps.str());
          }
        };

        compare(explicit_ref, "implicit.queue.bitwise", true,
                "implicit.queue.proposals");
        rec.check(trace_imp == trace_exp, "implicit.queue.trace",
                  std::string(fam) +
                      ": implicit and materialized queue solves emitted "
                      "different proposal traces");
        compare(gs::gale_shapley_rounds(implicit, i, j),
                "implicit.rounds.bitwise", true, "implicit.rounds.proposals");
        compare(gs::gale_shapley_prefetch(implicit, i, j),
                "implicit.prefetch.bitwise", true,
                "implicit.prefetch.proposals");
        compare(gs::gale_shapley_scan(implicit, i, j),
                "implicit.scan.bitwise", true, "implicit.scan.proposals");
        compare(gs::gale_shapley_scan_simd(implicit, i, j),
                "implicit.scan_simd.bitwise", true,
                "implicit.scan_simd.proposals");
        if (options.pool != nullptr) {
          compare(gs::gale_shapley_parallel(implicit, i, j, *options.pool, 8),
                  "implicit.parallel.bitwise", false, "");
        }
      }
    }

    if (n < 65536) {  // narrow16 twin: width stays a pure layout choice
      const auto narrow = implicit.materialized(prefs::RankWidth::narrow16);
      const auto a = gs::gale_shapley_queue(implicit, 0, 1);
      const auto b = gs::gale_shapley_queue(narrow, 0, 1);
      rec.check(a.proposer_match == b.proposer_match &&
                    a.responder_match == b.responder_match &&
                    a.proposals == b.proposals,
                "implicit.narrow16.bitwise",
                std::string(fam) +
                    ": narrow16 materialization diverges from the implicit "
                    "solve");
    }

    {  // Binding + ladder layers across backends.
      const auto path = trees::path(k);
      const auto bound_imp = core::iterative_binding(implicit, path);
      const auto bound_exp = core::iterative_binding(wide, path);
      std::ostringstream os;
      if (!(bound_imp.matching() == bound_exp.matching())) {
        os << fam << ": implicit binding diverges from materialized binding: "
           << describe_diff(bound_exp.matching().raw(),
                            bound_imp.matching().raw());
      }
      rec.check(bound_imp.matching() == bound_exp.matching(),
                "implicit.binding.bitwise", os.str());
      rec.cert(check_kary_certificate(implicit, bound_imp.matching(), path),
               "implicit.binding.cert");

      // Cached binding: the implicit instance's generation is fixed at 0, so
      // the generation-bound cache must replay hits bitwise and for free.
      core::GsEdgeCache cache(implicit);
      core::BindingOptions copts;
      copts.cache = &cache;
      (void)core::iterative_binding(implicit, path, copts);
      const auto replay = core::iterative_binding(implicit, path, copts);
      std::ostringstream rs;
      rs << fam << ": cached implicit replay executed "
         << replay.executed_proposals << " proposals";
      rec.check(replay.matching() == bound_imp.matching() &&
                    replay.executed_proposals == 0,
                "implicit.binding.cache.replay", rs.str());

      resilience::FallbackOptions fopts;
      const auto report = resilience::solve_with_fallback(implicit, fopts);
      rec.check(report.succeeded &&
                    report.matching() == bound_imp.matching(),
                "implicit.ladder.bitwise",
                std::string(fam) +
                    ": fallback ladder on the implicit backend diverges from "
                    "sequential binding");
    }
  }
}

/// Binding-layer cross-checks on the path tree: sequential Algorithm 1 is
/// the reference; TreeSweep, both cache policies, a cached replay, and the
/// fallback ladder must all reproduce its matching bitwise.
void binding_checks(const KPartiteInstance& inst, const Recorder& rec,
                    const DiffOptions& options) {
  const Gender k = inst.genders();
  const auto path = trees::path(k);
  const auto reference = core::iterative_binding(inst, path);
  rec.cert(check_kary_certificate(inst, reference.matching(), path),
           "binding.sequential.cert");

  auto compare_matching = [&](const KaryMatching& other, const char* id,
                              const char* label) {
    std::ostringstream os;
    if (!(other == reference.matching())) {
      os << label << " matching diverges from sequential binding: "
         << describe_diff(reference.matching().raw(), other.raw());
    }
    rec.check(other == reference.matching(), id, os.str());
  };

  {  // TreeSweep over the singleton candidate list.
    const std::vector<BindingStructure> candidates{path};
    auto sweep = core::sweep_trees(inst, candidates);
    rec.check(sweep.succeeded() && sweep.best_index == 0,
              "binding.sweep.winner",
              "single-candidate sweep did not pick candidate 0");
    if (sweep.succeeded()) {
      KaryMatching swept = sweep.matching();
      if (options.sabotage == Sabotage::kary_swap) {
        swept = sabotage_kary(swept);
      }
      compare_matching(swept, "binding.sweep.bitwise", "tree-sweep");
    }
  }

  for (const auto policy : {core::GsEdgeCache::Policy::single_flight,
                            core::GsEdgeCache::Policy::duplicate}) {
    core::GsEdgeCache cache(k, policy);
    core::BindingOptions copts;
    copts.cache = &cache;
    const char* id = policy == core::GsEdgeCache::Policy::single_flight
                         ? "binding.cache.single_flight.bitwise"
                         : "binding.cache.duplicate.bitwise";
    const auto cached = core::iterative_binding(inst, path, copts);
    compare_matching(cached.matching(), id, "cached binding");
    // Second pass replays every edge from the memo (all hits) — the replay
    // must still be bitwise-identical and must execute zero proposals.
    const auto replay = core::iterative_binding(inst, path, copts);
    compare_matching(replay.matching(), "binding.cache.replay.bitwise",
                     "cache-replay binding");
    std::ostringstream os;
    os << "cache replay executed " << replay.executed_proposals
       << " proposals (hits " << replay.cache_hits << ", misses "
       << replay.cache_misses << ")";
    rec.check(replay.executed_proposals == 0 &&
                  replay.cache_hits == static_cast<std::int64_t>(k) - 1,
              "binding.cache.replay.free", os.str());
  }

  {  // Unconstrained ladder: attempt 0 is the path tree and must win.
    resilience::FallbackOptions fopts;
    const auto report = resilience::solve_with_fallback(inst, fopts);
    rec.check(report.succeeded && report.rung == resilience::Rung::strict_tree,
              "ladder.first-rung",
              "unconstrained ladder did not succeed on the strict first rung");
    if (report.succeeded) {
      compare_matching(report.matching(), "ladder.bitwise", "ladder");
    }
  }

  // Abort paths. Half the reference's own proposal budget must abort the
  // solve, and the exhausted control must KEEP reporting the abort from
  // check_now() (the bug class where check_now ignored the proposal budget).
  if (reference.total_proposals >= 2) {
    resilience::Budget budget;
    budget.max_proposals = reference.total_proposals / 2;
    resilience::ExecControl control(budget);
    core::BindingOptions copts;
    copts.control = &control;
    bool threw = false;
    try {
      const auto partial = core::iterative_binding(inst, path, copts);
      (void)partial;
    } catch (const ExecutionAborted&) {
      threw = true;
    }
    rec.check(threw, "abort.budget.thrown",
              "binding under half its own proposal budget did not abort");
    if (threw) {
      bool still_aborted = false;
      try {
        control.check_now();
      } catch (const ExecutionAborted& e) {
        still_aborted = e.reason() == AbortReason::proposal_budget;
      }
      rec.check(still_aborted, "abort.check_now.budget",
                "check_now() on an exhausted control did not re-report the "
                "proposal-budget abort");
    }
  }

  {  // A failed strict-only ladder must not claim any matching stable.
    resilience::FallbackOptions fopts;
    fopts.per_attempt.max_proposals = 1;
    fopts.max_tree_attempts = 1;
    fopts.allow_degraded = false;
    const auto report = resilience::solve_with_fallback(inst, fopts);
    const bool starved = inst.per_gender() >= 2;  // n = 1 fits in 1 proposal
    if (starved) {
      rec.check(!report.succeeded && !report.result.has_value(),
                "abort.no-partial-result",
                "exhausted strict-only ladder still carries a result");
    }
  }
}

/// Incremental re-stabilization legs (src/incremental/, docs/INCREMENTAL.md).
/// A mutable copy of the instance absorbs `churn_steps` seeded random
/// preference deltas; after every step the incremental pipeline must agree
/// bitwise with a cold solve of the mutated instance, the generation-bound
/// cache must refuse stale lookups, and the warm path must provably do less
/// work than starting over (the counter checks are scoped to single-pair
/// deltas at k >= 3, where "strictly fewer" is a theorem, not a heuristic).
void churn_checks(const KPartiteInstance& original, const Recorder& rec,
                  const DiffOptions& options) {
  const Gender k = original.genders();
  const auto path = trees::path(k);
  KPartiteInstance inst = original;
  // Derived stream: decoupled from the generator's seed usage so adding
  // churn legs does not perturb what the other batteries see.
  Rng rng(rec.seed ^ 0xc1124e5ab17e5eedULL);

  core::GsEdgeCache cache(inst);  // generation-bound
  core::BindingOptions cached_opts;
  cached_opts.cache = &cache;
  core::BindingResult previous = core::iterative_binding(inst, path,
                                                         cached_opts);

  auto compare_matching = [&](const core::BindingResult& cold,
                              const KaryMatching& got, const char* id,
                              const char* label) {
    std::ostringstream os;
    if (!(got == cold.matching())) {
      os << label << " diverges from the cold re-solve: "
         << describe_diff(cold.matching().raw(), got.raw());
    }
    rec.check(got == cold.matching(), id, os.str());
  };

  for (std::int32_t step = 0; step < options.churn_steps; ++step) {
    auto delta = incremental::random_mutation(inst, rng);
    if (step % 3 == 2) {
      // Every third step stacks a second mutation before re-stabilizing, so
      // the merged-delta path (earliest-old-row-wins) is exercised too.
      delta.merge(incremental::random_mutation(inst, rng));
    }

    // Stale-cache guard: the cache is still bound to the pre-delta
    // generation, so a cached solve must throw instead of serving memoized
    // results for rewritten rows.
    {
      bool threw = false;
      try {
        (void)core::iterative_binding(inst, path, cached_opts);
      } catch (const std::logic_error&) {
        threw = true;
      }
      rec.check(threw, "churn.cache.stale-guard",
                "generation-bound cache served a mutated instance without "
                "throwing");
    }

    // Cold reference: full re-solve of the mutated instance, no cache.
    const auto cold = core::iterative_binding(inst, path);
    const std::size_t ready_before = cache.size();
    const bool single_pair = !delta.shape_changed &&
                             delta.touched_pairs().size() == 1;

    {  // Cached warm rematch: the headline incremental path.
      incremental::RematchOptions ropts;
      ropts.cache = &cache;
      const auto warm = incremental::rematch(inst, path, previous, delta,
                                             ropts);
      compare_matching(cold, warm.result.matching(), "churn.rematch.bitwise",
                       "cached warm rematch");
      std::ostringstream es;
      bool edges_ok = warm.result.edge_results.size() ==
                      cold.edge_results.size();
      for (std::size_t e = 0; edges_ok && e < cold.edge_results.size(); ++e) {
        edges_ok = warm.result.edge_results[e].proposer_match ==
                       cold.edge_results[e].proposer_match &&
                   warm.result.edge_results[e].responder_match ==
                       cold.edge_results[e].responder_match;
        if (!edges_ok) es << "per-edge divergence at tree edge " << e;
      }
      rec.check(edges_ok, "churn.rematch.edges.bitwise", es.str());
      if (single_pair && k >= 3) {
        std::ostringstream os;
        os << "targeted invalidation dropped " << warm.slots_invalidated
           << " slots, clear() would have dropped " << ready_before;
        rec.check(warm.slots_invalidated < ready_before,
                  "churn.cache.invalidate.targeted", os.str());
        std::ostringstream ps;
        ps << "warm rematch executed " << warm.result.executed_proposals
           << " proposals, cold re-solve " << cold.total_proposals;
        rec.check(warm.result.executed_proposals < cold.total_proposals,
                  "churn.cache.executed.fewer", ps.str());
      }
    }

    {  // Pure-provider path (no cache): every engine's cold fallback must
       // not matter — reused + warm answers cover the whole tree.
      for (const auto engine : {core::GsEngine::queue, core::GsEngine::rounds,
                                core::GsEngine::prefetch}) {
        incremental::RematchOptions ropts;
        ropts.engine = engine;
        const auto warm = incremental::rematch(inst, path, previous, delta,
                                               ropts);
        std::ostringstream os;
        os << "provider rematch under engine " << core::to_string(engine);
        compare_matching(cold, warm.result.matching(),
                         "churn.rematch.engine.bitwise", os.str().c_str());
        std::ostringstream es;
        es << "edges reused " << warm.edges_reused << " + warm "
           << warm.edges_warm << " + cold " << warm.edges_cold
           << " != " << (k - 1) << " tree edges";
        rec.check(warm.edges_reused + warm.edges_warm + warm.edges_cold ==
                      static_cast<std::int64_t>(k) - 1,
                  "churn.rematch.edge-accounting", es.str());
      }
    }

    {  // Width twin: the relaid copy shares the generation, so the same
       // delta warm-restarts it — and must land on the same matching.
      const auto other = inst.rank_width() == prefs::RankWidth::narrow16
                             ? prefs::RankWidth::wide32
                             : prefs::RankWidth::narrow16;
      if (other != prefs::RankWidth::narrow16 || inst.per_gender() < 65536) {
        const auto twin = KPartiteInstance::relaid(inst, other);
        const auto warm = incremental::rematch(twin, path, previous, delta);
        compare_matching(cold, warm.result.matching(), "churn.width.bitwise",
                         "relaid-width warm rematch");
      }
    }

    {  // Ladder integration: warm_start threads through every rung.
      const incremental::DeltaWarmStart provider(previous, delta);
      resilience::FallbackOptions fopts;
      fopts.warm_start = &provider;
      const auto report = resilience::solve_with_fallback(inst, fopts);
      rec.check(report.succeeded, "churn.ladder.succeeded",
                "warm-started ladder failed on an unconstrained solve");
      if (report.succeeded) {
        compare_matching(cold, report.matching(), "churn.ladder.bitwise",
                         "warm-started ladder");
      }
    }

    previous = cold;  // the next step warm-starts from this solve
  }
}

/// Bipartite-only: Irving-based fair SMP against Gale-Shapley. man_oriented
/// rotation elimination is documented to equal men-proposing GS, and
/// woman_oriented women-proposing GS — a cross-algorithm agreement.
void fair_smp_checks(const KPartiteInstance& inst, const gs::GsResult& gs01,
                     const gs::GsResult& gs10, const Recorder& rec) {
  const auto men = rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::man_oriented);
  rec.check(men.has_stable, "smp.man_oriented.exists",
            "fair SMP (man_oriented) found no stable matching on a bipartite "
            "instance");
  if (men.has_stable) {
    rec.check(men.man_match == gs01.proposer_match, "smp.man_oriented.bitwise",
              "fair SMP man_oriented diverges from men-proposing GS: " +
                  describe_diff(gs01.proposer_match, men.man_match));
  }
  const auto women =
      rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::woman_oriented);
  rec.check(women.has_stable, "smp.woman_oriented.exists",
            "fair SMP (woman_oriented) found no stable matching on a "
            "bipartite instance");
  if (women.has_stable) {
    rec.check(
        women.woman_match == gs10.proposer_match, "smp.woman_oriented.bitwise",
        "fair SMP woman_oriented diverges from women-proposing GS: " +
            describe_diff(gs10.proposer_match, women.woman_match));
  }
}

/// Roommates derivations: each linearization of the k-partite instance is
/// solved twice (bitwise determinism) and its verdict is cross-checked
/// against BOTH stability checkers — the solver's own is_stable_matching and
/// the independent raw-list certificate.
void roommates_checks(const KPartiteInstance& inst, const Recorder& rec) {
  for (const auto lin :
       {rm::Linearization::round_robin, rm::Linearization::gender_blocks}) {
    const char* label = lin == rm::Linearization::round_robin
                            ? "round_robin"
                            : "gender_blocks";
    const auto rinst = rm::to_roommates(inst, lin);
    const auto first = rm::solve(rinst);
    const auto second = rm::solve(rinst);
    std::ostringstream os;
    os << "roommates solve under " << label
       << " is not deterministic: has_stable " << first.has_stable << " vs "
       << second.has_stable;
    rec.check(first.has_stable == second.has_stable &&
                  first.match == second.match &&
                  first.phase1_proposals == second.phase1_proposals,
              "roommates.determinism", os.str());
    if (first.has_stable) {
      rec.cert(check_roommates_certificate(rinst, first.match),
               "roommates.cert");
      rec.check(rm::is_stable_matching(rinst, first.match),
                "roommates.self-check",
                "rm::is_stable_matching rejects a matching the independent "
                "certificate accepts");
    }
  }
}

}  // namespace

const char* to_string(Sabotage sabotage) noexcept {
  switch (sabotage) {
    case Sabotage::none: return "none";
    case Sabotage::gs_swap: return "gs_swap";
    case Sabotage::kary_swap: return "kary_swap";
  }
  return "unknown";
}

std::optional<Sabotage> parse_sabotage(std::string_view text) {
  if (text == "none") return Sabotage::none;
  if (text == "gs_swap") return Sabotage::gs_swap;
  if (text == "kary_swap") return Sabotage::kary_swap;
  return std::nullopt;
}

std::string Mismatch::to_json() const {
  std::ostringstream os;
  os << "{\"check\":\"" << json_escape(check) << "\",\"shape\":\""
     << verify::to_string(shape) << "\",\"dist\":\"" << verify::to_string(dist)
     << "\",\"seed\":" << seed << ",\"k\":" << k << ",\"n\":" << n
     << ",\"detail\":\"" << json_escape(detail) << "\"}";
  return os.str();
}

void sabotage_gs_result(gs::GsResult& result) {
  if (result.proposer_match.size() < 2) return;
  std::swap(result.proposer_match[0], result.proposer_match[1]);
  for (std::size_t r = 0; r < result.responder_match.size(); ++r) {
    if (result.responder_match[r] == 0) {
      result.responder_match[r] = 1;
    } else if (result.responder_match[r] == 1) {
      result.responder_match[r] = 0;
    }
  }
}

KaryMatching sabotage_kary(const KaryMatching& matching) {
  if (matching.per_gender() < 2) return matching;
  auto families = matching.raw();
  // Swap the gender-0 members of families 0 and 1: columns stay
  // permutations (the corruption survives KaryMatching's constructor), but
  // the family composition changes.
  std::swap(families[0], families[static_cast<std::size_t>(matching.genders())]);
  return KaryMatching(matching.genders(), matching.per_gender(),
                      std::move(families));
}

BatteryResult run_battery(const KPartiteInstance& inst, Shape shape,
                          const DiffOptions& options, Dist dist,
                          std::uint64_t seed) {
  BatteryResult result;
  const Recorder rec{&result, shape, dist, seed,
                     inst.genders(), inst.per_gender()};

  std::optional<gs::GsResult> gs01;
  std::optional<gs::GsResult> gs10;
  for (Gender i = 0; i < inst.genders(); ++i) {
    for (Gender j = 0; j < inst.genders(); ++j) {
      if (i == j) continue;
      auto reference = gs_engine_checks(inst, i, j, rec, options);
      if (i == 0 && j == 1) gs01 = std::move(reference);
      if (i == 1 && j == 0) gs10 = std::move(reference);
    }
  }

  layout_checks(inst, rec);
  implicit_checks(rec, options);
  binding_checks(inst, rec, options);
  if (options.churn_steps > 0) churn_checks(inst, rec, options);

  if (shape == Shape::bipartite && inst.genders() == 2) {
    fair_smp_checks(inst, *gs01, *gs10, rec);
  }
  if (shape == Shape::roommates) {
    roommates_checks(inst, rec);
  }
  return result;
}

BatteryResult run_battery(const GeneratedInstance& gen,
                          const DiffOptions& options) {
  return run_battery(gen.instance, gen.shape, options, gen.dist, gen.seed);
}

}  // namespace kstable::verify
