#include "verify/instance_gen.hpp"

#include "prefs/generators.hpp"
#include "util/check.hpp"

namespace kstable::verify {

const char* to_string(Shape shape) noexcept {
  switch (shape) {
    case Shape::bipartite: return "bipartite";
    case Shape::kpartite: return "kpartite";
    case Shape::roommates: return "roommates";
  }
  return "unknown";
}

const char* to_string(Dist dist) noexcept {
  switch (dist) {
    case Dist::uniform: return "uniform";
    case Dist::master: return "master";
    case Dist::skewed: return "skewed";
    case Dist::adversarial: return "adversarial";
    case Dist::mixed: return "mixed";
  }
  return "unknown";
}

std::optional<Shape> parse_shape(std::string_view text) {
  if (text == "bipartite") return Shape::bipartite;
  if (text == "kpartite") return Shape::kpartite;
  if (text == "roommates") return Shape::roommates;
  return std::nullopt;
}

std::optional<Dist> parse_dist(std::string_view text) {
  if (text == "uniform") return Dist::uniform;
  if (text == "master") return Dist::master;
  if (text == "skewed") return Dist::skewed;
  if (text == "adversarial") return Dist::adversarial;
  if (text == "mixed") return Dist::mixed;
  return std::nullopt;
}

GeneratedInstance generate(const GenOptions& options, std::uint64_t seed) {
  KSTABLE_REQUIRE(options.min_k >= 2 && options.min_k <= options.max_k,
                  "InstanceGen k bounds invalid: [" << options.min_k << ", "
                                                    << options.max_k << "]");
  KSTABLE_REQUIRE(options.min_n >= 1 && options.min_n <= options.max_n,
                  "InstanceGen n bounds invalid: [" << options.min_n << ", "
                                                    << options.max_n << "]");
  // Mix the seed with the shape so the three shape streams of one base seed
  // do not draw identical size/distribution sequences.
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL *
                             (static_cast<std::uint64_t>(options.shape) + 1));
  Rng rng(splitmix64(sm));

  const bool bip = options.shape == Shape::bipartite;
  const Gender k =
      bip ? 2
          : static_cast<Gender>(rng.range(std::max<Gender>(options.min_k, 3),
                                          options.max_k));
  const Index n =
      static_cast<Index>(rng.range(options.min_n, options.max_n));

  Dist dist = options.dist;
  if (dist == Dist::mixed) {
    switch (rng.below(4)) {
      case 0: dist = Dist::uniform; break;
      case 1: dist = Dist::master; break;
      case 2: dist = Dist::skewed; break;
      default: dist = Dist::adversarial; break;
    }
  }
  // The Theorem-1 construction needs k > 2; for bipartite draws degrade to
  // the most degenerate strict distribution instead (master lists are the
  // extremal bipartite case: a unique stable matching, n(n+1)/2 proposals).
  if (dist == Dist::adversarial && k <= 2) dist = Dist::master;

  auto build = [&]() -> KPartiteInstance {
    switch (dist) {
      case Dist::uniform: return gen::uniform(k, n, rng);
      case Dist::master: return gen::master_list(k, n, rng);
      case Dist::skewed: {
        const double noise = 0.05 + rng.uniform01() * 0.5;
        return gen::popularity(k, n, rng, noise);
      }
      case Dist::adversarial: {
        const auto pariah = static_cast<Gender>(rng.below(
            static_cast<std::uint64_t>(k)));
        return gen::theorem1_adversarial(k, n, rng, pariah);
      }
      case Dist::mixed: break;  // resolved above
    }
    return gen::uniform(k, n, rng);
  };

  return GeneratedInstance{build(), options.shape, dist, seed};
}

}  // namespace kstable::verify
