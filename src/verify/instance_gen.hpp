// InstanceGen: seeded instance generation for the differential verification
// harness (docs/VERIFY.md).
//
// Every seed deterministically draws one instance of a requested *shape*
// (which engine battery runs on it) and *distribution* (what the preference
// lists look like). The draw is a pure function of (options, seed), so a
// mismatch report containing the seed replays exactly — the same property
// the experiment generators already have, specialized to the small sizes the
// differential battery and the shrinker want (the O(n² · 2^k) independent
// certificate checker and the greedy delta-debugger both need room to stay
// cheap and to move DOWN).
//
// All generated instances are ties-free by construction (KPartiteInstance
// stores strict total orders). The adversarial distribution plants the
// Theorem 1 pariah/cycle neighborhoods (gen::theorem1_adversarial); skewed
// draws correlated popularity preferences — the regime where engines take
// their longest proposal chains.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "prefs/kpartite.hpp"
#include "util/rng.hpp"

namespace kstable::verify {

/// Which differential battery a generated instance runs through.
enum class Shape {
  bipartite,  ///< k = 2: GS engines + fair-SMP cross-checks + binding
  kpartite,   ///< k >= 3: full binding/sweep/cache/ladder battery
  roommates,  ///< linearized roommates derivations of a k-partite draw
};

/// Preference-list distribution knob.
enum class Dist {
  uniform,      ///< independent uniform permutations
  master,       ///< one shared order per (observer, target) gender pair
  skewed,       ///< popularity-correlated lists (score + personal noise)
  adversarial,  ///< Theorem-1 pariah/cycle neighborhoods (k >= 3)
  mixed,        ///< draw one of the above per seed
};

[[nodiscard]] const char* to_string(Shape shape) noexcept;
[[nodiscard]] const char* to_string(Dist dist) noexcept;
std::optional<Shape> parse_shape(std::string_view text);
std::optional<Dist> parse_dist(std::string_view text);

struct GenOptions {
  Shape shape = Shape::kpartite;
  Dist dist = Dist::mixed;
  /// Size bounds of the per-seed draw. Kept small on purpose: the
  /// certificate checker is exponential in k and the shrinker works best
  /// when the starting point is already modest. bipartite pins k = 2.
  Gender min_k = 3;
  Gender max_k = 5;
  Index min_n = 2;
  Index max_n = 8;
};

/// One drawn instance: the k-partite preference system every engine pair
/// runs on (the roommates battery derives its instances from it via the
/// adapter linearizations), plus the provenance a mismatch report needs.
struct GeneratedInstance {
  KPartiteInstance instance;
  Shape shape = Shape::kpartite;
  Dist dist = Dist::uniform;  ///< concrete distribution drawn (never mixed)
  std::uint64_t seed = 0;
};

/// Draws the instance for `seed` under `options`. Deterministic: equal
/// (options, seed) always yields an identical instance.
GeneratedInstance generate(const GenOptions& options, std::uint64_t seed);

}  // namespace kstable::verify
