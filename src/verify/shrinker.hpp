// Shrinker: greedy delta debugging for differential-harness failures
// (docs/VERIFY.md).
//
// Given a failing instance and a predicate "does this instance still fail?"
// (re-running the battery), the shrinker repeatedly applies the largest
// reduction that preserves the failure until none applies — a ddmin-style
// greedy descent specialized to KPartiteInstance's completeness invariant.
// Because instances are complete balanced k-partite systems, lists cannot be
// truncated; the reduction moves are instead:
//
//   1. remove_gender  — drop a whole gender (k -> k-1, floor k = 2), with
//                       every list over a later gender re-addressed;
//   2. remove_member  — drop index r from EVERY gender (n -> n-1), with
//                       surviving list entries > r shifted down;
//   3. canonicalize_list — replace one member's list over one gender with
//                       the identity order (the truncation analogue: a
//                       canonical list carries no information, so every list
//                       the minimal repro retains is load-bearing).
//
// Each move yields a VALID instance by construction, so the minimal repro is
// loadable by the ordinary IO layer (io::save_file / kmatch's loaders) and
// replays without the generator. Gender removal cannot preserve roommates- or
// bipartite-shape failures that depend on gender identities beyond the first
// two, but the predicate decides — moves that break the failure are simply
// not taken.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "prefs/kpartite.hpp"

namespace kstable::verify {

/// Re-executes the battery (or any other oracle) on a candidate reduction;
/// true = "still fails", i.e. the reduction is kept.
using FailurePredicate = std::function<bool(const KPartiteInstance&)>;

struct ShrinkResult {
  KPartiteInstance instance;       ///< 1-minimal w.r.t. the moves above
  std::int64_t candidates_tried = 0;  ///< predicate evaluations
  std::int64_t reductions = 0;        ///< moves that preserved the failure
};

/// Greedy descent to a fixpoint: genders first (the biggest cut), then
/// members, then list canonicalization. `still_fails(start)` must be true.
ShrinkResult shrink(const KPartiteInstance& start,
                    const FailurePredicate& still_fails);

/// --- Reduction moves (exposed for the property tests) ---------------------

/// Instance without gender `g`; nullopt when k would drop below 2.
std::optional<KPartiteInstance> remove_gender(const KPartiteInstance& inst,
                                              Gender g);

/// Instance without member index `r` of every gender; nullopt when n would
/// drop below 1.
std::optional<KPartiteInstance> remove_member(const KPartiteInstance& inst,
                                              Index r);

/// Copy with m's list over gender `g` replaced by the identity order, or
/// nullopt if it already is the identity.
std::optional<KPartiteInstance> canonicalize_list(const KPartiteInstance& inst,
                                                  MemberId m, Gender g);

}  // namespace kstable::verify
