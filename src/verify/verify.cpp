#include "verify/verify.hpp"

#include <memory>
#include <ostream>
#include <sstream>

#include "observability/metrics.hpp"
#include "observability/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/io.hpp"
#include "util/timer.hpp"
#include "verify/cert_checker.hpp"
#include "verify/shrinker.hpp"

namespace kstable::verify {
namespace {

/// How many mismatches the summary itself retains (the report stream and the
/// counters see every one).
constexpr std::size_t kSummaryMismatchCap = 32;

std::string repro_path(const VerifyOptions& options, Shape shape,
                       std::uint64_t seed) {
  std::ostringstream os;
  os << options.repro_dir << "/kverify_repro_" << to_string(shape) << '_'
     << seed << ".kp";
  return os.str();
}

}  // namespace

VerifySummary run_verification(const VerifyOptions& options) {
  WallTimer timer;
  VerifySummary summary;

  std::unique_ptr<ThreadPool> pool;
  if (options.pool_threads > 0) {
    pool = std::make_unique<ThreadPool>(options.pool_threads);
  }
  DiffOptions diff;
  diff.pool = pool.get();
  diff.sabotage = options.sabotage;
  diff.churn_steps = options.churn_steps;

  const auto& shapes = options.shapes;
  for (const Shape shape : shapes) {
    GenOptions gen = options.gen;
    gen.shape = shape;
    for (std::int64_t s = 0; s < options.seeds; ++s) {
      const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(s);
      const GeneratedInstance drawn = generate(gen, seed);
      const BatteryResult battery = run_battery(drawn, diff);

      ++summary.seeds_run;
      summary.checks += battery.checks;
      KSTABLE_COUNTER_ADD("verify.seeds", 1);
      if (battery.clean()) continue;

      summary.mismatch_count +=
          static_cast<std::int64_t>(battery.mismatches.size());
      KSTABLE_COUNTER_ADD(
          "verify.mismatches",
          static_cast<std::int64_t>(battery.mismatches.size()));
      for (const Mismatch& m : battery.mismatches) {
        if (options.report != nullptr) {
          *options.report << m.to_json() << '\n';
        }
        if (summary.mismatches.size() < kSummaryMismatchCap) {
          summary.mismatches.push_back(m);
        }
      }

      if (static_cast<std::int64_t>(summary.repro_paths.size()) <
          options.max_repros) {
        // Delta-debug this seed down to a minimal instance that still
        // diverges, and persist it in the ordinary loadable format.
        const auto minimal = shrink(
            drawn.instance, [&](const KPartiteInstance& candidate) {
              return !run_battery(candidate, shape, diff, drawn.dist, seed)
                          .clean();
            });
        const std::string path = repro_path(options, shape, seed);
        io::save_file(minimal.instance, path);
        KSTABLE_COUNTER_ADD("verify.repros", 1);
        summary.repro_paths.push_back(path);
        if (options.report != nullptr) {
          *options.report << "{\"repro\":\"" << path << "\",\"seed\":" << seed
                          << ",\"shape\":\"" << to_string(shape)
                          << "\",\"k\":" << minimal.instance.genders()
                          << ",\"n\":" << minimal.instance.per_gender()
                          << ",\"reductions\":" << minimal.reductions << "}\n";
        }
      }
    }
  }

  summary.wall_ms = timer.millis();

  obs::SolveTelemetry& telemetry = summary.telemetry;
  telemetry.engine = "verify";
  telemetry.genders = 0;
  telemetry.size = static_cast<std::int32_t>(summary.seeds_run);
  telemetry.wall_ms = summary.wall_ms;
  telemetry.attempts = summary.checks;
  if (!summary.clean()) {
    // A failed sweep is data, not an abort: report it through the outcome
    // channel the exporters already understand (anything but "ok").
    telemetry.status.outcome = resilience::SolveOutcome::no_stable;
    std::ostringstream os;
    os << summary.mismatch_count << " differential mismatches";
    telemetry.status.detail = os.str();
  }
  obs::record(telemetry);
  return summary;
}

}  // namespace kstable::verify
