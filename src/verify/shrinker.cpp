#include "verify/shrinker.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace kstable::verify {
namespace {

/// Copies every list of `src` into `dst` through the index maps:
/// keep_gender[g] = new gender id (or -1 to drop), keep_index[i] = new member
/// index (or -1 to drop). Dropped entries vanish from the surviving lists,
/// preserving each list's relative order.
KPartiteInstance rebuild(const KPartiteInstance& src,
                         const std::vector<Gender>& keep_gender,
                         const std::vector<Index>& keep_index, Gender new_k,
                         Index new_n) {
  KPartiteInstance out(new_k, new_n);
  std::vector<Index> list;
  list.reserve(static_cast<std::size_t>(new_n));
  for (Gender g = 0; g < src.genders(); ++g) {
    if (keep_gender[static_cast<std::size_t>(g)] < 0) continue;
    for (Index i = 0; i < src.per_gender(); ++i) {
      if (keep_index[static_cast<std::size_t>(i)] < 0) continue;
      const MemberId m{g, i};
      const MemberId new_m{keep_gender[static_cast<std::size_t>(g)],
                           keep_index[static_cast<std::size_t>(i)]};
      for (Gender h = 0; h < src.genders(); ++h) {
        if (h == g || keep_gender[static_cast<std::size_t>(h)] < 0) continue;
        list.clear();
        for (const Index choice : src.pref_list(m, h)) {
          const Index mapped = keep_index[static_cast<std::size_t>(choice)];
          if (mapped >= 0) list.push_back(mapped);
        }
        out.set_pref_list(new_m, keep_gender[static_cast<std::size_t>(h)],
                          list);
      }
    }
  }
  return out;
}

std::vector<Index> identity_index_map(Index n) {
  std::vector<Index> map(static_cast<std::size_t>(n));
  std::iota(map.begin(), map.end(), Index{0});
  return map;
}

}  // namespace

std::optional<KPartiteInstance> remove_gender(const KPartiteInstance& inst,
                                              Gender g) {
  if (inst.genders() <= 2) return std::nullopt;
  KSTABLE_REQUIRE(g >= 0 && g < inst.genders(),
                  "remove_gender: gender " << g << " out of range");
  std::vector<Gender> keep_gender(static_cast<std::size_t>(inst.genders()));
  Gender next = 0;
  for (Gender h = 0; h < inst.genders(); ++h) {
    keep_gender[static_cast<std::size_t>(h)] = h == g ? Gender{-1} : next++;
  }
  return rebuild(inst, keep_gender, identity_index_map(inst.per_gender()),
                 inst.genders() - 1, inst.per_gender());
}

std::optional<KPartiteInstance> remove_member(const KPartiteInstance& inst,
                                              Index r) {
  if (inst.per_gender() <= 1) return std::nullopt;
  KSTABLE_REQUIRE(r >= 0 && r < inst.per_gender(),
                  "remove_member: index " << r << " out of range");
  std::vector<Gender> keep_gender(static_cast<std::size_t>(inst.genders()));
  std::iota(keep_gender.begin(), keep_gender.end(), Gender{0});
  std::vector<Index> keep_index(static_cast<std::size_t>(inst.per_gender()));
  Index next = 0;
  for (Index i = 0; i < inst.per_gender(); ++i) {
    keep_index[static_cast<std::size_t>(i)] = i == r ? Index{-1} : next++;
  }
  return rebuild(inst, keep_gender, keep_index, inst.genders(),
                 inst.per_gender() - 1);
}

std::optional<KPartiteInstance> canonicalize_list(const KPartiteInstance& inst,
                                                  MemberId m, Gender g) {
  const auto identity = identity_index_map(inst.per_gender());
  const auto current = inst.pref_list(m, g);
  if (std::equal(identity.begin(), identity.end(), current.begin(),
                 current.end())) {
    return std::nullopt;
  }
  KPartiteInstance out = inst;
  out.set_pref_list(m, g, identity);
  return out;
}

ShrinkResult shrink(const KPartiteInstance& start,
                    const FailurePredicate& still_fails) {
  KSTABLE_REQUIRE(still_fails(start),
                  "shrink: the starting instance does not fail the predicate");
  ShrinkResult result{start, 0, 0};

  // Attempts one move; keeps it (and reports true) iff the failure survives.
  auto attempt = [&](std::optional<KPartiteInstance> candidate) {
    if (!candidate.has_value()) return false;
    ++result.candidates_tried;
    if (!still_fails(*candidate)) return false;
    result.instance = std::move(*candidate);
    ++result.reductions;
    return true;
  };

  bool reduced = true;
  while (reduced) {
    reduced = false;
    // Biggest cuts first: whole genders, then whole member indices. Restart
    // the scan after every success — indices shift under the survivor.
    for (Gender g = 0; g < result.instance.genders(); ++g) {
      if (attempt(remove_gender(result.instance, g))) {
        reduced = true;
        g = -1;  // restart over the reduced instance
      }
    }
    for (Index r = 0; r < result.instance.per_gender(); ++r) {
      if (attempt(remove_member(result.instance, r))) {
        reduced = true;
        r = -1;
      }
    }
    // List canonicalization last: it never changes the shape, so a single
    // pass per round suffices (a canonicalized list stays canonical).
    for (Gender g = 0; g < result.instance.genders(); ++g) {
      for (Index i = 0; i < result.instance.per_gender(); ++i) {
        for (Gender h = 0; h < result.instance.genders(); ++h) {
          if (h == g) continue;
          reduced |= attempt(
              canonicalize_list(result.instance, MemberId{g, i}, h));
        }
      }
    }
  }
  return result;
}

}  // namespace kstable::verify
