#include "verify/cert_checker.hpp"

#include <cstdint>
#include <sstream>

namespace kstable::verify {
namespace {

/// Formats a failure via an ostringstream expression.
#define VERIFY_FAIL(expr)                    \
  do {                                       \
    std::ostringstream os_;                  \
    os_ << expr; /* NOLINT */                \
    return CertFailure{os_.str()};           \
  } while (false)

/// True iff `values` is a permutation of [0, n).
bool is_permutation_of_n(const std::vector<Index>& values, Index n) {
  if (values.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const Index v : values) {
    if (v < 0 || v >= n) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace

std::int32_t scan_rank(const KPartiteInstance& inst, MemberId m,
                       MemberId target) {
  // Walks the list entry by entry via pref_at, never rank_of: on the
  // implicit backend this exercises the forward generator only, keeping the
  // certificate independent of the inverse path it is checking.
  const Index n = inst.per_gender();
  for (Index r = 0; r < n; ++r) {
    if (inst.pref_at(m, target.gender, r) == target.index) {
      return static_cast<std::int32_t>(r);
    }
  }
  return n;  // absent: malformed list, treated as worst
}

std::optional<CertFailure> check_gs_certificate(const KPartiteInstance& inst,
                                                Gender proposer,
                                                Gender responder,
                                                const gs::GsResult& result) {
  const Index n = inst.per_gender();
  if (!is_permutation_of_n(result.proposer_match, n)) {
    VERIFY_FAIL("GS(" << proposer << "," << responder
                      << "): proposer_match is not a permutation of [0, " << n
                      << ")");
  }
  if (!is_permutation_of_n(result.responder_match, n)) {
    VERIFY_FAIL("GS(" << proposer << "," << responder
                      << "): responder_match is not a permutation of [0, " << n
                      << ")");
  }
  for (Index p = 0; p < n; ++p) {
    const Index r = result.proposer_match[static_cast<std::size_t>(p)];
    if (result.responder_match[static_cast<std::size_t>(r)] != p) {
      VERIFY_FAIL("GS(" << proposer << "," << responder
                        << "): match arrays are not mutual inverses at "
                           "proposer "
                        << p << " -> responder " << r << " -> proposer "
                        << result.responder_match[static_cast<std::size_t>(r)]);
    }
  }
  // Theorem 3's per-binding unit: a perfect matching needs at least one
  // proposal per proposer, and no proposer ever proposes to the same
  // responder twice, so proposals lie in [n, n²].
  const auto n64 = static_cast<std::int64_t>(n);
  if (result.proposals < n64 || result.proposals > n64 * n64) {
    VERIFY_FAIL("GS(" << proposer << "," << responder << "): proposal count "
                      << result.proposals << " outside [" << n64 << ", "
                      << n64 * n64 << "]");
  }
  // Blocking pair sweep against the RAW lists: (p, r) blocks when p strictly
  // prefers r to its assigned responder AND r strictly prefers p to its
  // assigned proposer.
  for (Index p = 0; p < n; ++p) {
    const MemberId mp{proposer, p};
    const Index pr = result.proposer_match[static_cast<std::size_t>(p)];
    const std::int32_t p_current = scan_rank(inst, mp, MemberId{responder, pr});
    for (Index r = 0; r < n; ++r) {
      if (r == pr) continue;
      if (scan_rank(inst, mp, MemberId{responder, r}) >= p_current) continue;
      const MemberId mr{responder, r};
      const Index rp = result.responder_match[static_cast<std::size_t>(r)];
      if (scan_rank(inst, mr, MemberId{proposer, p}) <
          scan_rank(inst, mr, MemberId{proposer, rp})) {
        VERIFY_FAIL("GS(" << proposer << "," << responder
                          << "): blocking pair (proposer " << p
                          << ", responder " << r << ") — both prefer each "
                          << "other to their assigned partners");
      }
    }
  }
  return std::nullopt;
}

std::optional<CertFailure> check_kary_certificate(
    const KPartiteInstance& inst, const KaryMatching& matching,
    const BindingStructure& bound) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  if (matching.genders() != k || matching.per_gender() != n) {
    VERIFY_FAIL("k-ary matching shape (" << matching.genders() << ", "
                                         << matching.per_gender()
                                         << ") does not match instance (" << k
                                         << ", " << n << ")");
  }
  // Structural perfection: each gender's column is a permutation of [0, n).
  for (Gender g = 0; g < k; ++g) {
    std::vector<Index> column;
    column.reserve(static_cast<std::size_t>(n));
    for (Index t = 0; t < n; ++t) {
      column.push_back(matching.member_at(t, g).index);
    }
    if (!is_permutation_of_n(column, n)) {
      VERIFY_FAIL("k-ary matching: gender " << g
                                            << " column is not a permutation "
                                               "— some member is missing or "
                                               "duplicated across families");
    }
  }
  // Per-bound-edge projection stability: for every binding edge (a, b) the
  // induced binary matching between genders a and b must have no blocking
  // pair. This is exactly the certificate the Theorem 2 construction
  // provides (each edge's pairs came from a stable GS run).
  for (const auto& edge : bound.edges()) {
    for (Index s = 0; s < n; ++s) {
      const MemberId ma = matching.member_at(s, edge.a);
      const MemberId partner_a = matching.member_at(s, edge.b);
      const std::int32_t current_a = scan_rank(inst, ma, partner_a);
      for (Index t = 0; t < n; ++t) {
        if (t == s) continue;
        const MemberId mb = matching.member_at(t, edge.b);
        if (scan_rank(inst, ma, mb) >= current_a) continue;
        const MemberId partner_b = matching.member_at(t, edge.a);
        if (scan_rank(inst, mb, ma) < scan_rank(inst, mb, partner_b)) {
          VERIFY_FAIL("k-ary matching: bound pair ("
                      << edge.a << "," << edge.b << ") has blocking pair "
                      << ma << " / " << mb << " across families " << s
                      << " and " << t);
        }
      }
    }
  }
  // Two-family blocking-coalition screen (§IV.A, k' = 2, strict mode): a
  // candidate tuple takes gender-g members from family s where the subset
  // mask selects s, else from family t; it blocks when EVERY member strictly
  // prefers EVERY cross-group member to the corresponding-gender member of
  // its own current family. Sound but (for k >= 3) incomplete — a hit is
  // always a genuine instability witness.
  if (k <= 16) {  // mask arithmetic guard; harness sizes are far below this
    const std::uint32_t full = (1u << k) - 2u;  // proper non-empty subsets
    std::vector<MemberId> tuple(static_cast<std::size_t>(k));
    for (Index s = 0; s < n; ++s) {
      for (Index t = 0; t < n; ++t) {
        if (t == s) continue;
        for (std::uint32_t mask = 1; mask <= full; ++mask) {
          bool blocks = true;
          for (Gender g = 0; g < k && blocks; ++g) {
            tuple[static_cast<std::size_t>(g)] =
                matching.member_at((mask >> g) & 1u ? s : t, g);
          }
          for (Gender g = 0; g < k && blocks; ++g) {
            const MemberId m = tuple[static_cast<std::size_t>(g)];
            const Index own_family = (mask >> g) & 1u ? s : t;
            for (Gender h = 0; h < k && blocks; ++h) {
              if (h == g) continue;
              const bool cross = (((mask >> h) & 1u) != ((mask >> g) & 1u));
              if (!cross) continue;  // same group: no constraint
              const MemberId candidate = tuple[static_cast<std::size_t>(h)];
              const MemberId current = matching.member_at(own_family, h);
              if (scan_rank(inst, m, candidate) >=
                  scan_rank(inst, m, current)) {
                blocks = false;
              }
            }
          }
          if (blocks) {
            std::ostringstream members;
            for (const MemberId m : tuple) members << ' ' << m;
            VERIFY_FAIL("k-ary matching: two-family blocking coalition from "
                        "families "
                        << s << "/" << t << " (mask " << mask
                        << "): members" << members.str());
          }
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<CertFailure> check_roommates_certificate(
    const rm::RoommatesInstance& inst, const std::vector<rm::Person>& match) {
  const rm::Person count = inst.size();
  if (match.size() != static_cast<std::size_t>(count)) {
    VERIFY_FAIL("roommates matching covers " << match.size() << " of "
                                             << count << " persons");
  }
  // Scan-based rank within p's raw list; list length if absent.
  auto list_rank = [&](rm::Person p, rm::Person q) -> std::size_t {
    const auto& list = inst.list(p);
    for (std::size_t r = 0; r < list.size(); ++r) {
      if (list[r] == q) return r;
    }
    return list.size();
  };
  for (rm::Person p = 0; p < count; ++p) {
    const rm::Person q = match[static_cast<std::size_t>(p)];
    if (q < 0 || q >= count) {
      VERIFY_FAIL("roommates matching: person " << p
                                                << " has out-of-range partner "
                                                << q);
    }
    if (q == p) VERIFY_FAIL("roommates matching: person " << p << " matched to itself");
    if (match[static_cast<std::size_t>(q)] != p) {
      VERIFY_FAIL("roommates matching: not an involution at " << p << " -> "
                                                              << q << " -> "
                  << match[static_cast<std::size_t>(q)]);
    }
    if (list_rank(p, q) == inst.list(p).size()) {
      VERIFY_FAIL("roommates matching: partner " << q
                                                 << " absent from person " << p
                                                 << "'s list");
    }
  }
  for (rm::Person p = 0; p < count; ++p) {
    const std::size_t current_p = list_rank(p, match[static_cast<std::size_t>(p)]);
    for (const rm::Person q : inst.list(p)) {
      if (q == match[static_cast<std::size_t>(p)]) continue;
      if (list_rank(p, q) >= current_p) continue;
      if (list_rank(q, p) <
          list_rank(q, match[static_cast<std::size_t>(q)])) {
        VERIFY_FAIL("roommates matching: blocking pair (" << p << ", " << q
                                                          << ")");
      }
    }
  }
  return std::nullopt;
}

#undef VERIFY_FAIL

}  // namespace kstable::verify
