// run_verification: the top-level driver behind `kmatch verify`
// (docs/VERIFY.md).
//
// Seeds [base_seed, base_seed + seeds) are drawn per requested shape
// (InstanceGen), pushed through the differential battery (DiffRunner), and
// every mismatch is emitted as a single-line JSON record to the report
// stream. The first `max_repros` mismatching instances are additionally
// delta-debugged (Shrinker) and the minimal repros written to repro_dir in
// the ordinary instance format, so a red CI run hands the developer a file
// that replays with `kmatch <cmd> --load=<repro>` instead of a seed hunt.
//
// Work and outcomes flow through the observability substrate: one
// SolveTelemetry record per run_verification call (engine "verify") plus the
// verify.* counters, so `kmatch verify --stats-json` reports the sweep the
// same way the solvers report theirs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "observability/telemetry.hpp"
#include "verify/diff_runner.hpp"
#include "verify/instance_gen.hpp"

namespace kstable::verify {

struct VerifyOptions {
  /// Shapes to sweep; empty = all three.
  std::vector<Shape> shapes{Shape::bipartite, Shape::kpartite,
                            Shape::roommates};
  std::int64_t seeds = 100;       ///< seeds per shape
  std::uint64_t base_seed = 1;    ///< first seed of the sweep
  GenOptions gen;                 ///< size/distribution knobs (shape is
                                  ///< overridden per sweep entry)
  Sabotage sabotage = Sabotage::none;  ///< self-test corruption
  /// Workers for the parallel-GS leg; 0 = skip that comparison.
  std::size_t pool_threads = 0;
  /// Preference-churn steps per instance (DiffOptions::churn_steps): each
  /// step mutates the instance and asserts the incremental rematch pipeline
  /// agrees with a cold solve bitwise. 0 = skip the churn legs.
  std::int32_t churn_steps = 0;
  /// Shrink and save at most this many mismatching instances (0 = never).
  std::int64_t max_repros = 1;
  std::string repro_dir = ".";
  /// Mismatch JSON lines are written here when non-null (one per mismatch).
  std::ostream* report = nullptr;
};

struct VerifySummary {
  std::int64_t seeds_run = 0;        ///< instances swept (shapes × seeds)
  std::int64_t checks = 0;           ///< agreement relations evaluated
  std::int64_t mismatch_count = 0;
  /// First few mismatches, for direct inspection (capped; the report stream
  /// gets all of them).
  std::vector<Mismatch> mismatches;
  /// Minimal repro files written (aligned with the first mismatching seeds).
  std::vector<std::string> repro_paths;
  double wall_ms = 0.0;
  /// The sweep's engine="verify" record (already folded into the registry).
  obs::SolveTelemetry telemetry;

  [[nodiscard]] bool clean() const noexcept { return mismatch_count == 0; }
};

/// Runs the sweep. Throws only on environmental failure (unwritable repro
/// dir); detected divergence is DATA, returned in the summary.
VerifySummary run_verification(const VerifyOptions& options = {});

}  // namespace kstable::verify
