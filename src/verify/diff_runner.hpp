// DiffRunner: the differential battery of the verification harness
// (docs/VERIFY.md).
//
// One generated instance is pushed through every engine pair that promises an
// agreement relation, and the relations are asserted:
//
//   bitwise agreement (GS is confluent; the caches and the ladder are
//   documented as semantically invisible):
//     * gs queue vs rounds vs scan vs parallel — identical match arrays AND
//       identical proposal counts for every ordered gender pair;
//     * iterative_binding vs sweep_trees on the same (path) tree;
//     * binding with no cache vs GsEdgeCache single_flight vs duplicate,
//       including a second cached pass (all hits) — replay must equal compute;
//     * direct path-tree binding vs solve_with_fallback (attempt 0 is always
//       the path tree, so an unconstrained ladder must reproduce it exactly);
//     * fair SMP man_oriented vs men-proposing GS and woman_oriented vs
//       women-proposing GS (bipartite only — a cross-ALGORITHM check: Irving
//       phase-1+rotations against Gale-Shapley);
//     * double-solving a roommates linearization (determinism).
//
//   certificate agreement (cert_checker.hpp, the independent raw-list
//   checkers) where bitwise identity is not promised:
//     * every GS result, k-ary matching, and roommates matching produced
//       above must carry a valid stability certificate;
//     * rm::solve's own has_stable verdict must agree with the independent
//       roommates checker.
//
//   abort-path invariants (ExecutionAborted must leave no partial matching
//   claimed stable):
//     * a binding run under half its own proposal budget must throw, and the
//       control must STILL report exhaustion from check_now() afterwards
//       (the resilience PR's check_now bug class);
//     * a strict-only one-attempt ladder under a 1-proposal budget must
//       report !succeeded with result unset.
//
// Sabotage: the harness can deliberately corrupt one engine's output before
// comparison (see Sabotage) to prove end to end that the battery detects a
// re-introduced bug and the shrinker minimizes it — the self-test the
// acceptance criteria demand. Sabotage only ever mutates local copies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gs/gale_shapley.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/matching.hpp"
#include "verify/instance_gen.hpp"

namespace kstable::verify {

/// Deliberate corruption injected between solve and comparison, for harness
/// self-tests. Never mutates shared state — only this battery's local copies.
enum class Sabotage {
  none,
  gs_swap,    ///< swap two proposers' partners in the scan engine's GS(0,1)
  kary_swap,  ///< swap two families' gender-0 members in the sweep matching
};

[[nodiscard]] const char* to_string(Sabotage sabotage) noexcept;
std::optional<Sabotage> parse_sabotage(std::string_view text);

struct DiffOptions {
  /// Workers for the parallel GS engine leg; nullptr skips that comparison
  /// (the sequential battery is pool-free so ASan/CI sweeps stay cheap).
  ThreadPool* pool = nullptr;
  Sabotage sabotage = Sabotage::none;
  /// Incremental re-stabilization legs (src/incremental/): apply this many
  /// seeded random preference mutations to a copy of the instance and, after
  /// every step, assert that rematch() — warm restart + targeted cache
  /// invalidation — reproduces a cold solve of the mutated instance bitwise,
  /// that a stale generation-bound cache refuses to serve, and that the
  /// warm path provably does less work (fewer slots reset than clear(),
  /// fewer proposals executed than cold, on single-pair deltas at k >= 3).
  /// 0 skips the churn legs.
  std::int32_t churn_steps = 0;
};

/// One violated agreement relation, with replay provenance.
struct Mismatch {
  std::string check;   ///< relation id, e.g. "gs.engine.scan.bitwise"
  std::string detail;  ///< human-readable witness
  Shape shape = Shape::kpartite;
  Dist dist = Dist::uniform;
  std::uint64_t seed = 0;
  Gender k = 0;
  Index n = 0;

  /// Single-line JSON object for the mismatch report stream.
  [[nodiscard]] std::string to_json() const;
};

struct BatteryResult {
  std::vector<Mismatch> mismatches;
  std::int64_t checks = 0;  ///< agreement relations evaluated

  [[nodiscard]] bool clean() const noexcept { return mismatches.empty(); }
};

/// Runs the full battery for the instance's shape. The second overload is the
/// shrinker's re-execution hook: same battery, caller-supplied provenance.
BatteryResult run_battery(const GeneratedInstance& gen,
                          const DiffOptions& options = {});
BatteryResult run_battery(const KPartiteInstance& inst, Shape shape,
                          const DiffOptions& options = {},
                          Dist dist = Dist::uniform, std::uint64_t seed = 0);

/// Sabotage primitives, exposed so tests can aim them at the checkers
/// directly. Both require n >= 2 (no-ops below that).
void sabotage_gs_result(gs::GsResult& result);
[[nodiscard]] KaryMatching sabotage_kary(const KaryMatching& matching);

}  // namespace kstable::verify
