// CertChecker: an independent stability-certificate checker for the
// differential harness (docs/VERIFY.md).
//
// Deliberately re-derived rather than reused: analysis::stability and the
// engines' self-checks all consult KPartiteInstance's precomputed rank table
// (rank_row / rank_of / prefers), so a bug in the flat-storage rank
// construction would make checker and checked agree on a wrong answer. Every
// comparison here instead LINEARLY SCANS the raw preference lists
// (pref_list spans for k-partite instances, RoommatesInstance::list for
// roommates), sharing no derived state with the code under test. Costs are
// polynomial at harness sizes: O(n² · n) per blocking-pair sweep (the extra
// n is the scan) and O(n² · 2^k · k² · n) for the two-family coalition
// screen — fine for the n <= 8, k <= 5 instances InstanceGen draws.
//
// What "certificate" means per output kind:
//   * GsResult          — a perfect binary matching of genders (i, j) with
//                         mutually-inverse match arrays, a proposal count
//                         inside [n, n²], and NO blocking pair.
//   * KaryMatching      — structurally a perfect k-ary matching (each
//                         gender's column a permutation); for every BOUND
//                         gender pair of the binding structure the induced
//                         binary matching has no blocking pair (exactly the
//                         certificate Theorem 2's construction provides);
//                         and no two-family blocking coalition exists (the
//                         polynomial k' = 2 screen of §IV.A, re-derived).
//   * roommates match   — a fixed-point-free involution on mutually
//                         acceptable pairs with no blocking pair.
//
// An abort must leave NO certificate: the harness asserts that any solve
// ending in ExecutionAborted produced no matching claimed stable — the
// checkers here are what "claimed stable" is measured against.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/binding_structure.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"
#include "roommates/instance.hpp"

namespace kstable::verify {

/// A violated invariant, with a human-readable witness description.
struct CertFailure {
  std::string what;
};

/// Rank of `target` in m's preference list over target.gender, computed by a
/// linear scan of the raw list (independent of the precomputed rank table).
/// Returns n if absent (malformed list — callers treat that as worst).
[[nodiscard]] std::int32_t scan_rank(const KPartiteInstance& inst, MemberId m,
                                     MemberId target);

/// Validates a binary GS certificate for GS(proposer gender i -> responder
/// gender j). Returns the first violated invariant, or nullopt if `result`
/// is a well-formed stable matching of (i, j).
std::optional<CertFailure> check_gs_certificate(const KPartiteInstance& inst,
                                                Gender proposer,
                                                Gender responder,
                                                const gs::GsResult& result);

/// Validates a k-ary matching certificate produced by binding along
/// `bound`'s edges: structural perfection, per-bound-edge projection
/// stability, and the two-family blocking-coalition screen.
std::optional<CertFailure> check_kary_certificate(
    const KPartiteInstance& inst, const KaryMatching& matching,
    const BindingStructure& bound);

/// Validates a perfect roommates matching: involution, no fixed points,
/// mutual acceptability, no blocking pair. `match[p]` = partner of p.
std::optional<CertFailure> check_roommates_certificate(
    const rm::RoommatesInstance& inst, const std::vector<rm::Person>& match);

}  // namespace kstable::verify
