// Happiness / fairness metrics (paper §II.A: "the GS algorithm still favors
// men over women in terms of preferential happiness").
//
// Ranks are 0-based (0 = most preferred), so lower cost = happier. The E1/E3
// experiments report these for GS vs. the roommates-based fair SMP solver;
// the E4/E8 experiments report family costs of k-ary matchings across
// binding-tree shapes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/binding_structure.hpp"
#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"

namespace kstable::analysis {

/// Cost summary of a bipartite matching between two genders.
struct BipartiteCosts {
  std::int64_t proposer_cost = 0;  ///< sum of proposer-side partner ranks
  std::int64_t responder_cost = 0; ///< sum of responder-side partner ranks
  std::int32_t proposer_regret = 0;  ///< max proposer-side partner rank
  std::int32_t responder_regret = 0; ///< max responder-side partner rank

  [[nodiscard]] std::int64_t egalitarian() const {
    return proposer_cost + responder_cost;
  }
  /// The paper's unfairness signal: cost asymmetry between the sides.
  [[nodiscard]] std::int64_t sex_equality() const {
    const std::int64_t d = proposer_cost - responder_cost;
    return d < 0 ? -d : d;
  }
};

/// Costs of matching genders (a, b) of `inst`, where match_a[i] = partner
/// index in gender b of member (a, i).
BipartiteCosts bipartite_costs(const KPartiteInstance& inst, Gender a, Gender b,
                               const std::vector<Index>& match_a);

/// Cost summary of a k-ary matching.
struct KaryCosts {
  /// Sum over all members of the ranks of every cross-gender family member.
  std::int64_t total_cost = 0;
  /// per_gender_cost[g] = cost borne by gender g's members.
  std::vector<std::int64_t> per_gender_cost;
  /// Max rank any member assigns to any of its family members.
  std::int32_t regret = 0;
};

/// All-pairs family cost: every member evaluates all k-1 family co-members.
KaryCosts kary_costs(const KPartiteInstance& inst, const KaryMatching& m);

/// Tree-restricted family cost: only the pairs bound by `tree`'s edges are
/// charged (both directions). Isolates the cost the binding process actually
/// optimized from the cost of the transitively joined pairs.
KaryCosts kary_tree_costs(const KPartiteInstance& inst, const KaryMatching& m,
                          const BindingStructure& tree);

}  // namespace kstable::analysis
