// Quorum-based blocking families — the paper's §VII future-work direction
// ("One possibility is to explore quorum-based approaches to relax unstable
// conditions used in the extended stable matching"), formalized here.
//
// A member of a candidate new family *agrees* when it strictly prefers every
// member of the new family from other same-family groups to the
// corresponding-gender member of its current family (exactly the per-member
// condition of the strict model). Under quorum q ∈ (0, 1], the family blocks
// iff, in EVERY same-family group S, at least ceil(q·|S|) members agree.
//
// The spectrum this interpolates:
//   q = 1                -> the strict §IV.A condition (all members agree);
//   q -> 0 (>= 1 member) -> "any representative per group", which is even
//                           weaker than §IV.D's lead-member condition (the
//                           lead is one specific member; here any one will do).
// Blocking is antitone in q, so the set of q-stable matchings grows with q —
// a property test and the E11 experiment pin this down.
#pragma once

#include <optional>
#include <vector>

#include "analysis/stability.hpp"

namespace kstable::analysis {

/// True iff the member of gender `g` in `members` agrees (prefers every
/// cross-group member of the tuple to its current same-gender counterpart).
bool member_agrees(const KPartiteInstance& inst, const KaryMatching& matching,
                   const std::vector<Index>& members, Gender g);

/// True iff `members` blocks `matching` under quorum `q` (see file comment).
/// Requires 0 < q <= 1. Tuples reproducing a single family never block.
bool tuple_blocks_quorum(const KPartiteInstance& inst,
                         const KaryMatching& matching,
                         const std::vector<Index>& members, double q);

/// Exhaustive search over all n^k tuples (small instances only). Returns the
/// first quorum-blocking witness, or nullopt if `matching` is q-stable.
std::optional<BlockingFamily> find_quorum_blocking_family(
    const KPartiteInstance& inst, const KaryMatching& matching, double q);

/// Randomized probe version for larger instances.
std::optional<BlockingFamily> find_quorum_blocking_family_sampled(
    const KPartiteInstance& inst, const KaryMatching& matching, double q,
    Rng& rng, std::int64_t samples);

/// Census: fraction of all k-ary matchings of `inst` that are q-stable, for
/// each quorum value in `quorums` (exhaustive; small instances only).
std::vector<std::int64_t> quorum_stable_census(
    const KPartiteInstance& inst, const std::vector<double>& quorums);

}  // namespace kstable::analysis
