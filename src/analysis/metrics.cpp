#include "analysis/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kstable::analysis {

BipartiteCosts bipartite_costs(const KPartiteInstance& inst, Gender a, Gender b,
                               const std::vector<Index>& match_a) {
  const Index n = inst.per_gender();
  KSTABLE_REQUIRE(match_a.size() == static_cast<std::size_t>(n),
                  "match array has " << match_a.size() << " entries for n="
                                     << n);
  BipartiteCosts costs;
  for (Index i = 0; i < n; ++i) {
    const Index j = match_a[static_cast<std::size_t>(i)];
    const std::int32_t ra = inst.rank_of({a, i}, {b, j});
    const std::int32_t rb = inst.rank_of({b, j}, {a, i});
    costs.proposer_cost += ra;
    costs.responder_cost += rb;
    costs.proposer_regret = std::max(costs.proposer_regret, ra);
    costs.responder_regret = std::max(costs.responder_regret, rb);
  }
  return costs;
}

KaryCosts kary_costs(const KPartiteInstance& inst, const KaryMatching& m) {
  const Gender k = inst.genders();
  KaryCosts costs;
  costs.per_gender_cost.assign(static_cast<std::size_t>(k), 0);
  for (Index t = 0; t < m.family_count(); ++t) {
    for (Gender g = 0; g < k; ++g) {
      const MemberId member = m.member_at(t, g);
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        const std::int32_t r = inst.rank_of(member, m.member_at(t, h));
        costs.per_gender_cost[static_cast<std::size_t>(g)] += r;
        costs.total_cost += r;
        costs.regret = std::max(costs.regret, r);
      }
    }
  }
  return costs;
}

KaryCosts kary_tree_costs(const KPartiteInstance& inst, const KaryMatching& m,
                          const BindingStructure& tree) {
  const Gender k = inst.genders();
  KSTABLE_REQUIRE(tree.genders() == k, "tree has " << tree.genders()
                      << " genders, instance has " << k);
  KaryCosts costs;
  costs.per_gender_cost.assign(static_cast<std::size_t>(k), 0);
  for (Index t = 0; t < m.family_count(); ++t) {
    for (const auto& e : tree.edges()) {
      const MemberId ma = m.member_at(t, e.a);
      const MemberId mb = m.member_at(t, e.b);
      const std::int32_t rab = inst.rank_of(ma, mb);
      const std::int32_t rba = inst.rank_of(mb, ma);
      costs.per_gender_cost[static_cast<std::size_t>(e.a)] += rab;
      costs.per_gender_cost[static_cast<std::size_t>(e.b)] += rba;
      costs.total_cost += rab + rba;
      costs.regret = std::max({costs.regret, rab, rba});
    }
  }
  return costs;
}

}  // namespace kstable::analysis
