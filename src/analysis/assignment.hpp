// Minimum-cost assignment (Hungarian algorithm) — the objective-based
// matching baseline from the paper's introduction ("in maximum-weighted
// bipartite matching [1], the objective is to maximize the total utility...
// In this paper, we focus on stable matching based on a notion of
// stability").
//
// E16 uses it to price stability: the rank-cost-optimal assignment between
// two genders is cheaper than any stable matching but generally admits
// blocking pairs; GS is stable but pays more total cost.
#pragma once

#include <cstdint>
#include <vector>

#include "prefs/kpartite.hpp"

namespace kstable::analysis {

/// Solves min-cost perfect assignment on an n x n cost matrix
/// (cost[r * n + c]); returns row -> column. O(n³).
std::vector<Index> min_cost_assignment(const std::vector<std::int64_t>& cost,
                                       Index n);

/// Rank-cost matrix between genders (a, b) of `inst`:
/// cost(i, j) = rank_a(i -> j) + rank_b(j -> i) (the egalitarian objective).
std::vector<std::int64_t> egalitarian_cost_matrix(const KPartiteInstance& inst,
                                                  Gender a, Gender b);

/// Convenience: the egalitarian-optimal (not necessarily stable) assignment
/// between genders (a, b). Returns match_a (a-index -> b-index).
std::vector<Index> egalitarian_assignment(const KPartiteInstance& inst,
                                          Gender a, Gender b);

/// Number of blocking pairs of `match_a` between genders (a, b) — the
/// instability an objective-based assignment accepts.
std::int64_t count_blocking_pairs(const KPartiteInstance& inst, Gender a,
                                  Gender b, const std::vector<Index>& match_a);

}  // namespace kstable::analysis
