#include "analysis/stability.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace kstable::analysis {

namespace {

/// Shared recursion state for the exact searches.
struct SearchState {
  const KPartiteInstance* inst;
  const KaryMatching* matching;
  BlockingMode mode;
  /// Genders in assignment order (decreasing priority for weakened mode).
  std::vector<Gender> order;
  /// chosen[d] = member index for gender order[d].
  std::vector<Index> chosen;
  /// family of chosen[d].
  std::vector<Index> family;
  /// lead[d] = true iff chosen[d] is the first member of its family in
  /// assignment order (weakened mode's lead member).
  std::vector<bool> lead;
};

/// Checks the pairwise conditions between the newly assigned depth `d` and
/// all earlier members. Returns false if the partial tuple cannot block.
bool pair_conditions_hold(const SearchState& s, std::size_t d) {
  const Gender gh = s.order[d];
  const MemberId uh{gh, s.chosen[d]};
  for (std::size_t e = 0; e < d; ++e) {
    if (s.family[e] == s.family[d]) continue;  // same-family group: no check
    const Gender gg = s.order[e];
    const MemberId ug{gg, s.chosen[e]};
    // u_g's view of gender gh: must prefer uh over its current gh member.
    if (s.mode == BlockingMode::strict || s.lead[e]) {
      const MemberId current = s.matching->member_at(s.family[e], gh);
      if (!s.inst->prefers(ug, uh, current)) return false;
    }
    // u_h's view of gender gg.
    if (s.mode == BlockingMode::strict || s.lead[d]) {
      const MemberId current = s.matching->member_at(s.family[d], gg);
      if (!s.inst->prefers(uh, ug, current)) return false;
    }
  }
  return true;
}

bool search(SearchState& s, std::size_t depth, BlockingFamily& out) {
  const Gender k = s.inst->genders();
  const Index n = s.inst->per_gender();
  if (depth == static_cast<std::size_t>(k)) {
    std::vector<Index> fams(s.family);
    std::sort(fams.begin(), fams.end());
    const auto distinct = static_cast<std::int32_t>(
        std::unique(fams.begin(), fams.end()) - fams.begin());
    if (distinct < 2) return false;  // reproduces an existing family
    out.members.assign(static_cast<std::size_t>(k), Index{-1});
    for (std::size_t d = 0; d < s.order.size(); ++d) {
      out.members[static_cast<std::size_t>(s.order[d])] = s.chosen[d];
    }
    out.source_families = distinct;
    return true;
  }
  for (Index idx = 0; idx < n; ++idx) {
    s.chosen[depth] = idx;
    const MemberId m{s.order[depth], idx};
    s.family[depth] = s.matching->family_of(m);
    bool is_lead = true;
    for (std::size_t e = 0; e < depth; ++e) {
      if (s.family[e] == s.family[depth]) {
        is_lead = false;
        break;
      }
    }
    s.lead[depth] = is_lead;
    if (!pair_conditions_hold(s, depth)) continue;
    if (search(s, depth + 1, out)) return true;
  }
  return false;
}

SearchState make_state(const KPartiteInstance& inst,
                       const KaryMatching& matching, BlockingMode mode,
                       const std::vector<std::int32_t>& priority) {
  KSTABLE_REQUIRE(matching.genders() == inst.genders() &&
                      matching.per_gender() == inst.per_gender(),
                  "matching is " << matching.genders() << "x"
                                 << matching.per_gender() << ", instance is "
                                 << inst.genders() << "x"
                                 << inst.per_gender());
  SearchState s;
  s.inst = &inst;
  s.matching = &matching;
  s.mode = mode;
  const Gender k = inst.genders();
  s.order.resize(static_cast<std::size_t>(k));
  std::iota(s.order.begin(), s.order.end(), Gender{0});
  if (mode == BlockingMode::weakened) {
    KSTABLE_REQUIRE(priority.size() == static_cast<std::size_t>(k),
                    "weakened mode needs a priority entry per gender");
    std::sort(s.order.begin(), s.order.end(), [&priority](Gender a, Gender b) {
      return priority[static_cast<std::size_t>(a)] >
             priority[static_cast<std::size_t>(b)];
    });
  }
  s.chosen.assign(static_cast<std::size_t>(k), Index{-1});
  s.family.assign(static_cast<std::size_t>(k), Index{-1});
  s.lead.assign(static_cast<std::size_t>(k), false);
  return s;
}

}  // namespace

std::optional<BlockingFamily> find_blocking_family(
    const KPartiteInstance& inst, const KaryMatching& matching) {
  SearchState s = make_state(inst, matching, BlockingMode::strict, {});
  BlockingFamily out;
  if (search(s, 0, out)) return out;
  return std::nullopt;
}

std::optional<BlockingFamily> find_weakened_blocking_family(
    const KPartiteInstance& inst, const KaryMatching& matching,
    const std::vector<std::int32_t>& priority) {
  SearchState s = make_state(inst, matching, BlockingMode::weakened, priority);
  BlockingFamily out;
  if (search(s, 0, out)) return out;
  return std::nullopt;
}

bool tuple_blocks(const KPartiteInstance& inst, const KaryMatching& matching,
                  const std::vector<Index>& members, BlockingMode mode,
                  const std::vector<std::int32_t>& priority) {
  const Gender k = inst.genders();
  KSTABLE_REQUIRE(members.size() == static_cast<std::size_t>(k),
                  "tuple has " << members.size() << " members, expected " << k);
  SearchState s = make_state(inst, matching, mode, priority);
  for (std::size_t d = 0; d < s.order.size(); ++d) {
    const Gender g = s.order[d];
    s.chosen[d] = members[static_cast<std::size_t>(g)];
    s.family[d] = matching.family_of({g, s.chosen[d]});
    bool is_lead = true;
    for (std::size_t e = 0; e < d; ++e) {
      if (s.family[e] == s.family[d]) {
        is_lead = false;
        break;
      }
    }
    s.lead[d] = is_lead;
    if (!pair_conditions_hold(s, d)) return false;
  }
  std::vector<Index> fams(s.family);
  std::sort(fams.begin(), fams.end());
  return std::unique(fams.begin(), fams.end()) - fams.begin() >= 2;
}

std::optional<BlockingFamily> find_blocking_family_pairs(
    const KPartiteInstance& inst, const KaryMatching& matching,
    BlockingMode mode, const std::vector<std::int32_t>& priority) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  std::vector<Index> members(static_cast<std::size_t>(k));
  // For each ordered pair of distinct families (f, g) and each proper
  // non-empty gender subset S, family f supplies the genders in S and family
  // g the rest. Iterating ordered pairs covers both assignments of a subset.
  for (Index f = 0; f < n; ++f) {
    for (Index g = 0; g < n; ++g) {
      if (f == g) continue;
      const auto limit = std::uint32_t{1} << k;
      for (std::uint32_t mask = 1; mask + 1 < limit; ++mask) {
        for (Gender h = 0; h < k; ++h) {
          const Index fam = (mask >> h) & 1U ? f : g;
          members[static_cast<std::size_t>(h)] =
              matching.member_at(fam, h).index;
        }
        if (tuple_blocks(inst, matching, members, mode, priority)) {
          BlockingFamily out;
          out.members = members;
          out.source_families = 2;
          return out;
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<BlockingFamily> find_blocking_family_sampled(
    const KPartiteInstance& inst, const KaryMatching& matching, Rng& rng,
    std::int64_t samples, BlockingMode mode,
    const std::vector<std::int32_t>& priority) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  std::vector<Index> members(static_cast<std::size_t>(k));
  for (std::int64_t s = 0; s < samples; ++s) {
    for (Gender g = 0; g < k; ++g) {
      members[static_cast<std::size_t>(g)] =
          static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    }
    if (tuple_blocks(inst, matching, members, mode, priority)) {
      BlockingFamily out;
      out.members = members;
      std::vector<Index> fams;
      for (Gender g = 0; g < k; ++g) {
        fams.push_back(matching.family_of({g, members[static_cast<std::size_t>(g)]}));
      }
      std::sort(fams.begin(), fams.end());
      out.source_families = static_cast<std::int32_t>(
          std::unique(fams.begin(), fams.end()) - fams.begin());
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace kstable::analysis
