// Blocking-family detection for k-ary matchings (paper §II.C, §IV.A, §IV.D).
//
// A k-tuple N = (u_1..u_k) *blocks* matching M when its members come from
// k' >= 2 current families and, grouping N's members by current family
// ("same-family groups"), every member strictly prefers every member of N
// from a *different* group to the corresponding-gender member of its own
// current family (no comparison inside a group). The weakened condition of
// §IV.D only constrains each group's *lead* member — the member whose gender
// has the highest priority within the group — which admits strictly more
// blocking families.
//
// Checkers:
//   find_blocking_family        — exact recursive search with online pruning
//                                 (exponential worst case; fine to n ~ 32, k <= 5)
//   find_blocking_family_pairs  — exact restricted to k' = 2 (polynomial);
//                                 sound but incomplete for k >= 3, and the
//                                 cheap screen used at scale
//   find_blocking_family_sampled— randomized probe for very large instances
#pragma once

#include <optional>
#include <vector>

#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"
#include "util/rng.hpp"

namespace kstable::analysis {

/// A witness blocking family: member index per gender (new family), plus the
/// number of distinct current families its members came from.
struct BlockingFamily {
  std::vector<Index> members;  ///< members[g] = index within gender g
  std::int32_t source_families = 0;
};

/// Strictness model for the blocking condition.
enum class BlockingMode {
  strict,   ///< §IV.A: every member of every group must agree
  weakened  ///< §IV.D: only each group's lead member must agree
};

/// Exact search for a blocking family (strict mode). Returns the first
/// witness found, or nullopt if `matching` is stable.
std::optional<BlockingFamily> find_blocking_family(
    const KPartiteInstance& inst, const KaryMatching& matching);

/// Exact search under the weakened condition. `priority[g]` gives gender g's
/// priority (all distinct; higher value = higher priority).
std::optional<BlockingFamily> find_weakened_blocking_family(
    const KPartiteInstance& inst, const KaryMatching& matching,
    const std::vector<std::int32_t>& priority);

/// Exact search restricted to blocking families drawn from exactly two
/// current families (k' = 2). Polynomial: O(n² · 2^k · k²). A hit proves
/// instability; a miss does not prove stability for k >= 3.
std::optional<BlockingFamily> find_blocking_family_pairs(
    const KPartiteInstance& inst, const KaryMatching& matching,
    BlockingMode mode, const std::vector<std::int32_t>& priority = {});

/// Randomized probe: tests `samples` random k-tuples. A hit proves
/// instability.
std::optional<BlockingFamily> find_blocking_family_sampled(
    const KPartiteInstance& inst, const KaryMatching& matching, Rng& rng,
    std::int64_t samples, BlockingMode mode = BlockingMode::strict,
    const std::vector<std::int32_t>& priority = {});

/// Checks whether the specific tuple `members` (members[g] = index in gender
/// g) blocks `matching` under `mode`. Exposed for tests and the samplers.
bool tuple_blocks(const KPartiteInstance& inst, const KaryMatching& matching,
                  const std::vector<Index>& members, BlockingMode mode,
                  const std::vector<std::int32_t>& priority = {});

}  // namespace kstable::analysis
