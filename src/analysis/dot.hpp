// GraphViz DOT emitters for binding trees and k-ary matchings — developer
// tooling for inspecting binding structures and family assignments
// (`kmatch_cli kary --dot`, notebooks, papers).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/binding_structure.hpp"
#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"

namespace kstable::analysis {

/// Emits the gender-level binding structure as an undirected DOT graph.
/// Nodes are genders (labelled g0..g{k-1}); edge direction of the binding
/// (proposer -> responder) is recorded as an edge label.
void to_dot(const BindingStructure& structure, std::ostream& os);
std::string to_dot(const BindingStructure& structure);

/// Emits a k-ary matching as a DOT graph: one cluster per family, members as
/// nodes named like the MemberId stream format (a0, b1, ...).
void to_dot(const KaryMatching& matching, std::ostream& os);
std::string to_dot(const KaryMatching& matching);

}  // namespace kstable::analysis
