// Exhaustive oracles for small instances.
//
// The property tests and the E2/E4 experiments cross-check the algorithmic
// solvers against brute force: enumerate every perfect (binary or k-ary)
// matching and count the stable ones. Only feasible at small sizes —
// binary enumeration is O((kn-1)!!) and k-ary is O((n!)^(k-1)) — which is
// exactly how the oracles are used.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "analysis/stability.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"
#include "roommates/instance.hpp"

namespace kstable::analysis {

/// Result of an exhaustive binary-matching census.
struct BinaryCensus {
  std::int64_t perfect_matchings = 0;
  std::int64_t stable_matchings = 0;
  /// One stable witness (partner array), if any exist.
  std::optional<std::vector<rm::Person>> witness;
};

/// Enumerates every perfect matching of the (possibly incomplete-list)
/// roommates instance and counts the stable ones. `limit` aborts the census
/// early once that many perfect matchings were enumerated (0 = unlimited).
BinaryCensus binary_census(const rm::RoommatesInstance& inst,
                           std::int64_t limit = 0);

/// Result of an exhaustive k-ary census.
struct KaryCensus {
  std::int64_t total_matchings = 0;
  std::int64_t stable_matchings = 0;          ///< strict blocking condition
  std::int64_t weakened_stable_matchings = 0; ///< §IV.D condition (if priority given)
  std::optional<KaryMatching> witness;        ///< one strictly stable witness
};

/// Enumerates all (n!)^(k-1) k-ary matchings of `inst` and counts stable
/// ones. If `priority` is non-empty, also counts weakened-stable matchings.
/// With a `pool`, the census fans out over gender 1's n! permutations (one
/// enumeration subtree per task) and merges partial counts in task order —
/// counts and witness are identical to the sequential census. Inside a pool
/// worker the census stays sequential (nested-pool guard).
KaryCensus kary_census(const KPartiteInstance& inst,
                       const std::vector<std::int32_t>& priority = {},
                       ThreadPool* pool = nullptr);

/// Visits every k-ary matching of `inst` (gender 0 fixed in index order).
void for_each_kary_matching(const KPartiteInstance& inst,
                            const std::function<void(const KaryMatching&)>& visit);

}  // namespace kstable::analysis
