#include "analysis/assignment.hpp"

#include <limits>

#include "util/check.hpp"

namespace kstable::analysis {

std::vector<Index> min_cost_assignment(const std::vector<std::int64_t>& cost,
                                       Index n) {
  KSTABLE_REQUIRE(n >= 1, "assignment needs n >= 1");
  KSTABLE_REQUIRE(cost.size() == static_cast<std::size_t>(n) *
                                     static_cast<std::size_t>(n),
                  "cost matrix has " << cost.size() << " entries for n=" << n);
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // Hungarian algorithm with potentials (1-indexed internal arrays).
  std::vector<std::int64_t> u(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> p(static_cast<std::size_t>(n) + 1, 0);    // col -> row
  std::vector<Index> way(static_cast<std::size_t>(n) + 1, 0);  // augmenting path

  for (Index i = 1; i <= n; ++i) {
    p[0] = i;
    Index j0 = 0;
    std::vector<std::int64_t> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const Index i0 = p[static_cast<std::size_t>(j0)];
      std::int64_t delta = kInf;
      Index j1 = 0;
      for (Index j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const std::int64_t cur =
            cost[static_cast<std::size_t>(i0 - 1) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(j - 1)] -
            u[static_cast<std::size_t>(i0)] - v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (Index j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    // Unwind the augmenting path.
    do {
      const Index j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<Index> row_to_col(static_cast<std::size_t>(n), Index{-1});
  for (Index j = 1; j <= n; ++j) {
    row_to_col[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] =
        j - 1;
  }
  return row_to_col;
}

std::vector<std::int64_t> egalitarian_cost_matrix(const KPartiteInstance& inst,
                                                  Gender a, Gender b) {
  const Index n = inst.per_gender();
  std::vector<std::int64_t> cost(static_cast<std::size_t>(n) *
                                 static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      cost[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(j)] =
          inst.rank_of({a, i}, {b, j}) + inst.rank_of({b, j}, {a, i});
    }
  }
  return cost;
}

std::vector<Index> egalitarian_assignment(const KPartiteInstance& inst,
                                          Gender a, Gender b) {
  return min_cost_assignment(egalitarian_cost_matrix(inst, a, b),
                             inst.per_gender());
}

std::int64_t count_blocking_pairs(const KPartiteInstance& inst, Gender a,
                                  Gender b, const std::vector<Index>& match_a) {
  const Index n = inst.per_gender();
  KSTABLE_REQUIRE(match_a.size() == static_cast<std::size_t>(n),
                  "match array size mismatch");
  std::vector<Index> match_b(static_cast<std::size_t>(n), Index{-1});
  for (Index i = 0; i < n; ++i) {
    match_b[static_cast<std::size_t>(match_a[static_cast<std::size_t>(i)])] = i;
  }
  std::int64_t blocking = 0;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (match_a[static_cast<std::size_t>(i)] == j) continue;
      if (inst.prefers({a, i}, {b, j},
                       {b, match_a[static_cast<std::size_t>(i)]}) &&
          inst.prefers({b, j}, {a, i},
                       {a, match_b[static_cast<std::size_t>(j)]})) {
        ++blocking;
      }
    }
  }
  return blocking;
}

}  // namespace kstable::analysis
