#include "analysis/dot.hpp"

#include <ostream>
#include <sstream>

namespace kstable::analysis {

void to_dot(const BindingStructure& structure, std::ostream& os) {
  os << "graph binding_structure {\n";
  os << "  node [shape=circle];\n";
  for (Gender g = 0; g < structure.genders(); ++g) {
    os << "  g" << g << ";\n";
  }
  for (const auto& e : structure.edges()) {
    os << "  g" << e.a << " -- g" << e.b << " [label=\"" << e.a << "→" << e.b
       << "\"];\n";
  }
  os << "}\n";
}

std::string to_dot(const BindingStructure& structure) {
  std::ostringstream os;
  to_dot(structure, os);
  return os.str();
}

void to_dot(const KaryMatching& matching, std::ostream& os) {
  os << "graph kary_matching {\n";
  os << "  node [shape=box];\n";
  for (Index t = 0; t < matching.family_count(); ++t) {
    os << "  subgraph cluster_family_" << t << " {\n";
    os << "    label=\"family " << t << "\";\n";
    for (Gender g = 0; g < matching.genders(); ++g) {
      os << "    \"" << matching.member_at(t, g) << "\";\n";
    }
    os << "  }\n";
  }
  os << "}\n";
}

std::string to_dot(const KaryMatching& matching) {
  std::ostringstream os;
  to_dot(matching, os);
  return os.str();
}

}  // namespace kstable::analysis
