#include "analysis/quorum.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/oracle.hpp"
#include "util/check.hpp"

namespace kstable::analysis {

bool member_agrees(const KPartiteInstance& inst, const KaryMatching& matching,
                   const std::vector<Index>& members, Gender g) {
  const Gender k = inst.genders();
  KSTABLE_REQUIRE(members.size() == static_cast<std::size_t>(k),
                  "tuple has " << members.size() << " members, expected " << k);
  const MemberId self{g, members[static_cast<std::size_t>(g)]};
  const Index own_family = matching.family_of(self);
  for (Gender h = 0; h < k; ++h) {
    if (h == g) continue;
    const MemberId other{h, members[static_cast<std::size_t>(h)]};
    if (matching.family_of(other) == own_family) continue;  // same group
    const MemberId current = matching.member_at(own_family, h);
    if (!inst.prefers(self, other, current)) return false;
  }
  return true;
}

bool tuple_blocks_quorum(const KPartiteInstance& inst,
                         const KaryMatching& matching,
                         const std::vector<Index>& members, double q) {
  KSTABLE_REQUIRE(q > 0.0 && q <= 1.0, "quorum must be in (0, 1], got " << q);
  const Gender k = inst.genders();
  KSTABLE_REQUIRE(members.size() == static_cast<std::size_t>(k),
                  "tuple has " << members.size() << " members, expected " << k);

  // Group genders by current family; count group sizes and agreements.
  std::vector<Index> family(static_cast<std::size_t>(k));
  for (Gender g = 0; g < k; ++g) {
    family[static_cast<std::size_t>(g)] =
        matching.family_of({g, members[static_cast<std::size_t>(g)]});
  }
  auto distinct = family;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  if (distinct.size() < 2) return false;  // reproduces an existing family

  for (const Index fam : distinct) {
    std::int32_t size = 0;
    std::int32_t agreeing = 0;
    for (Gender g = 0; g < k; ++g) {
      if (family[static_cast<std::size_t>(g)] != fam) continue;
      ++size;
      agreeing += member_agrees(inst, matching, members, g);
    }
    const auto needed =
        static_cast<std::int32_t>(std::ceil(q * static_cast<double>(size)));
    if (agreeing < std::max(needed, 1)) return false;
  }
  return true;
}

std::optional<BlockingFamily> find_quorum_blocking_family(
    const KPartiteInstance& inst, const KaryMatching& matching, double q) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  std::vector<Index> members(static_cast<std::size_t>(k), Index{0});
  // Odometer over all n^k tuples; quorum agreement is a global property of
  // the tuple's grouping, so there is no sound prefix pruning as in the
  // strict/weakened searches — keep instances small.
  for (;;) {
    if (tuple_blocks_quorum(inst, matching, members, q)) {
      BlockingFamily out;
      out.members = members;
      std::vector<Index> fams;
      for (Gender g = 0; g < k; ++g) {
        fams.push_back(
            matching.family_of({g, members[static_cast<std::size_t>(g)]}));
      }
      std::sort(fams.begin(), fams.end());
      out.source_families = static_cast<std::int32_t>(
          std::unique(fams.begin(), fams.end()) - fams.begin());
      return out;
    }
    Gender pos = 0;
    for (; pos < k; ++pos) {
      if (++members[static_cast<std::size_t>(pos)] < n) break;
      members[static_cast<std::size_t>(pos)] = 0;
    }
    if (pos == k) break;
  }
  return std::nullopt;
}

std::optional<BlockingFamily> find_quorum_blocking_family_sampled(
    const KPartiteInstance& inst, const KaryMatching& matching, double q,
    Rng& rng, std::int64_t samples) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  std::vector<Index> members(static_cast<std::size_t>(k));
  for (std::int64_t s = 0; s < samples; ++s) {
    for (Gender g = 0; g < k; ++g) {
      members[static_cast<std::size_t>(g)] =
          static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    }
    if (tuple_blocks_quorum(inst, matching, members, q)) {
      BlockingFamily out;
      out.members = members;
      out.source_families = 2;  // lower bound; exact count not recomputed
      return out;
    }
  }
  return std::nullopt;
}

std::vector<std::int64_t> quorum_stable_census(
    const KPartiteInstance& inst, const std::vector<double>& quorums) {
  std::vector<std::int64_t> stable(quorums.size(), 0);
  for_each_kary_matching(inst, [&](const KaryMatching& matching) {
    for (std::size_t i = 0; i < quorums.size(); ++i) {
      if (!find_quorum_blocking_family(inst, matching, quorums[i])) {
        ++stable[i];
      }
    }
  });
  return stable;
}

}  // namespace kstable::analysis
