#include "analysis/oracle.hpp"

#include <algorithm>
#include <numeric>

#include "roommates/solver.hpp"
#include "util/check.hpp"

namespace kstable::analysis {

namespace {

/// Recursive perfect-matching enumeration: match the lowest unmatched person
/// with every acceptable unmatched candidate.
void enumerate_binary(const rm::RoommatesInstance& inst,
                      std::vector<rm::Person>& match, rm::Person from,
                      BinaryCensus& census, std::int64_t limit, bool& stop) {
  const rm::Person n = inst.size();
  rm::Person p = from;
  while (p < n && match[static_cast<std::size_t>(p)] != -1) ++p;
  if (p == n) {
    ++census.perfect_matchings;
    if (rm::is_stable_matching(inst, match)) {
      ++census.stable_matchings;
      if (!census.witness) census.witness = match;
    }
    if (limit > 0 && census.perfect_matchings >= limit) stop = true;
    return;
  }
  for (const rm::Person q : inst.list(p)) {
    if (q < p || match[static_cast<std::size_t>(q)] != -1) continue;
    match[static_cast<std::size_t>(p)] = q;
    match[static_cast<std::size_t>(q)] = p;
    enumerate_binary(inst, match, p + 1, census, limit, stop);
    match[static_cast<std::size_t>(p)] = -1;
    match[static_cast<std::size_t>(q)] = -1;
    if (stop) return;
  }
}

/// Visits every completion of `families` over genders [from, k): for each
/// gender in turn, every permutation in lexicographic order (the recursion
/// behind for_each_kary_matching, split out so the parallel census can start
/// each task at gender 2 with gender 1 pre-assigned).
void enumerate_kary_from(const KPartiteInstance& inst,
                         std::vector<Index>& families, Gender from,
                         const std::function<void(const KaryMatching&)>& visit) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  if (from == k) {
    visit(KaryMatching(k, n, families));
    return;
  }
  std::vector<Index> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Index{0});
  do {
    for (Index t = 0; t < n; ++t) {
      families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(from)] =
          perm[static_cast<std::size_t>(t)];
    }
    enumerate_kary_from(inst, families, from + 1, visit);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

/// Identity-prefixed family table: families[t*k + 0] = t (tuples are
/// unordered, so fixing gender 0's assignment removes the n! relabelings).
std::vector<Index> seeded_families(const KPartiteInstance& inst) {
  const auto k = static_cast<std::size_t>(inst.genders());
  const Index n = inst.per_gender();
  std::vector<Index> families(static_cast<std::size_t>(n) * k);
  for (Index t = 0; t < n; ++t) {
    families[static_cast<std::size_t>(t) * k] = t;
  }
  return families;
}

}  // namespace

BinaryCensus binary_census(const rm::RoommatesInstance& inst,
                           std::int64_t limit) {
  BinaryCensus census;
  std::vector<rm::Person> match(static_cast<std::size_t>(inst.size()), -1);
  bool stop = false;
  enumerate_binary(inst, match, 0, census, limit, stop);
  return census;
}

void for_each_kary_matching(
    const KPartiteInstance& inst,
    const std::function<void(const KaryMatching&)>& visit) {
  std::vector<Index> families = seeded_families(inst);
  enumerate_kary_from(inst, families, 1, visit);
}

KaryCensus kary_census(const KPartiteInstance& inst,
                       const std::vector<std::int32_t>& priority,
                       ThreadPool* pool) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  const auto tally = [&](const KaryMatching& matching, KaryCensus& census) {
    ++census.total_matchings;
    if (!find_blocking_family(inst, matching).has_value()) {
      ++census.stable_matchings;
      if (!census.witness) census.witness = matching;
    }
    if (!priority.empty() &&
        !find_weakened_blocking_family(inst, matching, priority).has_value()) {
      ++census.weakened_stable_matchings;
    }
  };

  const bool parallel_run = pool != nullptr &&
                            !ThreadPool::in_worker_thread() &&
                            pool->thread_count() > 1 && n > 1;
  if (!parallel_run) {
    KaryCensus census;
    for_each_kary_matching(
        inst, [&](const KaryMatching& matching) { tally(matching, census); });
    return census;
  }

  // Fan out over gender 1's n! permutations (the outermost loop of the
  // enumeration); each task completes genders 2..k-1 sequentially. Partial
  // censuses land in per-task slots and merge in task order, so the counts
  // AND the witness (the enumeration-order-first stable matching) are
  // identical to the sequential census regardless of scheduling.
  std::vector<std::vector<Index>> gender1;
  {
    std::vector<Index> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), Index{0});
    do {
      gender1.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  std::vector<KaryCensus> partials(gender1.size());
  pool->for_each_index(gender1.size(), [&](std::size_t i) {
    std::vector<Index> families = seeded_families(inst);
    for (Index t = 0; t < n; ++t) {
      families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k) + 1] =
          gender1[i][static_cast<std::size_t>(t)];
    }
    enumerate_kary_from(inst, families, 2, [&](const KaryMatching& matching) {
      tally(matching, partials[i]);
    });
  });

  KaryCensus census;
  for (auto& partial : partials) {
    census.total_matchings += partial.total_matchings;
    census.stable_matchings += partial.stable_matchings;
    census.weakened_stable_matchings += partial.weakened_stable_matchings;
    if (!census.witness && partial.witness) {
      census.witness = std::move(partial.witness);
    }
  }
  return census;
}

}  // namespace kstable::analysis
