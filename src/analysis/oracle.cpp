#include "analysis/oracle.hpp"

#include <algorithm>
#include <numeric>

#include "roommates/solver.hpp"
#include "util/check.hpp"

namespace kstable::analysis {

namespace {

/// Recursive perfect-matching enumeration: match the lowest unmatched person
/// with every acceptable unmatched candidate.
void enumerate_binary(const rm::RoommatesInstance& inst,
                      std::vector<rm::Person>& match, rm::Person from,
                      BinaryCensus& census, std::int64_t limit, bool& stop) {
  const rm::Person n = inst.size();
  rm::Person p = from;
  while (p < n && match[static_cast<std::size_t>(p)] != -1) ++p;
  if (p == n) {
    ++census.perfect_matchings;
    if (rm::is_stable_matching(inst, match)) {
      ++census.stable_matchings;
      if (!census.witness) census.witness = match;
    }
    if (limit > 0 && census.perfect_matchings >= limit) stop = true;
    return;
  }
  for (const rm::Person q : inst.list(p)) {
    if (q < p || match[static_cast<std::size_t>(q)] != -1) continue;
    match[static_cast<std::size_t>(p)] = q;
    match[static_cast<std::size_t>(q)] = p;
    enumerate_binary(inst, match, p + 1, census, limit, stop);
    match[static_cast<std::size_t>(p)] = -1;
    match[static_cast<std::size_t>(q)] = -1;
    if (stop) return;
  }
}

}  // namespace

BinaryCensus binary_census(const rm::RoommatesInstance& inst,
                           std::int64_t limit) {
  BinaryCensus census;
  std::vector<rm::Person> match(static_cast<std::size_t>(inst.size()), -1);
  bool stop = false;
  enumerate_binary(inst, match, 0, census, limit, stop);
  return census;
}

void for_each_kary_matching(
    const KPartiteInstance& inst,
    const std::function<void(const KaryMatching&)>& visit) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  // families[t*k + g]; gender 0 fixed as identity (tuples are unordered, so
  // fixing one gender's assignment removes the n! family relabelings).
  std::vector<Index> families(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(k));
  for (Index t = 0; t < n; ++t) {
    families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k)] = t;
  }
  // Iterate permutations per remaining gender via odometer of permutations.
  std::vector<std::vector<Index>> perms(static_cast<std::size_t>(k));
  for (Gender g = 1; g < k; ++g) {
    perms[static_cast<std::size_t>(g)].resize(static_cast<std::size_t>(n));
    std::iota(perms[static_cast<std::size_t>(g)].begin(),
              perms[static_cast<std::size_t>(g)].end(), Index{0});
  }
  std::function<void(Gender)> rec = [&](Gender g) {
    if (g == k) {
      visit(KaryMatching(k, n, families));
      return;
    }
    auto& perm = perms[static_cast<std::size_t>(g)];
    std::sort(perm.begin(), perm.end());
    do {
      for (Index t = 0; t < n; ++t) {
        families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(g)] = perm[static_cast<std::size_t>(t)];
      }
      rec(g + 1);
    } while (std::next_permutation(perm.begin(), perm.end()));
  };
  rec(1);
}

KaryCensus kary_census(const KPartiteInstance& inst,
                       const std::vector<std::int32_t>& priority) {
  KaryCensus census;
  for_each_kary_matching(inst, [&](const KaryMatching& matching) {
    ++census.total_matchings;
    if (!find_blocking_family(inst, matching).has_value()) {
      ++census.stable_matchings;
      if (!census.witness) census.witness = matching;
    }
    if (!priority.empty() &&
        !find_weakened_blocking_family(inst, matching, priority).has_value()) {
      ++census.weakened_stable_matchings;
    }
  });
  return census;
}

}  // namespace kstable::analysis
