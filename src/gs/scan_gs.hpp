// Scan-based Gale-Shapley: the rank-table ablation baseline.
//
// Identical algorithm to the queue engine, but the responder's "do I prefer
// the new suitor" comparison scans the responder's preference list instead of
// consulting the precomputed O(1) rank table — O(n) per comparison, O(n³)
// worst case overall. E9 benchmarks this against the rank-table engines to
// quantify the flat-storage + rank-table design decision (DESIGN.md §Key
// design decisions, item 1).
#pragma once

#include "gs/gale_shapley.hpp"

namespace kstable::gs {

/// Queue-based GS(i, j) using list scans for every preference comparison.
/// Returns the same matching and proposal count as gale_shapley_queue.
GsResult gale_shapley_scan(const KPartiteInstance& inst, Gender i, Gender j);

}  // namespace kstable::gs
