// Scan-family Gale-Shapley engines: the rank-table ablation baseline and the
// large-n memory-layout engines (E9, E19).
//
// Three engines live here, all producing matchings and proposal counts
// bitwise-identical to gale_shapley_queue (GS is confluent and every engine
// preserves the queue engine's exact proposal order):
//
//   * gale_shapley_scan       — the ablation baseline: the responder's "do I
//     prefer the new suitor" comparison scans its preference list instead of
//     consulting the rank table. O(n) per comparison, O(n³) worst case;
//     quantifies what the rank table buys (DESIGN.md §Key design decisions).
//   * gale_shapley_scan_simd  — same algorithm, but the list scan is the
//     vectorized first-of-pair kernel (gs/simd.hpp): 8 entries per AVX2
//     step, runtime-dispatched, falling back to SSE2/scalar. Identical
//     scan semantics (earliest hit wins), so identical everything.
//   * gale_shapley_prefetch   — the production large-n engine: the queue
//     algorithm monomorphized on the compact rank width with a
//     software-prefetch pipeline over the proposal stream. Each resolved
//     proposal determines the next proposer exactly, so the engine stages
//     that proposal one step early — prefetching its pref cell, its
//     responder-match slot, and both rank cells of the accept/reject
//     compare — and speculatively prefetches the pref cell of the proposer
//     after that (stack top; a mispredict wastes a cache line, never
//     correctness). At n >= 10^5 the rank-row touches are effectively
//     random DRAM reads and this pipeline plus 16-bit ranks is what E19
//     measures against the scalar queue path.
#pragma once

#include "gs/gale_shapley.hpp"

namespace kstable::gs {

/// Queue-based GS(i, j) using list scans for every preference comparison.
/// Returns the same matching and proposal count as gale_shapley_queue.
GsResult gale_shapley_scan(const KPartiteInstance& inst, Gender i, Gender j);

/// gale_shapley_scan with the vectorized first-of-pair scan kernel
/// (runtime-dispatched AVX2/SSE2/scalar; KSTABLE_SIMD overrides). Bitwise
/// identical to gale_shapley_scan and gale_shapley_queue.
GsResult gale_shapley_scan_simd(const KPartiteInstance& inst, Gender i,
                                Gender j);

/// Prefetch-pipelined queue GS over the compact rank layout. Into-style:
/// scratch in `workspace`, outcome overwrites `result` (zero heap
/// allocations once both are warm, same contract as gale_shapley_queue).
void gale_shapley_prefetch(const KPartiteInstance& inst, Gender i, Gender j,
                           const GsOptions& options, GsWorkspace& workspace,
                           GsResult& result);

/// Convenience overload with owned scratch state.
GsResult gale_shapley_prefetch(const KPartiteInstance& inst, Gender i,
                               Gender j, const GsOptions& options = {});

}  // namespace kstable::gs
