// Hospitals/Residents (college admission) — the many-to-one SMP extension the
// paper cites in §V.A ("the hospitals/residents problem, also known as the
// college admission problem, is such an extension and application where a
// hospital can take multiple residents").
//
// Model: n residents with strict preferences over m hospitals; each hospital
// h has capacity cap[h] and a strict preference over residents. A matching
// assigns each resident to at most one hospital, each hospital at most cap[h]
// residents. A pair (r, h) blocks when r prefers h to its assignment (or is
// unassigned and finds h acceptable) and h either has a free slot or prefers
// r to its worst assigned resident. The resident-proposing deferred
// acceptance algorithm below yields the resident-optimal stable matching.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace kstable::hr {

using Resident = std::int32_t;
using Hospital = std::int32_t;

/// A hospitals/residents instance with complete preference lists.
class HrInstance {
 public:
  /// resident_prefs[r] = hospitals best-first; hospital_prefs[h] = residents
  /// best-first; capacity[h] >= 0. All lists must be complete permutations.
  HrInstance(std::vector<std::vector<Hospital>> resident_prefs,
             std::vector<std::vector<Resident>> hospital_prefs,
             std::vector<std::int32_t> capacity);

  [[nodiscard]] Resident residents() const noexcept {
    return static_cast<Resident>(resident_prefs_.size());
  }
  [[nodiscard]] Hospital hospitals() const noexcept {
    return static_cast<Hospital>(hospital_prefs_.size());
  }
  [[nodiscard]] std::int32_t capacity(Hospital h) const;
  [[nodiscard]] std::int64_t total_capacity() const noexcept { return total_capacity_; }

  [[nodiscard]] const std::vector<Hospital>& resident_prefs(Resident r) const;
  [[nodiscard]] std::int32_t resident_rank(Resident r, Hospital h) const;
  [[nodiscard]] std::int32_t hospital_rank(Hospital h, Resident r) const;

 private:
  std::vector<std::vector<Hospital>> resident_prefs_;
  std::vector<std::vector<Resident>> hospital_prefs_;
  std::vector<std::int32_t> capacity_;
  std::vector<std::int32_t> resident_rank_;  // residents x hospitals
  std::vector<std::int32_t> hospital_rank_;  // hospitals x residents
  std::int64_t total_capacity_ = 0;
};

struct HrResult {
  /// assignment[r] = hospital of resident r, -1 if unassigned.
  std::vector<Hospital> assignment;
  /// roster[h] = residents assigned to hospital h.
  std::vector<std::vector<Resident>> rosters;
  std::int64_t proposals = 0;
};

/// Resident-proposing deferred acceptance: resident-optimal stable matching.
HrResult solve_residents_propose(const HrInstance& inst);

/// True iff `result` is stable for `inst` (capacity respected, no blocking
/// pair in the HR sense).
bool is_stable(const HrInstance& inst, const HrResult& result);

/// Random instance: n residents, m hospitals, capacities summing >= n when
/// `sufficient` (every resident assignable) or arbitrary otherwise.
HrInstance random_instance(Resident n, Hospital m, std::int32_t max_capacity,
                           Rng& rng, bool sufficient = true);

}  // namespace kstable::hr
