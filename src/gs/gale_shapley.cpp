#include "gs/gale_shapley.hpp"

#include <algorithm>

#include "observability/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::gs {

namespace {

#if KSTABLE_METRICS_ENABLED
/// Eagerly registers this TU's instruments at static-init time: the
/// KSTABLE_COUNTER_ADD call sites then resolve against already-registered
/// names, so even the very FIRST warm solve performs zero heap allocations
/// (asserted by GsWorkspace.WarmHelpersPreallocate).
const bool kInstrumentsWarm = [] {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("gs.queue.solves");
  registry.counter("gs.queue.proposals");
  registry.counter("gs.rounds.solves");
  registry.counter("gs.rounds.proposals");
  registry.counter("gs.rounds.rounds");
  return true;
}();
#endif

void check_genders(const KPartiteInstance& inst, Gender i, Gender j) {
  KSTABLE_REQUIRE(i >= 0 && i < inst.genders() && j >= 0 && j < inst.genders(),
                  "GS(" << i << ',' << j << ") out of range, k="
                        << inst.genders());
  KSTABLE_REQUIRE(i != j, "GS(" << i << ',' << i << "): a gender cannot bind "
                                   "to itself");
}

void finish(const KPartiteInstance& inst, GsResult& result) {
  const Index n = inst.per_gender();
  // Postcondition: perfect matching between the two genders.
  for (Index p = 0; p < n; ++p) {
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] >= 0,
                   "proposer " << p << " left unmatched");
  }
  for (Index r = 0; r < n; ++r) {
    const Index p = result.responder_match[static_cast<std::size_t>(r)];
    KSTABLE_ENSURE(p >= 0, "responder " << r << " left unmatched");
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] == r,
                   "match arrays inconsistent at responder " << r);
  }
}

/// Resets `result` for a fresh (i, j) solve, reusing vector capacity.
void reset_result(GsResult& result, Gender i, Gender j, Index n) {
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.proposals = 0;
  result.rounds = 0;
}

/// Traced runs reserve the Theorem 3 per-binding bound (n² proposals) once,
/// instead of growing the event vector geometrically mid-run.
void reserve_trace(const GsOptions& options, Index n) {
  if (options.trace != nullptr) {
    options.trace->reserve(options.trace->size() +
                           static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n));
  }
}

/// Row addressing hoisted out of the proposal loops: row r of (gender g over
/// target t) lives at `base + r * stride` in both tables. One multiply per
/// proposal instead of the full row_base() chain.
struct RowAddressing {
  std::size_t prop_base;  ///< pref/rank row base of proposer (i, 0) over j
  std::size_t resp_base;  ///< pref/rank row base of responder (j, 0) over i
  std::size_t stride;     ///< (k-1)·n elements between consecutive members

  RowAddressing(const KPartiteInstance& inst, Gender i, Gender j) noexcept
      : prop_base(inst.row_base({i, 0}, j)),
        resp_base(inst.row_base({j, 0}, i)),
        stride(static_cast<std::size_t>(inst.genders() - 1) *
               static_cast<std::size_t>(inst.per_gender())) {}
};

/// Queue-engine proposal loop, monomorphized on the stored rank type R
/// (uint16_t or uint32_t): the accept/reject compare reads the typed table
/// directly — no per-access width dispatch in the hot path.
template <typename R>
void queue_loop(const KPartiteInstance& inst, Gender i, Gender j,
                const GsOptions& options, GsWorkspace& workspace,
                GsResult& result) {
  const Index n = inst.per_gender();
  // next_choice[p]: rank of the next responder p will propose to.
  workspace.next_choice.assign(static_cast<std::size_t>(n), Index{0});
  auto& free_stack = workspace.free_list;
  free_stack.resize(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) {
    free_stack[static_cast<std::size_t>(p)] = n - 1 - p;  // pop in index order
  }

  Index* const proposer_match = result.proposer_match.data();
  Index* const responder_match = result.responder_match.data();
  Index* const next_choice = workspace.next_choice.data();
  const Index* const pref = inst.pref_row({i, 0}, j).data();
  const R* const rank_table = inst.rank_base<R>();
  const RowAddressing rows(inst, i, j);

  while (!free_stack.empty()) {
    const Index p = free_stack.back();
    free_stack.pop_back();
    const Index* const list =
        pref + static_cast<std::size_t>(p) * rows.stride;
    KSTABLE_ASSERT(next_choice[static_cast<std::size_t>(p)] < n);
    const Index r = list[static_cast<std::size_t>(
        next_choice[static_cast<std::size_t>(p)]++)];
    ++result.proposals;
    if (options.control != nullptr) options.control->charge();

    const Index holder = responder_match[static_cast<std::size_t>(r)];
    // Hoisted rank row of responder r over gender i: the accept/reject
    // compare is two loads, no per-proposal row_base recomputation.
    const R* const ranks =
        rank_table + rows.resp_base + static_cast<std::size_t>(r) * rows.stride;
    ProposalEvent event{p, r, false, -1};
    if (holder < 0) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      event.accepted = true;
    } else if (ranks[static_cast<std::size_t>(p)] <
               ranks[static_cast<std::size_t>(holder)]) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      proposer_match[static_cast<std::size_t>(holder)] = -1;
      free_stack.push_back(holder);
      event.accepted = true;
      event.displaced = holder;
    } else {
      free_stack.push_back(p);  // rejected; will try the next choice
    }
    if (options.trace != nullptr) options.trace->push_back(event);
  }
}

}  // namespace

void gale_shapley_queue(const KPartiteInstance& inst, Gender i, Gender j,
                        const GsOptions& options, GsWorkspace& workspace,
                        GsResult& result) {
  check_genders(inst, i, j);
  const WallTimer timer;
  const Index n = inst.per_gender();
  reset_result(result, i, j, n);
  reserve_trace(options, n);

  // One width dispatch per solve; identical matchings either way (the
  // DiffRunner layout battery pins narrow16 vs wide32 bitwise).
  if (inst.rank_width() == prefs::RankWidth::narrow16) {
    queue_loop<std::uint16_t>(inst, i, j, options, workspace, result);
  } else {
    queue_loop<std::uint32_t>(inst, i, j, options, workspace, result);
  }
  result.rounds = result.proposals;
  result.engine = "gs.queue";
  result.wall_ms = timer.millis();
  finish(inst, result);
  KSTABLE_COUNTER_ADD("gs.queue.solves", 1);
  KSTABLE_COUNTER_ADD("gs.queue.proposals", result.proposals);
}

GsResult gale_shapley_queue(const KPartiteInstance& inst, Gender i, Gender j,
                            const GsOptions& options) {
  GsWorkspace workspace;
  GsResult result;
  gale_shapley_queue(inst, i, j, options, workspace, result);
  return result;
}

namespace {

/// Rounds-engine loop, monomorphized on the stored rank type R.
template <typename R>
void rounds_loop(const KPartiteInstance& inst, Gender i, Gender j,
                 const GsOptions& options, GsWorkspace& workspace,
                 GsResult& result) {
  const Index n = inst.per_gender();
  workspace.next_choice.assign(static_cast<std::size_t>(n), Index{0});
  auto& free_list = workspace.free_list;
  free_list.resize(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) free_list[static_cast<std::size_t>(p)] = p;
  auto& still_free = workspace.still_free;
  still_free.clear();
  still_free.reserve(static_cast<std::size_t>(n));

  Index* const proposer_match = result.proposer_match.data();
  Index* const responder_match = result.responder_match.data();
  Index* const next_choice = workspace.next_choice.data();
  const Index* const pref = inst.pref_row({i, 0}, j).data();
  const R* const rank_table = inst.rank_base<R>();
  const RowAddressing rows(inst, i, j);

  while (!free_list.empty()) {
    ++result.rounds;
    // One batched charge per round (every free proposer proposes once).
    if (options.control != nullptr) {
      options.control->charge(static_cast<std::int64_t>(free_list.size()));
    }
    still_free.clear();
    // Phase 1 of the round: every unengaged proposer proposes to the
    // most-preferred responder it has not yet proposed to (§II.A verbatim).
    for (const Index p : free_list) {
      const Index* const list =
          pref + static_cast<std::size_t>(p) * rows.stride;
      const Index r = list[static_cast<std::size_t>(
          next_choice[static_cast<std::size_t>(p)]++)];
      ++result.proposals;
      // Phase 2 folded in: the responder replies "maybe" only to the best
      // suitor seen so far (including its current provisional partner); the
      // hoisted rank row makes that compare two loads.
      const Index holder = responder_match[static_cast<std::size_t>(r)];
      const R* const ranks = rank_table + rows.resp_base +
                             static_cast<std::size_t>(r) * rows.stride;
      ProposalEvent event{p, r, false, -1};
      if (holder < 0) {
        responder_match[static_cast<std::size_t>(r)] = p;
        proposer_match[static_cast<std::size_t>(p)] = r;
        event.accepted = true;
      } else if (ranks[static_cast<std::size_t>(p)] <
                 ranks[static_cast<std::size_t>(holder)]) {
        responder_match[static_cast<std::size_t>(r)] = p;
        proposer_match[static_cast<std::size_t>(p)] = r;
        proposer_match[static_cast<std::size_t>(holder)] = -1;
        still_free.push_back(holder);
        event.accepted = true;
        event.displaced = holder;
      } else {
        still_free.push_back(p);
      }
      if (options.trace != nullptr) options.trace->push_back(event);
    }
    free_list.swap(still_free);
  }
}

}  // namespace

void gale_shapley_rounds(const KPartiteInstance& inst, Gender i, Gender j,
                         const GsOptions& options, GsWorkspace& workspace,
                         GsResult& result) {
  check_genders(inst, i, j);
  const WallTimer timer;
  const Index n = inst.per_gender();
  reset_result(result, i, j, n);
  reserve_trace(options, n);

  if (inst.rank_width() == prefs::RankWidth::narrow16) {
    rounds_loop<std::uint16_t>(inst, i, j, options, workspace, result);
  } else {
    rounds_loop<std::uint32_t>(inst, i, j, options, workspace, result);
  }
  result.engine = "gs.rounds";
  result.wall_ms = timer.millis();
  finish(inst, result);
  KSTABLE_COUNTER_ADD("gs.rounds.solves", 1);
  KSTABLE_COUNTER_ADD("gs.rounds.proposals", result.proposals);
  KSTABLE_COUNTER_ADD("gs.rounds.rounds", result.rounds);
}

GsResult gale_shapley_rounds(const KPartiteInstance& inst, Gender i, Gender j,
                             const GsOptions& options) {
  GsWorkspace workspace;
  GsResult result;
  gale_shapley_rounds(inst, i, j, options, workspace, result);
  return result;
}

obs::SolveTelemetry solve_telemetry(const GsResult& result, Gender k,
                                    Index n) {
  obs::SolveTelemetry t;
  t.engine = result.engine[0] != '\0' ? result.engine : "gs";
  t.genders = k;
  t.size = n;
  t.wall_ms = result.wall_ms;
  t.add_phase("gs", result.wall_ms);
  t.proposals = result.proposals;
  t.executed_proposals = result.proposals;
  t.rounds = result.rounds;
  t.attempts = 1;
  t.status.proposals = result.proposals;
  t.status.wall_ms = result.wall_ms;
  return t;
}

bool is_stable_binding(const KPartiteInstance& inst, const GsResult& result) {
  const Index n = inst.per_gender();
  const Gender i = result.proposer_gender;
  const Gender j = result.responder_gender;
  for (Index p = 0; p < n; ++p) {
    const Index matched = result.proposer_match[static_cast<std::size_t>(p)];
    if (matched < 0) return false;
    const auto list = inst.pref_list({i, p}, j);
    const std::int32_t matched_rank = inst.rank_of({i, p}, {j, matched});
    // Any responder p strictly prefers to its partner forms a blocking pair
    // iff that responder also prefers p to its own partner.
    for (std::int32_t rank = 0; rank < matched_rank; ++rank) {
      const Index r = list[static_cast<std::size_t>(rank)];
      const Index r_partner = result.responder_match[static_cast<std::size_t>(r)];
      if (r_partner < 0 || inst.prefers({j, r}, {i, p}, {i, r_partner})) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace kstable::gs
