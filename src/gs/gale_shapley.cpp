#include "gs/gale_shapley.hpp"

#include <algorithm>

#include "observability/metrics.hpp"
#include "prefs/implicit/pref_view.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::gs {

namespace {

#if KSTABLE_METRICS_ENABLED
/// Eagerly registers this TU's instruments at static-init time: the
/// KSTABLE_COUNTER_ADD call sites then resolve against already-registered
/// names, so even the very FIRST warm solve performs zero heap allocations
/// (asserted by GsWorkspace.WarmHelpersPreallocate).
const bool kInstrumentsWarm = [] {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("gs.queue.solves");
  registry.counter("gs.queue.proposals");
  registry.counter("gs.rounds.solves");
  registry.counter("gs.rounds.proposals");
  registry.counter("gs.rounds.rounds");
  return true;
}();
#endif

void check_genders(const KPartiteInstance& inst, Gender i, Gender j) {
  KSTABLE_REQUIRE(i >= 0 && i < inst.genders() && j >= 0 && j < inst.genders(),
                  "GS(" << i << ',' << j << ") out of range, k="
                        << inst.genders());
  KSTABLE_REQUIRE(i != j, "GS(" << i << ',' << i << "): a gender cannot bind "
                                   "to itself");
}

void finish(const KPartiteInstance& inst, GsResult& result) {
  const Index n = inst.per_gender();
  // Postcondition: perfect matching between the two genders.
  for (Index p = 0; p < n; ++p) {
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] >= 0,
                   "proposer " << p << " left unmatched");
  }
  for (Index r = 0; r < n; ++r) {
    const Index p = result.responder_match[static_cast<std::size_t>(r)];
    KSTABLE_ENSURE(p >= 0, "responder " << r << " left unmatched");
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] == r,
                   "match arrays inconsistent at responder " << r);
  }
}

/// Resets `result` for a fresh (i, j) solve, reusing vector capacity.
void reset_result(GsResult& result, Gender i, Gender j, Index n) {
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.proposals = 0;
  result.rounds = 0;
}

/// Traced runs reserve the Theorem 3 per-binding bound (n² proposals) once,
/// instead of growing the event vector geometrically mid-run.
void reserve_trace(const GsOptions& options, Index n) {
  if (options.trace != nullptr) {
    options.trace->reserve(options.trace->size() +
                           static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n));
  }
}

/// Queue-engine proposal loop, monomorphized on the preference view
/// (prefs/implicit/pref_view.hpp): ExplicitView<R> compiles to the raw
/// hoisted-pointer loads this loop used to spell out inline (no per-access
/// width or backend dispatch in the hot path); ImplicitView evaluates the
/// same entries from the seeded generator in O(1) each.
template <typename View>
void queue_loop(const View view, Index n, const GsOptions& options,
                GsWorkspace& workspace, GsResult& result) {
  // next_choice[p]: rank of the next responder p will propose to.
  workspace.next_choice.assign(static_cast<std::size_t>(n), Index{0});
  auto& free_stack = workspace.free_list;
  free_stack.resize(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) {
    free_stack[static_cast<std::size_t>(p)] = n - 1 - p;  // pop in index order
  }

  Index* const proposer_match = result.proposer_match.data();
  Index* const responder_match = result.responder_match.data();
  Index* const next_choice = workspace.next_choice.data();

  while (!free_stack.empty()) {
    const Index p = free_stack.back();
    free_stack.pop_back();
    KSTABLE_ASSERT(next_choice[static_cast<std::size_t>(p)] < n);
    const Index r = view.pref_at(p, next_choice[static_cast<std::size_t>(p)]++);
    ++result.proposals;
    if (options.control != nullptr) options.control->charge();

    const Index holder = responder_match[static_cast<std::size_t>(r)];
    // Hoisted responder row handle: the accept/reject compare is two rank
    // evaluations off it, no per-proposal row re-derivation.
    const auto ranks = view.resp_row(r);
    ProposalEvent event{p, r, false, -1};
    if (holder < 0) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      event.accepted = true;
    } else if (view.rank_in(ranks, p) < view.rank_in(ranks, holder)) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      proposer_match[static_cast<std::size_t>(holder)] = -1;
      free_stack.push_back(holder);
      event.accepted = true;
      event.displaced = holder;
    } else {
      free_stack.push_back(p);  // rejected; will try the next choice
    }
    if (options.trace != nullptr) options.trace->push_back(event);
  }
}

}  // namespace

void gale_shapley_queue(const KPartiteInstance& inst, Gender i, Gender j,
                        const GsOptions& options, GsWorkspace& workspace,
                        GsResult& result) {
  check_genders(inst, i, j);
  const WallTimer timer;
  const Index n = inst.per_gender();
  reset_result(result, i, j, n);
  reserve_trace(options, n);

  // One backend + width dispatch per solve; identical matchings every way
  // (the DiffRunner layout and implicit batteries pin this bitwise).
  prefs::with_pref_view(inst, i, j, [&](const auto view) {
    queue_loop(view, n, options, workspace, result);
  });
  result.rounds = result.proposals;
  result.engine = "gs.queue";
  result.wall_ms = timer.millis();
  finish(inst, result);
  KSTABLE_COUNTER_ADD("gs.queue.solves", 1);
  KSTABLE_COUNTER_ADD("gs.queue.proposals", result.proposals);
}

GsResult gale_shapley_queue(const KPartiteInstance& inst, Gender i, Gender j,
                            const GsOptions& options) {
  GsWorkspace workspace;
  GsResult result;
  gale_shapley_queue(inst, i, j, options, workspace, result);
  return result;
}

namespace {

/// Rounds-engine loop, monomorphized on the preference view (same dispatch
/// as queue_loop).
template <typename View>
void rounds_loop(const View view, Index n, const GsOptions& options,
                 GsWorkspace& workspace, GsResult& result) {
  workspace.next_choice.assign(static_cast<std::size_t>(n), Index{0});
  auto& free_list = workspace.free_list;
  free_list.resize(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) free_list[static_cast<std::size_t>(p)] = p;
  auto& still_free = workspace.still_free;
  still_free.clear();
  still_free.reserve(static_cast<std::size_t>(n));

  Index* const proposer_match = result.proposer_match.data();
  Index* const responder_match = result.responder_match.data();
  Index* const next_choice = workspace.next_choice.data();

  while (!free_list.empty()) {
    ++result.rounds;
    // One batched charge per round (every free proposer proposes once).
    if (options.control != nullptr) {
      options.control->charge(static_cast<std::int64_t>(free_list.size()));
    }
    still_free.clear();
    // Phase 1 of the round: every unengaged proposer proposes to the
    // most-preferred responder it has not yet proposed to (§II.A verbatim).
    for (const Index p : free_list) {
      const Index r =
          view.pref_at(p, next_choice[static_cast<std::size_t>(p)]++);
      ++result.proposals;
      // Phase 2 folded in: the responder replies "maybe" only to the best
      // suitor seen so far (including its current provisional partner); the
      // hoisted row handle makes that compare two rank evaluations.
      const Index holder = responder_match[static_cast<std::size_t>(r)];
      const auto ranks = view.resp_row(r);
      ProposalEvent event{p, r, false, -1};
      if (holder < 0) {
        responder_match[static_cast<std::size_t>(r)] = p;
        proposer_match[static_cast<std::size_t>(p)] = r;
        event.accepted = true;
      } else if (view.rank_in(ranks, p) < view.rank_in(ranks, holder)) {
        responder_match[static_cast<std::size_t>(r)] = p;
        proposer_match[static_cast<std::size_t>(p)] = r;
        proposer_match[static_cast<std::size_t>(holder)] = -1;
        still_free.push_back(holder);
        event.accepted = true;
        event.displaced = holder;
      } else {
        still_free.push_back(p);
      }
      if (options.trace != nullptr) options.trace->push_back(event);
    }
    free_list.swap(still_free);
  }
}

}  // namespace

void gale_shapley_rounds(const KPartiteInstance& inst, Gender i, Gender j,
                         const GsOptions& options, GsWorkspace& workspace,
                         GsResult& result) {
  check_genders(inst, i, j);
  const WallTimer timer;
  const Index n = inst.per_gender();
  reset_result(result, i, j, n);
  reserve_trace(options, n);

  prefs::with_pref_view(inst, i, j, [&](const auto view) {
    rounds_loop(view, n, options, workspace, result);
  });
  result.engine = "gs.rounds";
  result.wall_ms = timer.millis();
  finish(inst, result);
  KSTABLE_COUNTER_ADD("gs.rounds.solves", 1);
  KSTABLE_COUNTER_ADD("gs.rounds.proposals", result.proposals);
  KSTABLE_COUNTER_ADD("gs.rounds.rounds", result.rounds);
}

GsResult gale_shapley_rounds(const KPartiteInstance& inst, Gender i, Gender j,
                             const GsOptions& options) {
  GsWorkspace workspace;
  GsResult result;
  gale_shapley_rounds(inst, i, j, options, workspace, result);
  return result;
}

obs::SolveTelemetry solve_telemetry(const GsResult& result, Gender k,
                                    Index n) {
  obs::SolveTelemetry t;
  t.engine = result.engine[0] != '\0' ? result.engine : "gs";
  t.genders = k;
  t.size = n;
  t.wall_ms = result.wall_ms;
  t.add_phase("gs", result.wall_ms);
  t.proposals = result.proposals;
  t.executed_proposals = result.proposals;
  t.rounds = result.rounds;
  t.attempts = 1;
  t.status.proposals = result.proposals;
  t.status.wall_ms = result.wall_ms;
  return t;
}

bool is_stable_binding(const KPartiteInstance& inst, const GsResult& result) {
  const Index n = inst.per_gender();
  const Gender i = result.proposer_gender;
  const Gender j = result.responder_gender;
  for (Index p = 0; p < n; ++p) {
    const Index matched = result.proposer_match[static_cast<std::size_t>(p)];
    if (matched < 0) return false;
    const std::int32_t matched_rank = inst.rank_of({i, p}, {j, matched});
    // Any responder p strictly prefers to its partner forms a blocking pair
    // iff that responder also prefers p to its own partner. pref_at keeps
    // this verifier backend-agnostic (implicit instances store no lists).
    for (std::int32_t rank = 0; rank < matched_rank; ++rank) {
      const Index r = inst.pref_at({i, p}, j, static_cast<Index>(rank));
      const Index r_partner = result.responder_match[static_cast<std::size_t>(r)];
      if (r_partner < 0 || inst.prefers({j, r}, {i, p}, {i, r_partner})) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace kstable::gs
