#include "gs/gale_shapley.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kstable::gs {

namespace {

void check_genders(const KPartiteInstance& inst, Gender i, Gender j) {
  KSTABLE_REQUIRE(i >= 0 && i < inst.genders() && j >= 0 && j < inst.genders(),
                  "GS(" << i << ',' << j << ") out of range, k="
                        << inst.genders());
  KSTABLE_REQUIRE(i != j, "GS(" << i << ',' << i << "): a gender cannot bind "
                                   "to itself");
}

void finish(const KPartiteInstance& inst, GsResult& result) {
  const Index n = inst.per_gender();
  // Postcondition: perfect matching between the two genders.
  for (Index p = 0; p < n; ++p) {
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] >= 0,
                   "proposer " << p << " left unmatched");
  }
  for (Index r = 0; r < n; ++r) {
    const Index p = result.responder_match[static_cast<std::size_t>(r)];
    KSTABLE_ENSURE(p >= 0, "responder " << r << " left unmatched");
    KSTABLE_ENSURE(result.proposer_match[static_cast<std::size_t>(p)] == r,
                   "match arrays inconsistent at responder " << r);
  }
}

}  // namespace

GsResult gale_shapley_queue(const KPartiteInstance& inst, Gender i, Gender j,
                            const GsOptions& options) {
  check_genders(inst, i, j);
  const Index n = inst.per_gender();
  GsResult result;
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});

  // next_choice[p]: rank of the next responder p will propose to.
  std::vector<Index> next_choice(static_cast<std::size_t>(n), Index{0});
  std::vector<Index> free_stack(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) {
    free_stack[static_cast<std::size_t>(p)] = n - 1 - p;  // pop in index order
  }

  while (!free_stack.empty()) {
    const Index p = free_stack.back();
    free_stack.pop_back();
    const auto list = inst.pref_list({i, p}, j);
    KSTABLE_ASSERT(next_choice[static_cast<std::size_t>(p)] < n);
    const Index r = list[static_cast<std::size_t>(
        next_choice[static_cast<std::size_t>(p)]++)];
    ++result.proposals;
    if (options.control != nullptr) options.control->charge();

    const Index holder = result.responder_match[static_cast<std::size_t>(r)];
    ProposalEvent event{p, r, false, -1};
    if (holder < 0) {
      result.responder_match[static_cast<std::size_t>(r)] = p;
      result.proposer_match[static_cast<std::size_t>(p)] = r;
      event.accepted = true;
    } else if (inst.prefers({j, r}, {i, p}, {i, holder})) {
      result.responder_match[static_cast<std::size_t>(r)] = p;
      result.proposer_match[static_cast<std::size_t>(p)] = r;
      result.proposer_match[static_cast<std::size_t>(holder)] = -1;
      free_stack.push_back(holder);
      event.accepted = true;
      event.displaced = holder;
    } else {
      free_stack.push_back(p);  // rejected; will try the next choice
    }
    if (options.trace != nullptr) options.trace->push_back(event);
  }
  result.rounds = result.proposals;
  finish(inst, result);
  return result;
}

GsResult gale_shapley_rounds(const KPartiteInstance& inst, Gender i, Gender j,
                             const GsOptions& options) {
  check_genders(inst, i, j);
  const Index n = inst.per_gender();
  GsResult result;
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});

  std::vector<Index> next_choice(static_cast<std::size_t>(n), Index{0});
  std::vector<Index> free_list(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) free_list[static_cast<std::size_t>(p)] = p;
  std::vector<Index> still_free;

  while (!free_list.empty()) {
    ++result.rounds;
    // One batched charge per round (every free proposer proposes once).
    if (options.control != nullptr) {
      options.control->charge(static_cast<std::int64_t>(free_list.size()));
    }
    still_free.clear();
    // Phase 1 of the round: every unengaged proposer proposes to the
    // most-preferred responder it has not yet proposed to (§II.A verbatim).
    for (const Index p : free_list) {
      const auto list = inst.pref_list({i, p}, j);
      const Index r = list[static_cast<std::size_t>(
          next_choice[static_cast<std::size_t>(p)]++)];
      ++result.proposals;
      // Phase 2 folded in: the responder replies "maybe" only to the best
      // suitor seen so far (including its current provisional partner).
      const Index holder = result.responder_match[static_cast<std::size_t>(r)];
      ProposalEvent event{p, r, false, -1};
      if (holder < 0) {
        result.responder_match[static_cast<std::size_t>(r)] = p;
        result.proposer_match[static_cast<std::size_t>(p)] = r;
        event.accepted = true;
      } else if (inst.prefers({j, r}, {i, p}, {i, holder})) {
        result.responder_match[static_cast<std::size_t>(r)] = p;
        result.proposer_match[static_cast<std::size_t>(p)] = r;
        result.proposer_match[static_cast<std::size_t>(holder)] = -1;
        still_free.push_back(holder);
        event.accepted = true;
        event.displaced = holder;
      } else {
        still_free.push_back(p);
      }
      if (options.trace != nullptr) options.trace->push_back(event);
    }
    free_list.swap(still_free);
  }
  finish(inst, result);
  return result;
}

bool is_stable_binding(const KPartiteInstance& inst, const GsResult& result) {
  const Index n = inst.per_gender();
  const Gender i = result.proposer_gender;
  const Gender j = result.responder_gender;
  for (Index p = 0; p < n; ++p) {
    const Index matched = result.proposer_match[static_cast<std::size_t>(p)];
    if (matched < 0) return false;
    const auto list = inst.pref_list({i, p}, j);
    const std::int32_t matched_rank = inst.rank_of({i, p}, {j, matched});
    // Any responder p strictly prefers to its partner forms a blocking pair
    // iff that responder also prefers p to its own partner.
    for (std::int32_t rank = 0; rank < matched_rank; ++rank) {
      const Index r = list[static_cast<std::size_t>(rank)];
      const Index r_partner = result.responder_match[static_cast<std::size_t>(r)];
      if (r_partner < 0 || inst.prefers({j, r}, {i, p}, {i, r_partner})) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace kstable::gs
