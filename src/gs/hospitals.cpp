#include "gs/hospitals.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace kstable::hr {

HrInstance::HrInstance(std::vector<std::vector<Hospital>> resident_prefs,
                       std::vector<std::vector<Resident>> hospital_prefs,
                       std::vector<std::int32_t> capacity)
    : resident_prefs_(std::move(resident_prefs)),
      hospital_prefs_(std::move(hospital_prefs)),
      capacity_(std::move(capacity)) {
  const auto n = static_cast<Resident>(resident_prefs_.size());
  const auto m = static_cast<Hospital>(hospital_prefs_.size());
  KSTABLE_REQUIRE(n >= 1 && m >= 1, "need residents and hospitals");
  KSTABLE_REQUIRE(capacity_.size() == static_cast<std::size_t>(m),
                  "capacity vector size mismatch");
  resident_rank_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(m),
                        -1);
  hospital_rank_.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
                        -1);
  for (Resident r = 0; r < n; ++r) {
    const auto& prefs = resident_prefs_[static_cast<std::size_t>(r)];
    KSTABLE_REQUIRE(prefs.size() == static_cast<std::size_t>(m),
                    "resident " << r << " has incomplete preferences");
    for (std::size_t pos = 0; pos < prefs.size(); ++pos) {
      const Hospital h = prefs[pos];
      KSTABLE_REQUIRE(h >= 0 && h < m, "resident " << r << " lists bad hospital");
      auto& slot = resident_rank_[static_cast<std::size_t>(r) *
                                      static_cast<std::size_t>(m) +
                                  static_cast<std::size_t>(h)];
      KSTABLE_REQUIRE(slot == -1, "resident " << r << " lists hospital twice");
      slot = static_cast<std::int32_t>(pos);
    }
  }
  for (Hospital h = 0; h < m; ++h) {
    KSTABLE_REQUIRE(capacity_[static_cast<std::size_t>(h)] >= 0,
                    "negative capacity at hospital " << h);
    total_capacity_ += capacity_[static_cast<std::size_t>(h)];
    const auto& prefs = hospital_prefs_[static_cast<std::size_t>(h)];
    KSTABLE_REQUIRE(prefs.size() == static_cast<std::size_t>(n),
                    "hospital " << h << " has incomplete preferences");
    for (std::size_t pos = 0; pos < prefs.size(); ++pos) {
      const Resident r = prefs[pos];
      KSTABLE_REQUIRE(r >= 0 && r < n, "hospital " << h << " lists bad resident");
      auto& slot = hospital_rank_[static_cast<std::size_t>(h) *
                                      static_cast<std::size_t>(n) +
                                  static_cast<std::size_t>(r)];
      KSTABLE_REQUIRE(slot == -1, "hospital " << h << " lists resident twice");
      slot = static_cast<std::int32_t>(pos);
    }
  }
}

std::int32_t HrInstance::capacity(Hospital h) const {
  KSTABLE_REQUIRE(h >= 0 && h < hospitals(), "hospital " << h << " out of range");
  return capacity_[static_cast<std::size_t>(h)];
}

const std::vector<Hospital>& HrInstance::resident_prefs(Resident r) const {
  KSTABLE_REQUIRE(r >= 0 && r < residents(), "resident " << r << " out of range");
  return resident_prefs_[static_cast<std::size_t>(r)];
}

std::int32_t HrInstance::resident_rank(Resident r, Hospital h) const {
  KSTABLE_REQUIRE(r >= 0 && r < residents() && h >= 0 && h < hospitals(),
                  "rank lookup out of range");
  return resident_rank_[static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(hospitals()) +
                        static_cast<std::size_t>(h)];
}

std::int32_t HrInstance::hospital_rank(Hospital h, Resident r) const {
  KSTABLE_REQUIRE(r >= 0 && r < residents() && h >= 0 && h < hospitals(),
                  "rank lookup out of range");
  return hospital_rank_[static_cast<std::size_t>(h) *
                            static_cast<std::size_t>(residents()) +
                        static_cast<std::size_t>(r)];
}

HrResult solve_residents_propose(const HrInstance& inst) {
  const Resident n = inst.residents();
  const Hospital m = inst.hospitals();
  HrResult result;
  result.assignment.assign(static_cast<std::size_t>(n), Hospital{-1});
  result.rosters.resize(static_cast<std::size_t>(m));

  // Each hospital tracks its currently worst assigned resident lazily: with
  // complete lists and small capacities a linear scan of the roster is fine.
  std::vector<Resident> next_choice(static_cast<std::size_t>(n), 0);
  std::vector<Resident> free_stack;
  free_stack.reserve(static_cast<std::size_t>(n));
  for (Resident r = n - 1; r >= 0; --r) free_stack.push_back(r);

  while (!free_stack.empty()) {
    const Resident r = free_stack.back();
    free_stack.pop_back();
    auto& cursor = next_choice[static_cast<std::size_t>(r)];
    if (cursor >= m) continue;  // exhausted all hospitals: stays unassigned
    const Hospital h = inst.resident_prefs(r)[static_cast<std::size_t>(cursor)];
    ++cursor;
    ++result.proposals;

    auto& roster = result.rosters[static_cast<std::size_t>(h)];
    if (static_cast<std::int32_t>(roster.size()) < inst.capacity(h)) {
      roster.push_back(r);
      result.assignment[static_cast<std::size_t>(r)] = h;
      continue;
    }
    if (inst.capacity(h) == 0) {
      free_stack.push_back(r);
      continue;
    }
    // Full: compare against the worst assigned resident.
    auto worst_it = std::max_element(
        roster.begin(), roster.end(), [&](Resident a, Resident b) {
          return inst.hospital_rank(h, a) < inst.hospital_rank(h, b);
        });
    if (inst.hospital_rank(h, r) < inst.hospital_rank(h, *worst_it)) {
      const Resident displaced = *worst_it;
      *worst_it = r;
      result.assignment[static_cast<std::size_t>(r)] = h;
      result.assignment[static_cast<std::size_t>(displaced)] = -1;
      free_stack.push_back(displaced);
    } else {
      free_stack.push_back(r);
    }
  }
  KSTABLE_ENSURE(is_stable(inst, result),
                 "deferred acceptance produced an unstable assignment");
  return result;
}

bool is_stable(const HrInstance& inst, const HrResult& result) {
  const Resident n = inst.residents();
  const Hospital m = inst.hospitals();
  if (result.assignment.size() != static_cast<std::size_t>(n)) return false;
  // Capacity + roster/assignment consistency.
  for (Hospital h = 0; h < m; ++h) {
    const auto& roster = result.rosters[static_cast<std::size_t>(h)];
    if (static_cast<std::int32_t>(roster.size()) > inst.capacity(h)) return false;
    for (const Resident r : roster) {
      if (result.assignment[static_cast<std::size_t>(r)] != h) return false;
    }
  }
  // Blocking pairs.
  for (Resident r = 0; r < n; ++r) {
    const Hospital assigned = result.assignment[static_cast<std::size_t>(r)];
    const std::int32_t assigned_rank =
        assigned < 0 ? std::numeric_limits<std::int32_t>::max()
                     : inst.resident_rank(r, assigned);
    for (Hospital h = 0; h < m; ++h) {
      if (h == assigned || inst.resident_rank(r, h) >= assigned_rank) continue;
      const auto& roster = result.rosters[static_cast<std::size_t>(h)];
      if (static_cast<std::int32_t>(roster.size()) < inst.capacity(h)) {
        return false;  // free slot at a preferred hospital
      }
      for (const Resident q : roster) {
        if (inst.hospital_rank(h, r) < inst.hospital_rank(h, q)) return false;
      }
    }
  }
  return true;
}

HrInstance random_instance(Resident n, Hospital m, std::int32_t max_capacity,
                           Rng& rng, bool sufficient) {
  KSTABLE_REQUIRE(n >= 1 && m >= 1 && max_capacity >= 1,
                  "bad random HR instance parameters");
  std::vector<std::vector<Hospital>> resident_prefs(static_cast<std::size_t>(n));
  for (auto& prefs : resident_prefs) {
    prefs = rng.permutation(m);
  }
  std::vector<std::vector<Resident>> hospital_prefs(static_cast<std::size_t>(m));
  for (auto& prefs : hospital_prefs) {
    prefs = rng.permutation(n);
  }
  std::vector<std::int32_t> capacity(static_cast<std::size_t>(m));
  std::int64_t total = 0;
  for (auto& cap : capacity) {
    cap = static_cast<std::int32_t>(
        1 + rng.below(static_cast<std::uint64_t>(max_capacity)));
    total += cap;
  }
  if (sufficient) {
    // Round-robin top-ups until every resident fits.
    std::size_t h = 0;
    while (total < n) {
      ++capacity[h % capacity.size()];
      ++total;
      ++h;
    }
  }
  return HrInstance(std::move(resident_prefs), std::move(hospital_prefs),
                    std::move(capacity));
}

}  // namespace kstable::hr
