#include "gs/scan_gs.hpp"

#include "gs/simd.hpp"
#include "observability/metrics.hpp"
#include "prefs/implicit/pref_view.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::gs {

namespace {

#if KSTABLE_METRICS_ENABLED
/// Eager instrument registration (same pattern as gale_shapley.cpp): the
/// prefetch engine shares the queue engine's zero-allocation warm-path
/// contract, so even its FIRST warm solve must not allocate inside the
/// metrics registry.
const bool kScanInstrumentsWarm = [] {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("gs.scan.solves");
  registry.counter("gs.scan.proposals");
  registry.counter("gs.scan_simd.solves");
  registry.counter("gs.scan_simd.proposals");
  registry.counter("gs.prefetch.solves");
  registry.counter("gs.prefetch.proposals");
  return true;
}();
#endif

/// True iff responder r prefers proposer a over proposer b, determined by
/// walking the responder's list front-to-back through the view (no rank
/// table). On the implicit backend each step is one Feistel evaluation.
template <typename View>
bool scan_prefers(const View& view, Index r, Index n, Index a, Index b) {
  const auto row = view.resp_row(r);
  for (Index c = 0; c < n; ++c) {
    const Index candidate = view.resp_pref_in(row, c);
    if (candidate == a) return true;
    if (candidate == b) return false;
  }
  KSTABLE_REQUIRE(false, "neither " << a << " nor " << b
                                    << " on responder " << r << "'s list");
  return false;
}

/// Vectorized scan_prefers: position of the earliest of {a, b} on the list,
/// found 8/4 lanes at a time. Same verdict as the scalar scan bit for bit.
/// The kernel needs the row in contiguous memory; the implicit backend has
/// none, so it falls back to the scalar walk (identical earliest-hit
/// semantics, pinned by the DiffRunner implicit battery).
template <typename View>
bool scan_prefers_simd(const View& view, Index r, Index n, Index a, Index b) {
  if constexpr (View::kContiguousRows) {
    const auto list = view.resp_pref_span(r, n);
    const std::size_t pos =
        simd::first_of_pair(list.data(), list.size(), a, b);
    KSTABLE_REQUIRE(pos < list.size(), "neither " << a << " nor " << b
                                                  << " on responder " << r
                                                  << "'s list");
    return list[pos] == a;
  } else {
    return scan_prefers(view, r, n, a, b);
  }
}

/// Shared body of the two scan engines: textbook free-stack GS where the
/// accept/reject test is `prefers(view, r, n, challenger, holder)`. The
/// `prefers` callable is generic over the view so each backend/width gets
/// its own monomorphized loop.
template <typename Prefers>
GsResult scan_engine(const KPartiteInstance& inst, Gender i, Gender j,
                     const char* engine_label, Prefers&& prefers) {
  KSTABLE_REQUIRE(i != j && i >= 0 && j >= 0 && i < inst.genders() &&
                      j < inst.genders(),
                  "GS(" << i << ',' << j << ") invalid, k=" << inst.genders());
  const Index n = inst.per_gender();
  const WallTimer timer;
  GsResult result;
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});

  std::vector<Index> next_choice(static_cast<std::size_t>(n), Index{0});
  std::vector<Index> free_stack(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) {
    free_stack[static_cast<std::size_t>(p)] = n - 1 - p;
  }
  prefs::with_pref_view(inst, i, j, [&](const auto view) {
    while (!free_stack.empty()) {
      const Index p = free_stack.back();
      free_stack.pop_back();
      const Index r =
          view.pref_at(p, next_choice[static_cast<std::size_t>(p)]++);
      ++result.proposals;
      const Index holder = result.responder_match[static_cast<std::size_t>(r)];
      if (holder < 0) {
        result.responder_match[static_cast<std::size_t>(r)] = p;
        result.proposer_match[static_cast<std::size_t>(p)] = r;
      } else if (prefers(view, r, n, p, holder)) {
        result.responder_match[static_cast<std::size_t>(r)] = p;
        result.proposer_match[static_cast<std::size_t>(p)] = r;
        result.proposer_match[static_cast<std::size_t>(holder)] = -1;
        free_stack.push_back(holder);
      } else {
        free_stack.push_back(p);
      }
    }
  });
  result.rounds = result.proposals;
  result.engine = engine_label;
  result.wall_ms = timer.millis();
  return result;
}

/// Prefetch-pipelined queue loop, monomorphized on the preference view. The
/// proposal sequence is EXACTLY the queue engine's (same stack discipline:
/// a displaced holder or a rejected proposer goes next, otherwise the stack
/// top), so matchings, proposal counts, and traces are bitwise identical.
/// What changes is only *when* memory is asked for: each resolution stages
/// the next proposal — its pref cell was prefetched a step earlier, its two
/// rank-row cells are prefetched now, consumed at the next resolution —
/// and speculatively prefetches the pref cell of the likely
/// proposal-after-next (the stack top). Mispredicted prefetches touch a
/// wasted cache line; they can never change the outcome. On the implicit
/// backend every prefetch is a no-op (there is no table to warm) and the
/// staging collapses to the plain queue discipline.
template <typename View>
void prefetch_loop(const View view, Index n, const GsOptions& options,
                   GsWorkspace& workspace, GsResult& result) {
  workspace.next_choice.assign(static_cast<std::size_t>(n), Index{0});
  auto& free_stack = workspace.free_list;
  free_stack.resize(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) {
    free_stack[static_cast<std::size_t>(p)] = n - 1 - p;  // pop in index order
  }

  Index* const proposer_match = result.proposer_match.data();
  Index* const responder_match = result.responder_match.data();
  Index* const next_choice = workspace.next_choice.data();

  // Stage the first proposal (the queue engine's first pop).
  Index sp = free_stack.back();
  free_stack.pop_back();
  Index sr = view.pref_at(sp, 0);
  next_choice[static_cast<std::size_t>(sp)] = 1;
  auto srow = view.resp_row(sr);
  view.prefetch_rank(srow, sp);

  while (true) {
    const Index p = sp;
    const Index r = sr;
    const auto ranks = srow;
    ++result.proposals;
    if (options.control != nullptr) options.control->charge();

    const Index holder = responder_match[static_cast<std::size_t>(r)];
    Index next = -1;
    ProposalEvent event{p, r, false, -1};
    if (holder < 0) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      event.accepted = true;
    } else if (view.rank_in(ranks, p) < view.rank_in(ranks, holder)) {
      responder_match[static_cast<std::size_t>(r)] = p;
      proposer_match[static_cast<std::size_t>(p)] = r;
      proposer_match[static_cast<std::size_t>(holder)] = -1;
      next = holder;  // the queue engine pushes, then pops it right back
      event.accepted = true;
      event.displaced = holder;
    } else {
      next = p;  // rejected; retries its next choice immediately
    }
    if (options.trace != nullptr) options.trace->push_back(event);

    if (next < 0) {
      if (free_stack.empty()) break;
      next = free_stack.back();
      free_stack.pop_back();
    }

    // Stage `next`: its pref cell is hot (prefetched a step ago when it was
    // the speculative stack top, or it displaced/rejected through rank rows
    // just touched); issue the rank-cell prefetches it will need.
    KSTABLE_ASSERT(next_choice[static_cast<std::size_t>(next)] < n);
    sp = next;
    sr = view.pref_at(sp, next_choice[static_cast<std::size_t>(sp)]++);
    srow = view.resp_row(sr);
    view.prefetch_rank(srow, sp);
    const Index sholder = responder_match[static_cast<std::size_t>(sr)];
    if (sholder >= 0) {
      view.prefetch_rank(srow, sholder);
    }
    // Speculate one further: the proposal after next most likely comes off
    // the stack top — warm its next pref cell.
    if (!free_stack.empty()) {
      const Index spec = free_stack.back();
      view.prefetch_pref(spec, next_choice[static_cast<std::size_t>(spec)]);
    }
  }
}

}  // namespace

GsResult gale_shapley_scan(const KPartiteInstance& inst, Gender i, Gender j) {
  auto result = scan_engine(inst, i, j, "gs.scan",
                            [](const auto& view, Index r, Index n,
                               Index challenger, Index holder) {
                              return scan_prefers(view, r, n, challenger,
                                                  holder);
                            });
  KSTABLE_COUNTER_ADD("gs.scan.solves", 1);
  KSTABLE_COUNTER_ADD("gs.scan.proposals", result.proposals);
  return result;
}

GsResult gale_shapley_scan_simd(const KPartiteInstance& inst, Gender i,
                                Gender j) {
  auto result = scan_engine(inst, i, j, "gs.scan_simd",
                            [](const auto& view, Index r, Index n,
                               Index challenger, Index holder) {
                              return scan_prefers_simd(view, r, n, challenger,
                                                       holder);
                            });
  KSTABLE_COUNTER_ADD("gs.scan_simd.solves", 1);
  KSTABLE_COUNTER_ADD("gs.scan_simd.proposals", result.proposals);
  return result;
}

void gale_shapley_prefetch(const KPartiteInstance& inst, Gender i, Gender j,
                           const GsOptions& options, GsWorkspace& workspace,
                           GsResult& result) {
  KSTABLE_REQUIRE(i != j && i >= 0 && j >= 0 && i < inst.genders() &&
                      j < inst.genders(),
                  "GS(" << i << ',' << j << ") invalid, k=" << inst.genders());
  const WallTimer timer;
  const Index n = inst.per_gender();
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.proposals = 0;
  result.rounds = 0;
  if (options.trace != nullptr) {
    options.trace->reserve(options.trace->size() +
                           static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n));
  }

  prefs::with_pref_view(inst, i, j, [&](const auto view) {
    prefetch_loop(view, n, options, workspace, result);
  });
  result.rounds = result.proposals;
  result.engine = "gs.prefetch";
  result.wall_ms = timer.millis();
  KSTABLE_COUNTER_ADD("gs.prefetch.solves", 1);
  KSTABLE_COUNTER_ADD("gs.prefetch.proposals", result.proposals);
}

GsResult gale_shapley_prefetch(const KPartiteInstance& inst, Gender i,
                               Gender j, const GsOptions& options) {
  GsWorkspace workspace;
  GsResult result;
  gale_shapley_prefetch(inst, i, j, options, workspace, result);
  return result;
}

}  // namespace kstable::gs
