#include "gs/scan_gs.hpp"

#include "observability/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::gs {

namespace {

/// True iff responder (j, r) prefers proposer a over proposer b, determined
/// by scanning the responder's list front-to-back (no rank table).
bool scan_prefers(const KPartiteInstance& inst, Gender i, Gender j, Index r,
                  Index a, Index b) {
  for (const Index candidate : inst.pref_list({j, r}, i)) {
    if (candidate == a) return true;
    if (candidate == b) return false;
  }
  KSTABLE_REQUIRE(false, "neither " << a << " nor " << b
                                    << " on responder " << r << "'s list");
  return false;
}

}  // namespace

GsResult gale_shapley_scan(const KPartiteInstance& inst, Gender i, Gender j) {
  KSTABLE_REQUIRE(i != j && i >= 0 && j >= 0 && i < inst.genders() &&
                      j < inst.genders(),
                  "GS(" << i << ',' << j << ") invalid, k=" << inst.genders());
  const Index n = inst.per_gender();
  const WallTimer timer;
  GsResult result;
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});

  std::vector<Index> next_choice(static_cast<std::size_t>(n), Index{0});
  std::vector<Index> free_stack(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) {
    free_stack[static_cast<std::size_t>(p)] = n - 1 - p;
  }
  while (!free_stack.empty()) {
    const Index p = free_stack.back();
    free_stack.pop_back();
    const auto list = inst.pref_list({i, p}, j);
    const Index r = list[static_cast<std::size_t>(
        next_choice[static_cast<std::size_t>(p)]++)];
    ++result.proposals;
    const Index holder = result.responder_match[static_cast<std::size_t>(r)];
    if (holder < 0) {
      result.responder_match[static_cast<std::size_t>(r)] = p;
      result.proposer_match[static_cast<std::size_t>(p)] = r;
    } else if (scan_prefers(inst, i, j, r, p, holder)) {
      result.responder_match[static_cast<std::size_t>(r)] = p;
      result.proposer_match[static_cast<std::size_t>(p)] = r;
      result.proposer_match[static_cast<std::size_t>(holder)] = -1;
      free_stack.push_back(holder);
    } else {
      free_stack.push_back(p);
    }
  }
  result.rounds = result.proposals;
  result.engine = "gs.scan";
  result.wall_ms = timer.millis();
  KSTABLE_COUNTER_ADD("gs.scan.solves", 1);
  KSTABLE_COUNTER_ADD("gs.scan.proposals", result.proposals);
  return result;
}

}  // namespace kstable::gs
