#include "gs/parallel_gs.hpp"

#include <atomic>
#include <cstdint>
#include <vector>

#include "observability/metrics.hpp"
#include "prefs/implicit/pref_view.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::gs {

namespace {

/// Packs (rank, proposer) so that numerically smaller = better offer.
constexpr std::uint64_t pack(std::int32_t rank, Index proposer) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) |
         static_cast<std::uint32_t>(proposer);
}
constexpr Index unpack_proposer(std::uint64_t slot) {
  return static_cast<Index>(slot & 0xffffffffULL);
}
constexpr std::uint64_t kEmptySlot = ~0ULL;

/// Lock-free fetch-min on a responder slot.
void offer(std::atomic<std::uint64_t>& slot, std::uint64_t packed) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (packed < current &&
         !slot.compare_exchange_weak(current, packed,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

GsResult gale_shapley_parallel(const KPartiteInstance& inst, Gender i, Gender j,
                               ThreadPool& pool, std::size_t chunk,
                               resilience::ExecControl* control) {
  const WallTimer timer;
  KSTABLE_REQUIRE(i != j && i >= 0 && j >= 0 && i < inst.genders() &&
                      j < inst.genders(),
                  "GS(" << i << ',' << j << ") invalid, k=" << inst.genders());
  KSTABLE_REQUIRE(chunk >= 1, "chunk must be >= 1");
  const Index n = inst.per_gender();

  std::vector<std::atomic<std::uint64_t>> slots(static_cast<std::size_t>(n));
  for (auto& slot : slots) slot.store(kEmptySlot, std::memory_order_relaxed);

  std::vector<Index> next_choice(static_cast<std::size_t>(n), Index{0});
  std::vector<Index> free_list(static_cast<std::size_t>(n));
  for (Index p = 0; p < n; ++p) free_list[static_cast<std::size_t>(p)] = p;

  GsResult result;
  result.proposer_gender = i;
  result.responder_gender = j;
  result.proposer_match.assign(static_cast<std::size_t>(n), Index{-1});
  result.responder_match.assign(static_cast<std::size_t>(n), Index{-1});

  // One backend + width dispatch up front; the per-chunk tasks then run the
  // monomorphized view (pure reads, safe to share across the pool — the
  // implicit generator evaluates statelessly).
  prefs::with_pref_view(inst, i, j, [&](const auto view) {
  while (!free_list.empty()) {
    ++result.rounds;
    result.proposals += static_cast<std::int64_t>(free_list.size());
    // Charged at the barrier, before dispatch: the abort unwinds with no
    // tasks in flight.
    if (control != nullptr) {
      control->charge(static_cast<std::int64_t>(free_list.size()));
    }

    const std::size_t tasks = (free_list.size() + chunk - 1) / chunk;
    pool.for_each_index(tasks, [&](std::size_t t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = std::min(begin + chunk, free_list.size());
      for (std::size_t idx = begin; idx < end; ++idx) {
        const Index p = free_list[idx];
        // Only this task touches p's proposal pointer (free_list is disjoint
        // across chunks), so no synchronization is needed here.
        const Index r =
            view.pref_at(p, next_choice[static_cast<std::size_t>(p)]++);
        const std::int32_t rank =
            static_cast<std::int32_t>(view.rank_in(view.resp_row(r), p));
        offer(slots[static_cast<std::size_t>(r)], pack(rank, p));
      }
    });

    // Barrier passed: derive the new engagement state from the slots. A
    // proposer is engaged iff it currently owns some responder's slot.
    std::fill(result.proposer_match.begin(), result.proposer_match.end(),
              Index{-1});
    for (Index r = 0; r < n; ++r) {
      const std::uint64_t slot =
          slots[static_cast<std::size_t>(r)].load(std::memory_order_relaxed);
      if (slot == kEmptySlot) {
        result.responder_match[static_cast<std::size_t>(r)] = -1;
        continue;
      }
      const Index p = unpack_proposer(slot);
      result.responder_match[static_cast<std::size_t>(r)] = p;
      result.proposer_match[static_cast<std::size_t>(p)] = r;
    }
    free_list.clear();
    for (Index p = 0; p < n; ++p) {
      if (result.proposer_match[static_cast<std::size_t>(p)] < 0) {
        KSTABLE_ASSERT(next_choice[static_cast<std::size_t>(p)] < n);
        free_list.push_back(p);
      }
    }
  }
  });

  for (Index r = 0; r < n; ++r) {
    KSTABLE_ENSURE(result.responder_match[static_cast<std::size_t>(r)] >= 0,
                   "responder " << r << " unmatched after parallel GS");
  }
  result.engine = "gs.parallel";
  result.wall_ms = timer.millis();
  KSTABLE_COUNTER_ADD("gs.parallel.solves", 1);
  KSTABLE_COUNTER_ADD("gs.parallel.proposals", result.proposals);
  KSTABLE_COUNTER_ADD("gs.parallel.rounds", result.rounds);
  return result;
}

}  // namespace kstable::gs
