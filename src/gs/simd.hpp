// Vectorized row-scan kernels for the memory-layout engines (E19).
//
// Two primitive scans cover the hot loops that walk whole preference/rank
// rows instead of doing O(1) rank lookups:
//
//   * first_of_pair(row, len, a, b) — position of the first entry equal to a
//     or b. This IS the responder's accept/reject test of the scan engine
//     ("which of the two suitors appears first on my list"), vectorized:
//     8 int32 lanes per AVX2 step, 4 per SSE2 step, movemask + ctz to
//     recover the earliest lane.
//   * argmin_u16 / argmin_u32(row, len) — index of the FIRST minimum of a
//     rank row (vectorized min-scan; two passes: lane-wise min reduction,
//     then first-position-of-min). E19 uses it as the streaming-bandwidth
//     probe that contextualizes bytes/proposal, and the layout tests pin it
//     against the scalar reference.
//
// Every kernel has a scalar reference implementation, and the vector paths
// return bit-identical results (first occurrence, exact index) — dispatch
// can never change a matching. Runtime dispatch: best_isa() probes CPU
// support once (overridable with KSTABLE_SIMD=scalar|sse2|avx2 for tests
// and A/B runs); the dispatching wrappers route to the best supported
// kernel. Non-x86 builds compile the scalar path only — same results,
// no intrinsics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#define KSTABLE_SIMD_X86 1
#include <immintrin.h>
#else
#define KSTABLE_SIMD_X86 0
#endif

#include "prefs/ids.hpp"

namespace kstable::gs::simd {

enum class Isa : std::uint8_t { scalar, sse2, avx2 };

[[nodiscard]] constexpr const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::scalar: return "scalar";
    case Isa::sse2: return "sse2";
    case Isa::avx2: return "avx2";
  }
  return "unknown";
}

/// Read-mostly software prefetch with low temporal locality: rank rows are
/// touched twice per proposal and then usually not again for a long time.
inline void prefetch_ro(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

// ---------------------------------------------------------------- scalar --

/// Position of the first entry of `row[0..len)` equal to `a` or `b`, or
/// `len` if neither occurs.
inline std::size_t first_of_pair_scalar(const Index* row, std::size_t len,
                                        Index a, Index b) noexcept {
  for (std::size_t i = 0; i < len; ++i) {
    if (row[i] == a || row[i] == b) return i;
  }
  return len;
}

template <typename R>
inline std::size_t argmin_scalar(const R* row, std::size_t len) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < len; ++i) {
    if (row[i] < row[best]) best = i;
  }
  return best;
}

#if KSTABLE_SIMD_X86

// ------------------------------------------------------------------ sse2 --

__attribute__((target("sse2"))) inline std::size_t first_of_pair_sse2(
    const Index* row, std::size_t len, Index a, Index b) noexcept {
  const __m128i va = _mm_set1_epi32(a);
  const __m128i vb = _mm_set1_epi32(b);
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
    const __m128i hit =
        _mm_or_si128(_mm_cmpeq_epi32(v, va), _mm_cmpeq_epi32(v, vb));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(hit));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  for (; i < len; ++i) {
    if (row[i] == a || row[i] == b) return i;
  }
  return len;
}

// ------------------------------------------------------------------ avx2 --

__attribute__((target("avx2"))) inline std::size_t first_of_pair_avx2(
    const Index* row, std::size_t len, Index a, Index b) noexcept {
  const __m256i va = _mm256_set1_epi32(a);
  const __m256i vb = _mm256_set1_epi32(b);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi32(v, va),
                                        _mm256_cmpeq_epi32(v, vb));
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(hit));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  for (; i < len; ++i) {
    if (row[i] == a || row[i] == b) return i;
  }
  return len;
}

/// Vectorized min-scan, pass 1: unsigned 16-bit lane minimum of the row;
/// pass 2: first index holding that minimum.
__attribute__((target("avx2"))) inline std::size_t argmin_u16_avx2(
    const std::uint16_t* row, std::size_t len) noexcept {
  if (len < 16) return argmin_scalar(row, len);
  __m256i vmin = _mm256_set1_epi16(static_cast<short>(0xFFFF));
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    vmin = _mm256_min_epu16(vmin, v);
  }
  alignas(32) std::uint16_t lanes[16];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  std::uint16_t m = lanes[0];
  for (int l = 1; l < 16; ++l) m = lanes[l] < m ? lanes[l] : m;
  for (; i < len; ++i) m = row[i] < m ? row[i] : m;
  // Pass 2: earliest position equal to m.
  const __m256i vm = _mm256_set1_epi16(static_cast<short>(m));
  for (std::size_t j = 0; j + 16 <= len; j += 16) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, vm));
    if (mask != 0) {
      return j + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask))) /
                     2;
    }
  }
  for (std::size_t j = len - len % 16; j < len; ++j) {
    if (row[j] == m) return j;
  }
  return argmin_scalar(row, len);  // unreachable; keeps the compiler honest
}

__attribute__((target("avx2"))) inline std::size_t argmin_u32_avx2(
    const std::uint32_t* row, std::size_t len) noexcept {
  if (len < 8) return argmin_scalar(row, len);
  __m256i vmin = _mm256_set1_epi32(-1);  // all-ones = UINT32_MAX
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    vmin = _mm256_min_epu32(vmin, v);
  }
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  std::uint32_t m = lanes[0];
  for (int l = 1; l < 8; ++l) m = lanes[l] < m ? lanes[l] : m;
  for (; i < len; ++i) m = row[i] < m ? row[i] : m;
  const __m256i vm = _mm256_set1_epi32(static_cast<int>(m));
  for (std::size_t j = 0; j + 8 <= len; j += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j));
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(
        _mm256_cmpeq_epi32(v, vm)));
    if (mask != 0) {
      return j + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (std::size_t j = len - len % 8; j < len; ++j) {
    if (row[j] == m) return j;
  }
  return argmin_scalar(row, len);  // unreachable
}

#endif  // KSTABLE_SIMD_X86

// -------------------------------------------------------------- dispatch --

/// True iff `isa` can run on this machine (scalar always can).
inline bool isa_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::scalar: return true;
#if KSTABLE_SIMD_X86
    case Isa::sse2: return __builtin_cpu_supports("sse2") != 0;
    case Isa::avx2: return __builtin_cpu_supports("avx2") != 0;
#else
    case Isa::sse2:
    case Isa::avx2: return false;
#endif
  }
  return false;
}

/// Best supported ISA, probed once. KSTABLE_SIMD=scalar|sse2|avx2 pins the
/// choice (ignored if the hardware lacks it) so tests and A/B benchmarks can
/// exercise every path.
inline Isa best_isa() noexcept {
  static const Isa chosen = [] {
    Isa best = Isa::scalar;
    if (isa_supported(Isa::sse2)) best = Isa::sse2;
    if (isa_supported(Isa::avx2)) best = Isa::avx2;
    if (const char* env = std::getenv("KSTABLE_SIMD")) {
      const std::string_view want(env);
      for (const Isa isa : {Isa::scalar, Isa::sse2, Isa::avx2}) {
        if (want == to_string(isa) && isa_supported(isa)) return isa;
      }
    }
    return best;
  }();
  return chosen;
}

inline std::size_t first_of_pair(const Index* row, std::size_t len, Index a,
                                 Index b) noexcept {
#if KSTABLE_SIMD_X86
  switch (best_isa()) {
    case Isa::avx2: return first_of_pair_avx2(row, len, a, b);
    case Isa::sse2: return first_of_pair_sse2(row, len, a, b);
    case Isa::scalar: break;
  }
#endif
  return first_of_pair_scalar(row, len, a, b);
}

inline std::size_t argmin_u16(const std::uint16_t* row,
                              std::size_t len) noexcept {
#if KSTABLE_SIMD_X86
  if (best_isa() == Isa::avx2) return argmin_u16_avx2(row, len);
#endif
  return argmin_scalar(row, len);
}

inline std::size_t argmin_u32(const std::uint32_t* row,
                              std::size_t len) noexcept {
#if KSTABLE_SIMD_X86
  if (best_isa() == Isa::avx2) return argmin_u32_avx2(row, len);
#endif
  return argmin_scalar(row, len);
}

}  // namespace kstable::gs::simd
