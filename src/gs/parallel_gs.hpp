// Speculative parallel Gale-Shapley.
//
// The paper notes (§IV.C) that pairwise matching itself is hard to
// parallelize — no known parallel algorithm beats O(n²) worst case — but
// proposal *rounds* are embarrassingly parallel: within a round every free
// proposer proposes concurrently, and each responder resolves its suitors
// with an atomic "best offer" slot (packed rank|proposer fetch-min). Because
// GS is confluent — the proposer-optimal outcome is independent of proposal
// order — this engine returns bit-identical matchings to the sequential
// engines; tests assert that equivalence.
#pragma once

#include "gs/gale_shapley.hpp"
#include "parallel/thread_pool.hpp"

namespace kstable::gs {

/// Parallel GS(i, j) over `pool`. Proposals within a round run concurrently;
/// rounds are separated by barriers. `chunk` proposers are handled per task
/// (tune to amortize scheduling overhead). A non-null `control` is charged
/// one batch per round at the barrier (single-threaded, so the deadline check
/// never races the workers) and aborts the solve via ExecutionAborted.
GsResult gale_shapley_parallel(const KPartiteInstance& inst, Gender i, Gender j,
                               ThreadPool& pool, std::size_t chunk = 256,
                               resilience::ExecControl* control = nullptr);

}  // namespace kstable::gs
