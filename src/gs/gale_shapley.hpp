// Gale-Shapley engines for one binary binding GS(i, j) between two genders of
// a KPartiteInstance (paper §II.A).
//
// Three implementations with identical outcomes (GS is confluent: the
// proposer-optimal matching does not depend on proposal order):
//   * queue engine  — textbook free-list iteration, O(n²) worst case;
//   * round engine  — the paper's description: per round, every unengaged
//                     proposer proposes, every responder keeps the best
//                     (McVitie-Wilson style rounds);
//   * parallel engine (parallel_gs.hpp) — speculative concurrent proposals
//                     with atomic responder slots.
// All engines count accumulated proposals, the unit of Theorem 3's
// (k-1)n² bound.
#pragma once

#include <cstdint>
#include <vector>

#include "observability/telemetry.hpp"
#include "prefs/kpartite.hpp"
#include "resilience/control.hpp"

namespace kstable::gs {

/// One proposal event, for tracing small examples (E1).
struct ProposalEvent {
  Index proposer = -1;
  Index responder = -1;
  bool accepted = false;   ///< responder now holds proposer
  Index displaced = -1;    ///< previous holder set free (-1 if none)

  friend bool operator==(const ProposalEvent&,
                         const ProposalEvent&) = default;
};

/// Result of one binary binding between proposer gender and responder gender.
struct GsResult {
  Gender proposer_gender = -1;
  Gender responder_gender = -1;
  /// proposer_match[p] = responder index matched to proposer p.
  std::vector<Index> proposer_match;
  /// responder_match[r] = proposer index matched to responder r.
  std::vector<Index> responder_match;
  /// Accumulated proposals (the iteration count of §II.A / Theorem 3).
  std::int64_t proposals = 0;
  /// Number of proposal rounds (1 per proposal for the queue engine).
  std::int64_t rounds = 0;
  /// Wall time of the engine run in milliseconds (0 for cache replays).
  double wall_ms = 0.0;
  /// Static-lifetime label of the engine that produced this result
  /// ("gs.queue", "gs.rounds", "gs.parallel", "gs.scan").
  const char* engine = "";
};

/// Assembles the per-solve telemetry record for one engine run: engine label
/// and wall time from `result`, shape from (k, n). Standalone GS callers and
/// the binding drivers share this one definition of what a GS solve reports.
[[nodiscard]] obs::SolveTelemetry solve_telemetry(const GsResult& result,
                                                  Gender k, Index n);

struct GsOptions {
  /// If non-null, every proposal event is appended (small instances only).
  /// Capacity for the Theorem 3 per-binding bound (n² events) is reserved up
  /// front, so traced runs do not grow the vector geometrically.
  std::vector<ProposalEvent>* trace = nullptr;
  /// If non-null, charged one unit per proposal; throws ExecutionAborted on
  /// deadline/budget/cancel (resilience/control.hpp). Null = unlimited.
  resilience::ExecControl* control = nullptr;
};

/// Reusable scratch state for the sequential engines. The engines only ever
/// .assign()/.resize() these buffers, so after one solve at size n ("warm-up")
/// every later solve at size <= n reuses the capacity: combined with the
/// into-style overloads below, a warm workspace + warm result makes
/// gale_shapley_queue / gale_shapley_rounds perform zero heap allocations per
/// solve (asserted by the allocation-counting test). A workspace belongs to
/// one thread at a time; it carries no instance state and may be reused
/// across instances, gender pairs, and engines freely.
struct GsWorkspace {
  std::vector<Index> next_choice;  ///< per-proposer next rank to try
  std::vector<Index> free_list;    ///< free proposers (stack / current round)
  std::vector<Index> still_free;   ///< rounds engine: next round's free list

  /// Pre-grows every buffer to capacity `n` (optional; the first solve warms
  /// the workspace as a side effect anyway).
  void warm(Index n) {
    const auto cap = static_cast<std::size_t>(n);
    next_choice.reserve(cap);
    free_list.reserve(cap);
    still_free.reserve(cap);
  }
};

/// Pre-grows a result's match arrays so an into-style solve at size <= n
/// does not allocate.
inline void warm_result(GsResult& result, Index n) {
  const auto cap = static_cast<std::size_t>(n);
  result.proposer_match.reserve(cap);
  result.responder_match.reserve(cap);
}

/// Queue-based Gale-Shapley: proposers from gender `i` propose to gender `j`.
GsResult gale_shapley_queue(const KPartiteInstance& inst, Gender i, Gender j,
                            const GsOptions& options = {});

/// Round-based Gale-Shapley: all currently-free proposers propose each round.
GsResult gale_shapley_rounds(const KPartiteInstance& inst, Gender i, Gender j,
                             const GsOptions& options = {});

/// Into-style variants: identical outcomes, but all scratch state lives in
/// `workspace` and the outcome overwrites `result` in place (capacity
/// reused). Zero heap allocations once workspace and result are warm.
void gale_shapley_queue(const KPartiteInstance& inst, Gender i, Gender j,
                        const GsOptions& options, GsWorkspace& workspace,
                        GsResult& result);
void gale_shapley_rounds(const KPartiteInstance& inst, Gender i, Gender j,
                         const GsOptions& options, GsWorkspace& workspace,
                         GsResult& result);

/// True iff `result` is a stable matching of genders (i, j) under `inst`:
/// perfect and with no blocking pair. (A cheaper special case of the
/// analysis-module checkers, kept here so the engines are self-verifying.)
bool is_stable_binding(const KPartiteInstance& inst, const GsResult& result);

}  // namespace kstable::gs
