#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace kstable {

namespace {
/// Set once per worker thread, never cleared: a pool worker stays a pool
/// worker for its whole lifetime, and the flag answers "am I running inside
/// some pool?" regardless of which pool owns the thread.
thread_local bool t_in_pool_worker = false;
}  // namespace

bool ThreadPool::in_worker_thread() noexcept { return t_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // One shared state block; the last task to finish releases the waiter.
  struct Barrier {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = count;

  for (std::size_t i = 0; i < count; ++i) {
    enqueue([barrier, &fn, i] {
      try {
        KSTABLE_FAULT_POINT("thread_pool/for_each_index");
        fn(i);
      } catch (...) {
        std::scoped_lock lock(barrier->m);
        if (!barrier->error) barrier->error = std::current_exception();
      }
      std::scoped_lock lock(barrier->m);
      if (--barrier->remaining == 0) barrier->done.notify_all();
    });
  }
  std::unique_lock lock(barrier->m);
  barrier->done.wait(lock, [&barrier] { return barrier->remaining == 0; });
  if (barrier->error) std::rethrow_exception(barrier->error);
}

}  // namespace kstable
