// Fixed-size thread pool (C++ Core Guidelines CP.40/CP.41: persistent workers,
// no per-task thread creation; CP.20/CP.42: RAII locks, condition-variable
// waits). Used by the parallel binding executor and the speculative parallel
// Gale-Shapley engine.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "resilience/fault_injection.hpp"

namespace kstable {

/// A fixed pool of worker threads draining a FIFO task queue.
/// Destruction joins all workers after the queue drains (CP.26: no detach).
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// True when the calling thread is a worker of ANY ThreadPool. Parallel
  /// drivers (TreeSweep, the speculative ladder, parallel pair probes) use
  /// this to detect pool-within-pool nesting — e.g. a sweep running inside a
  /// BatchSolver item — and degrade to their sequential path instead of
  /// queueing a second thread complement onto an already-saturated pool
  /// (which oversubscribes at best and deadlocks a fixed-size pool at worst).
  [[nodiscard]] static bool in_worker_thread() noexcept;

  /// Enqueues a task; returns a future for its result. Exceptions the task
  /// throws (including the "thread_pool/task" fault point) are captured into
  /// the future and rethrown by get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [inner = std::forward<F>(fn)]() mutable -> R {
          KSTABLE_FAULT_POINT("thread_pool/task");
          return inner();
        });
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// complete; count == 0 is a no-op. Exceptions from tasks — including the
  /// "thread_pool/for_each_index" fault point — are rethrown (first one
  /// wins), after every task has finished.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  /// Queues a raw task. for_each_index uses this directly (not submit) so
  /// its completion barrier also covers injected task faults.
  void enqueue(std::function<void()> task);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kstable
