// PRAM cost model for the parallel binding process (paper §IV.C).
//
// The paper analyzes the iterative binding GS algorithm on an EREW PRAM with
// k-1 processors: each gender's preference data may be touched by at most one
// binary matching per round, so a round schedule is a proper edge coloring of
// the binding tree and the total charged iteration count is bounded by Δ·n²
// (Corollary 1); a path tree needs only two rounds (Corollary 2). A CREW
// PRAM allows concurrent reads, collapsing the schedule to one round; an EREW
// machine can emulate that by first replicating each gender's data in
// ceil(log2 Δ) doubling rounds.
//
// This module *charges* those costs exactly from measured per-edge iteration
// counts, so the corollaries become measurable experiment outputs rather than
// assumptions.
#pragma once

#include <cstdint>
#include <span>

#include "graph/scheduling.hpp"

namespace kstable::pram {

enum class Model {
  erew,  ///< exclusive read, exclusive write: rounds = edge coloring
  crew,  ///< concurrent read: all bindings in a single round
  erew_emulating_crew,  ///< EREW + ceil(log2 Δ) replication rounds, then 1 round
};

/// Cost report for one parallel binding execution.
struct CostReport {
  std::int64_t matching_rounds = 0;     ///< rounds spent running GS bindings
  std::int64_t replication_rounds = 0;  ///< data-doubling rounds (CREW emulation)
  std::int64_t charged_iterations = 0;  ///< sum over rounds of max in-round iterations
  std::int64_t replication_cost = 0;    ///< replication_rounds * n (copy n entries/round)
  std::int64_t sequential_iterations = 0;  ///< plain sum of all edge iterations

  /// Total parallel cost under the model.
  [[nodiscard]] std::int64_t total_cost() const {
    return charged_iterations + replication_cost;
  }
  /// Speedup of the charged schedule over sequential execution.
  [[nodiscard]] double model_speedup() const {
    return total_cost() == 0
               ? 1.0
               : static_cast<double>(sequential_iterations) /
                     static_cast<double>(total_cost());
  }
};

/// Charges the PRAM cost of executing `structure`'s bindings, where
/// `edge_iterations[e]` is the measured GS iteration count of edge e, under
/// `model`. `n` is members-per-gender (unit of one replication round's copy
/// cost). For Model::erew the schedule is the Δ-round edge coloring; for the
/// CREW variants all edges share one matching round.
CostReport charge(const BindingStructure& structure,
                  std::span<const std::int64_t> edge_iterations, Model model,
                  Index n);

/// ceil(log2 x) for x >= 1.
std::int32_t ceil_log2(std::int64_t x);

}  // namespace kstable::pram
