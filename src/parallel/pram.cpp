#include "parallel/pram.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kstable::pram {

std::int32_t ceil_log2(std::int64_t x) {
  KSTABLE_REQUIRE(x >= 1, "ceil_log2 needs x >= 1, got " << x);
  std::int32_t bits = 0;
  std::int64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

CostReport charge(const BindingStructure& structure,
                  std::span<const std::int64_t> edge_iterations, Model model,
                  Index n) {
  const auto& edges = structure.edges();
  KSTABLE_REQUIRE(edge_iterations.size() == edges.size(),
                  "edge_iterations has " << edge_iterations.size()
                                         << " entries for " << edges.size()
                                         << " edges");
  CostReport report;
  for (const std::int64_t iters : edge_iterations) {
    KSTABLE_REQUIRE(iters >= 0, "negative iteration count " << iters);
    report.sequential_iterations += iters;
  }
  if (edges.empty()) return report;

  switch (model) {
    case Model::erew: {
      const auto schedule = sched::color_forest(structure);
      report.matching_rounds =
          static_cast<std::int64_t>(schedule.round_count());
      for (const auto& round : schedule.rounds) {
        std::int64_t round_max = 0;
        for (const std::size_t idx : round) {
          round_max = std::max(round_max, edge_iterations[idx]);
        }
        report.charged_iterations += round_max;
      }
      break;
    }
    case Model::crew: {
      report.matching_rounds = 1;
      report.charged_iterations =
          *std::max_element(edge_iterations.begin(), edge_iterations.end());
      break;
    }
    case Model::erew_emulating_crew: {
      // Doubling replication: after r rounds each gender's data exists in 2^r
      // copies; Δ copies are needed so every incident binding reads its own.
      const std::int32_t delta = structure.max_degree();
      report.replication_rounds = ceil_log2(delta);
      report.replication_cost =
          report.replication_rounds * static_cast<std::int64_t>(n);
      report.matching_rounds = 1;
      report.charged_iterations =
          *std::max_element(edge_iterations.begin(), edge_iterations.end());
      break;
    }
  }
  return report;
}

}  // namespace kstable::pram
