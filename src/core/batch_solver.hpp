// BatchSolver: solve many independent k-partite instances across the thread
// pool — the first serving-shaped API (ROADMAP: heavy traffic, many solves
// per second, not one big solve).
//
// Execution model: one task per instance over ThreadPool::for_each_index.
// Each pool worker keeps a thread_local gs::GsWorkspace, so after the first
// item warms it the per-edge GS runs allocate nothing; each *item* gets its
// own GsEdgeCache (caches are per-instance by contract) and its own
// ExecControl, so one slow or poisoned instance times out alone without
// stalling the batch. Abort-class failures (deadline, proposal budget,
// cancellation) never throw out of solve(): the per-item SolveStatus carries
// them, exactly like resilience::FallbackReport does for single solves.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/binding.hpp"
#include "observability/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/matching.hpp"
#include "resilience/control.hpp"

namespace kstable::core {

/// How each item's binding tree is chosen.
enum class BatchTree : std::uint8_t {
  path,        ///< trees::path(k) — the library default, no probe overhead
  cost_aware,  ///< probe all pairs, bind the min-cost tree; with the per-item
               ///< cache on, the tree's edges replay from the probes for free
  sweep_best   ///< sweep_all_trees best_cost fold: the exact argmin over all
               ///< k^(k-2) trees (small k only). Runs inside a pool worker,
               ///< so TreeSweep's nested-pool guard keeps each item's sweep
               ///< sequential — the batch stays one-task-per-item.
};

struct BatchOptions {
  /// Sequential engine per item. GsEngine::parallel is rejected — items
  /// already saturate the pool, and nesting pool work inside pool tasks can
  /// deadlock a fixed-size pool.
  GsEngine engine = GsEngine::queue;
  BatchTree tree = BatchTree::path;
  /// Budget applied to every item (each gets a fresh ExecControl), unless
  /// overridden per item below. Default: unlimited.
  resilience::Budget per_item{};
  /// Optional per-item budgets; when non-empty, must match the batch size.
  std::vector<resilience::Budget> per_item_budgets;
  /// Shared across all items: cancelling aborts every unfinished item.
  resilience::CancellationToken token{};
  /// Attach a per-item GsEdgeCache. Pays off whenever an item solves the
  /// same edge twice (BatchTree::cost_aware probes then binds); pure
  /// single-tree path solves see only compulsory misses.
  bool use_cache = true;
};

/// Outcome of one batch item.
struct BatchItemResult {
  /// ok, or aborted with reason/detail — mirrors the item's solo-run status
  /// under the same budget (asserted by the TSan batch tests).
  resilience::SolveStatus status;
  /// Set iff status.ok().
  std::optional<KaryMatching> matching;
  /// Theorem 3's unit for the item's solve (0 if aborted before any edge).
  std::int64_t total_proposals = 0;
  /// Per-item edge-cache outcomes (0/0 with use_cache off).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Per-item record (engine "batch.item"); aborted items carry the abort
  /// status with the proposals spent before the cutoff.
  obs::SolveTelemetry telemetry;
};

class BatchSolver {
 public:
  /// The solver borrows `pool` (not owned); one BatchSolver per pool is the
  /// expected shape, but solve() is re-entrant and stateless apart from the
  /// workers' thread_local workspaces.
  explicit BatchSolver(ThreadPool& pool) : pool_(pool) {}

  /// Solves every instance; results are index-aligned with `instances`.
  /// Abort-class failures land in the item's status; ContractViolation (a
  /// programming error) propagates.
  std::vector<BatchItemResult> solve(
      std::span<const KPartiteInstance> instances,
      const BatchOptions& options = {});

 private:
  ThreadPool& pool_;
};

}  // namespace kstable::core
