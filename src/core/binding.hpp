// Iterative Binding GS — Algorithm 1 of the paper (§IV.A) and its
// generalization to arbitrary binding structures for the Theorem 4 tightness
// experiments (§IV.B).
//
// Algorithm 1 applies one binary Gale-Shapley matching per edge of a spanning
// binding tree over the gender set, then converts the pair set into k-ary
// families through the "same matching tuple" equivalence relation
// (equivalence.hpp). Theorem 2: the result is always a stable k-ary matching.
// Theorem 3: it takes at most (k-1)n² accumulated proposals. Theorem 4: k-1
// bindings are tight — bind_structure on a cyclic edge set generally yields
// inconsistent equivalence classes, and on a proper forest the index-assembled
// matching is generally unstable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/equivalence.hpp"
#include "graph/binding_structure.hpp"
#include "gs/gale_shapley.hpp"
#include "observability/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"
#include "resilience/control.hpp"

namespace kstable::core {

/// Which Gale-Shapley engine runs each binary binding. `prefetch` is the
/// queue algorithm over the compact rank layout with a software-prefetch
/// pipeline (gs/scan_gs.hpp) — sequential like queue/rounds, bitwise
/// identical to queue, built for large-n DRAM-bound solves.
enum class GsEngine { queue, rounds, parallel, prefetch };

/// Number of GsEngine values. Keep NEXT TO the enum and update together when
/// adding an engine: GsEdgeCache sizes its slot table from this and
/// static_asserts against its own compiled-in constant, so a fifth engine
/// cannot silently alias cache slots.
inline constexpr std::size_t kGsEngineCount = 4;

/// Static-lifetime display/metrics label of an engine.
[[nodiscard]] constexpr const char* to_string(GsEngine engine) noexcept {
  switch (engine) {
    case GsEngine::queue: return "queue";
    case GsEngine::rounds: return "rounds";
    case GsEngine::parallel: return "parallel";
    case GsEngine::prefetch: return "prefetch";
  }
  return "unknown";
}

class GsEdgeCache;  // core/gs_cache.hpp
struct BindingOptions;

/// Warm-start hook for incremental re-stabilization (src/incremental/,
/// docs/INCREMENTAL.md). When BindingOptions::warm_start is attached,
/// run_binding asks the provider for each oriented edge BEFORE running the
/// selected engine cold: the provider may return a complete GsResult derived
/// from a previous solve (an untouched edge's old result reused verbatim, or
/// a warm GS continuation re-enqueueing only the proposers a preference
/// delta dirtied), or nullopt to fall back to the cold engine. Contract: a
/// returned result must be bitwise-identical (match arrays) to what the cold
/// engine would produce on `inst` — GS confluence makes the warm
/// continuation satisfy this, and the DiffRunner churn battery pins it. The
/// provider must be safe to call concurrently (TreeSweep workers share one
/// BindingOptions); implementations are const and use atomic counters.
class WarmStartProvider {
 public:
  virtual ~WarmStartProvider() = default;
  [[nodiscard]] virtual std::optional<gs::GsResult> warm_solve(
      const KPartiteInstance& inst, GenderEdge edge,
      const BindingOptions& options) const = 0;
};

struct BindingOptions {
  GsEngine engine = GsEngine::queue;
  /// Required when engine == GsEngine::parallel.
  ThreadPool* pool = nullptr;
  /// Optional deadline/budget/cancellation control, threaded into every
  /// per-edge GS run and checked between edges. Throws ExecutionAborted.
  resilience::ExecControl* control = nullptr;
  /// Optional per-instance memo of per-edge GS outcomes (core/gs_cache.hpp).
  /// Must be built for THIS instance's gender count and never shared across
  /// instances. Cache hits skip the GS run entirely — including its
  /// ExecControl charges — so multi-tree retries get already-solved edges
  /// for free. Semantically invisible: matchings are bitwise-identical with
  /// and without a cache.
  GsEdgeCache* cache = nullptr;
  /// Optional scratch buffers for the sequential engines (gs::GsWorkspace);
  /// a warm workspace makes every per-edge GS run allocation-free. Owned by
  /// the calling thread; ignored by GsEngine::parallel.
  gs::GsWorkspace* workspace = nullptr;
  /// If non-null, every per-edge proposal event is appended (small instances
  /// only). Cache hits replay no events — only freshly computed edges trace.
  std::vector<gs::ProposalEvent>* trace = nullptr;
  /// Optional warm-start provider (incremental::DeltaWarmStart): consulted
  /// per edge before the cold engine, composing with the cache (a cache hit
  /// still wins; on a miss the provider's result is what gets published).
  const WarmStartProvider* warm_start = nullptr;
};

/// Result of binding a structure (tree, forest, or cyclic edge set).
struct BindingResult {
  /// Per-edge GS outcomes, aligned with structure.edges().
  std::vector<gs::GsResult> edge_results;
  /// Equivalence-class outcome (consistency, assembled matching).
  EquivalenceReport equivalence;
  /// Accumulated proposals over all bindings (Theorem 3's unit). Cached
  /// edges contribute the proposals of their original computation, so this
  /// stays the semantic per-tree quantity the Theorem 3 bound is about.
  std::int64_t total_proposals = 0;
  /// Proposals actually executed by THIS call — cache hits contribute
  /// nothing. Equals total_proposals when no cache is attached; the E15
  /// cache ablation accumulates this across trees.
  std::int64_t executed_proposals = 0;
  /// Edge-cache outcomes for this call's edges (both 0 without a cache).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// How the solve ended (always SolveOutcome::ok when the call returns —
  /// aborts throw — but carried so ladder/serving layers report uniformly).
  resilience::SolveStatus status;
  /// Structured per-solve record (engine, shape, timing breakdown, counters)
  /// assembled by bind_structure and re-labeled by the higher drivers
  /// (parallel executor, Algorithm 2, ladder). Exported via
  /// telemetry.to_json() / to_prometheus().
  obs::SolveTelemetry telemetry;

  [[nodiscard]] bool has_matching() const {
    return equivalence.matching.has_value();
  }
  [[nodiscard]] const KaryMatching& matching() const {
    return *equivalence.matching;
  }
};

/// Runs one binary binding GS(edge.a proposes, edge.b responds) with the
/// selected engine. With options.cache attached, a memoized result is
/// returned without re-running GS; `cache_hit` (if non-null) reports whether
/// that happened.
gs::GsResult run_binding(const KPartiteInstance& inst, GenderEdge edge,
                         const BindingOptions& options,
                         bool* cache_hit = nullptr);

/// Algorithm 1: iterative binding over a spanning tree. The tree is REQUIRED
/// to be spanning (use bind_structure for forests/cycles); the result always
/// carries a consistent KaryMatching.
BindingResult iterative_binding(const KPartiteInstance& inst,
                                const BindingStructure& tree,
                                const BindingOptions& options = {});

/// Generalized binding over any simple edge set. Spanning tree => Algorithm 1.
/// Forest => families assembled by class index across components (generally
/// unstable; Theorem 4 lower side). Cyclic => equivalence classes may be
/// inconsistent (Theorem 4 upper side); check result.equivalence.consistent.
BindingResult bind_structure(const KPartiteInstance& inst,
                             const BindingStructure& structure,
                             const BindingOptions& options = {});

/// Algorithm 1's tree-construction loop made explicit: consume candidate
/// edges in order, adding each edge that does not close a cycle, until a
/// spanning tree exists. Throws if the candidates cannot span.
BindingStructure greedy_spanning_tree(Gender k,
                                      const std::vector<GenderEdge>& candidates);

/// §IV.B's "strengthen the family tie" direction: more than k-1 bindings
/// require the extra edges' GS matchings to agree with the families already
/// implied — which "may not always exist". This greedy maximizer starts from
/// `base` (a spanning tree by default) and adds every remaining gender pair
/// whose GS matching keeps the equivalence classes consistent. Returns the
/// final structure and binding result; result.equivalence is always
/// consistent. The number of accepted extra edges measures how much
/// "strengthening" an instance admits (master lists admit all C(k,2);
/// uniform instances almost none — see E6).
struct StrengthenResult {
  BindingStructure structure;      ///< base + accepted extra edges
  BindingResult binding;           ///< results for the final structure
  std::int32_t extra_accepted = 0; ///< edges beyond the base
  std::int32_t extra_rejected = 0;
};
StrengthenResult strengthen_bindings(const KPartiteInstance& inst,
                                     const BindingStructure& base,
                                     const BindingOptions& options = {});

}  // namespace kstable::core
