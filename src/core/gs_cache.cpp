#include "core/gs_cache.hpp"

#include <chrono>
#include <utility>

#include "observability/metrics.hpp"
#include "util/check.hpp"

namespace kstable::core {

namespace {

/// How long a single-flight waiter sleeps between checks of its ExecControl.
/// A GS edge run is O(n²) proposals, so waits are normally tens of
/// microseconds; the interval only bounds how stale a deadline/cancellation
/// check can get while the leader is unusually slow.
constexpr std::chrono::milliseconds kWaiterPollInterval{20};

}  // namespace

GsEdgeCache::GsEdgeCache(Gender k, Policy policy)
    : k_(k),
      policy_(policy),
      slots_(static_cast<std::size_t>(k >= 2 ? k : 0) *
             static_cast<std::size_t>(k >= 2 ? k : 0) * kEngineCount) {
  KSTABLE_REQUIRE(k >= 2, "GsEdgeCache needs k >= 2, got " << k);
}

GsEdgeCache::GsEdgeCache(const KPartiteInstance& inst, Policy policy)
    : GsEdgeCache(inst.genders(), policy) {
  bound_generation_ = inst.generation();
}

void GsEdgeCache::check_instance(const KPartiteInstance& inst) const {
  KSTABLE_REQUIRE(inst.genders() == k_,
                  "GsEdgeCache built for k=" << k_ << ", instance has k="
                                             << inst.genders());
  if (!bound_generation_.has_value()) return;  // legacy unbound cache
  KSTABLE_REQUIRE(inst.generation() == *bound_generation_,
                  "stale GsEdgeCache: bound at instance generation "
                      << *bound_generation_ << ", instance is now at "
                      << inst.generation()
                      << " — invalidate()/clear() the touched edges and "
                         "rebind() before reusing the cache "
                         "(docs/INCREMENTAL.md)");
}

std::size_t GsEdgeCache::invalidate(GenderEdge edge) {
  // slot() re-validates the edge; the engine loop below walks the
  // kEngineCount consecutive slots of that oriented pair.
  const std::size_t base = slot(edge, GsEngine::queue);
  std::size_t dropped = 0;
  for (std::size_t e = 0; e < kEngineCount; ++e) {
    const std::size_t s = base + e;
    std::lock_guard<std::mutex> lock(stripe_for(s).m);
    if (slots_[s].state.load(std::memory_order_relaxed) == kReady) ++dropped;
    slots_[s].value.reset();
    slots_[s].state.store(kEmpty, std::memory_order_relaxed);
  }
  return dropped;
}

void GsEdgeCache::rebind(const KPartiteInstance& inst) {
  KSTABLE_REQUIRE(inst.genders() == k_,
                  "GsEdgeCache built for k=" << k_ << " cannot rebind to an "
                                             << inst.genders()
                                             << "-gender instance");
  bound_generation_ = inst.generation();
}

std::size_t GsEdgeCache::slot(GenderEdge edge, GsEngine engine) const {
  KSTABLE_REQUIRE(edge.a >= 0 && edge.a < k_ && edge.b >= 0 && edge.b < k_ &&
                      edge.a != edge.b,
                  "edge (" << edge.a << ',' << edge.b
                           << ") out of range for k=" << k_);
  // Contract-checked (not just asserted): an out-of-enum engine value would
  // index another key's slot and silently serve the wrong matching.
  const auto e = static_cast<std::size_t>(engine);
  KSTABLE_REQUIRE(e < kEngineCount,
                  "GsEngine value " << e << " out of range (have "
                                    << kEngineCount << " engines)");
  return (static_cast<std::size_t>(edge.a) * static_cast<std::size_t>(k_) +
          static_cast<std::size_t>(edge.b)) *
             kEngineCount +
         e;
}

const gs::GsResult* GsEdgeCache::find(GenderEdge edge, GsEngine engine) {
  Slot& entry = slots_[slot(edge, engine)];
  // Ready is terminal and the value precedes it (release store), so the
  // acquire load alone licenses the lock-free read.
  if (entry.state.load(std::memory_order_acquire) == kReady) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    KSTABLE_COUNTER_ADD("cache.hits", 1);
    return &*entry.value;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  KSTABLE_COUNTER_ADD("cache.misses", 1);
  return nullptr;
}

const gs::GsResult& GsEdgeCache::insert(GenderEdge edge, GsEngine engine,
                                        gs::GsResult result) {
  KSTABLE_REQUIRE(result.proposer_gender == edge.a &&
                      result.responder_gender == edge.b,
                  "result genders (" << result.proposer_gender << ','
                                     << result.responder_gender
                                     << ") do not match edge (" << edge.a << ','
                                     << edge.b << ')');
  const std::size_t s = slot(edge, engine);
  Slot& entry = slots_[s];
  Stripe& stripe = stripe_for(s);
  {
    std::lock_guard<std::mutex> lock(stripe.m);
    if (entry.state.load(std::memory_order_relaxed) != kReady) {
      entry.value.emplace(std::move(result));
      entry.state.store(kReady, std::memory_order_release);
    }
  }
  // An insert may race a single-flight leader that claimed kComputing via
  // get_or_compute; wake its waiters — the published value satisfies them.
  stripe.cv.notify_all();
  return *entry.value;
}

const gs::GsResult& GsEdgeCache::get_or_compute(
    GenderEdge edge, GsEngine engine,
    const std::function<gs::GsResult()>& compute,
    resilience::ExecControl* control, bool* hit) {
  const std::size_t s = slot(edge, engine);
  Slot& entry = slots_[s];

  // Lock-free fast path — the overwhelmingly common case once a sweep has
  // warmed the k(k-1) keys.
  if (entry.state.load(std::memory_order_acquire) == kReady) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    KSTABLE_COUNTER_ADD("cache.hits", 1);
    if (hit != nullptr) *hit = true;
    return *entry.value;
  }

  Stripe& stripe = stripe_for(s);
  std::unique_lock<std::mutex> lock(stripe.m);
  bool waited = false;
  for (;;) {
    const std::uint8_t state = entry.state.load(std::memory_order_relaxed);
    if (state == kReady) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      KSTABLE_COUNTER_ADD("cache.hits", 1);
      if (waited) {
        single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
        KSTABLE_COUNTER_ADD("cache.single_flight_waits", 1);
      }
      if (hit != nullptr) *hit = true;
      return *entry.value;
    }

    if (state == kEmpty || policy_ == Policy::duplicate) {
      // Leader path (or a legacy duplicate compute racing the leader). Claim
      // the slot, run GS unlocked, publish under the stripe lock.
      const bool claimed = state == kEmpty;
      if (claimed) {
        entry.state.store(kComputing, std::memory_order_relaxed);
      }
      lock.unlock();
      gs::GsResult result;
      try {
        result = compute();
      } catch (...) {
        if (claimed) {
          // Roll the claim back so a waiter (or the next caller) becomes the
          // new leader instead of blocking on an abandoned compute forever.
          lock.lock();
          entry.state.store(kEmpty, std::memory_order_relaxed);
          lock.unlock();
          stripe.cv.notify_all();
        }
        throw;
      }
      KSTABLE_REQUIRE(result.proposer_gender == edge.a &&
                          result.responder_gender == edge.b,
                      "computed result genders ("
                          << result.proposer_gender << ','
                          << result.responder_gender
                          << ") do not match edge (" << edge.a << ',' << edge.b
                          << ')');
      lock.lock();
      if (entry.state.load(std::memory_order_relaxed) != kReady) {
        entry.value.emplace(std::move(result));
        entry.state.store(kReady, std::memory_order_release);
      }
      lock.unlock();
      stripe.cv.notify_all();
      misses_.fetch_add(1, std::memory_order_relaxed);
      KSTABLE_COUNTER_ADD("cache.misses", 1);
      if (hit != nullptr) *hit = false;
      return *entry.value;
    }

    // state == kComputing under single-flight: another thread owns the GS
    // run for this key. Wait it out, polling our own control so a deadline
    // or cancellation aborts a blocked waiter too (ExecutionAborted unwinds
    // with the lock released by RAII).
    waited = true;
    stripe.cv.wait_for(lock, kWaiterPollInterval);
    if (control != nullptr) control->check_now();
  }
}

std::size_t GsEdgeCache::clear() {
  // External-quiescence contract (see header): locking each stripe here is
  // belt-and-braces against stragglers, not a licence for concurrent clear.
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    std::lock_guard<std::mutex> lock(stripe_for(s).m);
    if (slots_[s].state.load(std::memory_order_relaxed) == kReady) ++dropped;
    slots_[s].value.reset();
    slots_[s].state.store(kEmpty, std::memory_order_relaxed);
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  single_flight_waits_.store(0, std::memory_order_relaxed);
  return dropped;
}

std::size_t GsEdgeCache::size() const {
  std::size_t count = 0;
  for (const auto& entry : slots_) {
    count += entry.state.load(std::memory_order_acquire) == kReady ? 1 : 0;
  }
  return count;
}

}  // namespace kstable::core
