#include "core/gs_cache.hpp"

#include <utility>

#include "observability/metrics.hpp"
#include "util/check.hpp"

namespace kstable::core {

GsEdgeCache::GsEdgeCache(Gender k) : k_(k) {
  KSTABLE_REQUIRE(k >= 2, "GsEdgeCache needs k >= 2, got " << k);
  slots_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k) *
                kEngineCount);
}

std::size_t GsEdgeCache::slot(GenderEdge edge, GsEngine engine) const {
  KSTABLE_REQUIRE(edge.a >= 0 && edge.a < k_ && edge.b >= 0 && edge.b < k_ &&
                      edge.a != edge.b,
                  "edge (" << edge.a << ',' << edge.b
                           << ") out of range for k=" << k_);
  // Contract-checked (not just asserted): an out-of-enum engine value would
  // index another key's slot and silently serve the wrong matching.
  const auto e = static_cast<std::size_t>(engine);
  KSTABLE_REQUIRE(e < kEngineCount,
                  "GsEngine value " << e << " out of range (have "
                                    << kEngineCount << " engines)");
  return (static_cast<std::size_t>(edge.a) * static_cast<std::size_t>(k_) +
          static_cast<std::size_t>(edge.b)) *
             kEngineCount +
         e;
}

const gs::GsResult* GsEdgeCache::find(GenderEdge edge, GsEngine engine) {
  const std::size_t s = slot(edge, engine);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slots_[s].has_value()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      KSTABLE_COUNTER_ADD("cache.hits", 1);
      // Stable address: slots_ never grows and entries are never overwritten.
      return &*slots_[s];
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  KSTABLE_COUNTER_ADD("cache.misses", 1);
  return nullptr;
}

const gs::GsResult& GsEdgeCache::insert(GenderEdge edge, GsEngine engine,
                                        gs::GsResult result) {
  KSTABLE_REQUIRE(result.proposer_gender == edge.a &&
                      result.responder_gender == edge.b,
                  "result genders (" << result.proposer_gender << ','
                                     << result.responder_gender
                                     << ") do not match edge (" << edge.a << ','
                                     << edge.b << ')');
  const std::size_t s = slot(edge, engine);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!slots_[s].has_value()) slots_[s] = std::move(result);
  return *slots_[s];
}

void GsEdgeCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : slots_) entry.reset();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

std::size_t GsEdgeCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& entry : slots_) count += entry.has_value() ? 1 : 0;
  return count;
}

}  // namespace kstable::core
