// Orientation-aware binding: extending the paper's fairness discussion
// (§II.A/§III.B: GS favors proposers) to Algorithm 1.
//
// Every binding edge names a proposer and a responder ("each matching process
// corresponds a proposer ... to a responder", §IV.B), and the proposer side
// of each edge systematically gets better partners (E15's orientation
// ablation). This module selects orientations under a policy:
//   as_given        — use the tree's stored orientations (Algorithm 1 as-is);
//   alternate       — flip every other edge (cheap spread of the advantage);
//   balance_greedy  — run edges in order, orienting each so the gender with
//                     the larger accumulated partner-rank cost proposes
//                     (proposing is the advantaged role, so the unhappier
//                     side catches up).
// The matching remains stable regardless (Theorem 2 holds per orientation).
#pragma once

#include "core/binding.hpp"

namespace kstable::core {

enum class OrientationPolicy { as_given, alternate, balance_greedy };

struct OrientedBindingResult {
  BindingResult binding;
  BindingStructure oriented;  ///< the tree with the chosen orientations
  /// Accumulated per-gender bound-pair cost, the quantity balance_greedy
  /// steers (index = gender).
  std::vector<std::int64_t> gender_cost;
};

/// Binds `tree` under `policy`. The structure of the tree (which genders are
/// adjacent) is fixed; only proposer/responder roles change.
OrientedBindingResult oriented_binding(const KPartiteInstance& inst,
                                       const BindingStructure& tree,
                                       OrientationPolicy policy,
                                       const BindingOptions& options = {});

}  // namespace kstable::core
