#include "core/cyclic3dsm.hpp"

#include <algorithm>

#include "analysis/oracle.hpp"
#include "util/check.hpp"

namespace kstable::c3d {

namespace {

void check_tripartite(const KPartiteInstance& inst) {
  KSTABLE_REQUIRE(inst.genders() == 3,
                  "cyclic 3DSM needs exactly 3 genders, got "
                      << inst.genders());
}

/// Identity matching as a mutable family table (family-major, k = 3).
std::vector<Index> identity_families(Index n) {
  std::vector<Index> families(static_cast<std::size_t>(n) * 3);
  for (Index t = 0; t < n; ++t) {
    for (int g = 0; g < 3; ++g) {
      families[static_cast<std::size_t>(t) * 3 + static_cast<std::size_t>(g)] = t;
    }
  }
  return families;
}

}  // namespace

bool triple_blocks(const KPartiteInstance& inst, const KaryMatching& matching,
                   Index m, Index w, Index u) {
  check_tripartite(inst);
  // Current cyclic partners.
  const MemberId m_woman = matching.family_member({kM, m}, kW);
  const MemberId w_undecided = matching.family_member({kW, w}, kU);
  const MemberId u_man = matching.family_member({kU, u}, kM);
  if (m_woman.index == w && w_undecided.index == u && u_man.index == m) {
    return false;  // already a matched triple
  }
  return inst.prefers({kM, m}, {kW, w}, m_woman) &&
         inst.prefers({kW, w}, {kU, u}, w_undecided) &&
         inst.prefers({kU, u}, {kM, m}, u_man);
}

std::optional<BlockingTriple> find_blocking_triple(
    const KPartiteInstance& inst, const KaryMatching& matching) {
  check_tripartite(inst);
  const Index n = inst.per_gender();
  for (Index m = 0; m < n; ++m) {
    // Prune: m only wants women strictly better than his current one.
    const MemberId current_w = matching.family_member({kM, m}, kW);
    const std::int32_t current_rank = inst.rank_of({kM, m}, current_w);
    const auto wish = inst.pref_list({kM, m}, kW);
    for (std::int32_t pos = 0; pos < current_rank; ++pos) {
      const Index w = wish[static_cast<std::size_t>(pos)];
      for (Index u = 0; u < n; ++u) {
        if (triple_blocks(inst, matching, m, w, u)) {
          return BlockingTriple{m, w, u};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<KaryMatching> find_stable_exhaustive(
    const KPartiteInstance& inst) {
  check_tripartite(inst);
  std::optional<KaryMatching> witness;
  analysis::for_each_kary_matching(inst, [&](const KaryMatching& matching) {
    if (witness) return;
    if (!find_blocking_triple(inst, matching)) witness = matching;
  });
  return witness;
}

LocalSearchResult local_search(const KPartiteInstance& inst,
                               std::int64_t max_repairs) {
  check_tripartite(inst);
  const Index n = inst.per_gender();
  LocalSearchResult result;
  std::vector<Index> families = identity_families(n);

  for (; result.repairs <= max_repairs; ++result.repairs) {
    KaryMatching matching(3, n, families);
    const auto blocking = find_blocking_triple(inst, matching);
    if (!blocking) {
      result.matching = std::move(matching);
      result.converged = true;
      return result;
    }
    if (result.repairs == max_repairs) break;
    // Repair: bring (m, w, u) together in m's family via two swaps — w trades
    // places with m's current woman, u with m's current undecided. All other
    // families stay valid triples.
    const Index fm = matching.family_of({kM, blocking->m});
    const Index fw = matching.family_of({kW, blocking->w});
    const Index fu = matching.family_of({kU, blocking->u});
    auto slot = [&families](Index family, int gender) -> Index& {
      return families[static_cast<std::size_t>(family) * 3 +
                      static_cast<std::size_t>(gender)];
    };
    std::swap(slot(fm, kW), slot(fw, kW));
    std::swap(slot(fm, kU), slot(fu, kU));
  }
  return result;
}

}  // namespace kstable::c3d
