#include "core/supergender.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kstable::core {

void SupergenderPartition::validate(Gender original_k) const {
  KSTABLE_REQUIRE(groups.size() >= 2, "need at least two super-genders");
  const std::size_t group_size = groups.front().size();
  KSTABLE_REQUIRE(group_size >= 1, "empty super-gender group");
  std::vector<bool> seen(static_cast<std::size_t>(original_k), false);
  for (const auto& group : groups) {
    KSTABLE_REQUIRE(group.size() == group_size,
                    "super-gender groups must have equal size (balanced "
                    "derived instance); got " << group.size() << " vs "
                        << group_size);
    for (const Gender g : group) {
      KSTABLE_REQUIRE(g >= 0 && g < original_k,
                      "gender " << g << " out of range");
      KSTABLE_REQUIRE(!seen[static_cast<std::size_t>(g)],
                      "gender " << g << " appears in two groups");
      seen[static_cast<std::size_t>(g)] = true;
    }
  }
  for (Gender g = 0; g < original_k; ++g) {
    KSTABLE_REQUIRE(seen[static_cast<std::size_t>(g)],
                    "gender " << g << " missing from the partition");
  }
}

SupergenderPartition SupergenderPartition::contiguous(Gender original_k,
                                                      Gender group_size) {
  KSTABLE_REQUIRE(group_size >= 1 && original_k % group_size == 0,
                  "group size " << group_size << " does not divide k="
                                << original_k);
  SupergenderPartition partition;
  for (Gender start = 0; start < original_k; start += group_size) {
    std::vector<Gender> group;
    for (Gender offset = 0; offset < group_size; ++offset) {
      group.push_back(start + offset);
    }
    partition.groups.push_back(std::move(group));
  }
  return partition;
}

MemberId SupergenderSystem::original(MemberId derived_member) const {
  const auto& group =
      partition.groups[static_cast<std::size_t>(derived_member.gender)];
  const auto slot = static_cast<std::size_t>(derived_member.index / original_n);
  KSTABLE_REQUIRE(slot < group.size(),
                  "derived member " << derived_member << " out of range");
  return {group[slot], derived_member.index % original_n};
}

MemberId SupergenderSystem::derived_id(MemberId original_member) const {
  for (std::size_t G = 0; G < partition.groups.size(); ++G) {
    const auto& group = partition.groups[G];
    const auto it =
        std::find(group.begin(), group.end(), original_member.gender);
    if (it != group.end()) {
      const auto slot = static_cast<Index>(it - group.begin());
      return {static_cast<Gender>(G), slot * original_n + original_member.index};
    }
  }
  KSTABLE_REQUIRE(false, "gender " << original_member.gender
                                   << " not in the partition");
  return {};
}

SupergenderSystem derive_supergender_system(const KPartiteInstance& inst,
                                            const SupergenderPartition& partition,
                                            rm::Linearization lin, Rng* rng) {
  partition.validate(inst.genders());
  const Index n = inst.per_gender();
  const auto super_k = static_cast<Gender>(partition.groups.size());
  const auto c = static_cast<Index>(partition.groups.front().size());
  const Index super_n = n * c;

  SupergenderSystem system{KPartiteInstance(super_k, super_n), partition, n};

  // Derived index of original member (h, idx) inside super-gender H.
  auto derived_index = [&](Gender H, Gender h, Index idx) {
    const auto& group = partition.groups[static_cast<std::size_t>(H)];
    const auto slot = static_cast<Index>(
        std::find(group.begin(), group.end(), h) - group.begin());
    return slot * n + idx;
  };

  for (Gender G = 0; G < super_k; ++G) {
    for (Index j = 0; j < super_n; ++j) {
      const MemberId self = system.original({G, j});
      for (Gender H = 0; H < super_k; ++H) {
        if (H == G) continue;
        const auto& group = partition.groups[static_cast<std::size_t>(H)];
        std::vector<Index> merged;
        merged.reserve(static_cast<std::size_t>(super_n));
        switch (lin) {
          case rm::Linearization::round_robin:
            for (Index r = 0; r < n; ++r) {
              for (const Gender h : group) {
                merged.push_back(derived_index(
                    H, h, inst.pref_list(self, h)[static_cast<std::size_t>(r)]));
              }
            }
            break;
          case rm::Linearization::gender_blocks:
            for (const Gender h : group) {
              for (const Index idx : inst.pref_list(self, h)) {
                merged.push_back(derived_index(H, h, idx));
              }
            }
            break;
          case rm::Linearization::random_interleave: {
            KSTABLE_REQUIRE(rng != nullptr,
                            "random_interleave linearization needs an Rng");
            std::vector<std::size_t> cursor(group.size(), 0);
            std::size_t remaining = group.size();
            while (remaining > 0) {
              auto pick = rng->below(remaining);
              for (std::size_t gi = 0; gi < group.size(); ++gi) {
                if (cursor[gi] >= static_cast<std::size_t>(n)) continue;
                if (pick-- == 0) {
                  const Gender h = group[gi];
                  merged.push_back(derived_index(
                      H, h, inst.pref_list(self, h)[cursor[gi]++]));
                  if (cursor[gi] == static_cast<std::size_t>(n)) --remaining;
                  break;
                }
              }
            }
            break;
          }
        }
        system.derived.set_pref_list({G, j}, H, merged);
      }
    }
  }
  system.derived.validate();
  return system;
}

CoalitionResult coalition_binding(const KPartiteInstance& inst,
                                  const SupergenderPartition& partition,
                                  rm::Linearization lin, Rng* rng) {
  CoalitionResult result{
      derive_supergender_system(inst, partition, lin, rng), {}, {}};
  const auto super_k = result.system.derived.genders();
  result.binding =
      iterative_binding(result.system.derived, trees::path(super_k));
  const auto& matching = result.binding.matching();
  result.coalitions.reserve(static_cast<std::size_t>(matching.family_count()));
  for (Index t = 0; t < matching.family_count(); ++t) {
    Coalition coalition;
    for (Gender G = 0; G < super_k; ++G) {
      coalition.members.push_back(
          result.system.original(matching.member_at(t, G)));
    }
    result.coalitions.push_back(std::move(coalition));
  }
  return result;
}

}  // namespace kstable::core
