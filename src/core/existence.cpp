#include "core/existence.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kstable::core {

BinaryMatchingKP theorem1_perfect_matching(Gender k, Index n) {
  KSTABLE_REQUIRE((static_cast<std::int64_t>(k) * n) % 2 == 0,
                  "perfect matching needs an even node count, k=" << k
                      << " n=" << n);
  const auto total = static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  std::vector<std::int32_t> partner(total, -1);
  if (k % 2 == 0) {
    // Pair gender 2t with gender 2t+1, index-wise.
    for (Gender g = 0; g < k; g += 2) {
      for (Index i = 0; i < n; ++i) {
        const std::int32_t a = flat_id({g, i}, n);
        const std::int32_t b = flat_id({static_cast<Gender>(g + 1), i}, n);
        partner[static_cast<std::size_t>(a)] = b;
        partner[static_cast<std::size_t>(b)] = a;
      }
    }
  } else {
    KSTABLE_REQUIRE(n % 2 == 0, "odd k requires even n (even total nodes)");
    // (G'_g, G''_{g+1}): first half of gender g pairs with second half of
    // gender g+1 (mod k), index-aligned.
    const Index half = n / 2;
    for (Gender g = 0; g < k; ++g) {
      const Gender next = static_cast<Gender>((g + 1) % k);
      for (Index i = 0; i < half; ++i) {
        const std::int32_t a = flat_id({g, i}, n);
        const std::int32_t b = flat_id({next, static_cast<Index>(half + i)}, n);
        partner[static_cast<std::size_t>(a)] = b;
        partner[static_cast<std::size_t>(b)] = a;
      }
    }
  }
  return BinaryMatchingKP(k, n, std::move(partner));
}

rm::RoommatesInstance theorem1_adversarial_roommates(Gender k, Index n,
                                                     Rng& rng,
                                                     Gender pariah_gender) {
  KSTABLE_REQUIRE(k > 2, "the adversarial construction needs k > 2");
  KSTABLE_REQUIRE(pariah_gender >= 0 && pariah_gender < k,
                  "pariah gender " << pariah_gender << " out of range");
  const auto person = [n](Gender g, Index i) { return flat_id({g, i}, n); };
  const rm::Person pariah = person(pariah_gender, 0);

  // Base: each member's combined list = random permutation of all
  // other-gender members.
  std::vector<std::vector<rm::Person>> lists(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n));
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      auto& list = lists[static_cast<std::size_t>(person(g, i))];
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        for (Index j = 0; j < n; ++j) list.push_back(person(h, j));
      }
      rng.shuffle(list);
    }
  }

  // (1) Pariah last everywhere.
  for (Gender g = 0; g < k; ++g) {
    if (g == pariah_gender) continue;
    for (Index i = 0; i < n; ++i) {
      auto& list = lists[static_cast<std::size_t>(person(g, i))];
      auto it = std::find(list.begin(), list.end(), pariah);
      KSTABLE_ASSERT(it != list.end());
      list.erase(it);
      list.push_back(pariah);
    }
  }

  // (2) Gender-alternating top-choice cycle over the other k-1 genders
  // (member-major interleaving guarantees adjacent entries differ in gender).
  std::vector<Gender> others;
  for (Gender g = 0; g < k; ++g) {
    if (g != pariah_gender) others.push_back(g);
  }
  std::vector<rm::Person> cycle;
  for (Index i = 0; i < n; ++i) {
    for (const Gender g : others) cycle.push_back(person(g, i));
  }
  for (std::size_t pos = 0; pos < cycle.size(); ++pos) {
    const rm::Person from = cycle[pos];
    const rm::Person to = cycle[(pos + 1) % cycle.size()];
    auto& list = lists[static_cast<std::size_t>(from)];
    auto it = std::find(list.begin(), list.end(), to);
    KSTABLE_ASSERT(it != list.end());
    list.erase(it);
    list.insert(list.begin(), to);
  }
  return rm::RoommatesInstance(std::move(lists));
}

}  // namespace kstable::core
