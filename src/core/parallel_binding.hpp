// Parallel execution of the binding process (paper §IV.C).
//
// Binding edges commute: each binary GS reads the shared preference data and
// writes only its own match arrays, so any set of edges can execute
// concurrently on real threads. The *PRAM discipline* the paper analyzes is
// stricter (EREW: one binding per gender per round), so this executor runs
// the schedule the chosen model allows — Δ coloring rounds for EREW, a single
// round for CREW — while measuring both the model-charged cost (Corollary 1:
// ≤ Δn² iterations; Corollary 2: 2 rounds on a path) and real wall-clock.
#pragma once

#include <cstdint>

#include "core/binding.hpp"
#include "parallel/pram.hpp"
#include "parallel/thread_pool.hpp"

namespace kstable::core {

enum class ExecutionMode {
  sequential,   ///< one edge at a time on the calling thread
  erew_rounds,  ///< edge-coloring rounds; intra-round edges on the pool
  crew_full     ///< all edges concurrently (concurrent reads allowed)
};

struct ParallelBindingReport {
  BindingResult binding;          ///< per-edge results + assembled matching
  pram::CostReport cost;          ///< model-charged cost (see pram.hpp)
  std::int64_t rounds_executed = 0;
  double wall_seconds = 0.0;
  std::vector<std::int64_t> edge_proposals;  ///< aligned with edges
};

/// Executes `tree`'s bindings under `mode` using `pool`, then charges the
/// matching PRAM cost model. The produced matching is identical across all
/// modes (binding edges are independent); tests assert this determinism.
/// A non-null `control` is checked at every per-round barrier and charged
/// inside each edge's GS run (worker aborts propagate through the pool's
/// exception channel); throws ExecutionAborted on deadline/budget/cancel.
ParallelBindingReport execute_binding(const KPartiteInstance& inst,
                                      const BindingStructure& tree,
                                      ExecutionMode mode, ThreadPool& pool,
                                      resilience::ExecControl* control = nullptr);

}  // namespace kstable::core
