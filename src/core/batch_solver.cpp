#include "core/batch_solver.hpp"

#include <utility>

#include "core/gs_cache.hpp"
#include "core/tree_selection.hpp"
#include "core/tree_sweep.hpp"
#include "observability/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::core {

std::vector<BatchItemResult> BatchSolver::solve(
    std::span<const KPartiteInstance> instances, const BatchOptions& options) {
  KSTABLE_REQUIRE(options.engine != GsEngine::parallel,
                  "BatchSolver parallelizes across items; use GsEngine::queue "
                  "or GsEngine::rounds per item");
  KSTABLE_REQUIRE(options.per_item_budgets.empty() ||
                      options.per_item_budgets.size() == instances.size(),
                  "per_item_budgets has " << options.per_item_budgets.size()
                                          << " entries for "
                                          << instances.size() << " instances");

  std::vector<BatchItemResult> results(instances.size());
  pool_.for_each_index(instances.size(), [&](std::size_t idx) {
    const KPartiteInstance& inst = instances[idx];
    BatchItemResult& out = results[idx];
    const resilience::Budget budget = options.per_item_budgets.empty()
                                          ? options.per_item
                                          : options.per_item_budgets[idx];
    resilience::ExecControl control(budget, options.token);
    // One workspace per pool worker, reused across items and batches: after
    // the largest instance warms it, the GS hot path allocates nothing.
    thread_local gs::GsWorkspace workspace;
    GsEdgeCache cache(inst.genders());

    BindingOptions bopts;
    bopts.engine = options.engine;
    bopts.control = &control;
    bopts.workspace = &workspace;
    bopts.cache = options.use_cache ? &cache : nullptr;
    WallTimer item_timer;
    try {
      BindingResult result = [&] {
        switch (options.tree) {
          case BatchTree::cost_aware:
            return cost_aware_binding(inst, TreeObjective::min_cost, bopts);
          case BatchTree::sweep_best: {
            // We are a pool worker here, so the sweep's nested guard makes
            // it run sequentially even with the pool attached — exactly the
            // oversubscription behavior the tree_sweep tests pin down.
            TreeSweepOptions sopts;
            sopts.engine = options.engine;
            sopts.pool = &pool_;
            sopts.cache = bopts.cache;
            sopts.control = bopts.control;
            TreeSweepResult sweep = sweep_all_trees(inst, sopts);
            KSTABLE_ASSERT(sweep.succeeded());
            return std::move(*sweep.best);
          }
          case BatchTree::path:
            break;
        }
        return iterative_binding(inst, trees::path(inst.genders()), bopts);
      }();
      out.status = result.status;
      out.total_proposals = result.total_proposals;
      out.telemetry = result.telemetry;  // engine relabeled below
      out.matching = std::move(result.equivalence.matching);
    } catch (const ExecutionAborted& e) {
      out.status = control.aborted_status(e.reason(), e.what());
      out.total_proposals = control.spent();
      out.telemetry.executed_proposals = control.spent();
      KSTABLE_COUNTER_ADD("batch.items_aborted", 1);
    }
    if (options.use_cache) {
      // The per-item cache is fresh, so its stats cover the whole item —
      // including cost-aware probe replays and edges solved before an abort.
      const auto stats = cache.stats();
      out.cache_hits = stats.hits;
      out.cache_misses = stats.misses;
    }
    obs::SolveTelemetry& t = out.telemetry;
    t.engine = "batch.item";
    t.genders = inst.genders();
    t.size = inst.per_gender();
    t.wall_ms = item_timer.millis();
    t.status = out.status;
    t.proposals = out.total_proposals;
    t.cache_hits = out.cache_hits;
    t.cache_misses = out.cache_misses;
    t.attempts = 1;
    if (budget.wall_ms > 0.0 && out.status.ok()) {
      const double margin = budget.wall_ms - control.elapsed_ms();
      t.deadline_margin_ms = margin > 0.0 ? margin : 0.0;
    }
    obs::record(t);
    KSTABLE_COUNTER_ADD("batch.items", 1);
  });
  return results;
}

}  // namespace kstable::core
