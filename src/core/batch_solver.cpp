#include "core/batch_solver.hpp"

#include <utility>

#include "core/gs_cache.hpp"
#include "core/tree_selection.hpp"
#include "util/check.hpp"

namespace kstable::core {

std::vector<BatchItemResult> BatchSolver::solve(
    std::span<const KPartiteInstance> instances, const BatchOptions& options) {
  KSTABLE_REQUIRE(options.engine != GsEngine::parallel,
                  "BatchSolver parallelizes across items; use GsEngine::queue "
                  "or GsEngine::rounds per item");
  KSTABLE_REQUIRE(options.per_item_budgets.empty() ||
                      options.per_item_budgets.size() == instances.size(),
                  "per_item_budgets has " << options.per_item_budgets.size()
                                          << " entries for "
                                          << instances.size() << " instances");

  std::vector<BatchItemResult> results(instances.size());
  pool_.for_each_index(instances.size(), [&](std::size_t idx) {
    const KPartiteInstance& inst = instances[idx];
    BatchItemResult& out = results[idx];
    const resilience::Budget budget = options.per_item_budgets.empty()
                                          ? options.per_item
                                          : options.per_item_budgets[idx];
    resilience::ExecControl control(budget, options.token);
    // One workspace per pool worker, reused across items and batches: after
    // the largest instance warms it, the GS hot path allocates nothing.
    thread_local gs::GsWorkspace workspace;
    GsEdgeCache cache(inst.genders());

    BindingOptions bopts;
    bopts.engine = options.engine;
    bopts.control = &control;
    bopts.workspace = &workspace;
    bopts.cache = options.use_cache ? &cache : nullptr;
    try {
      BindingResult result =
          options.tree == BatchTree::cost_aware
              ? cost_aware_binding(inst, TreeObjective::min_cost, bopts)
              : iterative_binding(inst, trees::path(inst.genders()), bopts);
      out.status = result.status;
      out.total_proposals = result.total_proposals;
      out.matching = std::move(result.equivalence.matching);
    } catch (const ExecutionAborted& e) {
      out.status = control.aborted_status(e.reason(), e.what());
      out.total_proposals = control.spent();
    }
    if (options.use_cache) {
      // The per-item cache is fresh, so its stats cover the whole item —
      // including cost-aware probe replays and edges solved before an abort.
      const auto stats = cache.stats();
      out.cache_hits = stats.hits;
      out.cache_misses = stats.misses;
    }
  });
  return results;
}

}  // namespace kstable::core
