#include "core/priority_binding.hpp"

#include <algorithm>
#include <numeric>

#include "graph/scheduling.hpp"
#include "observability/telemetry.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::core {

namespace {

std::vector<std::int32_t> effective_priority(Gender k,
                                             const std::vector<std::int32_t>& in) {
  if (in.empty()) {
    std::vector<std::int32_t> identity(static_cast<std::size_t>(k));
    std::iota(identity.begin(), identity.end(), 0);
    return identity;
  }
  KSTABLE_REQUIRE(in.size() == static_cast<std::size_t>(k),
                  "priority vector has " << in.size() << " entries for k=" << k);
  auto sorted = in;
  std::sort(sorted.begin(), sorted.end());
  KSTABLE_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                      sorted.end(),
                  "gender priorities must be distinct");
  return in;
}

/// Genders sorted by decreasing priority.
std::vector<Gender> priority_order(const std::vector<std::int32_t>& priority) {
  std::vector<Gender> order(priority.size());
  std::iota(order.begin(), order.end(), Gender{0});
  std::sort(order.begin(), order.end(), [&priority](Gender a, Gender b) {
    return priority[static_cast<std::size_t>(a)] >
           priority[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

PriorityBindingResult priority_binding(const KPartiteInstance& inst,
                                       const PriorityBindingOptions& options) {
  const WallTimer timer;
  const Gender k = inst.genders();
  const auto priority = effective_priority(k, options.priority);
  const auto order = priority_order(priority);

  BindingStructure tree(k);
  std::vector<Gender> bound{order.front()};  // V(T) = {imax}
  for (std::size_t step = 1; step < order.size(); ++step) {
    const Gender next = order[step];  // highest-priority unbound gender
    Gender attach_to;
    if (options.attach) {
      attach_to = options.attach(tree, bound, next);
      KSTABLE_REQUIRE(std::find(bound.begin(), bound.end(), attach_to) !=
                          bound.end(),
                      "attach selector returned unbound gender " << attach_to);
    } else {
      // Default: bind to the highest-priority gender already in the tree.
      attach_to = bound.front();
    }
    // Orientation: the newly attached (lower-priority) gender proposes, so
    // the higher-priority side keeps the responder's trade-up advantage.
    tree.add_edge({next, attach_to});
    bound.push_back(next);
  }
  KSTABLE_ENSURE(sched::is_bitonic_tree(tree, priority),
                 "Algorithm 2 grew a non-bitonic tree");

  const double grow_ms = timer.millis();
  PriorityBindingResult result{iterative_binding(inst, tree, options.binding),
                               tree, bound};
  // Re-label the binding telemetry as an Algorithm 2 solve and account the
  // bitonic tree-growing phase; the inner iterative_binding already recorded
  // its own per-engine aggregates.
  obs::SolveTelemetry& t = result.binding.telemetry;
  t.engine = "binding.priority";
  t.wall_ms = timer.millis();
  t.phase_count = 0;
  t.add_phase("grow-tree", grow_ms);
  t.add_phase("bind", t.wall_ms - grow_ms);
  obs::record(t);
  return result;
}

void for_each_priority_tree(
    Gender k, const std::vector<std::int32_t>& priority,
    const std::function<void(const BindingStructure&)>& visit) {
  const auto prio = effective_priority(k, priority);
  const auto order = priority_order(prio);
  // choice[step] selects which of the `step` bound genders hosts the next
  // gender; odometer over the mixed-radix space (1 x 2 x ... x (k-1)).
  std::vector<std::size_t> choice(static_cast<std::size_t>(k > 0 ? k - 1 : 0), 0);
  for (;;) {
    BindingStructure tree(k);
    std::vector<Gender> bound{order.front()};
    for (std::size_t step = 1; step < order.size(); ++step) {
      const Gender host = bound[choice[step - 1]];
      tree.add_edge({order[step], host});
      bound.push_back(order[step]);
    }
    visit(tree);
    // Increment the mixed-radix odometer; digit `step-1` has radix `step`.
    std::size_t pos = 0;
    for (; pos < choice.size(); ++pos) {
      if (++choice[pos] <= pos) break;  // radix of digit pos is pos+1
      choice[pos] = 0;
    }
    if (pos == choice.size()) break;
  }
}

std::int64_t priority_tree_count(Gender k) {
  KSTABLE_REQUIRE(k >= 1, "priority_tree_count needs k >= 1");
  std::int64_t count = 1;
  for (Gender i = 1; i < k; ++i) count *= i;
  return count;
}

}  // namespace kstable::core
