#include "core/binding.hpp"

#include <utility>

#include "core/gs_cache.hpp"
#include "gs/parallel_gs.hpp"
#include "gs/scan_gs.hpp"
#include "resilience/fault_injection.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::core {

namespace {

/// Runs the selected engine, no cache involvement.
gs::GsResult run_engine(const KPartiteInstance& inst, GenderEdge edge,
                        const BindingOptions& options) {
  gs::GsOptions gs_options;
  gs_options.control = options.control;
  gs_options.trace = options.trace;
  gs::GsResult result;
  switch (options.engine) {
    case GsEngine::queue:
      if (options.workspace != nullptr) {
        gs::gale_shapley_queue(inst, edge.a, edge.b, gs_options,
                               *options.workspace, result);
      } else {
        result = gs::gale_shapley_queue(inst, edge.a, edge.b, gs_options);
      }
      return result;
    case GsEngine::rounds:
      if (options.workspace != nullptr) {
        gs::gale_shapley_rounds(inst, edge.a, edge.b, gs_options,
                                *options.workspace, result);
      } else {
        result = gs::gale_shapley_rounds(inst, edge.a, edge.b, gs_options);
      }
      return result;
    case GsEngine::parallel:
      KSTABLE_REQUIRE(options.pool != nullptr,
                      "GsEngine::parallel needs a ThreadPool");
      return gs::gale_shapley_parallel(inst, edge.a, edge.b, *options.pool,
                                       256, options.control);
    case GsEngine::prefetch:
      if (options.workspace != nullptr) {
        gs::gale_shapley_prefetch(inst, edge.a, edge.b, gs_options,
                                  *options.workspace, result);
      } else {
        result = gs::gale_shapley_prefetch(inst, edge.a, edge.b, gs_options);
      }
      return result;
  }
  KSTABLE_REQUIRE(false, "unknown GS engine");
  return {};
}

/// Static-lifetime telemetry label for a binding driven by `engine`.
const char* binding_engine_label(GsEngine engine) {
  switch (engine) {
    case GsEngine::queue: return "binding.queue";
    case GsEngine::rounds: return "binding.rounds";
    case GsEngine::parallel: return "binding.parallel";
    case GsEngine::prefetch: return "binding.prefetch";
  }
  return "binding";
}

/// Fills the result's telemetry from its already-populated counters. The
/// `engine` label override (nullptr = derive from options.engine) lets the
/// higher drivers (Algorithm 2, parallel executor, ladder) re-label the same
/// record shape.
void finish_telemetry(BindingResult& result, const KPartiteInstance& inst,
                      const BindingOptions& options, const char* engine) {
  obs::SolveTelemetry& t = result.telemetry;
  t.engine = engine != nullptr ? engine : binding_engine_label(options.engine);
  t.genders = inst.genders();
  t.size = inst.per_gender();
  t.wall_ms = result.status.wall_ms;
  t.status = result.status;
  t.proposals = result.total_proposals;
  t.executed_proposals = result.executed_proposals;
  t.cache_hits = result.cache_hits;
  t.cache_misses = result.cache_misses;
  t.attempts = 1;
  for (const auto& r : result.edge_results) t.rounds += r.rounds;
  if (options.control != nullptr && options.control->budget().wall_ms > 0.0) {
    const double margin =
        options.control->budget().wall_ms - options.control->elapsed_ms();
    t.deadline_margin_ms = margin > 0.0 ? margin : 0.0;
  }
}

}  // namespace

gs::GsResult run_binding(const KPartiteInstance& inst, GenderEdge edge,
                         const BindingOptions& options, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  // Warm-or-cold compute: the warm-start provider (if any) gets first
  // refusal; a nullopt answer falls through to the selected cold engine.
  const auto compute = [&]() -> gs::GsResult {
    if (options.warm_start != nullptr) {
      if (auto warm = options.warm_start->warm_solve(inst, edge, options)) {
        return std::move(*warm);
      }
    }
    return run_engine(inst, edge, options);
  };
  if (options.cache == nullptr) return compute();
  KSTABLE_REQUIRE(options.cache->genders() == inst.genders(),
                  "cache built for k=" << options.cache->genders()
                                       << ", instance has k="
                                       << inst.genders());
  // Staleness guard: a generation-bound cache refuses to serve an instance
  // that has mutated since binding (docs/INCREMENTAL.md — invalidate() +
  // rebind() is the sanctioned path). Throws std::logic_error.
  options.cache->check_instance(inst);
  // Single-flight lookup: under a concurrent sweep, N workers missing the
  // same oriented edge run GS once and share the published result.
  return options.cache->get_or_compute(edge, options.engine, compute,
                                       options.control, cache_hit);
}

BindingResult bind_structure(const KPartiteInstance& inst,
                             const BindingStructure& structure,
                             const BindingOptions& options) {
  KSTABLE_REQUIRE(structure.genders() == inst.genders(),
                  "structure has " << structure.genders()
                                   << " genders, instance " << inst.genders());
  BindingResult result;
  WallTimer timer;
  result.edge_results.reserve(structure.edges().size());
  for (const auto& edge : structure.edges()) {
    KSTABLE_FAULT_POINT("core/binding_edge");
    if (options.control != nullptr) options.control->check_now();
    bool hit = false;
    result.edge_results.push_back(run_binding(inst, edge, options, &hit));
    const auto& edge_result = result.edge_results.back();
    result.total_proposals += edge_result.proposals;
    if (!hit) result.executed_proposals += edge_result.proposals;
    if (options.cache != nullptr) {
      hit ? ++result.cache_hits : ++result.cache_misses;
    }
  }
  const double bind_ms = timer.millis();
  result.equivalence = derive_families(inst, structure, result.edge_results);
  result.status.proposals = result.total_proposals;
  result.status.wall_ms = timer.millis();
  finish_telemetry(result, inst, options, nullptr);
  result.telemetry.add_phase("bind", bind_ms);
  result.telemetry.add_phase("assemble", timer.millis() - bind_ms);
  obs::record(result.telemetry);
  return result;
}

BindingResult iterative_binding(const KPartiteInstance& inst,
                                const BindingStructure& tree,
                                const BindingOptions& options) {
  KSTABLE_REQUIRE(tree.is_spanning_tree(),
                  "Algorithm 1 requires a spanning binding tree; "
                  "use bind_structure for forests/cycles");
  BindingResult result = bind_structure(inst, tree, options);
  // Theorem 2: a spanning tree always yields consistent k-tuples.
  KSTABLE_ENSURE(result.equivalence.consistent,
                 "spanning-tree binding produced inconsistent classes: "
                     << result.equivalence.inconsistency);
  // Theorem 3: at most (k-1) n² accumulated proposals.
  const std::int64_t bound =
      static_cast<std::int64_t>(inst.genders() - 1) *
      static_cast<std::int64_t>(inst.per_gender()) *
      static_cast<std::int64_t>(inst.per_gender());
  KSTABLE_ENSURE(result.total_proposals <= bound,
                 "proposal count " << result.total_proposals
                                   << " exceeds the Theorem 3 bound " << bound);
  return result;
}

StrengthenResult strengthen_bindings(const KPartiteInstance& inst,
                                     const BindingStructure& base,
                                     const BindingOptions& options) {
  KSTABLE_REQUIRE(base.is_forest(),
                  "strengthen_bindings starts from an acyclic base");
  StrengthenResult result{BindingStructure(inst.genders()), {}, 0, 0};
  WallTimer timer;
  // Re-add the base edges, then try every absent pair in (a, b) order.
  std::vector<GenderEdge> candidates = base.edges();
  const auto base_count = static_cast<std::int32_t>(candidates.size());
  for (Gender a = 0; a < inst.genders(); ++a) {
    for (Gender b = a + 1; b < inst.genders(); ++b) {
      bool present = false;
      for (const auto& e : base.edges()) {
        present |= e.normalized() == GenderEdge{a, b};
      }
      if (!present) candidates.push_back({a, b});
    }
  }

  BindingStructure accepted(inst.genders());
  std::vector<gs::GsResult> edge_results;
  for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
    const auto edge = candidates[idx];
    const bool is_base = static_cast<std::int32_t>(idx) < base_count;
    // Tentatively add the edge and re-derive the classes.
    BindingStructure trial = accepted;
    trial.add_edge(edge);
    auto trial_results = edge_results;
    bool hit = false;
    trial_results.push_back(run_binding(inst, edge, options, &hit));
    if (!hit) {
      result.binding.executed_proposals += trial_results.back().proposals;
    }
    if (options.cache != nullptr) {
      hit ? ++result.binding.cache_hits : ++result.binding.cache_misses;
    }
    const auto report = derive_families(inst, trial, trial_results);
    if (report.consistent) {
      accepted = std::move(trial);
      edge_results = std::move(trial_results);
      if (!is_base) ++result.extra_accepted;
    } else {
      KSTABLE_REQUIRE(!is_base, "base edges can never conflict (forest)");
      ++result.extra_rejected;
    }
  }
  result.structure = accepted;
  result.binding.edge_results = std::move(edge_results);
  for (const auto& r : result.binding.edge_results) {
    result.binding.total_proposals += r.proposals;
  }
  result.binding.status.proposals = result.binding.total_proposals;
  result.binding.status.wall_ms = timer.millis();
  result.binding.equivalence =
      derive_families(inst, result.structure, result.binding.edge_results);
  KSTABLE_ENSURE(result.binding.equivalence.consistent,
                 "strengthened structure lost consistency");
  finish_telemetry(result.binding, inst, options, "binding.strengthen");
  result.binding.telemetry.add_phase("strengthen", timer.millis());
  obs::record(result.binding.telemetry);
  return result;
}

BindingStructure greedy_spanning_tree(
    Gender k, const std::vector<GenderEdge>& candidates) {
  BindingStructure tree(k);
  for (const auto& edge : candidates) {
    if (tree.is_spanning_tree()) break;
    if (!tree.would_cycle(edge.a, edge.b)) tree.add_edge(edge);
  }
  KSTABLE_REQUIRE(tree.is_spanning_tree(),
                  "candidate edges do not span the " << k << " genders");
  return tree;
}

}  // namespace kstable::core
