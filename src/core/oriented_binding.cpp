#include "core/oriented_binding.hpp"

#include "util/check.hpp"

namespace kstable::core {

OrientedBindingResult oriented_binding(const KPartiteInstance& inst,
                                       const BindingStructure& tree,
                                       OrientationPolicy policy,
                                       const BindingOptions& options) {
  KSTABLE_REQUIRE(tree.is_spanning_tree(),
                  "oriented binding requires a spanning tree");
  const Gender k = inst.genders();
  const Index n = inst.per_gender();

  OrientedBindingResult result{
      {}, BindingStructure(k),
      std::vector<std::int64_t>(static_cast<std::size_t>(k), 0)};

  std::size_t edge_index = 0;
  for (const auto& edge : tree.edges()) {
    GenderEdge oriented = edge;
    switch (policy) {
      case OrientationPolicy::as_given:
        break;
      case OrientationPolicy::alternate:
        if (edge_index % 2 == 1) oriented = {edge.b, edge.a};
        break;
      case OrientationPolicy::balance_greedy: {
        // The currently unhappier gender proposes (proposer advantage).
        const auto cost_a =
            result.gender_cost[static_cast<std::size_t>(edge.a)];
        const auto cost_b =
            result.gender_cost[static_cast<std::size_t>(edge.b)];
        if (cost_b > cost_a) oriented = {edge.b, edge.a};
        break;
      }
    }
    ++edge_index;
    result.oriented.add_edge(oriented);
    auto gs_result = run_binding(inst, oriented, options);
    // Accumulate both sides' partner-rank costs for the balancing policy.
    for (Index p = 0; p < n; ++p) {
      const Index r = gs_result.proposer_match[static_cast<std::size_t>(p)];
      result.gender_cost[static_cast<std::size_t>(oriented.a)] +=
          inst.rank_of({oriented.a, p}, {oriented.b, r});
      result.gender_cost[static_cast<std::size_t>(oriented.b)] +=
          inst.rank_of({oriented.b, r}, {oriented.a, p});
    }
    result.binding.edge_results.push_back(std::move(gs_result));
    result.binding.total_proposals +=
        result.binding.edge_results.back().proposals;
  }
  result.binding.equivalence =
      derive_families(inst, result.oriented, result.binding.edge_results);
  KSTABLE_ENSURE(result.binding.equivalence.consistent,
                 "oriented spanning-tree binding must be consistent");
  return result;
}

}  // namespace kstable::core
