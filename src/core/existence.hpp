// Existence constructions of §III.A (Theorem 1).
//
// Theorem 1 has two halves: (a) for k > 2 there are preference lists under
// which NO stable binary matching exists — built here as a combined-ranking
// roommates instance (the binary-matching model of §III ranks all
// other-gender members in one total order); (b) a PERFECT binary matching
// always exists when the node count is even — built here constructively,
// following the proof's pairing scheme (gender-pairing for even k; the
// half-split cyclic pairing (G'_1,G''_2), ..., (G'_k,G''_1) for odd k).
#pragma once

#include "prefs/matching.hpp"
#include "roommates/instance.hpp"
#include "util/rng.hpp"

namespace kstable::core {

/// The Theorem 1 proof's perfect binary matching. Requires k*n even.
/// Even k: gender 2t pairs index-wise with gender 2t+1. Odd k (n even):
/// the first half of gender g pairs with the second half of gender g+1 (mod k).
BinaryMatchingKP theorem1_perfect_matching(Gender k, Index n);

/// The Theorem 1 adversarial preference lists, in the combined-ranking model:
///  (1) the pariah (pariah_gender, 0) is ranked last by every other member;
///  (2) members of the other k-1 genders sit on a gender-alternating cycle
///      and rank their successor first (so each is ranked first by exactly
///      one member of a different gender among those k-1 sets).
/// Remaining positions are filled from `rng`. For k > 2 the returned
/// instance has a perfect matching but NO stable binary matching.
rm::RoommatesInstance theorem1_adversarial_roommates(Gender k, Index n,
                                                     Rng& rng,
                                                     Gender pariah_gender = 0);

}  // namespace kstable::core
