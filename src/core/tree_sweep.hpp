// TreeSweep: a work-stealing parallel sweep over spanning binding trees.
//
// Cayley's formula (paper §IV.B) gives k^(k-2) spanning binding trees, and
// every quantitative multi-tree question this library answers — E15's tree
// ablation, cost-aware tree selection, the exhaustive oracle experiments,
// solve_with_fallback's retry rungs — is a sweep over some subset of that
// space. This engine chunks the Prüfer code space (graph/prufer gives random
// access: tree_at(index, k) is the index-th tree of the enumeration order)
// across the existing ThreadPool with work stealing, runs iterative_binding
// per tree on thread_local GsWorkspaces, and reduces through a pluggable
// fold.
//
// Determinism contract: the sweep's outcome is a pure function of
// (instance, candidate set, fold, engine) — it does NOT depend on thread
// count, chunking, steal schedule, or which worker evaluated which tree.
//   * best_cost / score_table: the winner is the argmin of
//     (bound-pair cost, tree index) lexicographically; per-worker partial
//     folds are merged by the same total order, so any partition of the
//     index space yields the same winner. The score table is sorted by tree
//     index before returning.
//   * first_stable: the winner is the LOWEST-INDEXED candidate that yields a
//     stable matching within its per-tree budget. The early-exit filter
//     only skips indices strictly above the current best success, so every
//     index below the eventual winner is always evaluated — parallel and
//     sequential sweeps agree exactly.
// Per-tree matchings are bitwise-identical to a sequential run because each
// tree's binding is the same deterministic iterative_binding call (GS
// confluence; see gs_cache.hpp), property-tested in tree_sweep_test.
//
// Scheduling: the index space is split into one contiguous range per pool
// worker; owners claim chunk_trees-sized blocks off their range's front, and
// workers that run dry steal blocks off other ranges' backs (classic
// deque-ish stealing with a mutex per range — trees are coarse work units,
// so per-claim locking is noise). Steal/chunk counts surface in
// TreeSweepStats and the MetricsRegistry.
//
// Nesting: when called from inside a pool worker (e.g. a sweep per
// BatchSolver item), the engine detects it via ThreadPool::in_worker_thread()
// and runs sequentially instead of queueing a second thread complement onto
// the saturated pool (stats.nested_fallback reports it).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/binding.hpp"
#include "core/gs_cache.hpp"
#include "graph/binding_structure.hpp"
#include "parallel/thread_pool.hpp"
#include "resilience/control.hpp"

namespace kstable::core {

/// How the per-tree results reduce to one answer.
enum class SweepFold {
  /// Keep the tree minimizing bound-pair cost (ties: lowest tree index).
  best_cost,
  /// best_cost + the full per-tree score table (E15's ablation view).
  score_table,
  /// Stop at the lowest-indexed candidate that yields a stable matching
  /// within its per-tree budget (the fallback ladder's speculative rung).
  /// Keeps a per-tree attempt table like score_table.
  first_stable,
};

struct TreeSweepOptions {
  /// Per-edge GS engine. Must be a sequential engine (queue/rounds):
  /// TreeSweep spends its parallelism across trees, not inside one edge.
  GsEngine engine = GsEngine::queue;
  /// Workers to sweep on; nullptr = sequential. Ignored (sequential
  /// fallback) when the caller is itself a pool worker — see header notes.
  ThreadPool* pool = nullptr;
  /// Shared per-instance edge memo. Strongly recommended for parallel
  /// sweeps: concurrent workers missing the same oriented edge resolve
  /// single-flight instead of duplicating GS runs.
  GsEdgeCache* cache = nullptr;
  /// Whole-sweep deadline/budget/cancellation, checked between trees on
  /// every worker (and inside per-edge GS runs for folds that share it).
  /// Throws ExecutionAborted out of the sweep.
  resilience::ExecControl* control = nullptr;
  /// Fold; see SweepFold.
  SweepFold fold = SweepFold::best_cost;
  /// Trees per work-stealing claim. Small enough to balance, large enough
  /// that the per-claim lock is noise next to k-1 GS runs per tree.
  std::int64_t chunk_trees = 8;
  /// Keep each tree's assembled KaryMatching in the score table (memory:
  /// one k×n index table per tree — leave off for k >= 7 full sweeps).
  bool keep_matchings = false;
  /// first_stable only: budget for each candidate's attempt (unlimited =
  /// no per-tree control; Theorem 2 then makes candidate 0 the winner).
  resilience::Budget per_tree_budget{};
  /// first_stable only: candidate i's budget is per_tree_budget scaled by
  /// budget_backoff^i, mirroring the fallback ladder's escalation.
  double budget_backoff = 1.0;
  /// Optional warm-start provider threaded into every tree's per-edge
  /// BindingOptions (see core::WarmStartProvider). Must be thread-safe: the
  /// sweep calls it from every worker.
  const WarmStartProvider* warm_start = nullptr;
  /// Refuse full-space sweeps above this many trees (k=9 is ~4.8M; the
  /// guard forces the caller to opt into genuinely huge sweeps).
  std::int64_t max_trees = 5'000'000;
};

/// One row of the score table.
struct TreePoint {
  std::int64_t index = -1;           ///< position in the candidate order
  std::vector<Gender> prufer;        ///< Prüfer code of the tree
  bool succeeded = false;            ///< false only under first_stable budgets
  std::int64_t bound_pair_cost = 0;  ///< kary_tree_costs: what binding optimized
  std::int64_t all_pairs_cost = 0;   ///< kary_costs: including unbound pairs
  std::int64_t total_proposals = 0;
  std::int64_t executed_proposals = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  resilience::SolveStatus status;    ///< per-attempt status (first_stable)
  /// Assembled matching (keep_matchings && succeeded only).
  std::optional<KaryMatching> matching;
};

struct TreeSweepStats {
  std::int64_t trees = 0;    ///< candidates evaluated
  std::int64_t skipped = 0;  ///< first_stable early-exit skips
  std::int64_t chunks = 0;   ///< work-stealing claims
  std::int64_t steals = 0;   ///< claims taken from another worker's range
  std::size_t workers = 1;
  bool nested_fallback = false;  ///< pool given but ran sequentially (nested)
  double wall_ms = 0.0;
  double trees_per_sec = 0.0;
  std::int64_t total_proposals = 0;
  std::int64_t executed_proposals = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t single_flight_waits = 0;  ///< cache-level dedup events
};

struct TreeSweepResult {
  /// Winner per the fold's total order; -1 when nothing succeeded
  /// (first_stable with every budget blown).
  std::int64_t best_index = -1;
  std::int64_t best_cost = 0;  ///< winner's bound-pair cost
  std::optional<BindingResult> best;
  std::optional<BindingStructure> best_tree;
  /// Sorted by index; empty under SweepFold::best_cost.
  std::vector<TreePoint> per_tree;
  TreeSweepStats stats;
  /// Engine "sweep" record folded into the MetricsRegistry via obs::record.
  obs::SolveTelemetry telemetry;

  [[nodiscard]] bool succeeded() const noexcept { return best.has_value(); }
  [[nodiscard]] const KaryMatching& matching() const {
    return best->matching();
  }
};

/// Sweeps all k^(k-2) spanning trees of inst's gender set (Prüfer
/// enumeration order; guarded by options.max_trees).
TreeSweepResult sweep_all_trees(const KPartiteInstance& inst,
                                const TreeSweepOptions& options = {});

/// Sweeps an explicit candidate list (index = list position). Used by the
/// fallback ladder's speculative strict rungs.
TreeSweepResult sweep_trees(const KPartiteInstance& inst,
                            const std::vector<BindingStructure>& candidates,
                            const TreeSweepOptions& options = {});

/// Scheduling outcome of one work-stealing pass.
struct SweepSchedule {
  std::int64_t chunks = 0;
  std::int64_t steals = 0;
  std::size_t workers = 1;
};

/// The reusable work-stealing primitive under the sweep drivers: splits
/// [0, count) into one contiguous range per pool worker and invokes
/// run(worker, begin, end) for every claimed block — owners claim off their
/// range's front, thieves off other ranges' backs, `chunk` indices at a
/// time. Blocks until the space is exhausted; exceptions from `run`
/// propagate (first one wins) after all workers stop. Exposed for tests and
/// other index-space fan-outs.
SweepSchedule sweep_index_space(
    std::int64_t count, ThreadPool& pool, std::int64_t chunk,
    const std::function<void(std::size_t worker, std::int64_t begin,
                             std::int64_t end)>& run);

}  // namespace kstable::core
