#include "core/equivalence.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace kstable::core {

UnionFind::UnionFind(std::int32_t size) {
  KSTABLE_REQUIRE(size >= 0, "negative union-find size");
  parent_.resize(static_cast<std::size_t>(size));
  rank_.assign(static_cast<std::size_t>(size), 0);
  for (std::int32_t i = 0; i < size; ++i) parent_[static_cast<std::size_t>(i)] = i;
}

std::int32_t UnionFind::find(std::int32_t x) {
  KSTABLE_ASSERT(x >= 0 && x < size());
  while (parent_[static_cast<std::size_t>(x)] != x) {
    // Path halving.
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

bool UnionFind::unite(std::int32_t x, std::int32_t y) {
  std::int32_t rx = find(x);
  std::int32_t ry = find(y);
  if (rx == ry) return false;
  if (rank_[static_cast<std::size_t>(rx)] < rank_[static_cast<std::size_t>(ry)]) {
    std::swap(rx, ry);
  }
  parent_[static_cast<std::size_t>(ry)] = rx;
  if (rank_[static_cast<std::size_t>(rx)] == rank_[static_cast<std::size_t>(ry)]) {
    ++rank_[static_cast<std::size_t>(rx)];
  }
  return true;
}

EquivalenceReport derive_families(const KPartiteInstance& inst,
                                  const BindingStructure& structure,
                                  std::span<const gs::GsResult> edge_results) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  KSTABLE_REQUIRE(structure.genders() == k, "structure genders "
                      << structure.genders() << " != instance genders " << k);
  KSTABLE_REQUIRE(edge_results.size() == structure.edges().size(),
                  "got " << edge_results.size() << " edge results for "
                         << structure.edges().size() << " edges");

  EquivalenceReport report;
  UnionFind uf(k * n);
  for (std::size_t e = 0; e < edge_results.size(); ++e) {
    const auto& r = edge_results[e];
    const auto& edge = structure.edges()[e];
    KSTABLE_REQUIRE(r.proposer_gender == edge.a && r.responder_gender == edge.b,
                    "edge result " << e << " is GS(" << r.proposer_gender << ','
                                   << r.responder_gender << ") but edge is ("
                                   << edge.a << ',' << edge.b << ")");
    for (Index p = 0; p < n; ++p) {
      const Index q = r.proposer_match[static_cast<std::size_t>(p)];
      uf.unite(flat_id({edge.a, p}, n), flat_id({edge.b, q}, n));
    }
  }

  // Gender-level components drive the expected class shape.
  const auto gender_component = structure.component_labels();

  // Collect classes.
  std::vector<std::vector<std::int32_t>> classes;  // members (flat) per class
  std::vector<std::int32_t> class_of_root(static_cast<std::size_t>(k * n), -1);
  for (std::int32_t f = 0; f < k * n; ++f) {
    const std::int32_t root = uf.find(f);
    auto& cls = class_of_root[static_cast<std::size_t>(root)];
    if (cls == -1) {
      cls = static_cast<std::int32_t>(classes.size());
      classes.emplace_back();
    }
    classes[static_cast<std::size_t>(cls)].push_back(f);
  }
  report.class_count = static_cast<std::int32_t>(classes.size());

  // Validate each class: all members in one gender-component, exactly one
  // member per gender of that component.
  const Gender component_count =
      static_cast<Gender>([&gender_component] {
        auto labels = gender_component;
        std::sort(labels.begin(), labels.end());
        return std::unique(labels.begin(), labels.end()) - labels.begin();
      }());
  // classes_by_component[label] -> list of class ids.
  std::vector<std::vector<std::int32_t>> classes_by_component(
      static_cast<std::size_t>(k));  // indexed by component label (a gender id)
  for (std::size_t c = 0; c < classes.size(); ++c) {
    std::vector<std::int32_t> gender_count(static_cast<std::size_t>(k), 0);
    const std::int32_t label = gender_component[static_cast<std::size_t>(
        member_of(classes[c].front(), n).gender)];
    for (const std::int32_t f : classes[c]) {
      const MemberId m = member_of(f, n);
      ++gender_count[static_cast<std::size_t>(m.gender)];
      if (gender_component[static_cast<std::size_t>(m.gender)] != label) {
        // Cannot happen: union edges stay within a component by construction.
        report.inconsistency = "class spans binding components";
        return report;
      }
    }
    for (Gender g = 0; g < k; ++g) {
      const bool in_component =
          gender_component[static_cast<std::size_t>(g)] == label;
      const std::int32_t expected = in_component ? 1 : 0;
      if (gender_count[static_cast<std::size_t>(g)] != expected) {
        std::ostringstream os;
        os << "equivalence class has " << gender_count[static_cast<std::size_t>(g)]
           << " members of gender " << g << " (expected " << expected
           << "); binding structure "
           << (structure.has_cycle() ? "contains a cycle" : "is acyclic");
        report.inconsistency = os.str();
        return report;
      }
    }
    classes_by_component[static_cast<std::size_t>(label)].push_back(
        static_cast<std::int32_t>(c));
  }

  // Each component must contribute exactly n classes.
  for (Gender label = 0; label < k; ++label) {
    auto& ids = classes_by_component[static_cast<std::size_t>(label)];
    if (ids.empty()) continue;  // not a component label
    if (static_cast<Index>(ids.size()) != n) {
      std::ostringstream os;
      os << "component " << label << " produced " << ids.size()
         << " classes, expected " << n;
      report.inconsistency = os.str();
      return report;
    }
    // Deterministic assembly order: sort by the index of the class's member
    // of the component's smallest gender.
    auto anchor_index = [&](std::int32_t cls) {
      Index best_index = -1;
      Gender best_gender = k;
      for (const std::int32_t f : classes[static_cast<std::size_t>(cls)]) {
        const MemberId m = member_of(f, n);
        if (m.gender < best_gender) {
          best_gender = m.gender;
          best_index = m.index;
        }
      }
      return best_index;
    };
    std::sort(ids.begin(), ids.end(), [&](std::int32_t a, std::int32_t b) {
      return anchor_index(a) < anchor_index(b);
    });
  }

  // Assemble: family t = union over components of their t-th class.
  std::vector<Index> families(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(k), Index{-1});
  for (Gender label = 0; label < k; ++label) {
    const auto& ids = classes_by_component[static_cast<std::size_t>(label)];
    for (Index t = 0; t < static_cast<Index>(ids.size()); ++t) {
      for (const std::int32_t f :
           classes[static_cast<std::size_t>(ids[static_cast<std::size_t>(t)])]) {
        const MemberId m = member_of(f, n);
        families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(m.gender)] = m.index;
      }
    }
  }
  report.consistent = true;
  report.matching.emplace(k, n, std::move(families));
  KSTABLE_ENSURE(component_count >= 1, "component bookkeeping broke");
  return report;
}

}  // namespace kstable::core
