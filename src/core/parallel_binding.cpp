#include "core/parallel_binding.hpp"

#include "graph/scheduling.hpp"
#include "observability/metrics.hpp"
#include "resilience/fault_injection.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::core {

ParallelBindingReport execute_binding(const KPartiteInstance& inst,
                                      const BindingStructure& tree,
                                      ExecutionMode mode, ThreadPool& pool,
                                      resilience::ExecControl* control) {
  KSTABLE_REQUIRE(tree.is_forest(),
                  "parallel binding requires an acyclic structure");
  const auto& edges = tree.edges();
  ParallelBindingReport report;
  report.binding.edge_results.resize(edges.size());
  gs::GsOptions gs_options;
  gs_options.control = control;

  WallTimer timer;
  switch (mode) {
    case ExecutionMode::sequential: {
      for (std::size_t e = 0; e < edges.size(); ++e) {
        KSTABLE_FAULT_POINT("core/parallel_round");
        if (control != nullptr) control->check_now();
        report.binding.edge_results[e] =
            gs::gale_shapley_queue(inst, edges[e].a, edges[e].b, gs_options);
      }
      report.rounds_executed = static_cast<std::int64_t>(edges.size());
      break;
    }
    case ExecutionMode::erew_rounds: {
      const auto schedule = sched::color_forest(tree);
      for (const auto& round : schedule.rounds) {
        // Per-round barrier checkpoint: a deadline or injected fault stops
        // the executor between rounds, with no tasks in flight.
        KSTABLE_FAULT_POINT("core/parallel_round");
        if (control != nullptr) control->check_now();
        pool.for_each_index(round.size(), [&](std::size_t slot) {
          const std::size_t e = round[slot];
          report.binding.edge_results[e] =
              gs::gale_shapley_queue(inst, edges[e].a, edges[e].b, gs_options);
        });
      }
      report.rounds_executed =
          static_cast<std::int64_t>(schedule.round_count());
      break;
    }
    case ExecutionMode::crew_full: {
      KSTABLE_FAULT_POINT("core/parallel_round");
      if (control != nullptr) control->check_now();
      pool.for_each_index(edges.size(), [&](std::size_t e) {
        report.binding.edge_results[e] =
            gs::gale_shapley_queue(inst, edges[e].a, edges[e].b, gs_options);
      });
      report.rounds_executed = edges.empty() ? 0 : 1;
      break;
    }
  }
  report.wall_seconds = timer.seconds();

  for (const auto& r : report.binding.edge_results) {
    report.binding.total_proposals += r.proposals;
    report.edge_proposals.push_back(r.proposals);
  }
  report.binding.status.proposals = report.binding.total_proposals;
  report.binding.status.wall_ms = report.wall_seconds * 1e3;
  report.binding.equivalence =
      derive_families(inst, tree, report.binding.edge_results);
  KSTABLE_ENSURE(!tree.is_spanning_tree() || report.binding.equivalence.consistent,
                 "spanning-tree parallel binding produced inconsistent classes");

  const pram::Model model = mode == ExecutionMode::sequential
                                ? pram::Model::erew
                                : mode == ExecutionMode::erew_rounds
                                      ? pram::Model::erew
                                      : pram::Model::crew;
  report.cost =
      pram::charge(tree, report.edge_proposals, model, inst.per_gender());

  obs::SolveTelemetry& t = report.binding.telemetry;
  t.engine = mode == ExecutionMode::sequential
                 ? "parallel.sequential"
                 : mode == ExecutionMode::erew_rounds ? "parallel.erew"
                                                      : "parallel.crew";
  t.genders = inst.genders();
  t.size = inst.per_gender();
  t.wall_ms = report.wall_seconds * 1e3;
  t.add_phase("rounds", t.wall_ms);
  t.status = report.binding.status;
  t.proposals = report.binding.total_proposals;
  t.executed_proposals = report.binding.total_proposals;
  t.rounds = report.rounds_executed;
  t.attempts = 1;
  if (control != nullptr && control->budget().wall_ms > 0.0) {
    const double margin = control->budget().wall_ms - control->elapsed_ms();
    t.deadline_margin_ms = margin > 0.0 ? margin : 0.0;
  }
  obs::record(t);
  KSTABLE_COUNTER_ADD("parallel.rounds", report.rounds_executed);
  return report;
}

}  // namespace kstable::core
