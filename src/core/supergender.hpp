// k-ary matching in k'-partite graphs (paper §VII future work: "a more
// general k-ary matching in k'-partite graphs, where k < k' and ck = nk' for
// some constant c").
//
// Construction: partition the k' genders into k equally-sized *super-genders*
// of c = k'/k genders each. A member's preferences over a super-gender are
// the linearized merge of its per-gender lists over that group (the same
// footnote-4 linearization the binary front-end uses). The derived system is
// a balanced complete k-partite instance with n·c members per super-gender,
// so Algorithm 1 applies verbatim and Theorem 2 gives a stable k-ary matching
// of the derived instance: n·c families of k members, one per super-gender —
// exactly ck = nk' members matched, the paper's constraint.
//
// Note the semantics: stability is with respect to the *linearized*
// preferences; members of the same original gender can now appear in
// different roles across families (each family holds one member per
// super-gender, of whichever original gender).
#pragma once

#include <vector>

#include "core/binding.hpp"
#include "roommates/adapters.hpp"  // rm::Linearization

namespace kstable::core {

/// A partition of the original k' genders into equally-sized groups.
struct SupergenderPartition {
  std::vector<std::vector<Gender>> groups;

  /// Validates against an instance: groups disjoint, covering, equal size.
  void validate(Gender original_k) const;

  /// Contiguous partition: groups of `c` consecutive genders.
  static SupergenderPartition contiguous(Gender original_k, Gender group_size);
};

/// The derived super-gender instance plus the member mapping back to the
/// original instance.
struct SupergenderSystem {
  KPartiteInstance derived;         ///< balanced k-partite, super_n per gender
  SupergenderPartition partition;
  Index original_n = 0;

  /// Original member behind derived member (G, j).
  [[nodiscard]] MemberId original(MemberId derived_member) const;
  /// Derived member id of an original member (its group becomes the gender).
  [[nodiscard]] MemberId derived_id(MemberId original_member) const;
};

/// Builds the derived instance. `lin` controls how a member's per-gender
/// lists merge into one order over each super-gender; `rng` is only needed
/// for Linearization::random_interleave.
SupergenderSystem derive_supergender_system(const KPartiteInstance& inst,
                                            const SupergenderPartition& partition,
                                            rm::Linearization lin,
                                            Rng* rng = nullptr);

/// One coalition: k original members, one per super-gender.
struct Coalition {
  std::vector<MemberId> members;
};

struct CoalitionResult {
  SupergenderSystem system;
  BindingResult binding;           ///< Algorithm 1 result on the derived instance
  std::vector<Coalition> coalitions;  ///< n·c coalitions of k original members
};

/// End-to-end: derive the super-gender system, run Algorithm 1 on `tree`
/// (path tree over super-genders if unset), map families back to original
/// members. Theorem 2 applies to the derived instance, so the coalition set
/// is stable w.r.t. the linearized preferences.
CoalitionResult coalition_binding(const KPartiteInstance& inst,
                                  const SupergenderPartition& partition,
                                  rm::Linearization lin, Rng* rng = nullptr);

}  // namespace kstable::core
