#include "core/tree_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <utility>

#include "analysis/metrics.hpp"
#include "graph/prufer.hpp"
#include "observability/metrics.hpp"
#include "resilience/errors.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::core {

namespace {

/// Produces candidate `index` (pure: callable from any worker).
using TreeProvider = std::function<BindingStructure(std::int64_t)>;

resilience::Budget scaled(const resilience::Budget& base, double scale) {
  resilience::Budget b = base;
  if (b.wall_ms > 0.0) b.wall_ms *= scale;
  if (b.max_proposals > 0) {
    b.max_proposals =
        static_cast<std::int64_t>(static_cast<double>(b.max_proposals) * scale);
  }
  return b;
}

/// Per-worker partial fold. Merged in worker order at the end; every field
/// merges through an order-insensitive operation (sum, or the fold's total
/// order on (cost, index)), which is what makes the sweep schedule-invariant.
struct WorkerLocal {
  std::int64_t trees = 0;
  std::int64_t skipped = 0;
  std::int64_t total_proposals = 0;
  std::int64_t executed_proposals = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t best_index = -1;
  std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
  std::optional<BindingResult> best;
  std::optional<BindingStructure> best_tree;
  std::vector<TreePoint> points;
};

/// Evaluates candidate `index` into `local`. `first_success` is the shared
/// first_stable early-exit floor (ignored by the other folds).
void evaluate_tree(const KPartiteInstance& inst, std::int64_t index,
                   const TreeProvider& provider, const TreeSweepOptions& opt,
                   gs::GsWorkspace& workspace,
                   std::atomic<std::int64_t>& first_success,
                   WorkerLocal& local) {
  // The whole-sweep control aborts the sweep, never one tree: check it
  // OUTSIDE the per-tree catch below so its ExecutionAborted propagates.
  if (opt.control != nullptr) opt.control->check_now();

  const bool first_stable = opt.fold == SweepFold::first_stable;
  if (first_stable && index > first_success.load(std::memory_order_relaxed)) {
    // An index above the current best success can never win (the floor only
    // ever decreases), so skipping here cannot change the winner.
    ++local.skipped;
    return;
  }

  const BindingStructure tree = provider(index);

  BindingOptions bopts;
  bopts.engine = opt.engine;
  bopts.cache = opt.cache;
  bopts.warm_start = opt.warm_start;
  bopts.workspace = &workspace;

  std::optional<resilience::ExecControl> per_tree_control;
  if (first_stable && !opt.per_tree_budget.unlimited()) {
    const double scale =
        std::pow(opt.budget_backoff, static_cast<double>(index));
    per_tree_control.emplace(scaled(opt.per_tree_budget, scale),
                             opt.control != nullptr
                                 ? opt.control->token()
                                 : resilience::CancellationToken{});
    bopts.control = &*per_tree_control;
  } else {
    bopts.control = opt.control;
  }

  TreePoint point;
  point.index = index;
  ++local.trees;
  const bool keep_point = opt.fold != SweepFold::best_cost;
  if (keep_point) point.prufer = prufer::encode(tree);

  try {
    BindingResult result = iterative_binding(inst, tree, bopts);
    point.succeeded = true;
    point.status = result.status;
    point.total_proposals = result.total_proposals;
    point.executed_proposals = result.executed_proposals;
    point.cache_hits = result.cache_hits;
    point.cache_misses = result.cache_misses;
    point.bound_pair_cost =
        analysis::kary_tree_costs(inst, result.matching(), tree).total_cost;
    point.all_pairs_cost =
        analysis::kary_costs(inst, result.matching()).total_cost;
    if (keep_point && opt.keep_matchings) point.matching = result.matching();

    local.total_proposals += result.total_proposals;
    local.executed_proposals += result.executed_proposals;
    local.cache_hits += result.cache_hits;
    local.cache_misses += result.cache_misses;

    const bool wins =
        first_stable
            ? (local.best_index < 0 || index < local.best_index)
            : (point.bound_pair_cost < local.best_cost ||
               (point.bound_pair_cost == local.best_cost &&
                (local.best_index < 0 || index < local.best_index)));
    if (wins) {
      local.best_index = index;
      local.best_cost = point.bound_pair_cost;
      local.best = std::move(result);
      local.best_tree = tree;
    }
    if (first_stable) {
      // Publish the success floor so other workers stop evaluating higher
      // indices.
      std::int64_t seen = first_success.load(std::memory_order_relaxed);
      while (index < seen && !first_success.compare_exchange_weak(
                                 seen, index, std::memory_order_relaxed)) {
      }
    }
  } catch (const ExecutionAborted& e) {
    // Only a per-tree budget lands here (the shared control was checked
    // before the try): the blown attempt is a recorded failure, not a sweep
    // abort. A cancellation is a caller decision and still stops everything.
    if (!per_tree_control.has_value() ||
        e.reason() == AbortReason::cancelled) {
      throw;
    }
    point.succeeded = false;
    point.status = per_tree_control->aborted_status(e.reason(), e.what());
    point.executed_proposals = point.status.proposals;
    local.executed_proposals += point.status.proposals;
  }
  if (keep_point) local.points.push_back(std::move(point));
}

TreeSweepResult sweep_indexed(const KPartiteInstance& inst, std::int64_t count,
                              const TreeProvider& provider,
                              const TreeSweepOptions& opt) {
  KSTABLE_REQUIRE(opt.engine != GsEngine::parallel,
                  "TreeSweep spends its parallelism across trees; use a "
                  "sequential per-edge engine (queue/rounds)");
  KSTABLE_REQUIRE(opt.chunk_trees >= 1,
                  "chunk_trees must be >= 1, got " << opt.chunk_trees);
  KSTABLE_REQUIRE(opt.budget_backoff >= 1.0,
                  "budget_backoff must be >= 1, got " << opt.budget_backoff);
  if (opt.cache != nullptr) {
    KSTABLE_REQUIRE(opt.cache->genders() == inst.genders(),
                    "cache built for k=" << opt.cache->genders()
                                         << ", instance has k="
                                         << inst.genders());
  }

  TreeSweepResult out;
  const WallTimer timer;
  const GsEdgeCache::Stats cache_before =
      opt.cache != nullptr ? opt.cache->stats() : GsEdgeCache::Stats{};

  const bool nested = opt.pool != nullptr && ThreadPool::in_worker_thread();
  const bool parallel_run = opt.pool != nullptr && !nested &&
                            opt.pool->thread_count() > 1 && count > 1;

  std::atomic<std::int64_t> first_success{
      std::numeric_limits<std::int64_t>::max()};

  std::vector<WorkerLocal> locals;
  if (parallel_run) {
    locals.resize(opt.pool->thread_count());
    const SweepSchedule schedule = sweep_index_space(
        count, *opt.pool, opt.chunk_trees,
        [&](std::size_t worker, std::int64_t begin, std::int64_t end) {
          // One warm workspace per pool thread, reused across sweeps (the
          // BatchSolver pattern): every per-edge GS run is allocation-free.
          thread_local gs::GsWorkspace workspace;
          WorkerLocal& local = locals[worker];
          for (std::int64_t i = begin; i < end; ++i) {
            evaluate_tree(inst, i, provider, opt, workspace, first_success,
                          local);
          }
        });
    out.stats.chunks = schedule.chunks;
    out.stats.steals = schedule.steals;
    out.stats.workers = schedule.workers;
  } else {
    locals.resize(1);
    gs::GsWorkspace workspace;
    for (std::int64_t i = 0; i < count; ++i) {
      evaluate_tree(inst, i, provider, opt, workspace, first_success,
                    locals[0]);
    }
    out.stats.workers = 1;
    out.stats.nested_fallback = nested;
  }

  // Deterministic merge of the per-worker partials: sums plus the fold's
  // total order, both independent of which worker saw which tree.
  TreeSweepStats& st = out.stats;
  for (auto& local : locals) {
    st.trees += local.trees;
    st.skipped += local.skipped;
    st.total_proposals += local.total_proposals;
    st.executed_proposals += local.executed_proposals;
    st.cache_hits += local.cache_hits;
    st.cache_misses += local.cache_misses;
    if (!local.best.has_value()) continue;
    const bool wins =
        !out.best.has_value() ||
        (opt.fold == SweepFold::first_stable
             ? local.best_index < out.best_index
             : (local.best_cost < out.best_cost ||
                (local.best_cost == out.best_cost &&
                 local.best_index < out.best_index)));
    if (wins) {
      out.best_index = local.best_index;
      out.best_cost = local.best_cost;
      out.best = std::move(local.best);
      out.best_tree = std::move(local.best_tree);
    }
  }
  if (opt.fold != SweepFold::best_cost) {
    for (auto& local : locals) {
      for (auto& point : local.points) {
        out.per_tree.push_back(std::move(point));
      }
    }
    std::sort(out.per_tree.begin(), out.per_tree.end(),
              [](const TreePoint& x, const TreePoint& y) {
                return x.index < y.index;
              });
  }

  if (opt.cache != nullptr) {
    st.single_flight_waits = opt.cache->stats().single_flight_waits -
                             cache_before.single_flight_waits;
  }
  st.wall_ms = timer.millis();
  st.trees_per_sec = st.wall_ms > 0.0
                         ? static_cast<double>(st.trees) / (st.wall_ms / 1e3)
                         : 0.0;

  obs::SolveTelemetry& t = out.telemetry;
  t.engine = "sweep";
  t.genders = inst.genders();
  t.size = inst.per_gender();
  t.wall_ms = st.wall_ms;
  t.add_phase("sweep", st.wall_ms);
  if (out.best.has_value()) t.status = out.best->status;
  t.proposals = st.total_proposals;
  t.executed_proposals = st.executed_proposals;
  t.cache_hits = st.cache_hits;
  t.cache_misses = st.cache_misses;
  t.attempts = st.trees;
  obs::record(t);
  KSTABLE_COUNTER_ADD("sweep.trees", st.trees);
  KSTABLE_COUNTER_ADD("sweep.chunks", st.chunks);
  KSTABLE_COUNTER_ADD("sweep.steals", st.steals);
  if (st.nested_fallback) KSTABLE_COUNTER_ADD("sweep.nested_fallback", 1);
  KSTABLE_GAUGE_SET("sweep.trees_per_sec", st.trees_per_sec);
  return out;
}

}  // namespace

SweepSchedule sweep_index_space(
    std::int64_t count, ThreadPool& pool, std::int64_t chunk,
    const std::function<void(std::size_t worker, std::int64_t begin,
                             std::int64_t end)>& run) {
  KSTABLE_REQUIRE(count >= 0, "negative index space: " << count);
  KSTABLE_REQUIRE(chunk >= 1, "chunk must be >= 1, got " << chunk);
  SweepSchedule schedule;
  const std::size_t workers = std::max<std::size_t>(1, pool.thread_count());
  schedule.workers = workers;
  if (count == 0) return schedule;

  // One contiguous range per worker; a claim needs only the range's own
  // mutex, so claims on different ranges never contend. Ranges are fixed at
  // construction (the vector never grows: Range holds a mutex).
  struct Range {
    std::int64_t next = 0;
    std::int64_t end = 0;
    std::mutex m;
  };
  std::vector<Range> ranges(workers);
  const auto worker_count = static_cast<std::int64_t>(workers);
  const std::int64_t base = count / worker_count;
  const std::int64_t rem = count % worker_count;
  std::int64_t cursor = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::int64_t len =
        base + (static_cast<std::int64_t>(w) < rem ? 1 : 0);
    ranges[w].next = cursor;
    ranges[w].end = cursor + len;
    cursor += len;
  }

  std::atomic<std::int64_t> chunks{0};
  std::atomic<std::int64_t> steals{0};

  pool.for_each_index(workers, [&](std::size_t w) {
    // Drain our own range front-to-back...
    for (;;) {
      std::int64_t begin = -1;
      std::int64_t end = -1;
      {
        std::scoped_lock lock(ranges[w].m);
        if (ranges[w].next < ranges[w].end) {
          begin = ranges[w].next;
          end = std::min(ranges[w].end, begin + chunk);
          ranges[w].next = end;
        }
      }
      if (begin < 0) break;
      chunks.fetch_add(1, std::memory_order_relaxed);
      run(w, begin, end);
    }
    // ...then steal off the other ranges' backs (opposite end from the
    // owner, so a steal and an owner claim only collide on the last block).
    for (std::size_t off = 1; off < workers; ++off) {
      const std::size_t victim = (w + off) % workers;
      for (;;) {
        std::int64_t begin = -1;
        std::int64_t end = -1;
        {
          std::scoped_lock lock(ranges[victim].m);
          if (ranges[victim].next < ranges[victim].end) {
            end = ranges[victim].end;
            begin = std::max(ranges[victim].next, end - chunk);
            ranges[victim].end = begin;
          }
        }
        if (begin < 0) break;
        chunks.fetch_add(1, std::memory_order_relaxed);
        steals.fetch_add(1, std::memory_order_relaxed);
        run(w, begin, end);
      }
    }
  });

  schedule.chunks = chunks.load(std::memory_order_relaxed);
  schedule.steals = steals.load(std::memory_order_relaxed);
  return schedule;
}

TreeSweepResult sweep_all_trees(const KPartiteInstance& inst,
                                const TreeSweepOptions& options) {
  const Gender k = inst.genders();
  const std::int64_t count = prufer::cayley_count(k);
  KSTABLE_REQUIRE(count <= options.max_trees,
                  "full sweep of k=" << k << " spans " << count
                                     << " trees, above the max_trees guard ("
                                     << options.max_trees << ')');
  return sweep_indexed(
      inst, count,
      [k](std::int64_t index) { return prufer::tree_at(index, k); }, options);
}

TreeSweepResult sweep_trees(const KPartiteInstance& inst,
                            const std::vector<BindingStructure>& candidates,
                            const TreeSweepOptions& options) {
  for (const auto& tree : candidates) {
    KSTABLE_REQUIRE(tree.genders() == inst.genders(),
                    "candidate tree has " << tree.genders()
                                          << " genders, instance "
                                          << inst.genders());
    KSTABLE_REQUIRE(tree.is_spanning_tree(),
                    "sweep candidates must be spanning binding trees");
  }
  return sweep_indexed(inst, static_cast<std::int64_t>(candidates.size()),
                       [&candidates](std::int64_t index) {
                         return candidates[static_cast<std::size_t>(index)];
                       },
                       options);
}

}  // namespace kstable::core
