// Umbrella header: the full public API of the kstable library.
//
// Quick tour (see README.md for a walkthrough):
//   KPartiteInstance            — balanced complete k-partite preferences
//   gen::*                      — instance generators (uniform/adversarial/...)
//   gs::gale_shapley_*          — binary Gale-Shapley engines
//   rm::solve / solve_fair_smp  — Irving stable roommates + fair SMP
//   rm::solve_kpartite_binary   — stable binary matching in k-partite graphs
//   core::iterative_binding     — Algorithm 1 (stable k-ary matching)
//   core::priority_binding      — Algorithm 2 (weakened stability, §IV.D)
//   core::execute_binding       — parallel binding (EREW/CREW schedules)
//   core::GsEdgeCache           — per-instance memo of per-edge GS results
//   core::BatchSolver           — many instances across the thread pool
//   core::sweep_all_trees       — work-stealing parallel sweep over all
//                                 k^(k-2) binding trees (TreeSweep engine)
//   incremental::*              — preference-churn mutations, warm-restart
//                                 GS, and rematch() incremental
//                                 re-stabilization (docs/INCREMENTAL.md)
//   analysis::*                 — stability checkers, oracles, metrics
//   resilience::*               — deadlines/cancellation (ExecControl), fault
//                                 injection, and the tree-fallback solve ladder
//   obs::*                      — observability: MetricsRegistry counters,
//                                 per-solve SolveTelemetry, JSON/Prometheus
//                                 exporters (docs/OBSERVABILITY.md)
//   verify::*                   — cross-engine differential harness: seeded
//                                 instance generation, the agreement battery,
//                                 independent certificate checkers, and the
//                                 delta-debugging shrinker (docs/VERIFY.md)
#pragma once

#include "analysis/assignment.hpp"
#include "analysis/dot.hpp"
#include "analysis/metrics.hpp"
#include "analysis/oracle.hpp"
#include "analysis/quorum.hpp"
#include "analysis/stability.hpp"
#include "core/batch_solver.hpp"
#include "core/binding.hpp"
#include "core/cyclic3dsm.hpp"
#include "core/equivalence.hpp"
#include "core/existence.hpp"
#include "core/gs_cache.hpp"
#include "core/oriented_binding.hpp"
#include "core/parallel_binding.hpp"
#include "core/priority_binding.hpp"
#include "core/supergender.hpp"
#include "core/tree_selection.hpp"
#include "core/tree_sweep.hpp"
#include "graph/binding_structure.hpp"
#include "graph/prufer.hpp"
#include "graph/scheduling.hpp"
#include "gs/gale_shapley.hpp"
#include "gs/hospitals.hpp"
#include "gs/parallel_gs.hpp"
#include "gs/scan_gs.hpp"
#include "incremental/mutation.hpp"
#include "incremental/rematch.hpp"
#include "incremental/warm_gs.hpp"
#include "observability/metrics.hpp"
#include "observability/telemetry.hpp"
#include "parallel/pram.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/catalog.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "prefs/io.hpp"
#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"
#include "prefs/matching_io.hpp"
#include "resilience/control.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/solve_ladder.hpp"
#include "roommates/adapters.hpp"
#include "roommates/examples.hpp"
#include "roommates/io.hpp"
#include "roommates/lattice.hpp"
#include "roommates/solver.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "verify/cert_checker.hpp"
#include "verify/diff_runner.hpp"
#include "verify/instance_gen.hpp"
#include "verify/shrinker.hpp"
#include "verify/verify.hpp"
