// Cyclic three-dimensional stable matching — the prior-work baseline the
// paper positions itself against (§I / §V.A: Ng & Hirschberg's cyclic model,
// Huang's variants — existence is NP-complete in those models, which is the
// motivation for the paper's per-gender binary preference model).
//
// Cyclic model: genders M, W, U; each m ranks only women, each w ranks only
// undecided members, each u ranks only men (preferences "cyclic among
// genders"). A matching is a set of n disjoint triples. A triple (m, w, u)
// NOT currently together blocks when m strictly prefers w to his triple's
// woman, w strictly prefers u to her triple's u, and u strictly prefers m to
// its triple's man.
//
// We provide an exhaustive solver (small n), a blocking-triple repair local
// search (larger n, not guaranteed to converge — that's the point of the
// comparison), and reuse KPartiteInstance storage: only the cyclic three of
// the six cross-gender lists are read (M->W, W->U, U->M).
#pragma once

#include <cstdint>
#include <optional>

#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"
#include "util/rng.hpp"

namespace kstable::c3d {

inline constexpr Gender kM = 0, kW = 1, kU = 2;

/// A blocking triple witness (indices into each gender).
struct BlockingTriple {
  Index m = -1, w = -1, u = -1;
};

/// True iff (m, w, u) blocks `matching` under the cyclic condition.
bool triple_blocks(const KPartiteInstance& inst, const KaryMatching& matching,
                   Index m, Index w, Index u);

/// First blocking triple in lexicographic order, or nullopt if cyclically
/// stable. O(n³).
std::optional<BlockingTriple> find_blocking_triple(const KPartiteInstance& inst,
                                                   const KaryMatching& matching);

/// Exhaustive search over all (n!)² matchings for a cyclically stable one.
/// Requires inst.genders() == 3; practical for n <= 5.
std::optional<KaryMatching> find_stable_exhaustive(const KPartiteInstance& inst);

struct LocalSearchResult {
  std::optional<KaryMatching> matching;  ///< set iff converged to stability
  std::int64_t repairs = 0;              ///< blocking triples satisfied
  bool converged = false;
};

/// Blocking-triple repair: start from the identity matching and repeatedly
/// satisfy the first blocking triple found (two member swaps put the triple
/// together). May cycle — stops after `max_repairs` repairs. This is the
/// honest baseline: no polynomial algorithm with a guarantee is known for the
/// cyclic model, in contrast to the paper's Algorithm 1.
LocalSearchResult local_search(const KPartiteInstance& inst,
                               std::int64_t max_repairs);

}  // namespace kstable::c3d
