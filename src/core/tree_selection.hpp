// Cost-aware binding-tree selection — an ablation the paper's §IV.B invites:
// "different bindings may generate different stable k-ary matchings" (and
// kk-2 trees exist, by Cayley), so WHICH spanning tree should a deployment
// bind along?
//
// Strategy implemented here: run one binary GS per unordered gender pair
// (k(k-1)/2 probe matchings), score each pair by the egalitarian cost of its
// stable matching, and build the minimum- (or maximum-) cost spanning tree
// over those scores with Kruskal's algorithm. Binding along the min-cost
// tree directly optimizes the bound-pair cost; experiment E15 measures how
// much that buys over path/star/random trees, and what it does to the
// UNBOUND cross pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/binding.hpp"

namespace kstable::core {

/// Probe results for every unordered gender pair.
struct PairProbe {
  GenderEdge edge;             ///< (a proposes, b responds)
  std::int64_t cost = 0;       ///< egalitarian rank cost of GS(a, b)
  std::int64_t proposals = 0;  ///< proposal count of the probe run
};

/// Runs GS on every unordered gender pair and scores it. O(k² n log n) avg.
/// With options.cache attached, the k(k-1)/2 probe matchings are memoized —
/// the subsequent iterative_binding along the selected tree replays its
/// edges as cache hits instead of re-running GS.
///
/// With options.pool attached (and a sequential per-edge engine, no trace
/// sink), the independent probes fan out across the pool; the returned
/// vector is identical to the sequential pass (each probe is the same
/// deterministic GS run written to its own pre-assigned slot). Inside a pool
/// worker the probes stay sequential (nested-pool guard).
std::vector<PairProbe> probe_all_pairs(const KPartiteInstance& inst,
                                       const BindingOptions& options = {});

enum class TreeObjective {
  min_cost,  ///< Kruskal minimum spanning tree over probe costs
  max_cost   ///< adversarial control: worst tree under the same metric
};

/// Builds the spanning tree optimizing `objective` over the probe costs.
BindingStructure select_tree(const KPartiteInstance& inst,
                             TreeObjective objective,
                             const BindingOptions& options = {});

/// Convenience: select_tree + iterative_binding (one probe pass when
/// options.cache is set, instead of probes + fresh per-edge GS runs).
BindingResult cost_aware_binding(const KPartiteInstance& inst,
                                 TreeObjective objective = TreeObjective::min_cost,
                                 const BindingOptions& options = {});

}  // namespace kstable::core
