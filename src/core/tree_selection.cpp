#include "core/tree_selection.hpp"

#include <algorithm>

#include "core/equivalence.hpp"
#include "util/check.hpp"

namespace kstable::core {

std::vector<PairProbe> probe_all_pairs(const KPartiteInstance& inst,
                                       const BindingOptions& options) {
  const Gender k = inst.genders();
  std::vector<PairProbe> probes;
  probes.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k - 1) / 2);
  for (Gender a = 0; a < k; ++a) {
    for (Gender b = a + 1; b < k; ++b) {
      PairProbe probe;
      probe.edge = {a, b};
      const auto result = run_binding(inst, probe.edge, options);
      probe.proposals = result.proposals;
      for (Index p = 0; p < inst.per_gender(); ++p) {
        const Index r = result.proposer_match[static_cast<std::size_t>(p)];
        probe.cost += inst.rank_of({a, p}, {b, r});
        probe.cost += inst.rank_of({b, r}, {a, p});
      }
      probes.push_back(probe);
    }
  }
  return probes;
}

BindingStructure select_tree(const KPartiteInstance& inst,
                             TreeObjective objective,
                             const BindingOptions& options) {
  auto probes = probe_all_pairs(inst, options);
  std::sort(probes.begin(), probes.end(),
            [objective](const PairProbe& x, const PairProbe& y) {
              return objective == TreeObjective::min_cost ? x.cost < y.cost
                                                          : x.cost > y.cost;
            });
  // Kruskal: take edges in score order, skipping cycle-closers.
  BindingStructure tree(inst.genders());
  for (const auto& probe : probes) {
    if (tree.is_spanning_tree()) break;
    if (!tree.would_cycle(probe.edge.a, probe.edge.b)) {
      tree.add_edge(probe.edge);
    }
  }
  KSTABLE_ENSURE(tree.is_spanning_tree(), "Kruskal failed to span");
  return tree;
}

BindingResult cost_aware_binding(const KPartiteInstance& inst,
                                 TreeObjective objective,
                                 const BindingOptions& options) {
  return iterative_binding(inst, select_tree(inst, objective, options),
                           options);
}

}  // namespace kstable::core
