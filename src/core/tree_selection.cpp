#include "core/tree_selection.hpp"

#include <algorithm>

#include "core/equivalence.hpp"
#include "util/check.hpp"

namespace kstable::core {

std::vector<PairProbe> probe_all_pairs(const KPartiteInstance& inst,
                                       const BindingOptions& options) {
  const Gender k = inst.genders();
  // Probe slots are laid out in (a, b) order up front so the parallel path
  // writes each slot independently and the returned vector is identical to
  // the sequential one (determinism does not depend on completion order).
  std::vector<PairProbe> probes(static_cast<std::size_t>(k) *
                                static_cast<std::size_t>(k - 1) / 2);
  std::size_t next = 0;
  for (Gender a = 0; a < k; ++a) {
    for (Gender b = a + 1; b < k; ++b) probes[next++].edge = {a, b};
  }

  const auto probe_one = [&inst](PairProbe& probe,
                                 const BindingOptions& bopts) {
    const Gender a = probe.edge.a;
    const Gender b = probe.edge.b;
    const auto result = run_binding(inst, probe.edge, bopts);
    probe.proposals = result.proposals;
    for (Index p = 0; p < inst.per_gender(); ++p) {
      const Index r = result.proposer_match[static_cast<std::size_t>(p)];
      probe.cost += inst.rank_of({a, p}, {b, r});
      probe.cost += inst.rank_of({b, r}, {a, p});
    }
  };

  // The k(k-1)/2 probes are independent GS runs, so fan them out when a pool
  // is attached and the per-edge engine is sequential (GsEngine::parallel
  // already owns the pool). The nested-pool guard keeps a probe pass inside
  // a BatchSolver item sequential, and a shared trace sink cannot accept
  // interleaved events from several probes.
  const bool parallel_run =
      options.pool != nullptr && options.engine != GsEngine::parallel &&
      options.trace == nullptr && !ThreadPool::in_worker_thread() &&
      options.pool->thread_count() > 1 && probes.size() > 1;
  if (parallel_run) {
    options.pool->for_each_index(probes.size(), [&](std::size_t i) {
      thread_local gs::GsWorkspace workspace;
      BindingOptions bopts = options;
      bopts.workspace = &workspace;
      probe_one(probes[i], bopts);
    });
  } else {
    for (auto& probe : probes) probe_one(probe, options);
  }
  return probes;
}

BindingStructure select_tree(const KPartiteInstance& inst,
                             TreeObjective objective,
                             const BindingOptions& options) {
  auto probes = probe_all_pairs(inst, options);
  std::sort(probes.begin(), probes.end(),
            [objective](const PairProbe& x, const PairProbe& y) {
              return objective == TreeObjective::min_cost ? x.cost < y.cost
                                                          : x.cost > y.cost;
            });
  // Kruskal: take edges in score order, skipping cycle-closers.
  BindingStructure tree(inst.genders());
  for (const auto& probe : probes) {
    if (tree.is_spanning_tree()) break;
    if (!tree.would_cycle(probe.edge.a, probe.edge.b)) {
      tree.add_edge(probe.edge);
    }
  }
  KSTABLE_ENSURE(tree.is_spanning_tree(), "Kruskal failed to span");
  return tree;
}

BindingResult cost_aware_binding(const KPartiteInstance& inst,
                                 TreeObjective objective,
                                 const BindingOptions& options) {
  return iterative_binding(inst, select_tree(inst, objective, options),
                           options);
}

}  // namespace kstable::core
