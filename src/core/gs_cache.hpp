// GsEdgeCache: a per-instance memo of binary binding outcomes.
//
// Every spanning binding tree over k genders draws its edges from the same
// k(k-1)/2 gender-pair set (2·C(k,2) = k(k-1) oriented edges), and a per-edge
// GsResult is a pure function of (instance, oriented edge, engine): the
// engines are deterministic and GS is confluent, so even the parallel engine
// reproduces the sequential outcome bit for bit. Multi-tree drivers —
// tree_selection probes, the E15 ablation sweep, the TreeSweep engine,
// solve_with_fallback's retry ladder — therefore recompute identical
// matchings over and over. Memoizing them collapses O(#trees·(k-1)) GS runs
// to at most k(k-1) per instance, and the cache is semantically invisible:
// cached and uncached solves produce bitwise-identical matchings
// (property-tested over all k^(k-2) trees).
//
// Key and invalidation rules (docs/INCREMENTAL.md):
//   * The key is (proposer gender, responder gender, engine). Orientation
//     matters — GS(a, b) is proposer-optimal for a, GS(b, a) for b.
//   * A cache is bound to ONE KPartiteInstance. It holds no reference to the
//     instance; the caller guarantees the pairing (new instance => new
//     cache). The instance-bound constructor additionally records the
//     instance's generation() so that check_instance() — called by
//     run_binding before every cached lookup — throws std::logic_error
//     instead of serving a result memoized against preference rows that have
//     since mutated. The legacy Gender constructor keeps the guard off for
//     callers that manage the pairing themselves.
//   * KPartiteInstance is NO LONGER immutable: src/incremental/ mutates
//     preference rows in place. After a mutation the owner must, under
//     external quiescence, either clear() everything or invalidate() exactly
//     the oriented edges the delta touched (both orientations of every
//     changed (observer gender, target gender) pair) and then rebind() to
//     the instance's new generation. invalidate() resets only that edge's
//     kEngineCount slots, so untouched edges keep replaying for free — the
//     targeted-invalidation half of incremental::rematch().
//
// Concurrency design (the TreeSweep fan-out hammers one cache from every
// pool worker at once):
//   * Each key owns a fixed Slot with an atomic state machine
//     empty -> computing -> ready. Ready is terminal: entries are never
//     overwritten, so a ready slot is readable lock-free (acquire load) and
//     entry addresses are stable for the cache's lifetime.
//   * Mutation is guarded by 64 stripe locks (slot index mod 64), not one
//     global mutex — concurrent misses on *different* keys never contend.
//   * Misses resolve **single-flight**: the first thread to claim an empty
//     slot computes; later threads missing the same key block on the
//     stripe's condition variable until the leader publishes, then read the
//     leader's result. N concurrent misses cost one GS run, not N (the
//     deduplicated waits are counted in Stats::single_flight_waits). If the
//     leader's compute throws (deadline, cancellation, injected fault), the
//     slot resets to empty and one waiter is promoted to leader.
//   * Policy::duplicate opts back into the pre-single-flight behaviour
//     (concurrent misses all compute; first publish wins) so the E18
//     benchmark can measure exactly what deduplication buys.
//
// Counting contract (what the gs_cache tests pin down): every lookup counts
// exactly one hit or one miss; a miss is counted by the thread whose compute
// got published (so in quiescent use misses == size()), and a single-flight
// waiter counts a hit plus one wait. clear() requires external quiescence —
// it is a between-phases reset, not a concurrent eviction.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "core/binding.hpp"
#include "gs/gale_shapley.hpp"
#include "resilience/control.hpp"

namespace kstable::core {

class GsEdgeCache {
 public:
  /// Number of distinct GsEngine values the slot table is sized for. Tied to
  /// the enum's sentinel: adding a GsEngine without growing this constant is
  /// a compile error, not a silent slot-aliasing bug.
  static constexpr std::size_t kEngineCount = kGsEngineCount;
  static_assert(kEngineCount == kGsEngineCount,
                "GsEdgeCache slot table must cover every GsEngine value; "
                "update kGsEngineCount (core/binding.hpp) and kEngineCount "
                "together when adding an engine");
  static_assert(static_cast<std::size_t>(GsEngine::prefetch) ==
                    kGsEngineCount - 1,
                "kGsEngineCount is out of sync with the last GsEngine "
                "enumerator");

  /// Miss-resolution policy for concurrent misses on one key.
  enum class Policy {
    single_flight,  ///< one leader computes, other missers wait (default)
    duplicate,      ///< legacy: every misser computes, first publish wins
  };

  /// Creates an empty cache for instances with `k` genders. The staleness
  /// guard is OFF: the caller owns the instance/cache pairing (legacy
  /// construction sites, and tests that drive the slot machinery directly).
  explicit GsEdgeCache(Gender k, Policy policy = Policy::single_flight);

  /// Creates an empty cache bound to `inst`: records genders() AND
  /// generation(), arming check_instance() against mutation-under-cache.
  /// Preferred for any instance the incremental mutation API may touch.
  explicit GsEdgeCache(const KPartiteInstance& inst,
                       Policy policy = Policy::single_flight);

  /// Staleness guard: throws std::logic_error (ContractViolation) when the
  /// cache is generation-bound and `inst` does not match the bound shape and
  /// generation. A cache from the legacy Gender constructor only checks the
  /// gender count. Cheap (two integer compares) — run_binding calls it on
  /// every cached edge lookup.
  void check_instance(const KPartiteInstance& inst) const;

  /// Targeted invalidation: resets the kEngineCount slots of ONE oriented
  /// edge back to empty and returns how many of them held a ready result.
  /// Requires external quiescence exactly like clear(); entry pointers for
  /// the edge dangle afterwards. A preference delta on rows between genders
  /// a and b must invalidate BOTH orientations (a,b) and (b,a) — responder
  /// preferences decide accept/reject, so either orientation's memo is stale
  /// (incremental::rematch does this). Counters are NOT reset: hits/misses
  /// keep accumulating across incremental steps.
  std::size_t invalidate(GenderEdge edge);

  /// Re-arms the staleness guard against `inst`'s current generation after
  /// the owner has invalidated (or cleared) every stale edge. Requires the
  /// same gender count; turns an unbound cache into a bound one.
  void rebind(const KPartiteInstance& inst);

  /// Generation recorded at construction/rebind (nullopt = guard off).
  [[nodiscard]] std::optional<std::uint64_t> bound_generation() const noexcept {
    return bound_generation_;
  }

  /// Cached result of GS(edge.a proposes, edge.b responds) under `engine`,
  /// or nullptr. Counts one hit or one miss. A slot another thread is still
  /// computing reads as absent — callers pairing find() with insert() keep
  /// the legacy duplicate-compute behaviour; use get_or_compute() for
  /// single-flight resolution.
  [[nodiscard]] const gs::GsResult* find(GenderEdge edge, GsEngine engine);

  /// Stores `result` for the key; first insert wins (a concurrent duplicate
  /// is dropped). Returns the stored value.
  const gs::GsResult& insert(GenderEdge edge, GsEngine engine,
                             gs::GsResult result);

  /// The single-flight lookup: returns the cached result, or runs `compute`
  /// exactly once across all concurrent callers of this key and caches it.
  /// `hit` (optional) reports whether this caller got a memoized result
  /// (waiting out another thread's in-flight compute counts as a hit — no GS
  /// work was executed on this thread's behalf). Waiters poll `control`
  /// (optional) while blocked so a deadline or cancellation still aborts a
  /// thread that is only waiting; if the *leader's* compute throws, the slot
  /// resets and one waiter takes over the compute. The returned reference is
  /// stable for the cache's lifetime.
  const gs::GsResult& get_or_compute(
      GenderEdge edge, GsEngine engine,
      const std::function<gs::GsResult()>& compute,
      resilience::ExecControl* control = nullptr, bool* hit = nullptr);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    /// Lookups that found another thread's compute in flight and waited for
    /// it instead of duplicating the GS run (each is also counted as a hit).
    std::int64_t single_flight_waits = 0;
  };
  [[nodiscard]] Stats stats() const noexcept {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            single_flight_waits_.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] Policy policy() const noexcept { return policy_; }

  /// Drops every entry and zeroes the counters (the cache stays bound to the
  /// same instance shape and generation — pair with rebind() after a
  /// mutation). Returns how many ready entries were dropped, the number
  /// invalidate() is measured against (the churn battery asserts targeted
  /// invalidation resets strictly fewer slots on single-edge deltas, k >= 3).
  /// Requires external quiescence: no other thread may be touching the cache
  /// — clear() is a between-phases reset, and entry pointers handed out
  /// before it dangle after it (true of the original global-mutex design
  /// too).
  std::size_t clear();

  [[nodiscard]] Gender genders() const noexcept { return k_; }

  /// Entries currently stored (distinct (edge, engine) keys).
  [[nodiscard]] std::size_t size() const;

 private:
  /// Slot lifecycle: kEmpty -> kComputing (single-flight leader claimed it)
  /// -> kReady (value published, terminal). The value is written before the
  /// release store of kReady and never again, which is what makes the
  /// lock-free acquire read of ready slots sound.
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kComputing = 1;
  static constexpr std::uint8_t kReady = 2;

  struct Slot {
    std::atomic<std::uint8_t> state{kEmpty};
    std::optional<gs::GsResult> value;
  };

  /// Stripe count: comfortably above any realistic worker count, small
  /// enough that the mutex/cv table stays a few KB. Must be a power of two
  /// (stripe index is slot & (kStripes - 1)).
  static constexpr std::size_t kStripes = 64;
  static_assert((kStripes & (kStripes - 1)) == 0, "kStripes: power of two");

  struct Stripe {
    std::mutex m;
    std::condition_variable cv;
  };

  [[nodiscard]] std::size_t slot(GenderEdge edge, GsEngine engine) const;
  [[nodiscard]] Stripe& stripe_for(std::size_t slot_index) const noexcept {
    return stripes_[slot_index & (kStripes - 1)];
  }

  Gender k_;
  Policy policy_;
  /// Instance generation the guard is armed against (nullopt = legacy
  /// unbound cache, guard off). Written only at construction/rebind, both of
  /// which require quiescence, so plain storage is race-free.
  std::optional<std::uint64_t> bound_generation_;
  /// Constructed once at full size and never resized: Slot holds an atomic
  /// (immovable) and entry addresses must stay stable.
  std::vector<Slot> slots_;
  mutable std::array<Stripe, kStripes> stripes_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> single_flight_waits_{0};
};

}  // namespace kstable::core
