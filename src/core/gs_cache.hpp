// GsEdgeCache: a per-instance memo of binary binding outcomes.
//
// Every spanning binding tree over k genders draws its edges from the same
// k(k-1)/2 gender-pair set (2·C(k,2) = k(k-1) oriented edges), and a per-edge
// GsResult is a pure function of (instance, oriented edge, engine): the
// engines are deterministic and GS is confluent, so even the parallel engine
// reproduces the sequential outcome bit for bit. Multi-tree drivers —
// tree_selection probes, the E15 ablation sweep, solve_with_fallback's retry
// ladder — therefore recompute identical matchings over and over. Memoizing
// them collapses O(#trees·(k-1)) GS runs to at most k(k-1) per instance, and
// the cache is semantically invisible: cached and uncached solves produce
// bitwise-identical matchings (property-tested over all k^(k-2) trees).
//
// Key and invalidation rules:
//   * The key is (proposer gender, responder gender, engine). Orientation
//     matters — GS(a, b) is proposer-optimal for a, GS(b, a) for b.
//   * A cache is bound to ONE KPartiteInstance for its whole lifetime. It
//     holds no reference to the instance; the caller guarantees the pairing
//     (new instance => new cache). There is no other invalidation:
//     KPartiteInstance is immutable while solves run.
//
// Thread-safety: find/insert take an internal mutex (one lock per *edge
// solve*, not per proposal — noise next to an O(n²) GS run); hit/miss
// counters are relaxed atomics. Concurrent misses on one key may both
// compute; the first insert wins, and determinism makes both results equal.
// Entry addresses are stable (the slot table never grows), so pointers
// returned by find() live as long as the cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "core/binding.hpp"
#include "gs/gale_shapley.hpp"

namespace kstable::core {

class GsEdgeCache {
 public:
  /// Number of distinct GsEngine values the slot table is sized for. Tied to
  /// the enum's sentinel: adding a GsEngine without growing this constant is
  /// a compile error, not a silent slot-aliasing bug.
  static constexpr std::size_t kEngineCount = kGsEngineCount;
  static_assert(kEngineCount == kGsEngineCount,
                "GsEdgeCache slot table must cover every GsEngine value; "
                "update kGsEngineCount (core/binding.hpp) and kEngineCount "
                "together when adding an engine");
  static_assert(static_cast<std::size_t>(GsEngine::parallel) ==
                    kGsEngineCount - 1,
                "kGsEngineCount is out of sync with the last GsEngine "
                "enumerator");

  /// Creates an empty cache for instances with `k` genders (k*(k-1)*3 slots).
  explicit GsEdgeCache(Gender k);

  /// Cached result of GS(edge.a proposes, edge.b responds) under `engine`,
  /// or nullptr. Counts one hit or one miss.
  [[nodiscard]] const gs::GsResult* find(GenderEdge edge, GsEngine engine);

  /// Stores `result` for the key; first insert wins (a concurrent duplicate
  /// is dropped). Returns the stored value.
  const gs::GsResult& insert(GenderEdge edge, GsEngine engine,
                             gs::GsResult result);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
  };
  [[nodiscard]] Stats stats() const noexcept {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  /// Drops every entry and zeroes the counters (the cache stays bound to the
  /// same instance shape).
  void clear();

  [[nodiscard]] Gender genders() const noexcept { return k_; }

  /// Entries currently stored (distinct (edge, engine) keys).
  [[nodiscard]] std::size_t size() const;

 private:
  [[nodiscard]] std::size_t slot(GenderEdge edge, GsEngine engine) const;

  Gender k_;
  mutable std::mutex mutex_;
  std::vector<std::optional<gs::GsResult>> slots_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
};

}  // namespace kstable::core
