// Priority-Based Iterative Binding GS — Algorithm 2 of the paper (§IV.D).
//
// Under the weakened blocking condition (only each same-family group's *lead*
// member — the one whose gender has the highest priority in the group — must
// prefer the new family), arbitrary binding trees no longer guarantee
// stability (Fig. 5a). Algorithm 2 grows the binding tree from the highest-
// priority gender, attaching the remaining genders in decreasing priority
// order to any already-bound gender. The resulting tree is *bitonic* (every
// tree path's priority sequence rises then falls, Fig. 6), and Theorem 5
// shows bitonic trees prevent every weakened blocking family. There are
// (k-1)! distinct priority-grown trees (attach node i+1-th has i choices).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/binding.hpp"

namespace kstable::core {

struct PriorityBindingOptions {
  /// priority[g] = priority of gender g (all distinct; higher = more
  /// important). Empty = identity (gender id is its priority, the paper's
  /// convention).
  std::vector<std::int32_t> priority;

  /// Chooses which bound gender the next gender attaches to. Arguments: the
  /// tree so far and the gender being attached; must return a gender already
  /// in the tree. Default (unset): the highest-priority bound gender.
  std::function<Gender(const BindingStructure&, const std::vector<Gender>& bound,
                       Gender next)>
      attach;

  BindingOptions binding;  ///< engine selection for the per-edge GS runs
};

struct PriorityBindingResult {
  BindingResult binding;      ///< per-edge results + matching
  BindingStructure tree;      ///< the grown (bitonic) binding tree
  std::vector<Gender> order;  ///< genders in attachment order (imax first)
};

/// Runs Algorithm 2. Postcondition: the grown tree is bitonic under the
/// given priorities (checked), and the matching satisfies Theorem 2's strict
/// stability as well (it is still a spanning-tree binding).
PriorityBindingResult priority_binding(const KPartiteInstance& inst,
                                       const PriorityBindingOptions& options = {});

/// Enumerates all (k-1)! priority-grown binding trees for priority order
/// `priority` (identity if empty), invoking `visit` on each (Fig. 6's tree
/// family). k <= 8 recommended (7! = 5040 trees).
void for_each_priority_tree(Gender k, const std::vector<std::int32_t>& priority,
                            const std::function<void(const BindingStructure&)>& visit);

/// Number of priority-grown trees: (k-1)!.
std::int64_t priority_tree_count(Gender k);

}  // namespace kstable::core
