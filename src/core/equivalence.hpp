// Equivalence-class derivation: binary bindings -> k-ary families
// (paper §IV.A, Algorithm 1 step "Derive E, equivalence classes from
// equivalence relation (-,-) 'in the same matching tuple' on P").
//
// The binding process produces a set of matched pairs P (one perfect binary
// matching per binding edge). "In the same matching tuple" is the reflexive-
// symmetric-transitive closure of P, computed here by union-find. When the
// binding structure is a spanning tree, every class is automatically a valid
// k-tuple (Theorem 2's perfectness argument). For forests the classes span
// only their component's genders, and assemble-by-index joins them into full
// k-tuples (the Theorem 4 "too few bindings" experiment). For cyclic
// structures the classes can collapse inconsistently (two same-gender members
// in a class, classes of unequal size) — the Theorem 4 "too many bindings"
// witness — which is detected and reported rather than silently accepted.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/binding_structure.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/matching.hpp"

namespace kstable::core {

/// Outcome of converting binding pair-sets into k-ary families.
struct EquivalenceReport {
  /// True iff every equivalence class held exactly one member per gender of
  /// its binding component (the precondition for forming families).
  bool consistent = false;
  /// Families (assembled across components by class index); set iff
  /// consistent.
  std::optional<KaryMatching> matching;
  /// Number of equivalence classes found.
  std::int32_t class_count = 0;
  /// Human-readable description of the first inconsistency (empty if none).
  std::string inconsistency;
};

/// Minimal union-find over dense int ids (path halving + union by size).
class UnionFind {
 public:
  explicit UnionFind(std::int32_t size);
  std::int32_t find(std::int32_t x);
  /// Returns false iff x and y were already in the same class.
  bool unite(std::int32_t x, std::int32_t y);
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(parent_.size());
  }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> rank_;
};

/// Derives families from per-edge binding results. `edge_results[e]` must be
/// the GS outcome of `structure.edges()[e]`. See file comment for the
/// spanning-tree / forest / cyclic semantics.
EquivalenceReport derive_families(const KPartiteInstance& inst,
                                  const BindingStructure& structure,
                                  std::span<const gs::GsResult> edge_results);

}  // namespace kstable::core
