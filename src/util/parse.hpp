// Checked numeric argument parsing for CLI front-ends and examples.
//
// The original entry points fed argv straight through std::atoi/std::atoll,
// which (a) returns 0 for non-numeric garbage, (b) silently accepts trailing
// junk ("10x"), (c) has undefined behavior on out-of-range input, and (d) let
// negative or huge values narrow into Gender/Index where they either wrapped
// or exploded later as a ContractViolation deep inside the library. These
// helpers parse the ENTIRE string with std::from_chars, enforce an inclusive
// [lo, hi] range, and report failure as std::nullopt so callers can exit 2
// via their usage() instead of aborting.
#pragma once

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

namespace kstable::util {

/// Parses the whole of `text` as a number of type T (integral: base 10;
/// floating point: fixed/scientific). Returns nullopt unless every character
/// is consumed, the value is representable in T, and lo <= value <= hi.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view text, T lo, T hi) {
  if (text.empty()) return std::nullopt;
  // Both paths promise from_chars semantics: no leading whitespace, no '+'
  // sign, no "inf"/"nan" words, no hex floats. from_chars enforces all of
  // that for integers, but strtod is far laxer — it accepts " 5", "+5",
  // "nan" (which compares false against BOTH range bounds and would leak
  // through the [lo, hi] filter), "inf", and "0x1p3". Pre-reject any first
  // character outside [-0-9.] so the two paths agree.
  const char head = text.front();
  const bool head_ok =
      (head >= '0' && head <= '9') || head == '-' || head == '.';
  if (!head_ok) return std::nullopt;
  T value{};
  const char* const first = text.data();
  const char* const last = first + text.size();
  std::from_chars_result result{};
  if constexpr (std::is_floating_point_v<T>) {
    // std::from_chars for double is C++17 but missing from some libstdc++
    // configurations; strtod with a full-consumption check is equivalent
    // here (CLI arguments are NUL-terminated) ONCE the input is restricted
    // to the plain fixed/scientific alphabet — that restriction is what
    // keeps hex floats ("0x1p3") and sign-prefixed "nan"/"inf" ("-inf"
    // passes the first-char check) out of the strtod call.
    for (const char c : text) {
      const bool plain = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                         c == 'E' || c == '+' || c == '-';
      if (!plain) return std::nullopt;
    }
    char* end = nullptr;
    const std::string buffer(text);
    errno = 0;
    value = static_cast<T>(std::strtod(buffer.c_str(), &end));
    if (end != buffer.c_str() + buffer.size()) return std::nullopt;
    // ERANGE covers both directions: "1e999" overflows to ±HUGE_VAL and
    // "1e-999" silently underflows to (nearly) 0.0 — neither is the number
    // the caller wrote, so both are rejected instead of passed through.
    if (errno == ERANGE) return std::nullopt;
    // Belt and braces: NaN never survives (it compares false against both
    // range bounds below, so it would otherwise parse "successfully").
    if (std::isnan(value)) return std::nullopt;
    result.ec = std::errc{};
    result.ptr = last;
  } else {
    result = std::from_chars(first, last, value, 10);
  }
  if (result.ec != std::errc{} || result.ptr != last) return std::nullopt;
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

/// Convenience overload spanning the whole representable range of T.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view text) {
  if constexpr (std::is_floating_point_v<T>) {
    return parse_number<T>(text, -std::numeric_limits<T>::max(),
                           std::numeric_limits<T>::max());
  } else {
    return parse_number<T>(text, std::numeric_limits<T>::min(),
                           std::numeric_limits<T>::max());
  }
}

}  // namespace kstable::util
