// Checked numeric argument parsing for CLI front-ends and examples.
//
// The original entry points fed argv straight through std::atoi/std::atoll,
// which (a) returns 0 for non-numeric garbage, (b) silently accepts trailing
// junk ("10x"), (c) has undefined behavior on out-of-range input, and (d) let
// negative or huge values narrow into Gender/Index where they either wrapped
// or exploded later as a ContractViolation deep inside the library. These
// helpers parse the ENTIRE string with std::from_chars, enforce an inclusive
// [lo, hi] range, and report failure as std::nullopt so callers can exit 2
// via their usage() instead of aborting.
#pragma once

#include <charconv>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

namespace kstable::util {

/// Parses the whole of `text` as a number of type T (integral: base 10;
/// floating point: fixed/scientific). Returns nullopt unless every character
/// is consumed, the value is representable in T, and lo <= value <= hi.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view text, T lo, T hi) {
  if (text.empty()) return std::nullopt;
  T value{};
  const char* const first = text.data();
  const char* const last = first + text.size();
  std::from_chars_result result{};
  if constexpr (std::is_floating_point_v<T>) {
    // std::from_chars for double is C++17 but missing from some libstdc++
    // configurations; strtod with a full-consumption check is equivalent
    // here (CLI arguments are NUL-terminated).
    char* end = nullptr;
    const std::string buffer(text);
    value = static_cast<T>(std::strtod(buffer.c_str(), &end));
    if (end != buffer.c_str() + buffer.size()) return std::nullopt;
    result.ec = std::errc{};
    result.ptr = last;
  } else {
    result = std::from_chars(first, last, value, 10);
  }
  if (result.ec != std::errc{} || result.ptr != last) return std::nullopt;
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

/// Convenience overload spanning the whole representable range of T.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view text) {
  if constexpr (std::is_floating_point_v<T>) {
    return parse_number<T>(text, -std::numeric_limits<T>::max(),
                           std::numeric_limits<T>::max());
  } else {
    return parse_number<T>(text, std::numeric_limits<T>::min(),
                           std::numeric_limits<T>::max());
  }
}

}  // namespace kstable::util
