// Deterministic, seedable random number generation for kstable.
//
// All randomized components of the library (instance generators, randomized
// blocking-family search, random binding trees) take an explicit `Rng&` so
// every experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded through splitmix64 — fast, high quality, and independent
// of standard-library implementation details (std::mt19937 streams differ
// across platforms only in distribution code; we also avoid std::uniform_*
// distributions for cross-platform determinism).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace kstable {

/// splitmix64 step: used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9b1f0c3d2e4a5968ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; exact (unbiased) and branch-light.
  std::uint64_t below(std::uint64_t bound) noexcept {
    KSTABLE_ASSERT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    KSTABLE_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Returns a uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<std::int32_t> permutation(std::int32_t n) {
    std::vector<std::int32_t> p(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
    shuffle(p);
    return p;
  }

  /// Forks an independent child stream (for per-thread/per-instance RNGs).
  Rng fork() noexcept { return Rng((*this)() ^ 0xa5a5a5a55a5a5a5aULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kstable
