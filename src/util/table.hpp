// Console table / CSV emission for the benchmark harness.
//
// Every bench binary prints "paper-shaped" rows (the series a figure or
// theorem in the paper reports) before running microbenchmarks; TableWriter
// renders those rows with aligned columns and can also dump CSV for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace kstable {

/// A single table cell: string, integer, or double.
using Cell = std::variant<std::string, std::int64_t, double>;

/// Collects rows and renders an aligned ASCII table (or CSV).
class TableWriter {
 public:
  /// `title` is printed above the table; `columns` are header names.
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Appends one row; must have exactly as many cells as there are columns.
  void add_row(std::vector<Cell> cells);

  /// Renders the aligned ASCII table to `os`.
  void print(std::ostream& os) const;

  /// Renders CSV (header + rows) to `os`.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string format_double(double value, int digits = 3);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace kstable
