// Lightweight wall-clock timing for benchmark harness reporting.
#pragma once

#include <chrono>

namespace kstable {

/// Monotonic wall-clock stopwatch, started on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed microseconds since construction / last reset().
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace kstable
