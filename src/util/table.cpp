#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace kstable {

namespace {

std::string cell_to_string(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) return std::to_string(*i);
  return format_double(std::get<double>(cell));
}

}  // namespace

std::string format_double(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  KSTABLE_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void TableWriter::add_row(std::vector<Cell> cells) {
  KSTABLE_REQUIRE(cells.size() == columns_.size(),
                  "row has " << cells.size() << " cells, table has "
                             << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(cell_to_string(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << std::left << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rendered) print_row(row);
  os << '\n';
}

void TableWriter::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  os << join(columns_, ",") << '\n';
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(escape(cell_to_string(cell)));
    os << join(cells, ",") << '\n';
  }
}

}  // namespace kstable
