// Contract-checking macros for kstable.
//
// Follows the C++ Core Guidelines (I.6/I.8 style Expects/Ensures): precondition
// violations are programming errors and throw `kstable::ContractViolation`
// with file/line context so tests can assert on them (failure injection).
// Hot inner loops use KSTABLE_ASSERT, compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace kstable {

/// Thrown when a KSTABLE_REQUIRE / KSTABLE_ENSURE contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace kstable

/// Precondition check; always on. `msg` is streamed, e.g.
///   KSTABLE_REQUIRE(n > 0, "n=" << n);
#define KSTABLE_REQUIRE(cond, msg)                                              \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::ostringstream kstable_req_os_;                                       \
      kstable_req_os_ << msg; /* NOLINT */                                      \
      ::kstable::detail::contract_fail("precondition", #cond, __FILE__,         \
                                       __LINE__, kstable_req_os_.str());        \
    }                                                                           \
  } while (false)

/// Postcondition / invariant check; always on.
#define KSTABLE_ENSURE(cond, msg)                                               \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::ostringstream kstable_ens_os_;                                       \
      kstable_ens_os_ << msg; /* NOLINT */                                      \
      ::kstable::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                       __LINE__, kstable_ens_os_.str());        \
    }                                                                           \
  } while (false)

/// Cheap internal sanity check for hot paths; compiled out under NDEBUG.
#ifdef NDEBUG
#define KSTABLE_ASSERT(cond) ((void)0)
#else
#define KSTABLE_ASSERT(cond)                                                    \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::kstable::detail::contract_fail("assertion", #cond, __FILE__, __LINE__,  \
                                       std::string{});                          \
    }                                                                           \
  } while (false)
#endif
