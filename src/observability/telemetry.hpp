// SolveTelemetry: the structured per-solve record every top-level driver
// assembles — engine, instance shape, timing breakdown, completion status,
// and the proposal/cache counters introduced by the perf PR.
//
// Design constraints:
//   * Cheap to carry: labels are static-lifetime const char* (engine names,
//     phase names), the phase table is a fixed-capacity inline array, and
//     every numeric field is a scalar — embedding a SolveTelemetry in a
//     result struct adds no heap allocation beyond what SolveStatus::detail
//     already owns.
//   * Uniform across drivers: the same record shape describes a single GS
//     edge, an Algorithm 1/2 binding, an Irving roommates solve, a parallel
//     EREW/CREW execution, the fallback ladder, and one batch item. Fields a
//     driver has nothing to say about stay at their defaults and export as
//     zeros (the JSON schema is fixed; see docs/OBSERVABILITY.md).
//   * Two export formats from one record: single-line JSON (to_json) for
//     machine pipelines (kmatch --stats-json, BENCH_*.json context) and
//     Prometheus text (to_prometheus) for scrape endpoints.
//
// record() additionally folds the record into the global MetricsRegistry
// (per-engine solve counters, proposal totals, wall-time histograms), which
// is how the aggregate view in `kmatch --stats-json` and the bench JSON
// context stays consistent with the per-solve records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "resilience/errors.hpp"

namespace kstable::obs {

/// One named phase of a solve's timing breakdown (e.g. "bind", "assemble",
/// "phase1", "grow-tree"). `name` must have static lifetime.
struct PhaseTiming {
  const char* name = "";
  double ms = 0.0;
};

struct SolveTelemetry {
  /// Static-lifetime engine label: "gs.queue", "gs.rounds", "gs.parallel",
  /// "binding", "binding.parallel", "binding.priority", "roommates",
  /// "ladder", "batch.item".
  const char* engine = "";

  // Instance shape. For k-partite drivers: genders=k, size=n (members per
  // gender). For roommates: genders=0, size=person count.
  std::int32_t genders = 0;
  std::int32_t size = 0;

  /// End-to-end wall time of the driver call.
  double wall_ms = 0.0;

  /// Timing breakdown; at most kMaxPhases entries (excess is dropped — the
  /// drivers define 1–3 phases each).
  static constexpr int kMaxPhases = 4;
  PhaseTiming phases[kMaxPhases];
  int phase_count = 0;

  /// How the solve ended (ok / aborted / no_stable + abort reason).
  resilience::SolveStatus status;

  // Work counters (Theorem 3's unit and the perf-PR cache counters).
  std::int64_t proposals = 0;           ///< accumulated (semantic) proposals
  std::int64_t executed_proposals = 0;  ///< actually run; cache hits excluded
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t rounds = 0;    ///< GS rounds / EREW rounds / Irving rotations
  std::int64_t attempts = 0;  ///< ladder attempts (1 for direct drivers)

  /// Fallback rung that produced the result: -1 not applicable, 0 strict
  /// tree, 1 degraded priority, 2 none (every rung failed). Mirrors
  /// resilience::Rung; kept as an int so this header stays below the ladder.
  std::int32_t rung = -1;

  /// Remaining wall budget when the solve finished (budget − elapsed), in
  /// ms; 0 when no wall deadline was set. Negative values never appear —
  /// a blown deadline aborts instead.
  double deadline_margin_ms = 0.0;

  /// Appends a phase timing (silently dropped beyond kMaxPhases).
  void add_phase(const char* name, double ms) {
    if (phase_count < kMaxPhases) {
      phases[phase_count++] = PhaseTiming{name, ms};
    }
  }

  /// Single-line JSON object; schema documented in docs/OBSERVABILITY.md.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition of this one record (gauge-style samples
  /// labeled with the engine).
  void write_prometheus(std::ostream& os) const;
  [[nodiscard]] std::string to_prometheus() const;
};

/// Folds `t` into the global MetricsRegistry: bumps the per-engine solve
/// counter, the outcome counter, proposal/cache totals, and the wall-time
/// histogram. No-op under KSTABLE_NO_METRICS. Drivers call this once per
/// completed solve.
void record(const SolveTelemetry& t);

}  // namespace kstable::obs
