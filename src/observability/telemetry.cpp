#include "observability/telemetry.hpp"

#include <ostream>
#include <sstream>

#include "observability/metrics.hpp"

namespace kstable::obs {

namespace {

/// Escapes a string into a JSON literal (status.detail may carry anything).
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (c == '\n') {
      os << "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

void SolveTelemetry::write_json(std::ostream& os) const {
  os << "{\"engine\":\"" << engine << "\",\"genders\":" << genders
     << ",\"size\":" << size << ",\"wall_ms\":" << wall_ms << ",\"phases\":{";
  for (int p = 0; p < phase_count; ++p) {
    if (p != 0) os << ',';
    os << '"' << phases[p].name << "\":" << phases[p].ms;
  }
  os << "},\"status\":{\"outcome\":\"" << to_string(status.outcome)
     << "\",\"abort_reason\":\"" << kstable::to_string(status.abort_reason)
     << "\",\"detail\":";
  json_string(os, status.detail);
  os << "},\"proposals\":" << proposals
     << ",\"executed_proposals\":" << executed_proposals
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses << ",\"rounds\":" << rounds
     << ",\"attempts\":" << attempts << ",\"rung\":" << rung
     << ",\"deadline_margin_ms\":" << deadline_margin_ms << '}';
}

std::string SolveTelemetry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void SolveTelemetry::write_prometheus(std::ostream& os) const {
  const auto sample = [&](const char* name, auto value) {
    os << "kstable_solve_" << name << "{engine=\"" << engine << "\"} " << value
       << '\n';
  };
  sample("wall_ms", wall_ms);
  sample("proposals", proposals);
  sample("executed_proposals", executed_proposals);
  sample("cache_hits", cache_hits);
  sample("cache_misses", cache_misses);
  sample("rounds", rounds);
  sample("attempts", attempts);
  sample("ok", status.ok() ? 1 : 0);
  sample("deadline_margin_ms", deadline_margin_ms);
}

std::string SolveTelemetry::to_prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void record(const SolveTelemetry& t) {
#if KSTABLE_METRICS_ENABLED
  auto& registry = MetricsRegistry::global();
  // Composed names are looked up once per solve (not per proposal); the
  // registry's lock and the string build are noise next to any GS run.
  const std::string prefix = std::string("solve.") + t.engine;
  registry.counter(prefix + ".count").add(1);
  registry.counter(prefix + ".proposals").add(t.proposals);
  registry.histogram(prefix + ".wall_us").observe_ms(t.wall_ms);
  if (t.executed_proposals != 0) {
    registry.counter(prefix + ".executed_proposals")
        .add(t.executed_proposals);
  }
  // Cache hit/miss totals are bumped by GsEdgeCache itself (the authoritative
  // count, covering aborted attempts too); the per-record fields are only
  // exported, not re-aggregated, to avoid double counting.
  if (t.rounds != 0) registry.counter(prefix + ".rounds").add(t.rounds);
  switch (t.status.outcome) {
    case resilience::SolveOutcome::ok:
      registry.counter("solve.outcome.ok").add(1);
      break;
    case resilience::SolveOutcome::aborted:
      registry.counter("solve.outcome.aborted").add(1);
      break;
    case resilience::SolveOutcome::no_stable:
      registry.counter("solve.outcome.no_stable").add(1);
      break;
  }
  if (t.rung >= 0) {
    registry.gauge("ladder.last_rung").set(t.rung);
    registry.counter("ladder.attempts").add(t.attempts);
  }
  if (t.deadline_margin_ms > 0.0) {
    registry.gauge("deadline.margin_us").set_ms(t.deadline_margin_ms);
  }
#else
  (void)t;
#endif
}

}  // namespace kstable::obs
