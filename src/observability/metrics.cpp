#include "observability/metrics.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>

#include "util/check.hpp"

namespace kstable::obs {

// The registry body lives behind an atomic pointer so MetricsRegistry itself
// is constexpr-constructible-cheap and the global() instance never runs a
// destructor race at exit (the Impl is intentionally leaked for the global,
// released for locally constructed registries).
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // Deques: stable addresses across growth, required by the macro-cached
  // references.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  struct Entry {
    Sample::Kind kind;
    std::size_t index;
  };
  std::map<std::string, Entry, std::less<>> names;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  auto* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return *fresh;
  }
  delete fresh;  // lost the race; another thread installed its Impl
  return *existing;
}

MetricsRegistry::~MetricsRegistry() {
  // The global registry is never destroyed (static storage, leaked Impl would
  // only matter at process exit); locally built registries clean up.
  delete impl_.load(std::memory_order_acquire);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked on exit
  return *registry;
}

namespace {

template <typename Deque>
auto& find_or_create(MetricsRegistry::Impl& impl, std::string_view name,
                     MetricsRegistry::Sample::Kind kind, Deque& storage) {
  std::lock_guard<std::mutex> lock(impl.mutex);
  auto it = impl.names.find(name);
  if (it == impl.names.end()) {
    storage.emplace_back();
    impl.names.emplace(std::string(name),
                       MetricsRegistry::Impl::Entry{kind, storage.size() - 1});
    return storage.back();
  }
  KSTABLE_REQUIRE(it->second.kind == kind,
                  "metric '" << std::string(name)
                             << "' already registered as a different kind");
  return storage[it->second.index];
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  auto& i = impl();
  return find_or_create(i, name, Sample::Kind::counter, i.counters);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto& i = impl();
  return find_or_create(i, name, Sample::Kind::gauge, i.gauges);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto& i = impl();
  return find_or_create(i, name, Sample::Kind::histogram, i.histograms);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  auto& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<Sample> out;
  out.reserve(i.names.size());
  for (const auto& [name, entry] : i.names) {  // map iterates name-sorted
    Sample s;
    s.name = name;
    s.kind = entry.kind;
    switch (entry.kind) {
      case Sample::Kind::counter:
        s.value = i.counters[entry.index].value();
        break;
      case Sample::Kind::gauge:
        s.value = i.gauges[entry.index].value();
        break;
      case Sample::Kind::histogram: {
        const Histogram& h = i.histograms[entry.index];
        s.value = h.sum();
        s.count = h.count();
        s.buckets.resize(Histogram::kBuckets);
        for (int b = 0; b < Histogram::kBuckets; ++b) s.buckets[b] = h.bucket(b);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

/// JSON string escaping for metric names (conservative: names are plain
/// ASCII by convention, but the exporter must never emit malformed JSON).
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
  os << '"';
}

/// Prometheus metric name: kstable_ prefix, [a-zA-Z0-9_] body.
std::string prometheus_name(std::string_view name) {
  std::string out = "kstable_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const Sample& s : snapshot()) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, s.name);
    os << ':';
    if (s.kind == Sample::Kind::histogram) {
      os << "{\"count\":" << s.count << ",\"sum\":" << s.value
         << ",\"buckets\":[";
      // Trailing empty buckets are truncated to keep the line short; the
      // schema fixes bucket b's range as [2^(b-1), 2^b).
      int last = static_cast<int>(s.buckets.size()) - 1;
      while (last > 0 && s.buckets[static_cast<std::size_t>(last)] == 0) --last;
      for (int b = 0; b <= last; ++b) {
        if (b != 0) os << ',';
        os << s.buckets[static_cast<std::size_t>(b)];
      }
      os << "]}";
    } else {
      os << s.value;
    }
  }
  os << '}';
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  for (const Sample& s : snapshot()) {
    const std::string name = prometheus_name(s.name);
    switch (s.kind) {
      case Sample::Kind::counter:
        os << "# TYPE " << name << "_total counter\n"
           << name << "_total " << s.value << '\n';
        break;
      case Sample::Kind::gauge:
        os << "# TYPE " << name << " gauge\n" << name << ' ' << s.value << '\n';
        break;
      case Sample::Kind::histogram: {
        os << "# TYPE " << name << " histogram\n";
        std::int64_t cumulative = 0;
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          cumulative += s.buckets[b];
          os << name << "_bucket{le=\""
             << Histogram::bucket_bound(static_cast<int>(b)) << "\"} "
             << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << s.count << '\n'
           << name << "_sum " << s.value << '\n'
           << name << "_count " << s.count << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::reset() {
  auto& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& c : i.counters) c.reset();
  for (auto& g : i.gauges) g.reset();
  for (auto& h : i.histograms) h.reset();
}

std::size_t MetricsRegistry::size() const {
  auto& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.names.size();
}

}  // namespace kstable::obs
