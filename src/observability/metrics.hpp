// Observability metrics: a process-wide registry of named counters, gauges,
// and histograms fed by every solver layer (ROADMAP: a serving system must
// expose its internal signals — proposals, cache hits, fallback rungs, PRAM
// rounds — without perturbing the hot paths it measures).
//
// Cost discipline:
//   * Registration (name lookup) takes a mutex, but every instrumented call
//     site resolves its handle ONCE through a function-local static — the
//     steady-state cost of KSTABLE_COUNTER_ADD is a single relaxed
//     fetch_add, and instruments are bumped per *solve* (or per edge), never
//     per proposal.
//   * The whole layer compiles out: building with -DKSTABLE_NO_METRICS (CMake
//     -DKSTABLE_METRICS=OFF) turns every macro into ((void)0), so the
//     disabled build is bit-identical to uninstrumented code — asserted by
//     the allocation-counting test in tests/metrics_overhead_test.cpp.
//
// Naming convention: dot-separated lowercase paths ("binding.proposals",
// "cache.hits", "ladder.rung.degraded"). Exporters sanitize names for their
// format (Prometheus: dots become underscores and a "kstable_" prefix is
// added). The full name table lives in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace kstable::obs {

/// Monotonically increasing relaxed-atomic counter.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. deadline margin of the most
/// recent guarded solve). Stored in micro-units when the source is a double;
/// see Gauge::set_ms.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Stores a millisecond quantity with microsecond resolution (values are
  /// integers; 1.25 ms is recorded as 1250).
  void set_ms(double ms) noexcept {
    set(static_cast<std::int64_t>(ms * 1e3));
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Exponential-bucket histogram over non-negative int64 observations: bucket
/// b counts values in [2^(b-1), 2^b) (bucket 0 holds 0), matching the
/// Mertens-style "the behaviour lives in the distribution" use cases —
/// proposal counts per solve, wall micros per phase. Fixed bucket count, all
/// relaxed atomics, no allocation after construction.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  ///< covers values up to ~5.5e11

  void observe(std::int64_t value) noexcept {
    if (value < 0) value = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }
  /// Observes a millisecond quantity at microsecond resolution.
  void observe_ms(double ms) noexcept {
    observe(static_cast<std::int64_t>(ms * 1e3));
  }

  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t bucket(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `b` (the Prometheus `le` label).
  [[nodiscard]] static std::int64_t bucket_bound(int b) noexcept {
    return b == 0 ? 0 : (std::int64_t{1} << b) - 1;
  }
  void reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] static int bucket_of(std::int64_t value) noexcept {
    if (value <= 0) return 0;
    int b = 1;
    while (b < kBuckets - 1 && value >= (std::int64_t{1} << b)) ++b;
    return b;
  }

  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> buckets_[kBuckets]{};
};

/// Named instrument registry. Instruments are created on first lookup and
/// never destroyed or moved (deque-backed), so references handed out stay
/// valid for the process lifetime — the macros below cache them in
/// function-local statics. One process-wide instance via global(); separate
/// registries can be constructed for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// The process-wide registry every KSTABLE_* macro feeds.
  static MetricsRegistry& global();

  /// Finds or creates the named instrument. The returned reference is stable
  /// for the registry's lifetime. A name registered as one kind must not be
  /// re-requested as another (contract-checked).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Snapshot of one instrument for export; histograms carry buckets.
  struct Sample {
    std::string name;
    enum class Kind : std::uint8_t { counter, gauge, histogram } kind;
    std::int64_t value = 0;           ///< counter/gauge value; histogram sum
    std::int64_t count = 0;           ///< histogram observation count
    std::vector<std::int64_t> buckets;  ///< histogram bucket counts
  };
  /// All instruments, sorted by name (a point-in-time relaxed snapshot).
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Single-line JSON object: {"binding.proposals":123,"binding.wall_us":
  /// {"count":4,"sum":87,"buckets":[...]},...}.
  void write_json(std::ostream& os) const;

  /// Prometheus text exposition format: names are prefixed with "kstable_",
  /// dots become underscores, counters get a _total suffix, histograms emit
  /// _bucket/_sum/_count series.
  void write_prometheus(std::ostream& os) const;

  /// Zeroes every instrument (tests and per-run CLI exports).
  void reset();

  /// Number of registered instruments.
  [[nodiscard]] std::size_t size() const;

  /// Registry body (instrument storage + name map); public only so the
  /// implementation file's helpers can name it.
  struct Impl;

 private:
  Impl& impl() const;
  mutable std::atomic<Impl*> impl_{nullptr};
};

}  // namespace kstable::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. Name must be a string literal (it seeds a
// function-local static handle, resolved once). Compiled out entirely under
// KSTABLE_NO_METRICS.
// ---------------------------------------------------------------------------
#ifndef KSTABLE_NO_METRICS
#define KSTABLE_METRICS_ENABLED 1

#define KSTABLE_COUNTER_ADD(name, delta)                                   \
  do {                                                                     \
    static ::kstable::obs::Counter& kstable_obs_c_ =                       \
        ::kstable::obs::MetricsRegistry::global().counter(name);           \
    kstable_obs_c_.add(delta);                                             \
  } while (false)

#define KSTABLE_GAUGE_SET(name, value)                                    \
  do {                                                                     \
    static ::kstable::obs::Gauge& kstable_obs_g_ =                         \
        ::kstable::obs::MetricsRegistry::global().gauge(name);             \
    kstable_obs_g_.set(value);                                             \
  } while (false)

#define KSTABLE_GAUGE_SET_MS(name, ms)                                    \
  do {                                                                     \
    static ::kstable::obs::Gauge& kstable_obs_g_ =                         \
        ::kstable::obs::MetricsRegistry::global().gauge(name);             \
    kstable_obs_g_.set_ms(ms);                                             \
  } while (false)

#define KSTABLE_HISTOGRAM_OBSERVE(name, value)                            \
  do {                                                                     \
    static ::kstable::obs::Histogram& kstable_obs_h_ =                     \
        ::kstable::obs::MetricsRegistry::global().histogram(name);         \
    kstable_obs_h_.observe(value);                                         \
  } while (false)

#define KSTABLE_HISTOGRAM_OBSERVE_MS(name, ms)                            \
  do {                                                                     \
    static ::kstable::obs::Histogram& kstable_obs_h_ =                     \
        ::kstable::obs::MetricsRegistry::global().histogram(name);         \
    kstable_obs_h_.observe_ms(ms);                                         \
  } while (false)

#else  // KSTABLE_NO_METRICS
#define KSTABLE_METRICS_ENABLED 0
#define KSTABLE_COUNTER_ADD(name, delta) ((void)0)
#define KSTABLE_GAUGE_SET(name, value) ((void)0)
#define KSTABLE_GAUGE_SET_MS(name, ms) ((void)0)
#define KSTABLE_HISTOGRAM_OBSERVE(name, value) ((void)0)
#define KSTABLE_HISTOGRAM_OBSERVE_MS(name, ms) ((void)0)
#endif
