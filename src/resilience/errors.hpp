// Runtime error taxonomy for the resilience subsystem.
//
// The library's original catch-all was ContractViolation: programming errors
// and malformed input were indistinguishable, and there was no way to tell
// "the solver was stopped" from "the solver is broken". This header splits the
// space three ways:
//
//   ContractViolation   — programming error (unchanged; util/check.hpp)
//   ParseError          — malformed *input* at a serialization boundary
//                         (prefs/io, roommates/io, prefs/matching_io). Derives
//                         from ContractViolation so legacy catch sites keep
//                         working, but can now be caught separately.
//   ExecutionAborted    — a solve was stopped cooperatively: deadline expired,
//                         proposal budget exhausted, cancellation requested,
//                         or a deterministic fault fired (InjectedFault).
//
// SolveStatus is the structured, non-throwing record of how a solve ended; it
// is carried in solver results (core::BindingResult, rm::RoommatesResult) and
// in resilience::FallbackReport.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace kstable {

/// Malformed serialized input (bad header, out-of-range ids, duplicate or
/// missing lines, non-permutation lists). Thrown by the IO modules only.
class ParseError : public ContractViolation {
 public:
  explicit ParseError(const std::string& what) : ContractViolation(what) {}
};

/// Why a solve stopped before producing a result.
enum class AbortReason : std::uint8_t {
  none = 0,         ///< not aborted
  deadline,         ///< wall-clock budget expired
  proposal_budget,  ///< proposal-count budget exhausted
  cancelled,        ///< CancellationToken was triggered
  injected_fault    ///< a deterministic fault point fired
};

[[nodiscard]] constexpr const char* to_string(AbortReason reason) noexcept {
  switch (reason) {
    case AbortReason::none: return "none";
    case AbortReason::deadline: return "deadline";
    case AbortReason::proposal_budget: return "proposal-budget";
    case AbortReason::cancelled: return "cancelled";
    case AbortReason::injected_fault: return "injected-fault";
  }
  return "unknown";
}

/// A solver was stopped cooperatively (deadline / budget / cancel / fault).
/// NOT a logic error: the input may be fine and a retry may succeed, which is
/// exactly what resilience::solve_with_fallback does.
class ExecutionAborted : public std::runtime_error {
 public:
  ExecutionAborted(AbortReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

  [[nodiscard]] AbortReason reason() const noexcept { return reason_; }

 private:
  AbortReason reason_;
};

/// A deterministic fault point fired (resilience/fault_injection.hpp).
class InjectedFault : public ExecutionAborted {
 public:
  explicit InjectedFault(const std::string& point)
      : ExecutionAborted(AbortReason::injected_fault,
                         "injected fault at point '" + point + "'"),
        point_(point) {}

  /// Name of the fault point that fired, e.g. "core/binding_edge".
  [[nodiscard]] const std::string& point() const noexcept { return point_; }

 private:
  std::string point_;
};

namespace resilience {

/// How a solve ended, as data rather than control flow.
enum class SolveOutcome : std::uint8_t {
  ok = 0,    ///< a matching was produced
  aborted,   ///< stopped by deadline / budget / cancel / injected fault
  no_stable  ///< the instance provably has no stable matching (roommates)
};

[[nodiscard]] constexpr const char* to_string(SolveOutcome outcome) noexcept {
  switch (outcome) {
    case SolveOutcome::ok: return "ok";
    case SolveOutcome::aborted: return "aborted";
    case SolveOutcome::no_stable: return "no-stable";
  }
  return "unknown";
}

/// Structured completion record carried in solver results.
struct SolveStatus {
  SolveOutcome outcome = SolveOutcome::ok;
  AbortReason abort_reason = AbortReason::none;  ///< set iff outcome==aborted
  std::string detail;        ///< human-readable context (abort message, ...)
  std::int64_t proposals = 0;  ///< work spent (accumulated proposals)
  double wall_ms = 0.0;        ///< wall-clock spent

  [[nodiscard]] bool ok() const noexcept { return outcome == SolveOutcome::ok; }

  [[nodiscard]] std::string summary() const {
    std::ostringstream os;
    os << to_string(outcome);
    if (outcome == SolveOutcome::aborted) {
      os << '(' << kstable::to_string(abort_reason) << ')';
    }
    os << " after " << proposals << " proposals";
    return os.str();
  }
};

}  // namespace resilience
}  // namespace kstable

/// Input-validation check for the IO layer: like KSTABLE_REQUIRE but throws
/// ParseError — malformed input, not a programming error.
#define KSTABLE_PARSE_REQUIRE(cond, msg)                                       \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::ostringstream kstable_parse_os_;                                    \
      kstable_parse_os_ << "parse error: " << msg; /* NOLINT */                \
      throw ::kstable::ParseError(kstable_parse_os_.str());                    \
    }                                                                          \
  } while (false)
