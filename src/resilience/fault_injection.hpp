// Deterministic, seed-driven fault injection (tarantool ERROR_INJECT idiom).
//
// Code under test declares named fault points with KSTABLE_FAULT_POINT("x/y");
// a disarmed point costs one relaxed atomic load (and the whole macro compiles
// to nothing when the KSTABLE_FAULT_INJECTION CMake option is OFF — release
// builds carry zero fault-point code). Tests arm points through the global
// FaultRegistry (or the RAII ScopedFault) with a FaultConfig; when an armed
// point's firing rule matches, on_hit throws InjectedFault — an
// ExecutionAborted, so every recovery path (solve_with_fallback, thread-pool
// error propagation, CLI exit codes) treats an injected fault exactly like a
// real abort.
//
// Firing is deterministic: each armed point owns a private Rng seeded from
// its config, hit counting is per-arm, and the registry records the exact hit
// ordinals that fired (fire_log) so tests can assert replay equality.
//
// Registered points (grep KSTABLE_FAULT_POINT for ground truth):
//   thread_pool/task            inside every submit()ted task
//   thread_pool/for_each_index  inside every for_each_index body
//   io/load                     entry of the three deserializers
//   core/binding_edge           before each binding edge's GS run
//   core/parallel_round         before each parallel-executor round
//   rm/rotation                 before each rotation elimination
//   serve/accept                after each TCP accept, before the reader
//   serve/frame_parse           after a frame's bytes are fully consumed
//   serve/enqueue               between frame parse and admission
//   serve/respond               before each response write
//   serve/stall                 start of each admitted solve (wedged worker)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "resilience/errors.hpp"

namespace kstable::resilience {

/// When and how often an armed fault point fires.
struct FaultConfig {
  /// Number of hits to let pass before the firing rule engages (0 = first
  /// hit is eligible).
  std::int64_t fire_after = 0;
  /// Chance an eligible hit fires; draws come from a private Rng seeded with
  /// `seed`, so firing patterns replay exactly. 1.0 = always.
  double probability = 1.0;
  /// Seed of the point's private random stream.
  std::uint64_t seed = 1;
  /// Total fires before the point stops firing (it stays armed for
  /// hit counting); 0 = unlimited.
  std::int64_t max_fires = 1;
};

/// Global registry of named fault points. Thread-safe: points fire from pool
/// workers as well as the calling thread.
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  /// Arms `point` with `config`, resetting its counters and random stream.
  void arm(const std::string& point, FaultConfig config = {});

  /// Disarms `point`; hit/fire counters for it are discarded.
  void disarm(const std::string& point);

  /// Disarms every point (test teardown).
  void disarm_all();

  [[nodiscard]] bool armed(const std::string& point) const;

  /// Hits observed since `point` was armed (0 if not armed).
  [[nodiscard]] std::int64_t hits(const std::string& point) const;

  /// Times `point` has fired since armed (0 if not armed).
  [[nodiscard]] std::int64_t fires(const std::string& point) const;

  /// 1-based hit ordinals at which `point` fired, in order — the replay
  /// fingerprint deterministic-injection tests compare.
  [[nodiscard]] std::vector<std::int64_t> fire_log(
      const std::string& point) const;

  /// Called by KSTABLE_FAULT_POINT. Counts the hit and throws InjectedFault
  /// if the firing rule matches. No-op for unarmed points.
  void on_hit(const char* point);

 private:
  FaultRegistry() = default;
  struct State;  // defined in the .cpp: config + rng + counters per point

  // pimpl-free variant: the map lives behind this opaque accessor to keep
  // <unordered_map> and Rng out of the (hot-path-included) header.
  class Impl;
  Impl& impl() const;
};

namespace detail {
/// Fast-path gate: number of currently armed points. The KSTABLE_FAULT_POINT
/// macro skips the registry (one relaxed load) while this is zero.
extern std::atomic<std::int32_t> g_armed_points;
}  // namespace detail

/// RAII arm/disarm for tests: arms in the constructor, disarms in the
/// destructor so a failing test cannot leak an armed point into the next.
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, FaultConfig config = {})
      : point_(std::move(point)) {
    FaultRegistry::instance().arm(point_, config);
  }
  ~ScopedFault() { FaultRegistry::instance().disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  [[nodiscard]] const std::string& point() const noexcept { return point_; }
  [[nodiscard]] std::int64_t hits() const {
    return FaultRegistry::instance().hits(point_);
  }
  [[nodiscard]] std::int64_t fires() const {
    return FaultRegistry::instance().fires(point_);
  }

 private:
  std::string point_;
};

}  // namespace kstable::resilience

#if !defined(KSTABLE_NO_FAULT_INJECTION)
/// Declares a fault point. Disarmed cost: one relaxed atomic load.
#define KSTABLE_FAULT_POINT(name)                                              \
  do {                                                                         \
    if (::kstable::resilience::detail::g_armed_points.load(                    \
            std::memory_order_relaxed) > 0) {                                  \
      ::kstable::resilience::FaultRegistry::instance().on_hit(name);           \
    }                                                                          \
  } while (false)
#else
/// Fault injection compiled out (-DKSTABLE_FAULT_INJECTION=OFF).
#define KSTABLE_FAULT_POINT(name) ((void)0)
#endif
