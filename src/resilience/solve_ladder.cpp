#include "resilience/solve_ladder.hpp"

#include <cmath>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/gs_cache.hpp"
#include "core/priority_binding.hpp"
#include "core/tree_sweep.hpp"
#include "graph/prufer.hpp"
#include "observability/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace kstable::resilience {

namespace {

Budget scaled(const Budget& base, double scale) {
  Budget b = base;
  if (b.wall_ms > 0.0) b.wall_ms *= scale;
  if (b.max_proposals > 0) {
    b.max_proposals =
        static_cast<std::int64_t>(static_cast<double>(b.max_proposals) * scale);
  }
  return b;
}

SolveStatus abort_status(const ExecControl& control, const ExecutionAborted& e) {
  return control.aborted_status(e.reason(), e.what());
}

}  // namespace

FallbackReport solve_with_fallback(const KPartiteInstance& inst,
                                   const FallbackOptions& options) {
  KSTABLE_REQUIRE(options.backoff >= 1.0,
                  "backoff must be >= 1, got " << options.backoff);
  KSTABLE_REQUIRE(options.max_tree_attempts >= 1,
                  "need at least one strict attempt");
  const Gender k = inst.genders();

  FallbackReport report;
  // Cache counters are read as a delta off the cache's own stats so that
  // hits inside *aborted* attempts (whose BindingResult is lost to the
  // unwinding) are still accounted for.
  const core::GsEdgeCache::Stats cache_before =
      options.cache != nullptr ? options.cache->stats()
                               : core::GsEdgeCache::Stats{};
  const WallTimer ladder_timer;
  const auto finalize = [&](FallbackReport& r) -> FallbackReport& {
    if (options.cache != nullptr) {
      const auto now = options.cache->stats();
      r.cache_hits = now.hits - cache_before.hits;
      r.cache_misses = now.misses - cache_before.misses;
    }
    obs::SolveTelemetry& t = r.telemetry;
    t.engine = "ladder";
    t.genders = inst.genders();
    t.size = inst.per_gender();
    t.wall_ms = ladder_timer.millis();
    t.add_phase("ladder", t.wall_ms);
    t.status = r.status;
    // The ladder's proposal total is the semantic count of the winning
    // attempt; executed covers every attempt (failed rungs included).
    t.proposals = r.result.has_value() ? r.result->total_proposals : 0;
    t.executed_proposals = r.executed_proposals;
    t.cache_hits = r.cache_hits;
    t.cache_misses = r.cache_misses;
    t.attempts = static_cast<std::int64_t>(r.attempts.size());
    t.rung = static_cast<std::int32_t>(r.rung);
    obs::record(t);
    switch (r.rung) {
      case Rung::strict_tree:
        KSTABLE_COUNTER_ADD("ladder.rung.strict", 1);
        break;
      case Rung::degraded_priority:
        KSTABLE_COUNTER_ADD("ladder.rung.degraded", 1);
        break;
      case Rung::none:
        KSTABLE_COUNTER_ADD("ladder.rung.none", 1);
        break;
    }
    return r;
  };
  Rng tree_rng(options.tree_seed);
  // Distinct candidate trees, deduplicated by Prüfer code. cayley_count
  // saturates at INT64_MAX for large k, which is fine as an upper bound.
  // Attempt 0 binds along the path tree (the library default); retries draw
  // fresh random trees from the deterministic stream, skipping repeats. The
  // stream is shared by the sequential and speculative paths, so both see
  // the same candidate list.
  std::set<std::vector<Gender>> tried;
  const std::int64_t distinct_trees = prufer::cayley_count(k);
  const auto next_candidate =
      [&](std::int32_t attempt) -> std::optional<BindingStructure> {
    if (static_cast<std::int64_t>(tried.size()) >= distinct_trees) {
      return std::nullopt;
    }
    BindingStructure tree =
        attempt == 0 ? trees::path(k) : prufer::random_tree(k, tree_rng);
    while (!tried.insert(prufer::encode(tree)).second) {
      tree = prufer::random_tree(k, tree_rng);
    }
    return tree;
  };

  const bool speculate = options.speculative && options.pool != nullptr &&
                         !ThreadPool::in_worker_thread() &&
                         options.pool->thread_count() > 1 &&
                         options.max_tree_attempts > 1 &&
                         options.engine != core::GsEngine::parallel;
  if (speculate) {
    // Race the strict rungs: first_stable fold = lowest-indexed candidate to
    // succeed within its backoff-scaled budget, which is the sequential
    // ladder's winner (see FallbackOptions::speculative for the shared-cache
    // caveat). chunk_trees=1 maximizes how many rungs run concurrently.
    std::vector<BindingStructure> candidates;
    candidates.reserve(static_cast<std::size_t>(options.max_tree_attempts));
    for (std::int32_t attempt = 0; attempt < options.max_tree_attempts;
         ++attempt) {
      auto tree = next_candidate(attempt);
      if (!tree.has_value()) break;
      candidates.push_back(std::move(*tree));
    }
    core::TreeSweepOptions sopts;
    sopts.engine = options.engine;
    sopts.pool = options.pool;
    sopts.cache = options.cache;
    sopts.fold = core::SweepFold::first_stable;
    sopts.warm_start = options.warm_start;
    sopts.per_tree_budget = options.per_attempt;
    sopts.budget_backoff = options.backoff;
    sopts.chunk_trees = 1;
    ExecControl sweep_control(Budget{}, options.token);
    sopts.control = &sweep_control;
    try {
      auto sweep = core::sweep_trees(inst, candidates, sopts);
      for (auto& point : sweep.per_tree) {
        report.executed_proposals += point.executed_proposals;
        if (sweep.best_index >= 0 && point.index > sweep.best_index) {
          // Speculation overshoot: rungs the sequential ladder would never
          // have started. Logged as waste, not as attempts.
          report.speculative_waste += point.executed_proposals;
          continue;
        }
        AttemptLog log;
        log.rung = Rung::strict_tree;
        log.tree_edges =
            candidates[static_cast<std::size_t>(point.index)].edges();
        log.status = point.status;
        if (!point.succeeded) report.status = point.status;
        report.attempts.push_back(std::move(log));
      }
      if (sweep.succeeded()) {
        report.succeeded = true;
        report.rung = Rung::strict_tree;
        report.status = sweep.best->status;
        report.result = std::move(sweep.best);
        return finalize(report);
      }
    } catch (const ExecutionAborted& e) {
      // Only a cancellation escapes the raced rungs (per-candidate budget
      // blows are folded into per_tree); it stops the whole ladder.
      report.status = abort_status(sweep_control, e);
      return finalize(report);
    }
  } else {
    double scale = 1.0;
    for (std::int32_t attempt = 0; attempt < options.max_tree_attempts;
         ++attempt) {
      auto candidate = next_candidate(attempt);
      if (!candidate.has_value()) break;
      const BindingStructure tree = std::move(*candidate);

      ExecControl control(scaled(options.per_attempt, scale), options.token);
      AttemptLog log;
      log.rung = Rung::strict_tree;
      log.tree_edges = tree.edges();
      try {
        core::BindingOptions bopts{options.engine, options.pool, &control};
        bopts.cache = options.cache;
        bopts.warm_start = options.warm_start;
        auto result = core::iterative_binding(inst, tree, bopts);
        log.status = result.status;
        report.attempts.push_back(std::move(log));
        report.succeeded = true;
        report.rung = Rung::strict_tree;
        report.status = result.status;
        report.executed_proposals += result.executed_proposals;
        report.result = std::move(result);
        return finalize(report);
      } catch (const ExecutionAborted& e) {
        log.status = abort_status(control, e);
        report.status = log.status;
        // The charged units of the aborted attempt are the proposals it
        // actually executed (cache hits are never charged).
        report.executed_proposals += log.status.proposals;
        report.attempts.push_back(std::move(log));
        // A cancellation is a caller decision, not a per-tree failure: stop
        // the whole ladder instead of burning the remaining rungs.
        if (e.reason() == AbortReason::cancelled) return finalize(report);
        scale *= options.backoff;
      }
    }
  }

  if (options.allow_degraded && !options.token.cancelled()) {
    // Every strict rung failed, so the degraded attempt's budget continues
    // the escalation: backoff^(failed strict attempts) — the same value the
    // sequential loop accumulated multiplicatively.
    const double scale = std::pow(
        options.backoff, static_cast<double>(report.attempts.size()));
    ExecControl control(scaled(options.per_attempt, scale), options.token);
    AttemptLog log;
    log.rung = Rung::degraded_priority;
    try {
      core::PriorityBindingOptions popts;
      popts.binding = {options.engine, options.pool, &control};
      popts.binding.cache = options.cache;
      popts.binding.warm_start = options.warm_start;
      auto pr = core::priority_binding(inst, popts);
      log.tree_edges = pr.tree.edges();
      log.status = pr.binding.status;
      report.attempts.push_back(std::move(log));
      report.succeeded = true;
      report.rung = Rung::degraded_priority;
      report.status = pr.binding.status;
      report.executed_proposals += pr.binding.executed_proposals;
      report.result = std::move(pr.binding);
      return finalize(report);
    } catch (const ExecutionAborted& e) {
      log.status = abort_status(control, e);
      report.status = log.status;
      report.executed_proposals += log.status.proposals;
      report.attempts.push_back(std::move(log));
    }
  }

  report.rung = Rung::none;
  return finalize(report);
}

}  // namespace kstable::resilience
