// The fallback solve ladder: retry a failed/timed-out k-ary solve along
// *different* spanning binding trees, then degrade to the priority model.
//
// Paper grounding: Cayley's formula (cited for Theorem 3) guarantees k^(k-2)
// candidate spanning binding trees, every one of which yields a stable k-ary
// matching (Theorem 2) — so an abort on one tree (deadline, injected fault,
// wedged engine) has k^(k-2)-1 natural strict fallbacks with different
// proposal-order behavior. When every strict rung is exhausted, Algorithm 2's
// weakened priority / lead-member model (§IV.D) is a principled degraded
// mode: still a spanning-tree binding, but grown bitonically from the
// highest-priority gender. The report records which rung produced the answer
// so callers can distinguish a first-try success from a degraded one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/binding.hpp"
#include "observability/telemetry.hpp"
#include "resilience/control.hpp"

namespace kstable::resilience {

/// Ladder rung that produced (or last attempted) the matching.
enum class Rung : std::uint8_t {
  strict_tree,        ///< Algorithm 1 on a candidate spanning tree
  degraded_priority,  ///< Algorithm 2 (weakened priority model, last rung)
  none                ///< every rung failed
};

[[nodiscard]] constexpr const char* to_string(Rung rung) noexcept {
  switch (rung) {
    case Rung::strict_tree: return "strict-tree";
    case Rung::degraded_priority: return "degraded-priority";
    case Rung::none: return "none";
  }
  return "unknown";
}

/// One ladder attempt: which rung, which tree, how it ended.
struct AttemptLog {
  Rung rung = Rung::strict_tree;
  std::vector<GenderEdge> tree_edges;  ///< binding tree of this attempt
  SolveStatus status;
};

struct FallbackOptions {
  /// Budget for the first attempt; later attempts scale it by backoff.
  Budget per_attempt{};
  /// Per-attempt budget multiplier (>= 1): each retry gets backoff× the
  /// previous attempt's wall/proposal budget.
  double backoff = 1.0;
  /// Strict rungs (distinct spanning trees) to try before degrading; capped
  /// by Cayley's k^(k-2) distinct trees.
  std::int32_t max_tree_attempts = 4;
  /// Seed of the deterministic candidate-tree stream (attempt 0 is always
  /// the path tree; later attempts draw distinct Prüfer-random trees).
  std::uint64_t tree_seed = 0x5eed;
  /// Shared across all attempts; cancelling stops the whole ladder.
  CancellationToken token{};
  /// Engine/pool for the per-edge GS runs (control is owned by the ladder).
  core::GsEngine engine = core::GsEngine::queue;
  ThreadPool* pool = nullptr;
  /// Permit the Algorithm 2 last rung. When false the ladder is strict-only.
  bool allow_degraded = true;
  /// Race the strict rungs speculatively instead of one at a time: with a
  /// pool attached (and the caller not itself a pool worker), the candidate
  /// trees are pre-generated from the same deterministic stream and swept
  /// through core::sweep_trees' first_stable fold, each candidate under its
  /// own backoff-scaled budget. The winner is the lowest-indexed candidate
  /// that succeeds — with no shared cache that is exactly the sequential
  /// ladder's winner; with a shared cache under tight budgets, which rung
  /// wins may shift (concurrent attempts warm each other's edges), though
  /// any given tree's matching stays bitwise-identical. Work burnt on
  /// candidates above the winner is reported as speculative_waste.
  bool speculative = false;
  /// Optional per-instance edge cache shared across every rung: candidate
  /// trees draw from the same k(k-1)/2 gender-pair set, so edges completed
  /// by an aborted attempt replay for free on the next one (and are not
  /// re-charged against its budget). Must be built for this instance.
  core::GsEdgeCache* cache = nullptr;
  /// Optional warm-start provider (incremental::DeltaWarmStart), threaded
  /// into every rung's BindingOptions — strict trees, the speculative sweep,
  /// and the degraded Algorithm 2 attempt alike. Edges outside the previous
  /// solve's tree fall back to the cold engine (the provider answers
  /// nullopt), so retry rungs on different trees stay correct.
  const core::WarmStartProvider* warm_start = nullptr;
};

struct FallbackReport {
  bool succeeded = false;
  /// Rung that produced the matching (none if !succeeded).
  Rung rung = Rung::none;
  /// Status of the final attempt (the successful one, or the last failure).
  SolveStatus status;
  /// Binding result of the successful attempt; unset if !succeeded.
  std::optional<core::BindingResult> result;
  /// Every attempt in order, including the successful one.
  std::vector<AttemptLog> attempts;
  /// Edge-cache outcomes accumulated over all attempts (0/0 without a
  /// cache in FallbackOptions).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Proposals actually executed across all attempts (failed ones included);
  /// cache hits contribute nothing. The multi-tree work the cache saves is
  /// visible here.
  std::int64_t executed_proposals = 0;
  /// Of executed_proposals, the share burnt by speculative strict rungs
  /// above the winning candidate — work the sequential ladder would never
  /// have started (0 unless FallbackOptions::speculative).
  std::int64_t speculative_waste = 0;
  /// Per-ladder-run record (engine "ladder", attempts count, final rung,
  /// cumulative counters) for the observability exporters.
  obs::SolveTelemetry telemetry;

  [[nodiscard]] bool degraded() const noexcept {
    return rung == Rung::degraded_priority;
  }
  [[nodiscard]] const KaryMatching& matching() const {
    return result->matching();
  }
};

/// Runs the ladder: up to max_tree_attempts strict Algorithm 1 attempts on
/// distinct spanning trees with per-attempt budgets (ExecutionAborted from
/// one attempt moves to the next; a cancellation stops the ladder), then one
/// Algorithm 2 attempt as the degraded last rung. Never throws for abort-
/// class failures — the report carries the outcome. ContractViolation (a
/// programming error) still propagates.
FallbackReport solve_with_fallback(const KPartiteInstance& inst,
                                   const FallbackOptions& options = {});

}  // namespace kstable::resilience
