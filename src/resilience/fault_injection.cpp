#include "resilience/fault_injection.hpp"

#include <mutex>
#include <unordered_map>

#include "util/rng.hpp"

namespace kstable::resilience {

namespace detail {
std::atomic<std::int32_t> g_armed_points{0};
}  // namespace detail

/// Per-point armed state. Guarded by Impl::mutex.
struct PointState {
  FaultConfig config;
  Rng rng{1};
  std::int64_t hits = 0;
  std::int64_t fires = 0;
  std::vector<std::int64_t> fire_log;
};

class FaultRegistry::Impl {
 public:
  mutable std::mutex mutex;
  std::unordered_map<std::string, PointState> points;
};

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

FaultRegistry::Impl& FaultRegistry::impl() const {
  static Impl the_impl;
  return the_impl;
}

void FaultRegistry::arm(const std::string& point, FaultConfig config) {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  PointState state;
  state.config = config;
  state.rng = Rng(config.seed);
  auto [it, inserted] = i.points.insert_or_assign(point, std::move(state));
  (void)it;
  if (inserted) {
    detail::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::disarm(const std::string& point) {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  if (i.points.erase(point) > 0) {
    detail::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::disarm_all() {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  detail::g_armed_points.fetch_sub(
      static_cast<std::int32_t>(i.points.size()), std::memory_order_relaxed);
  i.points.clear();
}

bool FaultRegistry::armed(const std::string& point) const {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  return i.points.contains(point);
}

std::int64_t FaultRegistry::hits(const std::string& point) const {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  const auto it = i.points.find(point);
  return it == i.points.end() ? 0 : it->second.hits;
}

std::int64_t FaultRegistry::fires(const std::string& point) const {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  const auto it = i.points.find(point);
  return it == i.points.end() ? 0 : it->second.fires;
}

std::vector<std::int64_t> FaultRegistry::fire_log(
    const std::string& point) const {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  const auto it = i.points.find(point);
  return it == i.points.end() ? std::vector<std::int64_t>{}
                              : it->second.fire_log;
}

void FaultRegistry::on_hit(const char* point) {
  auto& i = impl();
  std::scoped_lock lock(i.mutex);
  const auto it = i.points.find(point);
  if (it == i.points.end()) return;
  PointState& state = it->second;
  ++state.hits;
  if (state.hits <= state.config.fire_after) return;
  if (state.config.max_fires > 0 && state.fires >= state.config.max_fires) {
    return;
  }
  if (state.config.probability < 1.0 &&
      !state.rng.chance(state.config.probability)) {
    return;
  }
  ++state.fires;
  state.fire_log.push_back(state.hits);
  throw InjectedFault(point);
}

}  // namespace kstable::resilience
