// Cooperative execution control: deadlines, proposal budgets, cancellation.
//
// Every long-running solver loop (the GS engines, Irving rotation
// elimination, the binding drivers) accepts an optional ExecControl* and
// charges it one unit per proposal (or a batch per round). When the budget is
// exceeded or cancellation is requested, charge() throws ExecutionAborted —
// the solve unwinds cleanly instead of running to completion or hanging.
//
// Cost discipline: a null control is one predictable branch per proposal. An
// attached control costs one relaxed fetch_add plus two predictable branches
// (the proposal-budget compare — plain arithmetic on the fetch_add result —
// and the stride test); the cancellation token and the wall clock are only
// consulted every kClockStride charged units (amortized checking), so
// guarded engines show no measurable regression on the E1/E9 benchmarks. A
// requested cancellation is therefore observed within at most kClockStride
// charged units on the amortized path; check_now() stays unamortized — it
// always consults the token, the proposal budget, and the clock — so coarse
// checkpoints (per binding edge, per parallel round, cache waiters) keep
// prompt abort latency. ExecControl is thread-safe: the parallel executors
// share one control across pool workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <utility>

#include "resilience/errors.hpp"

namespace kstable::resilience {

/// Work limits for one solve attempt. Non-positive fields mean "unlimited".
struct Budget {
  double wall_ms = 0.0;            ///< wall-clock limit in milliseconds
  std::int64_t max_proposals = 0;  ///< accumulated-proposal limit

  [[nodiscard]] bool unlimited() const noexcept {
    return wall_ms <= 0.0 && max_proposals <= 0;
  }
  [[nodiscard]] static Budget deadline(double ms) noexcept {
    return Budget{ms, 0};
  }
  [[nodiscard]] static Budget proposals(std::int64_t count) noexcept {
    return Budget{0.0, count};
  }
};

/// Shared cancellation flag. Copies observe the same flag; request_cancel()
/// from any thread makes every solver holding a control with this token abort
/// at its next charge.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-attempt execution controller: a Budget, a CancellationToken, and the
/// amortized checking state. One instance guards one solve attempt; pass its
/// address through the solver options (non-owning).
class ExecControl {
 public:
  /// How many charged units pass between wall-clock reads.
  static constexpr std::int64_t kClockStride = 1024;

  ExecControl() = default;
  explicit ExecControl(Budget budget, CancellationToken token = {})
      : budget_(budget), token_(std::move(token)) {}

  /// Records `events` units of work (proposals). Throws ExecutionAborted when
  /// over the proposal budget (checked on every call — plain arithmetic on
  /// the fetch_add result), or — checked only when the charge counter crosses
  /// a kClockStride boundary — when cancelled or past the wall-clock
  /// deadline. Amortizing the token's acquire load keeps the per-proposal
  /// cost at one relaxed fetch_add plus predictable branches; a cancellation
  /// is still observed within kClockStride charged units (and immediately at
  /// the next check_now()).
  void charge(std::int64_t events = 1) {
    const std::int64_t before =
        spent_.fetch_add(events, std::memory_order_relaxed);
    const std::int64_t after = before + events;
    if (budget_.max_proposals > 0 && after > budget_.max_proposals) {
      abort_now(AbortReason::proposal_budget, after);
    }
    if (before / kClockStride != after / kClockStride) {
      if (token_.cancelled()) abort_now(AbortReason::cancelled, after);
      if (budget_.wall_ms > 0.0) check_deadline(after);
    }
  }

  /// Unamortized checkpoint for coarse boundaries (per binding edge, per
  /// parallel round, cache waiters): always consults the cancellation flag,
  /// the proposal budget, and the clock. The budget comparison matters for
  /// work the checkpoint owner never charged itself: a shared control pushed
  /// over budget by other workers, or a driver whose own charges were
  /// serviced from a cache, must still stop here rather than overrun the
  /// budget indefinitely.
  void check_now() {
    const std::int64_t seen = spent_.load(std::memory_order_relaxed);
    if (token_.cancelled()) abort_now(AbortReason::cancelled, seen);
    if (budget_.max_proposals > 0 && seen > budget_.max_proposals) {
      abort_now(AbortReason::proposal_budget, seen);
    }
    if (budget_.wall_ms > 0.0) check_deadline(seen);
  }

  [[nodiscard]] std::int64_t spent() const noexcept {
    return spent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  [[nodiscard]] const Budget& budget() const noexcept { return budget_; }
  [[nodiscard]] const CancellationToken& token() const noexcept {
    return token_;
  }

  /// The status of a run this control aborted, for attempt logs.
  [[nodiscard]] SolveStatus aborted_status(AbortReason reason,
                                           std::string detail) const {
    SolveStatus status;
    status.outcome = SolveOutcome::aborted;
    status.abort_reason = reason;
    status.detail = std::move(detail);
    status.proposals = spent();
    status.wall_ms = elapsed_ms();
    return status;
  }

 private:
  [[noreturn]] void abort_now(AbortReason reason, std::int64_t spent) const {
    std::ostringstream os;
    os << "solve aborted (" << kstable::to_string(reason) << ") after "
       << spent << " proposals, " << elapsed_ms() << " ms";
    if (reason == AbortReason::proposal_budget) {
      os << " (budget " << budget_.max_proposals << ')';
    } else if (reason == AbortReason::deadline) {
      os << " (deadline " << budget_.wall_ms << " ms)";
    }
    throw ExecutionAborted(reason, os.str());
  }

  void check_deadline(std::int64_t spent) const {
    if (elapsed_ms() > budget_.wall_ms) {
      abort_now(AbortReason::deadline, spent);
    }
  }

  Budget budget_{};
  CancellationToken token_{};
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::atomic<std::int64_t> spent_{0};
};

}  // namespace kstable::resilience
