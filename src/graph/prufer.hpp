// Prüfer sequences: the bijection behind Cayley's formula (paper §IV.B cites
// Cayley's k^(k-2) count of binding trees on k genders).
//
// encode/decode give a bijection between labeled trees on k >= 2 nodes and
// sequences in {0..k-1}^(k-2); the E5 experiment enumerates/counts binding
// trees through this bijection and sweeps binding results over tree shapes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/binding_structure.hpp"
#include "util/rng.hpp"

namespace kstable::prufer {

/// Prüfer sequence of a spanning tree (length k-2; empty for k = 2).
std::vector<Gender> encode(const BindingStructure& tree);

/// Tree for a Prüfer sequence over k = seq.size() + 2 labels.
BindingStructure decode(const std::vector<Gender>& seq, Gender k);

/// Uniformly random labeled tree on k genders (uniform Prüfer sequence).
BindingStructure random_tree(Gender k, Rng& rng);

/// k^(k-2) (Cayley); number of distinct binding trees. Saturates at
/// INT64_MAX for large k.
std::int64_t cayley_count(Gender k);

/// Prüfer sequence of the tree at position `index` in the enumeration order
/// of enumerate_trees (the odometer over {0..k-1}^(k-2) with seq[0] as the
/// least-significant digit): code_at(index, k)[j] = (index / k^j) mod k.
/// This random access is what lets TreeSweep chunk the k^(k-2) tree space
/// across workers without a shared enumeration cursor.
std::vector<Gender> code_at(std::int64_t index, Gender k);

/// decode(code_at(index, k), k): the index-th tree of the enumeration.
BindingStructure tree_at(std::int64_t index, Gender k);

/// Enumerates all k^(k-2) spanning trees for small k (k <= 8 recommended;
/// 8^6 = 262144 trees). Calls `visit` with each tree.
template <typename Visitor>
void enumerate_trees(Gender k, Visitor&& visit) {
  if (k == 1) return;
  std::vector<Gender> seq(static_cast<std::size_t>(k > 2 ? k - 2 : 0), 0);
  while (true) {
    visit(decode(seq, k));
    // Odometer increment over {0..k-1}^(k-2).
    std::size_t pos = 0;
    for (; pos < seq.size(); ++pos) {
      if (++seq[pos] < k) break;
      seq[pos] = 0;
    }
    if (pos == seq.size()) break;
  }
}

}  // namespace kstable::prufer
