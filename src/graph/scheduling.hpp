// Round scheduling of binding trees for parallel execution (paper §IV.C).
//
// Two binding edges can run concurrently iff they share no gender (under the
// EREW PRAM discipline each gender's preference data is read/written by one
// binary matching at a time). A valid schedule is therefore a proper edge
// coloring; trees are class-1 graphs, so Δ rounds always suffice and are
// necessary (Corollary 1). A path tree yields the 2-round even-odd schedule
// of Fig. 4 (Corollary 2).
#pragma once

#include <vector>

#include "graph/binding_structure.hpp"

namespace kstable::sched {

/// A schedule: rounds_[r] lists indices into structure.edges() that execute
/// concurrently in round r.
struct RoundSchedule {
  std::vector<std::vector<std::size_t>> rounds;

  [[nodiscard]] std::size_t round_count() const { return rounds.size(); }
};

/// Greedy tree edge coloring: exactly max_degree(tree) rounds for spanning
/// trees and forests (requires an acyclic structure).
RoundSchedule color_forest(const BindingStructure& forest);

/// The Fig. 4 even-odd schedule for the path tree 0-1-...-(k-1): round 0 runs
/// edges (0,1), (2,3), ...; round 1 runs edges (1,2), (3,4), ... Exactly the
/// color_forest() result on a path, provided as an explicit constructor to
/// mirror the paper's figure.
RoundSchedule even_odd_path_schedule(Gender k);

/// Validates that `schedule` covers every edge exactly once and no two edges
/// in one round share a gender. Throws ContractViolation otherwise.
void validate_schedule(const BindingStructure& structure,
                       const RoundSchedule& schedule);

/// True iff, under the priority order "gender id = priority" transformed by
/// `priority` (priority[g] = priority value of gender g, all distinct), every
/// path between two nodes of `tree` is a bitonic sequence of priorities
/// (§IV.D). With the identity priority this is the paper's bitonic-tree
/// definition verbatim.
bool is_bitonic_tree(const BindingStructure& tree,
                     const std::vector<std::int32_t>& priority);

/// is_bitonic_tree with priority[g] = g.
bool is_bitonic_tree(const BindingStructure& tree);

}  // namespace kstable::sched
