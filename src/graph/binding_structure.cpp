#include "graph/binding_structure.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace kstable {

BindingStructure::BindingStructure(Gender k) : k_(k) {
  KSTABLE_REQUIRE(k >= 1, "binding structure needs k >= 1, got " << k);
  adj_.resize(static_cast<std::size_t>(k));
}

void BindingStructure::add_edge(GenderEdge e) {
  KSTABLE_REQUIRE(e.a >= 0 && e.a < k_ && e.b >= 0 && e.b < k_,
                  "edge (" << e.a << ',' << e.b << ") out of range, k=" << k_);
  KSTABLE_REQUIRE(e.a != e.b, "self-binding of gender " << e.a << " rejected");
  for (const auto& existing : edges_) {
    KSTABLE_REQUIRE(existing.normalized() != e.normalized(),
                    "duplicate binding edge (" << e.a << ',' << e.b << ")");
  }
  edges_.push_back(e);
  adj_[static_cast<std::size_t>(e.a)].push_back(e.b);
  adj_[static_cast<std::size_t>(e.b)].push_back(e.a);
}

std::vector<std::int32_t> BindingStructure::component_labels() const {
  // Union-find over genders (k is small: at most a few dozen genders).
  std::vector<std::int32_t> parent(static_cast<std::size_t>(k_));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](std::int32_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const auto& e : edges_) {
    const std::int32_t ra = find(e.a), rb = find(e.b);
    if (ra != rb) parent[static_cast<std::size_t>(ra)] = rb;
  }
  std::vector<std::int32_t> labels(static_cast<std::size_t>(k_));
  for (Gender g = 0; g < k_; ++g) labels[static_cast<std::size_t>(g)] = find(g);
  return labels;
}

bool BindingStructure::would_cycle(Gender i, Gender j) const {
  KSTABLE_REQUIRE(i >= 0 && i < k_ && j >= 0 && j < k_ && i != j,
                  "would_cycle(" << i << ',' << j << ") invalid, k=" << k_);
  const auto labels = component_labels();
  return labels[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(j)];
}

std::int32_t BindingStructure::degree(Gender g) const {
  KSTABLE_REQUIRE(g >= 0 && g < k_, "degree: gender " << g << " out of range");
  return static_cast<std::int32_t>(adj_[static_cast<std::size_t>(g)].size());
}

std::int32_t BindingStructure::max_degree() const {
  std::int32_t best = 0;
  for (const auto& nbrs : adj_) {
    best = std::max(best, static_cast<std::int32_t>(nbrs.size()));
  }
  return best;
}

std::int32_t BindingStructure::component_count() const {
  auto labels = component_labels();
  std::sort(labels.begin(), labels.end());
  return static_cast<std::int32_t>(
      std::unique(labels.begin(), labels.end()) - labels.begin());
}

bool BindingStructure::has_cycle() const {
  // An acyclic edge set satisfies |E| = k - #components exactly.
  return static_cast<std::int32_t>(edges_.size()) != k_ - component_count();
}

bool BindingStructure::is_spanning_tree() const {
  return component_count() == 1 &&
         static_cast<std::int32_t>(edges_.size()) == k_ - 1;
}

std::vector<Gender> BindingStructure::neighbors(Gender g) const {
  KSTABLE_REQUIRE(g >= 0 && g < k_, "neighbors: gender " << g << " out of range");
  return adj_[static_cast<std::size_t>(g)];
}

namespace trees {

BindingStructure path(Gender k) {
  BindingStructure t(k);
  for (Gender g = 0; g + 1 < k; ++g) t.add_edge({g, static_cast<Gender>(g + 1)});
  return t;
}

BindingStructure star(Gender k, Gender center) {
  KSTABLE_REQUIRE(center >= 0 && center < k,
                  "star center " << center << " out of range, k=" << k);
  BindingStructure t(k);
  for (Gender g = 0; g < k; ++g) {
    if (g != center) t.add_edge({center, g});
  }
  return t;
}

BindingStructure caterpillar(Gender k, Gender spine) {
  KSTABLE_REQUIRE(spine >= 1 && spine <= k,
                  "caterpillar spine " << spine << " invalid for k=" << k);
  BindingStructure t(k);
  for (Gender g = 0; g + 1 < spine; ++g) {
    t.add_edge({g, static_cast<Gender>(g + 1)});
  }
  // Remaining genders hang off the spine round-robin.
  for (Gender g = spine; g < k; ++g) {
    t.add_edge({static_cast<Gender>((g - spine) % spine), g});
  }
  return t;
}

}  // namespace trees

}  // namespace kstable
