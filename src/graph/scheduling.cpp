#include "graph/scheduling.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace kstable::sched {

RoundSchedule color_forest(const BindingStructure& forest) {
  KSTABLE_REQUIRE(forest.is_forest(), "round scheduling requires an acyclic "
                                      "binding structure");
  const Gender k = forest.genders();
  const auto& edges = forest.edges();

  // Map (normalized edge) -> edge index for O(1) lookup during BFS.
  auto edge_index = [&edges](Gender x, Gender y) -> std::size_t {
    for (std::size_t idx = 0; idx < edges.size(); ++idx) {
      const auto norm = edges[idx].normalized();
      if ((norm.a == x && norm.b == y) || (norm.a == y && norm.b == x)) {
        return idx;
      }
    }
    KSTABLE_REQUIRE(false, "edge (" << x << ',' << y << ") not found");
    return 0;  // unreachable
  };

  std::vector<std::int32_t> color(edges.size(), -1);
  std::vector<bool> visited(static_cast<std::size_t>(k), false);
  std::int32_t max_color = -1;

  for (Gender root = 0; root < k; ++root) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    // BFS; each node assigns colors to its untraversed incident edges,
    // skipping the color of the edge toward its parent. A tree needs exactly
    // Δ colors this way.
    std::queue<std::pair<Gender, std::int32_t>> frontier;  // (node, color of parent edge)
    frontier.emplace(root, -1);
    visited[static_cast<std::size_t>(root)] = true;
    while (!frontier.empty()) {
      const auto [node, parent_color] = frontier.front();
      frontier.pop();
      std::int32_t next = 0;
      for (Gender nb : forest.neighbors(node)) {
        if (visited[static_cast<std::size_t>(nb)]) continue;
        if (next == parent_color) ++next;
        const std::size_t idx = edge_index(node, nb);
        color[idx] = next;
        max_color = std::max(max_color, next);
        visited[static_cast<std::size_t>(nb)] = true;
        frontier.emplace(nb, next);
        ++next;
      }
    }
  }

  RoundSchedule schedule;
  schedule.rounds.resize(static_cast<std::size_t>(max_color + 1));
  for (std::size_t idx = 0; idx < edges.size(); ++idx) {
    schedule.rounds[static_cast<std::size_t>(color[idx])].push_back(idx);
  }
  validate_schedule(forest, schedule);
  KSTABLE_ENSURE(static_cast<std::int32_t>(schedule.round_count()) ==
                     (edges.empty() ? 0 : forest.max_degree()),
                 "tree coloring should use exactly Δ rounds");
  return schedule;
}

RoundSchedule even_odd_path_schedule(Gender k) {
  KSTABLE_REQUIRE(k >= 2, "even-odd schedule needs k >= 2, got " << k);
  // Edge i of the path connects genders (i, i+1); even-indexed edges form
  // round 0, odd-indexed edges round 1 — Fig. 4's two phases.
  RoundSchedule schedule;
  schedule.rounds.resize(k > 2 ? 2 : 1);
  for (Gender e = 0; e + 1 < k; ++e) {
    schedule.rounds[static_cast<std::size_t>(e % 2)].push_back(
        static_cast<std::size_t>(e));
  }
  return schedule;
}

void validate_schedule(const BindingStructure& structure,
                       const RoundSchedule& schedule) {
  const auto& edges = structure.edges();
  std::vector<std::int32_t> seen(edges.size(), 0);
  for (const auto& round : schedule.rounds) {
    std::vector<bool> busy(static_cast<std::size_t>(structure.genders()), false);
    for (std::size_t idx : round) {
      KSTABLE_REQUIRE(idx < edges.size(),
                      "schedule references edge " << idx << " of " << edges.size());
      ++seen[idx];
      const auto& e = edges[idx];
      KSTABLE_REQUIRE(!busy[static_cast<std::size_t>(e.a)] &&
                          !busy[static_cast<std::size_t>(e.b)],
                      "round uses gender " << e.a << " or " << e.b << " twice");
      busy[static_cast<std::size_t>(e.a)] = true;
      busy[static_cast<std::size_t>(e.b)] = true;
    }
  }
  for (std::size_t idx = 0; idx < edges.size(); ++idx) {
    KSTABLE_REQUIRE(seen[idx] == 1, "edge " << idx << " scheduled " << seen[idx]
                                            << " times");
  }
}

bool is_bitonic_tree(const BindingStructure& tree,
                     const std::vector<std::int32_t>& priority) {
  KSTABLE_REQUIRE(tree.is_spanning_tree(), "bitonic check requires a tree");
  const Gender k = tree.genders();
  KSTABLE_REQUIRE(priority.size() == static_cast<std::size_t>(k),
                  "priority vector size " << priority.size() << " != k=" << k);

  // For every ordered pair (s, t), extract the unique tree path and test the
  // priority sequence for bitonicity (monotone increase then decrease; either
  // phase may be empty). k is small, so O(k^3) is fine.
  std::vector<Gender> parent(static_cast<std::size_t>(k));
  for (Gender s = 0; s < k; ++s) {
    // BFS from s to get parents.
    std::fill(parent.begin(), parent.end(), Gender{-1});
    std::queue<Gender> frontier;
    frontier.push(s);
    parent[static_cast<std::size_t>(s)] = s;
    while (!frontier.empty()) {
      const Gender node = frontier.front();
      frontier.pop();
      for (Gender nb : tree.neighbors(node)) {
        if (parent[static_cast<std::size_t>(nb)] == -1) {
          parent[static_cast<std::size_t>(nb)] = node;
          frontier.push(nb);
        }
      }
    }
    for (Gender t = s + 1; t < k; ++t) {
      std::vector<std::int32_t> path_prio;
      for (Gender cur = t; cur != s; cur = parent[static_cast<std::size_t>(cur)]) {
        path_prio.push_back(priority[static_cast<std::size_t>(cur)]);
      }
      path_prio.push_back(priority[static_cast<std::size_t>(s)]);
      // Bitonic test: climb while increasing, then require strictly
      // decreasing to the end.
      std::size_t pos = 1;
      while (pos < path_prio.size() && path_prio[pos] > path_prio[pos - 1]) ++pos;
      while (pos < path_prio.size() && path_prio[pos] < path_prio[pos - 1]) ++pos;
      if (pos != path_prio.size()) return false;
    }
  }
  return true;
}

bool is_bitonic_tree(const BindingStructure& tree) {
  std::vector<std::int32_t> identity(static_cast<std::size_t>(tree.genders()));
  for (Gender g = 0; g < tree.genders(); ++g) {
    identity[static_cast<std::size_t>(g)] = g;
  }
  return is_bitonic_tree(tree, identity);
}

}  // namespace kstable::sched
