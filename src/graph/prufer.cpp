#include "graph/prufer.hpp"

#include <limits>

#include "util/check.hpp"

namespace kstable::prufer {

std::vector<Gender> encode(const BindingStructure& tree) {
  KSTABLE_REQUIRE(tree.is_spanning_tree(), "Prüfer encode needs a spanning tree");
  const Gender k = tree.genders();
  std::vector<Gender> seq;
  if (k <= 2) return seq;
  seq.reserve(static_cast<std::size_t>(k - 2));

  std::vector<std::int32_t> deg(static_cast<std::size_t>(k));
  std::vector<std::vector<Gender>> adj(static_cast<std::size_t>(k));
  for (const auto& e : tree.edges()) {
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
    ++deg[static_cast<std::size_t>(e.a)];
    ++deg[static_cast<std::size_t>(e.b)];
  }
  std::vector<bool> removed(static_cast<std::size_t>(k), false);
  // Classic pointer-scan leaf elimination: O(k log k)-ish without a heap by
  // tracking the smallest candidate leaf.
  Gender ptr = 0;
  while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  Gender leaf = ptr;
  for (Gender step = 0; step < k - 2; ++step) {
    // Neighbor of the current leaf that is still present.
    Gender parent = -1;
    for (Gender nb : adj[static_cast<std::size_t>(leaf)]) {
      if (!removed[static_cast<std::size_t>(nb)]) {
        parent = nb;
        break;
      }
    }
    KSTABLE_ASSERT(parent >= 0);
    seq.push_back(parent);
    removed[static_cast<std::size_t>(leaf)] = true;
    if (--deg[static_cast<std::size_t>(parent)] == 1 && parent < ptr) {
      leaf = parent;  // new leaf below the scan pointer: take it immediately
    } else {
      while (deg[static_cast<std::size_t>(++ptr)] != 1 ||
             removed[static_cast<std::size_t>(ptr)]) {
      }
      leaf = ptr;
    }
  }
  return seq;
}

BindingStructure decode(const std::vector<Gender>& seq, Gender k) {
  KSTABLE_REQUIRE(k >= 2, "Prüfer decode needs k >= 2, got " << k);
  KSTABLE_REQUIRE(static_cast<Gender>(seq.size()) == (k > 2 ? k - 2 : 0),
                  "Prüfer sequence length " << seq.size() << " wrong for k=" << k);
  std::vector<std::int32_t> deg(static_cast<std::size_t>(k), 1);
  for (Gender v : seq) {
    KSTABLE_REQUIRE(v >= 0 && v < k, "Prüfer entry " << v << " out of range");
    ++deg[static_cast<std::size_t>(v)];
  }
  BindingStructure tree(k);
  Gender ptr = 0;
  while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  Gender leaf = ptr;
  for (Gender v : seq) {
    tree.add_edge({leaf, v});
    if (--deg[static_cast<std::size_t>(v)] == 1 && v < ptr) {
      leaf = v;
    } else {
      while (deg[static_cast<std::size_t>(++ptr)] != 1) {
      }
      leaf = ptr;
    }
  }
  // Last edge joins the final leaf with the remaining degree-1 node (always
  // node k-1 after the loop's degree accounting).
  Gender last = k - 1;
  tree.add_edge({leaf, last});
  KSTABLE_ENSURE(tree.is_spanning_tree(), "Prüfer decode produced a non-tree");
  return tree;
}

BindingStructure random_tree(Gender k, Rng& rng) {
  KSTABLE_REQUIRE(k >= 2, "random_tree needs k >= 2, got " << k);
  std::vector<Gender> seq;
  if (k > 2) {
    seq.resize(static_cast<std::size_t>(k - 2));
    for (auto& v : seq) {
      v = static_cast<Gender>(rng.below(static_cast<std::uint64_t>(k)));
    }
  }
  return decode(seq, k);
}

std::vector<Gender> code_at(std::int64_t index, Gender k) {
  KSTABLE_REQUIRE(k >= 2, "code_at needs k >= 2, got " << k);
  KSTABLE_REQUIRE(index >= 0 && index < cayley_count(k),
                  "tree index " << index << " out of range for k=" << k);
  std::vector<Gender> seq(static_cast<std::size_t>(k > 2 ? k - 2 : 0));
  for (auto& digit : seq) {
    digit = static_cast<Gender>(index % k);
    index /= k;
  }
  return seq;
}

BindingStructure tree_at(std::int64_t index, Gender k) {
  return decode(code_at(index, k), k);
}

std::int64_t cayley_count(Gender k) {
  KSTABLE_REQUIRE(k >= 1, "cayley_count needs k >= 1, got " << k);
  if (k <= 2) return 1;
  std::int64_t count = 1;
  for (Gender i = 0; i < k - 2; ++i) {
    if (count > std::numeric_limits<std::int64_t>::max() / k) {
      return std::numeric_limits<std::int64_t>::max();
    }
    count *= k;
  }
  return count;
}

}  // namespace kstable::prufer
