// BindingStructure: a set of binding edges over the gender set I = {0..k-1}.
//
// Algorithm 1 (paper §IV.A) binds genders pairwise along a *spanning tree* of
// I; the tightness experiments (Theorem 4) also need proper forests (fewer
// than k-1 bindings) and cyclic edge sets (more than k-1 bindings), so the
// structure supports arbitrary simple edge sets with classification queries.
#pragma once

#include <cstdint>
#include <vector>

#include "prefs/ids.hpp"

namespace kstable {

/// An undirected binding edge between two genders. The orientation is
/// meaningful to the *matching engine* (a proposes to b) but not to the
/// structure; normalized() is used for equality/cycle checks.
struct GenderEdge {
  Gender a = -1;  ///< proposer gender in GS(a, b)
  Gender b = -1;  ///< responder gender in GS(a, b)

  [[nodiscard]] GenderEdge normalized() const {
    return a <= b ? *this : GenderEdge{b, a};
  }
  friend bool operator==(const GenderEdge&, const GenderEdge&) = default;
};

/// Simple undirected edge set over k genders with tree/forest classification.
class BindingStructure {
 public:
  explicit BindingStructure(Gender k);

  /// Adds an edge; rejects self-loops, out-of-range endpoints, duplicates.
  void add_edge(GenderEdge e);

  /// True iff adding (i, j) would close a cycle (i and j already connected).
  [[nodiscard]] bool would_cycle(Gender i, Gender j) const;

  [[nodiscard]] Gender genders() const noexcept { return k_; }
  [[nodiscard]] const std::vector<GenderEdge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::int32_t degree(Gender g) const;
  [[nodiscard]] std::int32_t max_degree() const;

  /// Number of connected components (isolated genders count).
  [[nodiscard]] std::int32_t component_count() const;

  /// True iff the edge set contains a cycle.
  [[nodiscard]] bool has_cycle() const;

  /// True iff acyclic (spanning trees and proper forests both qualify).
  [[nodiscard]] bool is_forest() const { return !has_cycle(); }

  /// True iff connected and acyclic with exactly k-1 edges.
  [[nodiscard]] bool is_spanning_tree() const;

  /// Neighbors of gender `g`.
  [[nodiscard]] std::vector<Gender> neighbors(Gender g) const;

  /// Component label per gender (labels are arbitrary but consistent).
  [[nodiscard]] std::vector<std::int32_t> component_labels() const;

 private:
  Gender k_;
  std::vector<GenderEdge> edges_;
  std::vector<std::vector<Gender>> adj_;
};

/// --- Tree factories -------------------------------------------------------
namespace trees {

/// Path 0-1-2-...-(k-1): the minimum-degree spanning tree (Δ = 2), used by
/// the Corollary 2 even-odd schedule (Fig. 4).
BindingStructure path(Gender k);

/// Star centered at `center` (Δ = k-1): the worst case for Corollary 1.
BindingStructure star(Gender k, Gender center = 0);

/// Caterpillar with spine length `spine`: interpolates path → star shapes.
BindingStructure caterpillar(Gender k, Gender spine);

}  // namespace trees

}  // namespace kstable
