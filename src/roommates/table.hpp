// ReductionTable: the mutable "reduced preference lists" state of Irving's
// algorithm (paper §III.B: "The resulting reduced set of preference lists is
// called a reduced list").
//
// Supports the bidirectional pair deletion rule — "if w removes m from her
// list, it also means m removes w from his list" — plus the first/second/last
// queries phase 2's rotation search needs. Deletions are monotone, so cached
// first/last cursors advance lazily and total maintenance cost is linear in
// the number of list entries.
#pragma once

#include <cstdint>
#include <vector>

#include "roommates/instance.hpp"

namespace kstable::rm {

/// Mutable view over an instance's preference lists with pair deletion.
class ReductionTable {
 public:
  explicit ReductionTable(const RoommatesInstance& instance);

  [[nodiscard]] const RoommatesInstance& instance() const noexcept {
    return *inst_;
  }

  /// True iff q is still on p's list.
  [[nodiscard]] bool active(Person p, Person q) const;

  /// Deletes the pair {p, q} from both lists (bidirectional rule).
  void delete_pair(Person p, Person q);

  /// Number of entries still on p's list.
  [[nodiscard]] std::int32_t list_size(Person p) const;

  [[nodiscard]] bool empty(Person p) const { return list_size(p) == 0; }

  /// First (most preferred) active entry of p's list; -1 if empty.
  [[nodiscard]] Person first(Person p) const;

  /// Second active entry; -1 if fewer than two remain.
  [[nodiscard]] Person second(Person p) const;

  /// Last (least preferred) active entry; -1 if empty.
  [[nodiscard]] Person last(Person p) const;

  /// Deletes every active entry of p's list strictly worse than q
  /// (bidirectionally). q must still be active on p's list. This is the
  /// paper's pruning step: "if m receives a proposal from w, he will remove
  /// all persons u ranked lower than w".
  void truncate_after(Person p, Person q);

  /// Deletes every active entry of p's list at positions strictly greater
  /// than `rank` (bidirectionally). Unlike truncate_after, the anchor entry
  /// itself need not still be active — phase 2's rotation eliminations can
  /// cascade and remove an anchor pair before its own truncation runs, but
  /// the "everything worse than x_i goes" semantics is rank-based and stays
  /// well-defined.
  void truncate_worse_than(Person p, std::int32_t rank);

  /// All still-active entries of p's list, best first (test/debug helper).
  [[nodiscard]] std::vector<Person> active_list(Person p) const;

  /// Total number of pair deletions performed so far (both directions count
  /// as one).
  [[nodiscard]] std::int64_t deletions() const noexcept { return deletions_; }

  /// Verifies the stable-table invariant after phase 1: for every p with a
  /// non-empty list, first(p) = q implies last(q) = p. Returns true iff it
  /// holds (used by tests and as an optional postcondition).
  [[nodiscard]] bool check_phase1_invariant() const;

 private:
  const RoommatesInstance* inst_;
  // active_[p][pos] over positions of p's original list.
  std::vector<std::vector<char>> active_;
  // Cached cursors into the original lists (lazily advanced).
  mutable std::vector<std::int32_t> first_pos_;
  mutable std::vector<std::int32_t> last_pos_;
  std::vector<std::int32_t> sizes_;
  std::int64_t deletions_ = 0;

  void check_person(Person p) const;
};

}  // namespace kstable::rm
