// The stable-matching lattice of a bipartite (SMP) instance.
//
// §III.B's fairness procedure picks *some* stable matching by alternating
// rotation eliminations. This module makes the underlying structure explicit:
// starting from the phase-1 table (the GS-lists), eliminating man-side
// rotations walks down the distributive lattice of stable matchings from the
// man-optimal to the woman-optimal element. A DFS over rotation eliminations
// with matching-level memoization enumerates EVERY stable matching, which
// gives exact optima to compare the §III.B heuristic against:
//   * egalitarian-optimal  (min total rank cost),
//   * sex-equal-optimal    (min |men cost - women cost|),
//   * minimum-regret       (min worst rank anyone accepts).
//
// Cost: O(#stable_matchings · n · #rotations) time; the enumeration caps at
// LatticeOptions::max_matchings (instances exist with exponentially many).
#pragma once

#include <cstdint>
#include <vector>

#include "prefs/kpartite.hpp"
#include "roommates/solver.hpp"

namespace kstable::rm {

struct LatticeOptions {
  /// Stop after enumerating this many matchings (0 = unlimited).
  std::int64_t max_matchings = 1 << 20;
};

struct LatticeResult {
  /// Every stable matching as a man->woman index map; the first entry is the
  /// man-optimal (GS) matching. Order beyond that is DFS order.
  std::vector<std::vector<Index>> matchings;
  /// True iff enumeration stopped at max_matchings.
  bool truncated = false;
  /// Total rotation eliminations performed during the walk.
  std::int64_t eliminations = 0;
};

/// Enumerates all stable matchings of genders (men, women) of `inst`.
LatticeResult enumerate_stable_matchings(const KPartiteInstance& inst,
                                         Gender men, Gender women,
                                         const LatticeOptions& options = {});

/// A selected matching plus its objective value.
struct OptimalPick {
  std::vector<Index> man_match;
  std::int64_t value = 0;
};

/// Minimum egalitarian cost (sum of both sides' partner ranks).
OptimalPick egalitarian_optimal(const KPartiteInstance& inst, Gender men,
                                Gender women, const LatticeResult& lattice);

/// Minimum sex-equality cost |men cost - women cost| (§III.B's fairness
/// objective, solved exactly).
OptimalPick sex_equal_optimal(const KPartiteInstance& inst, Gender men,
                              Gender women, const LatticeResult& lattice);

/// Minimum regret (max partner rank over everyone).
OptimalPick minimum_regret(const KPartiteInstance& inst, Gender men,
                           Gender women, const LatticeResult& lattice);

}  // namespace kstable::rm
