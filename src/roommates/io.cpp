#include "roommates/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "util/check.hpp"

namespace kstable::rm::io {

namespace {

constexpr const char* kMagic = "kstable-roommates";
constexpr const char* kVersion = "v1";

std::optional<std::string> next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r") != std::string::npos) return line;
  }
  return std::nullopt;
}

}  // namespace

void save(const RoommatesInstance& inst, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n' << inst.size() << '\n';
  for (Person p = 0; p < inst.size(); ++p) {
    os << "list " << p << " :";
    for (const Person q : inst.list(p)) os << ' ' << q;
    os << '\n';
  }
}

RoommatesInstance load(std::istream& is) {
  KSTABLE_FAULT_POINT("io/load");
  auto header = next_line(is);
  KSTABLE_PARSE_REQUIRE(header.has_value(), "empty roommates stream");
  {
    std::istringstream hs(*header);
    std::string magic, version;
    hs >> magic >> version;
    KSTABLE_PARSE_REQUIRE(magic == kMagic && version == kVersion,
                    "bad header '" << *header << "'");
  }
  auto dims = next_line(is);
  KSTABLE_PARSE_REQUIRE(dims.has_value(), "missing size line");
  Person n = 0;
  {
    std::istringstream ds(*dims);
    ds >> n;
    KSTABLE_PARSE_REQUIRE(!ds.fail() && n >= 1, "bad size line '" << *dims << "'");
  }
  std::vector<std::vector<Person>> lists(static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  while (auto line = next_line(is)) {
    std::istringstream ls(*line);
    std::string tag, colon;
    Person p = 0;
    ls >> tag >> p >> colon;
    KSTABLE_PARSE_REQUIRE(!ls.fail() && tag == "list" && colon == ":",
                    "bad list line '" << *line << "'");
    KSTABLE_PARSE_REQUIRE(p >= 0 && p < n, "person " << p << " out of range");
    KSTABLE_PARSE_REQUIRE(!seen[static_cast<std::size_t>(p)],
                    "duplicate list for person " << p);
    seen[static_cast<std::size_t>(p)] = true;
    Person q = 0;
    while (ls >> q) lists[static_cast<std::size_t>(p)].push_back(q);
  }
  for (Person p = 0; p < n; ++p) {
    KSTABLE_PARSE_REQUIRE(seen[static_cast<std::size_t>(p)],
                    "missing list for person " << p);
  }
  try {
    return RoommatesInstance(std::move(lists));
  } catch (const ContractViolation& e) {
    // Constructor validation failure (bad entry, self-reference, duplicate):
    // malformed input, not a programming error.
    throw ParseError(std::string("parse error: ") + e.what());
  }
}

void save_file(const RoommatesInstance& inst, const std::string& path) {
  std::ofstream os(path);
  KSTABLE_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  save(inst, os);
  KSTABLE_REQUIRE(os.good(), "write to '" << path << "' failed");
}

RoommatesInstance load_file(const std::string& path) {
  std::ifstream is(path);
  KSTABLE_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  return load(is);
}

std::string to_string(const RoommatesInstance& inst) {
  std::ostringstream os;
  save(inst, os);
  return os.str();
}

RoommatesInstance from_string(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

}  // namespace kstable::rm::io
