// The paper's combined-ranking worked examples for the roommates solver
// (§III.A self-matching remark and the two §III.B instances).
//
// Person numbering follows the paper's tripartite cast:
//   m = 0, m' = 1, w = 2, w' = 3, u = 4, u' = 5.
#pragma once

#include "roommates/instance.hpp"

namespace kstable::rm::examples {

inline constexpr Person kM = 0, kMp = 1, kW = 2, kWp = 3, kU = 4, kUp = 5;

/// §III.B left-hand instance. Has the stable binary matching
/// (m, u'), (m', w), (w', u).
RoommatesInstance sec3b_left();

/// §III.B right-hand instance. Has NO stable binary matching (u's reduced
/// list empties).
RoommatesInstance sec3b_right();

/// §III.A self-matching example: gender U may pair internally, the top-rank
/// cycle is m→w, w→m', m'→w', w'→u, u→m, and u' is ranked last by everyone.
/// No stable matching exists regardless of where u' is matched.
RoommatesInstance self_matching_unstable();

/// The §III.B deadlock SMP (Fig. 2): m→w, w→m', m'→w', w'→m circular first
/// choices, encoded as a bipartite roommates instance (men 0..1 = m, m';
/// women 2..3 = w, w').
RoommatesInstance fig2_deadlock();

}  // namespace kstable::rm::examples
