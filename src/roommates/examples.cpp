#include "roommates/examples.hpp"

namespace kstable::rm::examples {

RoommatesInstance sec3b_left() {
  // m : u' w  w' u        m': u' w  u  w'
  // w : m  m' u' u        w': m' m  u  u'
  // u : m  m' w' w        u': m  w  w' m'
  return RoommatesInstance({
      {kUp, kW, kWp, kU},   // m
      {kUp, kW, kU, kWp},   // m'
      {kM, kMp, kUp, kU},   // w
      {kMp, kM, kU, kUp},   // w'
      {kM, kMp, kWp, kW},   // u
      {kM, kW, kWp, kMp},   // u'
  });
}

RoommatesInstance sec3b_right() {
  // m : w' u' u w         m': w' w  u u'
  // w : m' m  u u'        w': m  m' u u'
  // u : m  m' w w'        u': m  w' w m'
  return RoommatesInstance({
      {kWp, kUp, kU, kW},   // m
      {kWp, kW, kU, kUp},   // m'
      {kMp, kM, kU, kUp},   // w
      {kM, kMp, kU, kUp},   // w'
      {kM, kMp, kW, kWp},   // u
      {kM, kWp, kW, kMp},   // u'
  });
}

RoommatesInstance self_matching_unstable() {
  // Cross-gender lists for M and W; U members may also pair internally.
  // Top-rank cycle: m→w, w→m', m'→w', w'→u, u→m; u' is universally last.
  return RoommatesInstance({
      {kW, kWp, kU, kUp},        // m : w first, u' last
      {kWp, kW, kU, kUp},        // m': w' first
      {kMp, kM, kU, kUp},        // w : m' first
      {kU, kM, kMp, kUp},        // w': u first
      {kM, kMp, kW, kWp, kUp},   // u : m first; may pair with u'
      {kM, kMp, kW, kWp, kU},    // u': arbitrary, everyone ranks u' last
  });
}

RoommatesInstance fig2_deadlock() {
  // Bipartite: men {m=0, m'=1}, women {w=2, w'=3}.
  // m : w  w'    m': w' w     w : m' m     w': m  m'
  return RoommatesInstance({
      {2, 3},  // m  : w > w'
      {3, 2},  // m' : w' > w
      {1, 0},  // w  : m' > m
      {0, 1},  // w' : m > m'
  });
}

}  // namespace kstable::rm::examples
