#include "roommates/adapters.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kstable::rm {

namespace {

/// Combined total order of `m` over all other-gender members, per policy.
std::vector<Person> linearize(const KPartiteInstance& inst, MemberId m,
                              Linearization lin, Rng* rng) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  std::vector<Gender> others;
  for (Gender h = 0; h < k; ++h) {
    if (h != m.gender) others.push_back(h);
  }
  std::vector<Person> combined;
  combined.reserve(static_cast<std::size_t>(k - 1) * static_cast<std::size_t>(n));

  switch (lin) {
    case Linearization::round_robin:
      for (Index r = 0; r < n; ++r) {
        for (const Gender h : others) {
          combined.push_back(
              flat_id({h, inst.pref_list(m, h)[static_cast<std::size_t>(r)]}, n));
        }
      }
      break;
    case Linearization::gender_blocks:
      for (const Gender h : others) {
        for (const Index idx : inst.pref_list(m, h)) {
          combined.push_back(flat_id({h, idx}, n));
        }
      }
      break;
    case Linearization::random_interleave: {
      KSTABLE_REQUIRE(rng != nullptr,
                      "random_interleave linearization needs an Rng");
      std::vector<std::size_t> cursor(others.size(), 0);
      std::size_t remaining_lists = others.size();
      while (remaining_lists > 0) {
        // Draw among genders with entries left, then take its next-best.
        auto pick = rng->below(remaining_lists);
        for (std::size_t oi = 0; oi < others.size(); ++oi) {
          if (cursor[oi] >= static_cast<std::size_t>(n)) continue;
          if (pick-- == 0) {
            const Gender h = others[oi];
            combined.push_back(
                flat_id({h, inst.pref_list(m, h)[cursor[oi]++]}, n));
            if (cursor[oi] == static_cast<std::size_t>(n)) --remaining_lists;
            break;
          }
        }
      }
      break;
    }
  }
  return combined;
}

}  // namespace

RoommatesInstance to_roommates(const KPartiteInstance& inst, Linearization lin,
                               Rng* rng) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  std::vector<std::vector<Person>> lists(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n));
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      const MemberId m{g, i};
      lists[static_cast<std::size_t>(flat_id(m, n))] =
          linearize(inst, m, lin, rng);
    }
  }
  return RoommatesInstance(std::move(lists));
}

KPartiteBinaryResult solve_kpartite_binary(const KPartiteInstance& inst,
                                           Linearization lin, Rng* rng,
                                           resilience::ExecControl* control) {
  KPartiteBinaryResult result;
  result.encoding = {inst.genders(), inst.per_gender()};
  const RoommatesInstance rm_inst = to_roommates(inst, lin, rng);
  SolveOptions solve_options;
  solve_options.control = control;
  result.detail = solve(rm_inst, solve_options);
  result.has_stable = result.detail.has_stable;
  if (result.has_stable) result.partner = result.detail.match;
  return result;
}

FairSmpResult solve_fair_smp(const KPartiteInstance& inst, Gender men,
                             Gender women, FairPolicy policy) {
  KSTABLE_REQUIRE(men != women, "fair SMP needs two distinct genders");
  const Index n = inst.per_gender();
  // Persons: men are 0..n-1, women are n..2n-1 — a bipartite roommates
  // instance with incomplete (cross-side only) lists.
  std::vector<std::vector<Person>> lists(2 * static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    auto& mlist = lists[static_cast<std::size_t>(i)];
    for (const Index w : inst.pref_list({men, i}, women)) mlist.push_back(n + w);
    auto& wlist = lists[static_cast<std::size_t>(n + i)];
    for (const Index m : inst.pref_list({women, i}, men)) wlist.push_back(m);
  }
  const RoommatesInstance rm_inst(std::move(lists));

  // In a bipartite table a rotation's x-side is the side the search starts
  // from, and eliminating it demotes that side to second choices. So a
  // man-oriented outcome eliminates woman-side rotations and vice versa.
  const bool start_women_first = (policy == FairPolicy::man_oriented);
  auto side_has_wide_list = [n](const ReductionTable& table, bool women_side,
                                Person& out) {
    const Person lo = women_side ? n : 0;
    const Person hi = women_side ? 2 * n : n;
    for (Person p = lo; p < hi; ++p) {
      if (table.list_size(p) >= 2) {
        out = p;
        return true;
      }
    }
    return false;
  };

  SolveOptions options;
  bool next_women = start_women_first;
  options.pick_start = [&, policy](const ReductionTable& table) -> Person {
    bool want_women = next_women;
    if (policy == FairPolicy::alternate) next_women = !next_women;
    Person p = -1;
    if (side_has_wide_list(table, want_women, p)) return p;
    if (side_has_wide_list(table, !want_women, p)) return p;
    return -1;  // all singletons; solver terminates
  };

  FairSmpResult result;
  result.detail = solve(rm_inst, options);
  result.has_stable = result.detail.has_stable;
  KSTABLE_ENSURE(result.has_stable,
                 "bipartite instances always admit a stable matching");
  result.man_match.assign(static_cast<std::size_t>(n), -1);
  result.woman_match.assign(static_cast<std::size_t>(n), -1);
  for (Index i = 0; i < n; ++i) {
    const Person partner = result.detail.match[static_cast<std::size_t>(i)];
    KSTABLE_ENSURE(partner >= n, "man " << i << " matched to a man");
    result.man_match[static_cast<std::size_t>(i)] = partner - n;
    result.woman_match[static_cast<std::size_t>(partner - n)] = i;
  }
  return result;
}

}  // namespace kstable::rm
