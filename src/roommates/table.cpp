#include "roommates/table.hpp"

#include "util/check.hpp"

namespace kstable::rm {

ReductionTable::ReductionTable(const RoommatesInstance& instance)
    : inst_(&instance) {
  const Person n = instance.size();
  active_.resize(static_cast<std::size_t>(n));
  first_pos_.assign(static_cast<std::size_t>(n), 0);
  last_pos_.resize(static_cast<std::size_t>(n));
  sizes_.resize(static_cast<std::size_t>(n));
  for (Person p = 0; p < n; ++p) {
    const auto len = instance.list(p).size();
    active_[static_cast<std::size_t>(p)].assign(len, 1);
    last_pos_[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(len) - 1;
    sizes_[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(len);
  }
}

void ReductionTable::check_person(Person p) const {
  KSTABLE_REQUIRE(p >= 0 && p < inst_->size(),
                  "person " << p << " out of range");
}

bool ReductionTable::active(Person p, Person q) const {
  check_person(p);
  const std::int32_t pos = inst_->rank_of(p, q);
  if (pos == kUnacceptable) return false;
  return active_[static_cast<std::size_t>(p)][static_cast<std::size_t>(pos)] != 0;
}

void ReductionTable::delete_pair(Person p, Person q) {
  KSTABLE_ASSERT(active(p, q) && active(q, p));
  const std::int32_t pq = inst_->rank_of(p, q);
  const std::int32_t qp = inst_->rank_of(q, p);
  active_[static_cast<std::size_t>(p)][static_cast<std::size_t>(pq)] = 0;
  active_[static_cast<std::size_t>(q)][static_cast<std::size_t>(qp)] = 0;
  --sizes_[static_cast<std::size_t>(p)];
  --sizes_[static_cast<std::size_t>(q)];
  ++deletions_;
}

std::int32_t ReductionTable::list_size(Person p) const {
  check_person(p);
  return sizes_[static_cast<std::size_t>(p)];
}

Person ReductionTable::first(Person p) const {
  check_person(p);
  const auto& flags = active_[static_cast<std::size_t>(p)];
  auto& cursor = first_pos_[static_cast<std::size_t>(p)];
  while (cursor < static_cast<std::int32_t>(flags.size()) &&
         flags[static_cast<std::size_t>(cursor)] == 0) {
    ++cursor;
  }
  if (cursor >= static_cast<std::int32_t>(flags.size())) return -1;
  return inst_->list(p)[static_cast<std::size_t>(cursor)];
}

Person ReductionTable::second(Person p) const {
  check_person(p);
  if (first(p) < 0) return -1;  // also settles the first cursor
  const auto& flags = active_[static_cast<std::size_t>(p)];
  for (std::int32_t pos = first_pos_[static_cast<std::size_t>(p)] + 1;
       pos < static_cast<std::int32_t>(flags.size()); ++pos) {
    if (flags[static_cast<std::size_t>(pos)] != 0) {
      return inst_->list(p)[static_cast<std::size_t>(pos)];
    }
  }
  return -1;
}

Person ReductionTable::last(Person p) const {
  check_person(p);
  const auto& flags = active_[static_cast<std::size_t>(p)];
  auto& cursor = last_pos_[static_cast<std::size_t>(p)];
  while (cursor >= 0 && flags[static_cast<std::size_t>(cursor)] == 0) --cursor;
  if (cursor < 0) return -1;
  return inst_->list(p)[static_cast<std::size_t>(cursor)];
}

void ReductionTable::truncate_after(Person p, Person q) {
  KSTABLE_REQUIRE(active(p, q), "truncate_after: " << q << " not active on "
                                                   << p << "'s list");
  truncate_worse_than(p, inst_->rank_of(p, q));
}

void ReductionTable::truncate_worse_than(Person p, std::int32_t rank) {
  check_person(p);
  const auto& flags = active_[static_cast<std::size_t>(p)];
  const auto& list = inst_->list(p);
  for (std::int32_t pos = static_cast<std::int32_t>(flags.size()) - 1;
       pos > rank; --pos) {
    if (flags[static_cast<std::size_t>(pos)] != 0) {
      delete_pair(p, list[static_cast<std::size_t>(pos)]);
    }
  }
}

std::vector<Person> ReductionTable::active_list(Person p) const {
  check_person(p);
  std::vector<Person> out;
  const auto& flags = active_[static_cast<std::size_t>(p)];
  const auto& list = inst_->list(p);
  for (std::size_t pos = 0; pos < flags.size(); ++pos) {
    if (flags[pos] != 0) out.push_back(list[pos]);
  }
  return out;
}

bool ReductionTable::check_phase1_invariant() const {
  for (Person p = 0; p < inst_->size(); ++p) {
    const Person q = first(p);
    if (q < 0) continue;
    if (last(q) != p) return false;
  }
  return true;
}

}  // namespace kstable::rm
