#include "roommates/lattice.hpp"

#include <algorithm>
#include <set>

#include "roommates/table.hpp"
#include "util/check.hpp"

namespace kstable::rm {

namespace {

/// Bipartite roommates instance: men are persons [0, n), women [n, 2n).
RoommatesInstance bipartite_instance(const KPartiteInstance& inst, Gender men,
                                     Gender women) {
  const Index n = inst.per_gender();
  std::vector<std::vector<Person>> lists(2 * static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    for (const Index w : inst.pref_list({men, i}, women)) {
      lists[static_cast<std::size_t>(i)].push_back(n + w);
    }
    for (const Index m : inst.pref_list({women, i}, men)) {
      lists[static_cast<std::size_t>(n + i)].push_back(m);
    }
  }
  return RoommatesInstance(std::move(lists));
}

/// Men's current matching read off the table (first choices).
std::vector<Index> current_matching(const ReductionTable& table, Index n) {
  std::vector<Index> man_match(static_cast<std::size_t>(n));
  for (Index m = 0; m < n; ++m) {
    const Person w = table.first(m);
    KSTABLE_ASSERT(w >= n);
    man_match[static_cast<std::size_t>(m)] = w - n;
  }
  return man_match;
}

/// All man-side rotations exposed in `table`, canonicalized by rotating each
/// cycle to start at its smallest man.
std::vector<std::vector<Person>> exposed_rotations(const ReductionTable& table,
                                                   Index n) {
  std::vector<std::vector<Person>> rotations;
  std::set<Person> covered;  // men already known to sit on some found cycle
  for (Person start = 0; start < n; ++start) {
    if (table.list_size(start) < 2 || covered.count(start) != 0) continue;
    // Chain m -> last(second(m)) until a repeat; extract the cycle.
    std::vector<Person> chain;
    std::set<Person> on_chain;
    Person m = start;
    while (on_chain.insert(m).second) {
      chain.push_back(m);
      const Person via = table.second(m);
      KSTABLE_ASSERT(via >= 0);
      m = table.last(via);
      KSTABLE_ASSERT(m >= 0 && m < n);
    }
    const auto begin = std::find(chain.begin(), chain.end(), m);
    std::vector<Person> cycle(begin, chain.end());
    // Canonical start: smallest man.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    for (const Person x : cycle) covered.insert(x);
    if (std::find(rotations.begin(), rotations.end(), cycle) ==
        rotations.end()) {
      rotations.push_back(std::move(cycle));
    }
  }
  return rotations;
}

/// Eliminates the man-side rotation `cycle` in `table` (rank-based, matching
/// the solver's phase-2 semantics).
void eliminate(ReductionTable& table, const std::vector<Person>& cycle) {
  const RoommatesInstance& inst = table.instance();
  std::vector<Person> seconds(cycle.size());
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    seconds[i] = table.second(cycle[i]);
    KSTABLE_ASSERT(seconds[i] >= 0);
  }
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    table.truncate_worse_than(seconds[i], inst.rank_of(seconds[i], cycle[i]));
  }
}

struct DfsState {
  Index n;
  LatticeOptions options;
  LatticeResult* result;
  std::set<std::vector<Index>> visited;
};

void dfs(DfsState& state, const ReductionTable& table) {
  const auto matching = current_matching(table, state.n);
  if (!state.visited.insert(matching).second) return;  // lattice memoization
  if (state.options.max_matchings > 0 &&
      static_cast<std::int64_t>(state.result->matchings.size()) >=
          state.options.max_matchings) {
    state.result->truncated = true;
    return;
  }
  state.result->matchings.push_back(matching);
  for (const auto& rotation : exposed_rotations(table, state.n)) {
    ReductionTable next = table;  // value copy of the reduction state
    eliminate(next, rotation);
    ++state.result->eliminations;
    dfs(state, next);
    if (state.result->truncated) return;
  }
}

/// Rank-cost summary of one man->woman matching (local duplicate of the
/// analysis module's BipartiteCosts to keep the library layering acyclic:
/// analysis links roommates, not vice versa).
struct Costs {
  std::int64_t men = 0;
  std::int64_t women = 0;
  std::int32_t regret = 0;
};

Costs matching_costs(const KPartiteInstance& inst, Gender men, Gender women,
                     const std::vector<Index>& man_match) {
  Costs costs;
  for (Index m = 0; m < inst.per_gender(); ++m) {
    const Index w = man_match[static_cast<std::size_t>(m)];
    const std::int32_t rm_rank = inst.rank_of({men, m}, {women, w});
    const std::int32_t rw_rank = inst.rank_of({women, w}, {men, m});
    costs.men += rm_rank;
    costs.women += rw_rank;
    costs.regret = std::max({costs.regret, rm_rank, rw_rank});
  }
  return costs;
}

OptimalPick pick_best(const KPartiteInstance& inst, Gender men, Gender women,
                      const LatticeResult& lattice,
                      std::int64_t (*objective)(const Costs&)) {
  KSTABLE_REQUIRE(!lattice.matchings.empty(), "empty lattice result");
  OptimalPick best;
  bool first = true;
  for (const auto& man_match : lattice.matchings) {
    const std::int64_t value =
        objective(matching_costs(inst, men, women, man_match));
    if (first || value < best.value) {
      best.man_match = man_match;
      best.value = value;
      first = false;
    }
  }
  return best;
}

}  // namespace

LatticeResult enumerate_stable_matchings(const KPartiteInstance& inst,
                                         Gender men, Gender women,
                                         const LatticeOptions& options) {
  KSTABLE_REQUIRE(men != women, "lattice needs two distinct genders");
  const RoommatesInstance rm_inst = bipartite_instance(inst, men, women);
  ReductionTable table(rm_inst);
  std::int64_t proposals = 0;
  Person failed = -1;
  const bool ok = run_phase1(table, proposals, failed);
  KSTABLE_ENSURE(ok, "bipartite phase 1 cannot fail");

  LatticeResult result;
  DfsState state{inst.per_gender(), options, &result, {}};
  dfs(state, table);
  // The first DFS node is the untouched phase-1 table = man-optimal matching.
  return result;
}

OptimalPick egalitarian_optimal(const KPartiteInstance& inst, Gender men,
                                Gender women, const LatticeResult& lattice) {
  return pick_best(inst, men, women, lattice,
                   [](const Costs& c) { return c.men + c.women; });
}

OptimalPick sex_equal_optimal(const KPartiteInstance& inst, Gender men,
                              Gender women, const LatticeResult& lattice) {
  return pick_best(inst, men, women, lattice, [](const Costs& c) {
    const std::int64_t d = c.men - c.women;
    return d < 0 ? -d : d;
  });
}

OptimalPick minimum_regret(const KPartiteInstance& inst, Gender men,
                           Gender women, const LatticeResult& lattice) {
  return pick_best(inst, men, women, lattice, [](const Costs& c) {
    return static_cast<std::int64_t>(c.regret);
  });
}

}  // namespace kstable::rm
