#include "roommates/instance.hpp"

#include "util/check.hpp"

namespace kstable::rm {

RoommatesInstance::RoommatesInstance(std::vector<std::vector<Person>> lists)
    : lists_(std::move(lists)) {
  const auto n = static_cast<Person>(lists_.size());
  KSTABLE_REQUIRE(n >= 1, "empty roommates instance");
  rank_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
               kUnacceptable);
  for (Person p = 0; p < n; ++p) {
    const auto& list = lists_[static_cast<std::size_t>(p)];
    for (std::size_t pos = 0; pos < list.size(); ++pos) {
      const Person q = list[pos];
      KSTABLE_REQUIRE(q >= 0 && q < n,
                      "person " << p << " lists out-of-range id " << q);
      KSTABLE_REQUIRE(q != p, "person " << p << " lists itself");
      KSTABLE_REQUIRE(rank_[rank_index(p, q)] == kUnacceptable,
                      "person " << p << " lists " << q << " twice");
      rank_[rank_index(p, q)] = static_cast<std::int32_t>(pos);
      ++entries_;
    }
  }
  // Symmetry: acceptability must be mutual.
  for (Person p = 0; p < n; ++p) {
    for (const Person q : lists_[static_cast<std::size_t>(p)]) {
      KSTABLE_REQUIRE(rank_[rank_index(q, p)] != kUnacceptable,
                      "asymmetric acceptability: " << p << " lists " << q
                          << " but not vice versa");
    }
  }
}

const std::vector<Person>& RoommatesInstance::list(Person p) const {
  KSTABLE_REQUIRE(p >= 0 && p < size(), "person " << p << " out of range");
  return lists_[static_cast<std::size_t>(p)];
}

std::int32_t RoommatesInstance::rank_of(Person p, Person q) const {
  KSTABLE_REQUIRE(p >= 0 && p < size() && q >= 0 && q < size(),
                  "rank_of(" << p << ',' << q << ") out of range");
  return rank_[rank_index(p, q)];
}

bool RoommatesInstance::prefers(Person p, Person a, Person b) const {
  const std::int32_t ra = rank_of(p, a);
  const std::int32_t rb = rank_of(p, b);
  KSTABLE_REQUIRE(ra != kUnacceptable && rb != kUnacceptable,
                  "prefers(" << p << "): " << a << " or " << b
                             << " unacceptable");
  return ra < rb;
}

}  // namespace kstable::rm
