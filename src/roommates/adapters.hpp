// Front-ends that reduce the paper's binary-matching problems to the stable
// roommates solver.
//
// §III.A/B: stable *binary* matching in a complete balanced k-partite graph is
// a stable-roommates instance with incomplete lists — every member ranks all
// members of the other genders (one combined total order) and excludes its
// own gender. For members whose preferences are stored per-gender
// (KPartiteInstance), the combined order is produced by a linearization
// policy (the paper's footnote 4: the per-gender total orders form a partial
// order that "can be converted into a global total order in various ways").
//
// §III.B end: the same solver applied to a bipartite instance solves the SMP
// with *procedural fairness*: phase 1 has both sides propose simultaneously,
// and phase 2's rotation eliminations can alternate between man-oriented and
// woman-oriented loop breaking.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "prefs/kpartite.hpp"
#include "roommates/solver.hpp"
#include "util/rng.hpp"

namespace kstable::rm {

/// How to merge a member's k-1 per-gender preference lists into one combined
/// total order.
enum class Linearization {
  round_robin,      ///< rank 0 of each gender (in gender order), then rank 1, ...
  gender_blocks,    ///< whole list of the lowest gender id first, then next, ...
  random_interleave ///< random merge preserving each per-gender order
};

/// Maps a flat person id in the roommates instance back to a k-partite
/// member and vice versa (person = gender * n + index).
struct KPartiteBinaryEncoding {
  Gender k = 0;
  Index n = 0;
  [[nodiscard]] Person person(MemberId m) const { return flat_id(m, n); }
  [[nodiscard]] MemberId member(Person p) const { return member_of(p, n); }
};

/// Builds the incomplete-list roommates instance for binary matching in
/// `inst` under the given linearization. `rng` is used only by
/// Linearization::random_interleave (may be null otherwise).
RoommatesInstance to_roommates(const KPartiteInstance& inst,
                               Linearization lin, Rng* rng = nullptr);

/// Result of a k-partite binary matching attempt.
struct KPartiteBinaryResult {
  bool has_stable = false;
  /// partner[flat_id(m)] = flat id of m's partner (cross-gender).
  std::vector<Person> partner;
  RoommatesResult detail;
  KPartiteBinaryEncoding encoding;
};

/// Detects/finds a stable binary matching of `inst` (paper §III.B process).
/// `control` (optional) is forwarded to the roommates solver.
KPartiteBinaryResult solve_kpartite_binary(const KPartiteInstance& inst,
                                           Linearization lin,
                                           Rng* rng = nullptr,
                                           resilience::ExecControl* control =
                                               nullptr);

/// --- Fair SMP (§III.B end) -------------------------------------------------

/// Rotation-elimination fairness policy for bipartite instances.
enum class FairPolicy {
  man_oriented,    ///< always break loops so men keep their first choices
  woman_oriented,  ///< always break loops so women keep their first choices
  alternate        ///< alternate sides each rotation (procedural fairness)
};

struct FairSmpResult {
  bool has_stable = false;  ///< always true for bipartite instances
  /// man_match[i] = woman index matched to man i; woman_match likewise.
  std::vector<Index> man_match;
  std::vector<Index> woman_match;
  RoommatesResult detail;
};

/// Solves the SMP on genders (men, women) of `inst` via the roommates
/// algorithm with policy-driven rotation elimination. With
/// FairPolicy::man_oriented the outcome equals men-proposing GS; with
/// woman_oriented, women-proposing GS; alternate lands in between.
FairSmpResult solve_fair_smp(const KPartiteInstance& inst, Gender men,
                             Gender women, FairPolicy policy);

}  // namespace kstable::rm
