// RoommatesInstance: a single-set matching instance with (possibly
// incomplete) strict preference lists — the input model of Irving's stable
// roommates algorithm.
//
// The paper (§III.B) reduces stable *binary* matching in k-partite graphs to
// exactly this: a roommates instance with incomplete lists (members of the
// same gender are mutually unacceptable), solved by the two-phase Irving
// algorithm. It also reuses the solver on bipartite instances to obtain
// procedurally fair stable marriages (alternating rotation elimination).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace kstable::rm {

/// Person identifier in [0, size()).
using Person = std::int32_t;

/// Rank value meaning "unacceptable".
inline constexpr std::int32_t kUnacceptable =
    std::numeric_limits<std::int32_t>::max();

/// Immutable roommates instance. Lists must be *symmetric* (q on p's list iff
/// p on q's list); validate() enforces this, since an asymmetric pair can
/// never match and the paper's bidirectional-removal rule presumes symmetry.
class RoommatesInstance {
 public:
  /// Builds from per-person preference lists (best first). Throws
  /// ContractViolation on self-reference, duplicates, out-of-range ids, or
  /// asymmetric acceptability.
  explicit RoommatesInstance(std::vector<std::vector<Person>> lists);

  [[nodiscard]] Person size() const noexcept {
    return static_cast<Person>(lists_.size());
  }

  /// Preference list of `p` (best first).
  [[nodiscard]] const std::vector<Person>& list(Person p) const;

  /// Rank (= position) of `q` on p's list; kUnacceptable if absent.
  [[nodiscard]] std::int32_t rank_of(Person p, Person q) const;

  [[nodiscard]] bool acceptable(Person p, Person q) const {
    return rank_of(p, q) != kUnacceptable;
  }

  /// True iff p strictly prefers a over b (both must be acceptable to p).
  [[nodiscard]] bool prefers(Person p, Person a, Person b) const;

  /// Total number of (directed) list entries.
  [[nodiscard]] std::int64_t entry_count() const noexcept { return entries_; }

 private:
  std::vector<std::vector<Person>> lists_;
  std::vector<std::int32_t> rank_;  // size() x size(), row-major
  std::int64_t entries_ = 0;

  [[nodiscard]] std::size_t rank_index(Person p, Person q) const noexcept {
    return static_cast<std::size_t>(p) * static_cast<std::size_t>(lists_.size()) +
           static_cast<std::size_t>(q);
  }
};

}  // namespace kstable::rm
