// Text serialization for RoommatesInstance.
//
// Format (line oriented, '#' comments allowed):
//   kstable-roommates v1
//   <n>
//   list <p> : <q_0> <q_1> ...     (one line per person; may be empty lists)
// All n persons must appear; lists must be symmetric (validated on load).
#pragma once

#include <iosfwd>
#include <string>

#include "roommates/instance.hpp"

namespace kstable::rm::io {

void save(const RoommatesInstance& inst, std::ostream& os);
RoommatesInstance load(std::istream& is);

void save_file(const RoommatesInstance& inst, const std::string& path);
RoommatesInstance load_file(const std::string& path);

std::string to_string(const RoommatesInstance& inst);
RoommatesInstance from_string(const std::string& text);

}  // namespace kstable::rm::io
