// Irving's stable-roommates algorithm (paper §III.B; Irving 1985).
//
// Phase 1: a proposal sequence in which every person proposes down their list
// and each recipient holds the best proposal seen so far, followed by the
// pruning step (hold from x ⇒ delete everyone ranked below x,
// bidirectionally). Phase 2: repeatedly locate a rotation — a cycle of
// alternating first/second preferences in the reduced lists (the paper's
// "loop") — and eliminate it. The instance has a (perfect) stable matching
// iff no list empties; the matching is then read off the singleton lists.
//
// Incomplete preference lists are supported directly, which is what the
// k-partite binary matching front-end (adapters.hpp) relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "observability/telemetry.hpp"
#include "resilience/control.hpp"
#include "roommates/table.hpp"

namespace kstable::rm {

/// One rotation (x_i, y_i): y_i = first(x_i), y_{i+1} = second(x_i).
struct Rotation {
  std::vector<Person> x;
  std::vector<Person> y;
};

struct SolveOptions {
  /// If set, called before each rotation search; must return a person whose
  /// reduced list has >= 2 entries (the search starts there, which fixes the
  /// "side" of the rotation found — the fairness lever of §III.B), or -1 to
  /// let the solver choose. Disables the retained-stack optimization.
  std::function<Person(const ReductionTable&)> pick_start;

  /// Record every eliminated rotation in RoommatesResult::rotation_log.
  bool record_rotations = false;

  /// Optional deadline/budget/cancellation control: charged per phase-1
  /// proposal and per rotation step, checked before every rotation
  /// elimination. Throws ExecutionAborted on expiry. Null = run to the end.
  resilience::ExecControl* control = nullptr;
};

struct RoommatesResult {
  /// True iff a perfect stable matching exists (no reduced list emptied).
  bool has_stable = false;
  /// match[p] = partner of p (involution); only meaningful if has_stable.
  std::vector<Person> match;
  /// Person whose reduced list emptied (diagnostic), -1 if has_stable.
  Person failed_person = -1;

  std::int64_t phase1_proposals = 0;  ///< proposals made in phase 1
  std::int64_t rotations_eliminated = 0;
  std::int64_t pair_deletions = 0;    ///< total bidirectional deletions
  std::vector<Rotation> rotation_log; ///< filled if options.record_rotations
  /// Structured completion record: ok or no_stable (aborts throw instead).
  resilience::SolveStatus status;
  /// Per-solve record (engine "roommates", phases phase1/phase2, proposal
  /// and rotation counters) for the observability exporters.
  obs::SolveTelemetry telemetry;
};

/// Runs both phases and extracts the matching (or reports non-existence).
RoommatesResult solve(const RoommatesInstance& instance,
                      const SolveOptions& options = {});

/// Runs phase 1 only on an externally owned table; returns false iff some
/// list emptied (no stable matching). Exposed for tests and the E10
/// phase-cost experiment. `control` (optional) is charged per proposal.
bool run_phase1(ReductionTable& table, std::int64_t& proposals,
                Person& failed_person,
                resilience::ExecControl* control = nullptr);

/// True iff `match` is a perfect stable matching of `instance`: an involution
/// without fixed points, every pair mutually acceptable, and no blocking pair
/// (two people preferring each other to their assigned partners).
bool is_stable_matching(const RoommatesInstance& instance,
                        const std::vector<Person>& match);

}  // namespace kstable::rm
