#include "roommates/solver.hpp"

#include <algorithm>

#include "resilience/fault_injection.hpp"
#include "util/check.hpp"
#include "observability/metrics.hpp"
#include "util/timer.hpp"

namespace kstable::rm {

namespace {

/// Phase 2 driver. Returns false iff a list empties (no stable matching).
bool run_phase2(ReductionTable& table, const SolveOptions& options,
                RoommatesResult& result) {
  const Person n = table.instance().size();

  // Retained chain stack: after eliminating a rotation, the chain's tail is
  // still a valid prefix for the next search (Gusfield & Irving's
  // amortization). A custom pick_start disables it, since the caller decides
  // where each search begins.
  std::vector<Person> chain;
  std::vector<char> on_chain(static_cast<std::size_t>(n), 0);
  Person scan = 0;  // rising scan pointer for default start selection

  auto reset_chain = [&] {
    for (const Person p : chain) on_chain[static_cast<std::size_t>(p)] = 0;
    chain.clear();
  };

  for (;;) {
    // Drop chain entries that no longer have >= 2 active entries.
    while (!chain.empty() && table.list_size(chain.back()) < 2) {
      on_chain[static_cast<std::size_t>(chain.back())] = 0;
      chain.pop_back();
    }

    if (chain.empty()) {
      Person start = -1;
      if (options.pick_start) {
        start = options.pick_start(table);
        KSTABLE_REQUIRE(start == -1 || (start >= 0 && start < n &&
                                        table.list_size(start) >= 2),
                        "pick_start returned invalid person " << start);
      }
      if (start == -1) {
        while (scan < n && table.list_size(scan) < 2) ++scan;
        if (scan == n) {
          // Re-scan once in case eliminations re-widened nothing but the scan
          // pointer already passed persons that later shrank — sizes only
          // shrink, so a completed scan is final.
          break;  // all lists are singletons (or empty — caught by caller)
        }
        start = scan;
      }
      chain.push_back(start);
      on_chain[static_cast<std::size_t>(start)] = 1;
    }

    // Extend the chain x -> last(second(x)) until a person repeats.
    Person repeat = -1;
    for (;;) {
      if (options.control != nullptr) options.control->charge();
      const Person tail = chain.back();
      const Person via = table.second(tail);
      KSTABLE_ASSERT(via >= 0);
      const Person next = table.last(via);
      KSTABLE_ASSERT(next >= 0);
      if (on_chain[static_cast<std::size_t>(next)] != 0) {
        repeat = next;
        break;
      }
      KSTABLE_ASSERT(table.list_size(next) >= 2);
      chain.push_back(next);
      on_chain[static_cast<std::size_t>(next)] = 1;
    }

    // The cycle runs from the first occurrence of `repeat` to the chain tail.
    KSTABLE_FAULT_POINT("rm/rotation");
    if (options.control != nullptr) options.control->check_now();
    const auto cycle_begin = static_cast<std::size_t>(
        std::find(chain.begin(), chain.end(), repeat) - chain.begin());
    Rotation rotation;
    for (std::size_t pos = cycle_begin; pos < chain.size(); ++pos) {
      rotation.x.push_back(chain[pos]);
      rotation.y.push_back(table.first(chain[pos]));
    }

    // Capture each x_i's second choice before mutating the table, then
    // eliminate: y_{i+1} (= second(x_i)) accepts x_i and deletes everyone it
    // ranks below x_i. This also removes every pair (x_i, first(x_i)).
    // Truncation is by original rank: eliminations cascade, and an earlier
    // truncation may already have deleted the pair (second(x_j), x_j) itself
    // (which is exactly how unsolvable instances empty a list).
    std::vector<Person> seconds(rotation.x.size());
    for (std::size_t i = 0; i < rotation.x.size(); ++i) {
      seconds[i] = table.second(rotation.x[i]);
      KSTABLE_ASSERT(seconds[i] >= 0);
    }
    for (std::size_t i = 0; i < rotation.x.size(); ++i) {
      table.truncate_worse_than(
          seconds[i],
          table.instance().rank_of(seconds[i], rotation.x[i]));
    }
    ++result.rotations_eliminated;
    if (options.record_rotations) result.rotation_log.push_back(rotation);

    // Remove the cycle from the chain (tail prefix is retained).
    while (chain.size() > cycle_begin) {
      on_chain[static_cast<std::size_t>(chain.back())] = 0;
      chain.pop_back();
    }
    if (options.pick_start) reset_chain();

    for (Person p = 0; p < n; ++p) {
      if (table.empty(p)) {
        result.failed_person = p;
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool run_phase1(ReductionTable& table, std::int64_t& proposals,
                Person& failed_person, resilience::ExecControl* control) {
  const RoommatesInstance& inst = table.instance();
  const Person n = inst.size();

  // holder[q] = proposer whose proposal q currently holds (-1: none).
  std::vector<Person> holder(static_cast<std::size_t>(n), -1);

  for (Person seed = 0; seed < n; ++seed) {
    Person x = seed;
    // `x` keeps proposing until some y holds x (possibly displacing a prior
    // holder, who then takes over the proposer role).
    for (;;) {
      if (table.empty(x)) {
        failed_person = x;
        return false;
      }
      const Person y = table.first(x);
      ++proposals;
      if (control != nullptr) control->charge();
      const Person z = holder[static_cast<std::size_t>(y)];
      if (z == -1) {
        holder[static_cast<std::size_t>(y)] = x;
        break;
      }
      if (z == x) break;  // already holding (x re-proposed after reduction)
      if (inst.prefers(y, x, z)) {
        holder[static_cast<std::size_t>(y)] = x;   // y trades up
        table.delete_pair(y, z);                   // y rejects z...
        x = z;                                     // ...who proposes onward
      } else {
        table.delete_pair(y, x);                   // y rejects x outright
      }
    }
  }

  // Pruning: y holding a proposal from x will never need anyone below x.
  for (Person y = 0; y < n; ++y) {
    const Person x = holder[static_cast<std::size_t>(y)];
    if (x >= 0) table.truncate_after(y, x);
  }
  for (Person p = 0; p < n; ++p) {
    if (table.empty(p)) {
      failed_person = p;
      return false;
    }
  }
  KSTABLE_ENSURE(table.check_phase1_invariant(),
                 "phase 1 postcondition violated: first/last symmetry");
  return true;
}

namespace {

/// Fills the structured completion record and telemetry from the classic
/// result fields. `phase1_ms` is the wall time at the phase-1/phase-2
/// boundary (the rest of the solve is phase 2 + extraction).
void finish_status(RoommatesResult& result, const WallTimer& timer,
                   const RoommatesInstance& instance, double phase1_ms,
                   const SolveOptions& options) {
  result.status.outcome = result.has_stable
                              ? resilience::SolveOutcome::ok
                              : resilience::SolveOutcome::no_stable;
  result.status.proposals = result.phase1_proposals;
  result.status.wall_ms = timer.millis();

  obs::SolveTelemetry& t = result.telemetry;
  t.engine = "roommates";
  t.genders = 0;  // not a k-partite solve; size is the person count
  t.size = instance.size();
  t.wall_ms = result.status.wall_ms;
  t.add_phase("phase1", phase1_ms);
  t.add_phase("phase2", result.status.wall_ms - phase1_ms);
  t.status = result.status;
  t.proposals = result.phase1_proposals;
  t.executed_proposals = result.phase1_proposals;
  t.rounds = result.rotations_eliminated;
  t.attempts = 1;
  if (options.control != nullptr &&
      options.control->budget().wall_ms > 0.0) {
    const double margin =
        options.control->budget().wall_ms - options.control->elapsed_ms();
    t.deadline_margin_ms = margin > 0.0 ? margin : 0.0;
  }
  obs::record(t);
  KSTABLE_COUNTER_ADD("roommates.rotations", result.rotations_eliminated);
  KSTABLE_COUNTER_ADD("roommates.pair_deletions", result.pair_deletions);
}

}  // namespace

RoommatesResult solve(const RoommatesInstance& instance,
                      const SolveOptions& options) {
  RoommatesResult result;
  ReductionTable table(instance);
  WallTimer timer;

  if (!run_phase1(table, result.phase1_proposals, result.failed_person,
                  options.control)) {
    result.pair_deletions = table.deletions();
    finish_status(result, timer, instance, timer.millis(), options);
    return result;
  }
  const double phase1_ms = timer.millis();
  if (!run_phase2(table, options, result)) {
    result.pair_deletions = table.deletions();
    finish_status(result, timer, instance, phase1_ms, options);
    return result;
  }

  // All lists are singletons; read the matching off and cross-check.
  const Person n = instance.size();
  result.match.assign(static_cast<std::size_t>(n), -1);
  for (Person p = 0; p < n; ++p) {
    KSTABLE_ENSURE(table.list_size(p) == 1,
                   "person " << p << " ended with " << table.list_size(p)
                             << " entries");
    result.match[static_cast<std::size_t>(p)] = table.first(p);
  }
  for (Person p = 0; p < n; ++p) {
    const Person q = result.match[static_cast<std::size_t>(p)];
    KSTABLE_ENSURE(q >= 0 && result.match[static_cast<std::size_t>(q)] == p,
                   "matching is not an involution at person " << p);
  }
  result.has_stable = true;
  result.pair_deletions = table.deletions();
  KSTABLE_ENSURE(is_stable_matching(instance, result.match),
                 "solver produced an unstable matching");
  finish_status(result, timer, instance, phase1_ms, options);
  return result;
}

bool is_stable_matching(const RoommatesInstance& instance,
                        const std::vector<Person>& match) {
  const Person n = instance.size();
  if (match.size() != static_cast<std::size_t>(n)) return false;
  for (Person p = 0; p < n; ++p) {
    const Person q = match[static_cast<std::size_t>(p)];
    if (q < 0 || q >= n || q == p) return false;
    if (match[static_cast<std::size_t>(q)] != p) return false;
    if (!instance.acceptable(p, q)) return false;
  }
  // Blocking pair: p and q mutually acceptable, each strictly preferring the
  // other over their assigned partner.
  for (Person p = 0; p < n; ++p) {
    const Person pp = match[static_cast<std::size_t>(p)];
    const std::int32_t p_cur = instance.rank_of(p, pp);
    for (const Person q : instance.list(p)) {
      if (instance.rank_of(p, q) >= p_cur) continue;  // p doesn't gain
      const Person qq = match[static_cast<std::size_t>(q)];
      if (instance.rank_of(q, p) < instance.rank_of(q, qq)) return false;
    }
  }
  return true;
}

}  // namespace kstable::rm
