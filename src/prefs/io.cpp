#include "prefs/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace kstable::io {

namespace {

constexpr const char* kMagic = "kstable-kpartite";
constexpr const char* kVersion = "v1";

/// Strips comments and returns the next non-blank line, or nullopt at EOF.
std::optional<std::string> next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r") != std::string::npos) return line;
  }
  return std::nullopt;
}

}  // namespace

void save(const KPartiteInstance& inst, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << inst.genders() << ' ' << inst.per_gender() << '\n';
  for (Gender g = 0; g < inst.genders(); ++g) {
    for (Index i = 0; i < inst.per_gender(); ++i) {
      for (Gender h = 0; h < inst.genders(); ++h) {
        if (h == g) continue;
        os << "pref " << g << ' ' << i << ' ' << h << " :";
        for (Index idx : inst.pref_list({g, i}, h)) os << ' ' << idx;
        os << '\n';
      }
    }
  }
}

KPartiteInstance load(std::istream& is) {
  auto header = next_line(is);
  KSTABLE_REQUIRE(header.has_value(), "empty instance stream");
  {
    std::istringstream hs(*header);
    std::string magic, version;
    hs >> magic >> version;
    KSTABLE_REQUIRE(magic == kMagic && version == kVersion,
                    "bad header '" << *header << "'");
  }
  auto dims = next_line(is);
  KSTABLE_REQUIRE(dims.has_value(), "missing dimensions line");
  Gender k = 0;
  Index n = 0;
  {
    std::istringstream ds(*dims);
    ds >> k >> n;
    KSTABLE_REQUIRE(!ds.fail(), "bad dimensions line '" << *dims << "'");
  }
  KPartiteInstance inst(k, n);
  const std::size_t expected_lists = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(n) *
                                     static_cast<std::size_t>(k - 1);
  std::size_t seen = 0;
  while (auto line = next_line(is)) {
    std::istringstream ls(*line);
    std::string tag, colon;
    Gender g = 0, h = 0;
    Index i = 0;
    ls >> tag >> g >> i >> h >> colon;
    KSTABLE_REQUIRE(!ls.fail() && tag == "pref" && colon == ":",
                    "bad pref line '" << *line << "'");
    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(n));
    Index idx = 0;
    while (ls >> idx) order.push_back(idx);
    inst.set_pref_list({g, i}, h, order);
    ++seen;
  }
  KSTABLE_REQUIRE(seen == expected_lists, "instance has " << seen
                      << " pref lines, expected " << expected_lists);
  inst.validate();
  return inst;
}

void save_file(const KPartiteInstance& inst, const std::string& path) {
  std::ofstream os(path);
  KSTABLE_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  save(inst, os);
  KSTABLE_REQUIRE(os.good(), "write to '" << path << "' failed");
}

KPartiteInstance load_file(const std::string& path) {
  std::ifstream is(path);
  KSTABLE_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  return load(is);
}

std::string to_string(const KPartiteInstance& inst) {
  std::ostringstream os;
  save(inst, os);
  return os.str();
}

KPartiteInstance from_string(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

}  // namespace kstable::io
