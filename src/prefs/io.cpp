#include "prefs/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "util/check.hpp"

namespace kstable::io {

namespace {

constexpr const char* kMagic = "kstable-kpartite";
constexpr const char* kVersion = "v1";

/// Strips comments and returns the next non-blank line, or nullopt at EOF.
std::optional<std::string> next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r") != std::string::npos) return line;
  }
  return std::nullopt;
}

}  // namespace

void save(const KPartiteInstance& inst, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << inst.genders() << ' ' << inst.per_gender() << '\n';
  for (Gender g = 0; g < inst.genders(); ++g) {
    for (Index i = 0; i < inst.per_gender(); ++i) {
      for (Gender h = 0; h < inst.genders(); ++h) {
        if (h == g) continue;
        os << "pref " << g << ' ' << i << ' ' << h << " :";
        for (Index idx : inst.pref_list({g, i}, h)) os << ' ' << idx;
        os << '\n';
      }
    }
  }
}

KPartiteInstance load(std::istream& is) {
  KSTABLE_FAULT_POINT("io/load");
  auto header = next_line(is);
  KSTABLE_PARSE_REQUIRE(header.has_value(), "empty instance stream");
  {
    std::istringstream hs(*header);
    std::string magic, version;
    hs >> magic >> version;
    KSTABLE_PARSE_REQUIRE(magic == kMagic && version == kVersion,
                          "bad header '" << *header << "'");
  }
  auto dims = next_line(is);
  KSTABLE_PARSE_REQUIRE(dims.has_value(), "missing dimensions line");
  Gender k = 0;
  Index n = 0;
  {
    std::istringstream ds(*dims);
    ds >> k >> n;
    KSTABLE_PARSE_REQUIRE(!ds.fail(), "bad dimensions line '" << *dims << "'");
    KSTABLE_PARSE_REQUIRE(k >= 2 && n >= 1,
                          "dimensions out of range: k=" << k << " n=" << n);
  }
  KPartiteInstance inst = [&] {
    try {
      return KPartiteInstance(k, n);
    } catch (const std::bad_alloc&) {
      throw ParseError("parse error: instance dimensions too large");
    }
  }();
  const std::size_t expected_lists = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(n) *
                                     static_cast<std::size_t>(k - 1);
  // One slot per (observer member, target gender): duplicates are rejected
  // outright instead of trusting the final count (a duplicate plus a missing
  // line would otherwise pass the seen == expected_lists check).
  std::vector<bool> filled(expected_lists, false);
  std::size_t seen = 0;
  while (auto line = next_line(is)) {
    std::istringstream ls(*line);
    std::string tag, colon;
    Gender g = 0, h = 0;
    Index i = 0;
    ls >> tag >> g >> i >> h >> colon;
    KSTABLE_PARSE_REQUIRE(!ls.fail() && tag == "pref" && colon == ":",
                          "bad pref line '" << *line << "'");
    // Bounds-check before indexing anything with g/i/h.
    KSTABLE_PARSE_REQUIRE(g >= 0 && g < k, "gender " << g
                              << " out of range on line '" << *line << "'");
    KSTABLE_PARSE_REQUIRE(i >= 0 && i < n, "member " << i
                              << " out of range on line '" << *line << "'");
    KSTABLE_PARSE_REQUIRE(h >= 0 && h < k && h != g,
                          "target gender " << h << " invalid on line '"
                                           << *line << "'");
    const std::size_t slot =
        (static_cast<std::size_t>(g) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(i)) *
            static_cast<std::size_t>(k - 1) +
        static_cast<std::size_t>(h < g ? h : h - 1);
    KSTABLE_PARSE_REQUIRE(!filled[slot], "duplicate pref line for member ("
                                             << g << ',' << i
                                             << ") over gender " << h);
    filled[slot] = true;
    std::vector<Index> order;
    order.reserve(static_cast<std::size_t>(n));
    Index idx = 0;
    while (ls >> idx) order.push_back(idx);
    try {
      inst.set_pref_list({g, i}, h, order);
    } catch (const ContractViolation& e) {
      // Non-permutation list: malformed input, not a programming error.
      throw ParseError(std::string("parse error: ") + e.what());
    }
    ++seen;
  }
  KSTABLE_PARSE_REQUIRE(seen == expected_lists,
                        "instance has " << seen << " pref lines, expected "
                                        << expected_lists);
  try {
    inst.validate();
  } catch (const ContractViolation& e) {
    throw ParseError(std::string("parse error: ") + e.what());
  }
  return inst;
}

void save_file(const KPartiteInstance& inst, const std::string& path) {
  std::ofstream os(path);
  KSTABLE_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  save(inst, os);
  KSTABLE_REQUIRE(os.good(), "write to '" << path << "' failed");
}

KPartiteInstance load_file(const std::string& path) {
  std::ifstream is(path);
  KSTABLE_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  return load(is);
}

std::string to_string(const KPartiteInstance& inst) {
  std::ostringstream os;
  save(inst, os);
  return os.str();
}

KPartiteInstance from_string(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

}  // namespace kstable::io
