#include "prefs/catalog.hpp"

#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"

namespace kstable::examples {

std::vector<CatalogEntry> catalog() {
  return {
      {"example1-first", "§II.A Example 1, first preference set (2x2)"},
      {"example1-second", "§II.A Example 1, second preference set (2x2)"},
      {"fig3", "§IV.A Fig. 3 tripartite instance (3x2)"},
      {"theorem4-cycle", "§IV.B cycle-witness preferences (3x2)"},
      {"uniform-3x8", "uniform random, k=3, n=8, seed 1"},
      {"popularity-4x16", "popularity-correlated (noise 0.5), k=4, n=16, seed 2"},
      {"euclidean-3x16", "2-d euclidean, k=3, n=16, seed 3"},
      {"tiered-4x12", "3-tier quality, k=4, n=12, seed 4"},
  };
}

KPartiteInstance build(const std::string& name) {
  if (name == "example1-first") return example1_first();
  if (name == "example1-second") return example1_second();
  if (name == "fig3") return fig3_instance();
  if (name == "theorem4-cycle") return gen::theorem4_cycle_prefs();
  if (name == "uniform-3x8") {
    Rng rng(1);
    return gen::uniform(3, 8, rng);
  }
  if (name == "popularity-4x16") {
    Rng rng(2);
    return gen::popularity(4, 16, rng, 0.5);
  }
  if (name == "euclidean-3x16") {
    Rng rng(3);
    return gen::euclidean(3, 16, 2, rng);
  }
  if (name == "tiered-4x12") {
    Rng rng(4);
    return gen::tiered(4, 12, 3, rng);
  }
  std::string known;
  for (const auto& entry : catalog()) known += ' ' + entry.name;
  KSTABLE_REQUIRE(false, "unknown instance '" << name << "'; known:" << known);
  return KPartiteInstance(2, 1);  // unreachable
}

}  // namespace kstable::examples
