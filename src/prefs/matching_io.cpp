#include "prefs/matching_io.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "util/check.hpp"

namespace kstable::io {

namespace {

std::optional<std::string> next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r") != std::string::npos) return line;
  }
  return std::nullopt;
}

void read_header(std::istream& is, const char* magic, Gender& k, Index& n) {
  auto header = next_line(is);
  KSTABLE_PARSE_REQUIRE(header.has_value(), "empty matching stream");
  {
    std::istringstream hs(*header);
    std::string found_magic, version;
    hs >> found_magic >> version;
    KSTABLE_PARSE_REQUIRE(found_magic == magic && version == "v1",
                    "bad header '" << *header << "'");
  }
  auto dims = next_line(is);
  KSTABLE_PARSE_REQUIRE(dims.has_value(), "missing dimensions line");
  std::istringstream ds(*dims);
  ds >> k >> n;
  KSTABLE_PARSE_REQUIRE(!ds.fail() && k >= 2 && n >= 1,
                  "bad dimensions line '" << *dims << "'");
}

}  // namespace

void save(const KaryMatching& matching, std::ostream& os) {
  os << "kstable-kary v1\n"
     << matching.genders() << ' ' << matching.per_gender() << '\n';
  for (Index t = 0; t < matching.family_count(); ++t) {
    os << "family " << t << " :";
    for (Gender g = 0; g < matching.genders(); ++g) {
      os << ' ' << matching.member_at(t, g).index;
    }
    os << '\n';
  }
}

KaryMatching load_kary(std::istream& is) {
  KSTABLE_FAULT_POINT("io/load");
  Gender k = 0;
  Index n = 0;
  read_header(is, "kstable-kary", k, n);
  std::vector<Index> families(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n), Index{-1});
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  while (auto line = next_line(is)) {
    std::istringstream ls(*line);
    std::string tag, colon;
    Index t = 0;
    ls >> tag >> t >> colon;
    KSTABLE_PARSE_REQUIRE(!ls.fail() && tag == "family" && colon == ":",
                    "bad family line '" << *line << "'");
    KSTABLE_PARSE_REQUIRE(t >= 0 && t < n, "family index " << t << " out of range");
    KSTABLE_PARSE_REQUIRE(!seen[static_cast<std::size_t>(t)],
                    "duplicate family " << t);
    seen[static_cast<std::size_t>(t)] = true;
    for (Gender g = 0; g < k; ++g) {
      Index idx = -1;
      ls >> idx;
      KSTABLE_PARSE_REQUIRE(!ls.fail(), "family " << t << " has too few members");
      families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(g)] = idx;
    }
  }
  for (Index t = 0; t < n; ++t) {
    KSTABLE_PARSE_REQUIRE(seen[static_cast<std::size_t>(t)], "missing family " << t);
  }
  try {
    return KaryMatching(k, n, std::move(families));
  } catch (const ContractViolation& e) {
    throw ParseError(std::string("parse error: ") + e.what());
  }
}

std::string to_string(const KaryMatching& matching) {
  std::ostringstream os;
  save(matching, os);
  return os.str();
}

KaryMatching kary_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_kary(is);
}

void save(const BinaryMatchingKP& matching, std::ostream& os) {
  os << "kstable-binary v1\n"
     << matching.genders() << ' ' << matching.per_gender() << '\n';
  const auto& raw = matching.raw();
  for (std::size_t f = 0; f < raw.size(); ++f) {
    if (raw[f] > static_cast<std::int32_t>(f)) {
      os << "pair " << f << ' ' << raw[f] << '\n';
    }
  }
}

BinaryMatchingKP load_binary(std::istream& is) {
  KSTABLE_FAULT_POINT("io/load");
  Gender k = 0;
  Index n = 0;
  read_header(is, "kstable-binary", k, n);
  const auto total = static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  std::vector<std::int32_t> partner(total, -1);
  while (auto line = next_line(is)) {
    std::istringstream ls(*line);
    std::string tag;
    std::int32_t a = -1, b = -1;
    ls >> tag >> a >> b;
    KSTABLE_PARSE_REQUIRE(!ls.fail() && tag == "pair",
                    "bad pair line '" << *line << "'");
    KSTABLE_PARSE_REQUIRE(a >= 0 && b >= 0 &&
                        a < static_cast<std::int32_t>(total) &&
                        b < static_cast<std::int32_t>(total),
                    "pair (" << a << ',' << b << ") out of range");
    KSTABLE_PARSE_REQUIRE(partner[static_cast<std::size_t>(a)] == -1 &&
                        partner[static_cast<std::size_t>(b)] == -1,
                    "member in two pairs on line '" << *line << "'");
    partner[static_cast<std::size_t>(a)] = b;
    partner[static_cast<std::size_t>(b)] = a;
  }
  try {
    return BinaryMatchingKP(k, n, std::move(partner));
  } catch (const ContractViolation& e) {
    throw ParseError(std::string("parse error: ") + e.what());
  }
}

std::string to_string(const BinaryMatchingKP& matching) {
  std::ostringstream os;
  save(matching, os);
  return os.str();
}

BinaryMatchingKP binary_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_binary(is);
}

}  // namespace kstable::io
