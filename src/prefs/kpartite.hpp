// KPartiteInstance: the preference system of a complete, balanced k-partite
// graph (paper §II.B).
//
// Each of the k genders holds n members. Every member keeps k-1 *separate*
// strict preference orders, one per other gender — exactly the paper's model
// ("separate orders are maintained for different genders, one for each
// gender"), as opposed to the combination/cyclic preferences of prior
// multi-dimensional SMP work.
//
// Storage is flat and gender-major with a precomputed rank table so that
// "does m prefer a over b" is two loads and a compare (O(1)); this is the
// representation every engine (GS, roommates adapter, binding, stability
// checkers) runs on.
//
// Memory layout (docs/PERFORMANCE.md §Compact memory layout):
//   * Both tables live in ONE extent-granular arena slab (prefs/arena.hpp) —
//     SoA, no per-row vectors, 64-byte-aligned carves, overflow-checked
//     sizing that throws ParseError instead of wrapping at giant n.
//   * Rows exist only for the k-1 *other* genders: the row index of (m, g)
//     is flat_id(m)·(k-1) + slot(g), so the old layout's dead same-gender
//     diagonal rows (a full 1/k of the table — half of it for bipartite
//     instances) are gone.
//   * Ranks are stored width-adaptively (prefs/compact_ranks.hpp):
//     std::uint16_t when n < 65536, std::uint32_t above. rank_row() returns
//     a dual-width RankRow view; the engines instead dispatch once per solve
//     and read the typed table through rank_base<R>() + row_base().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "prefs/arena.hpp"
#include "prefs/compact_ranks.hpp"
#include "prefs/ids.hpp"
#include "prefs/implicit/implicit_prefs.hpp"

namespace kstable {

/// Where an instance's preference system lives
/// (docs/PERFORMANCE.md §Implicit preferences):
///   * explicit_tables — the arena-backed pref + rank tables above; O(k²n²)
///     memory, O(1) lookups by load. Mutable (generation-counted).
///   * implicit_gen    — a generator (prefs/implicit/): entries computed on
///     demand from a seed, O(1) instance memory. Immutable by construction —
///     mutators throw, generation() stays 0, so generation-bound caches work
///     unchanged.
enum class PrefBackend : std::uint8_t { explicit_tables, implicit_gen };

[[nodiscard]] const char* to_string(PrefBackend backend) noexcept;

/// A complete balanced k-partite preference instance.
class KPartiteInstance {
 public:
  /// Creates an instance with k genders of n members and *unset* preference
  /// lists (all entries -1). Call set_pref_list() for every (member, gender)
  /// pair and then validate(), or use a prefs::gen generator. Rank storage
  /// width is picked from n (natural_rank_width).
  KPartiteInstance(Gender k, Index n);

  /// As above with an explicit rank width, for layout ablations (E19) and
  /// the DiffRunner width-agreement battery. Requires: `width` can represent
  /// every rank in [0, n), i.e. wide32 always works and narrow16 needs
  /// n < 65536.
  KPartiteInstance(Gender k, Index n, prefs::RankWidth width);

  /// Copy of `src` re-laid with rank width `width` (same preference lists;
  /// bitwise-identical solve results — the DiffRunner pins this). Requires
  /// the explicit backend (an implicit instance has no layout to re-lay; use
  /// materialized() to build tables from it).
  static KPartiteInstance relaid(const KPartiteInstance& src,
                                 prefs::RankWidth width);

  /// Creates an instance whose preference system is computed on demand from
  /// `spec` (prefs/implicit/) instead of being stored: O(1) instance memory
  /// at any n, which is what makes n >= 10^5 solvable at all (explicit
  /// tables there are ~100 GB). The instance is complete by construction and
  /// immutable: set_pref_list/swap_pref_entries throw, generation() stays 0.
  /// Checked explicit-table accessors (pref_list, relaid) throw; the
  /// unchecked hot-path ones (pref_row, rank_row, rank_base) must simply
  /// never be called here — engines go through the PrefView dispatch
  /// (prefs/implicit/pref_view.hpp), which only constructs an ExplicitView
  /// for explicit instances, and everything rank-based (rank_of, prefers,
  /// pref_at) works identically on both backends.
  static KPartiteInstance make_implicit(Gender k, Index n,
                                        prefs::imp::ImplicitSpec spec);

  /// Which backend answers preference queries for this instance.
  [[nodiscard]] PrefBackend backend() const noexcept { return backend_; }

  /// The generator of an implicit instance. Requires backend() ==
  /// implicit_gen (throws ContractViolation otherwise).
  [[nodiscard]] const prefs::imp::ImplicitPrefs& implicit_prefs() const;

  /// The r-th choice of member `m` over gender `g` (0 = most preferred), on
  /// either backend: a table load when explicit, an O(1) PRP evaluation when
  /// implicit. Checked; throws on an unset explicit entry.
  [[nodiscard]] Index pref_at(MemberId m, Gender g, Index r) const;

  /// Explicit-table copy of this instance (both backends): every list is
  /// evaluated through pref_at and stored at rank width `width`. O(k·(k-1)·n²)
  /// time and memory — small instances only; this is how the DiffRunner pins
  /// implicit instances against the table engines bitwise. The copy inherits
  /// generation() (0 for implicit sources), so caches treat it as equal.
  [[nodiscard]] KPartiteInstance materialized(prefs::RankWidth width) const;
  [[nodiscard]] KPartiteInstance materialized() const {
    return materialized(prefs::natural_rank_width(n_));
  }

  [[nodiscard]] Gender genders() const noexcept { return k_; }
  [[nodiscard]] Index per_gender() const noexcept { return n_; }
  /// k·n, in 64 bits: the product overflows int32 for instances whose
  /// *tables* could never be built, but the count itself must stay exact.
  [[nodiscard]] std::int64_t total_members() const noexcept {
    return static_cast<std::int64_t>(k_) * static_cast<std::int64_t>(n_);
  }

  /// Preference order of member `m` over gender `g` (best first); entries are
  /// indices into gender `g`. Requires g != m.gender and the explicit
  /// backend (implicit instances have no stored rows — use pref_at).
  [[nodiscard]] std::span<const Index> pref_list(MemberId m, Gender g) const;

  /// Overwrites the preference order of `m` over gender `g`. `order` must be
  /// a permutation of [0, n) — enforced here (fail-fast on malformed input).
  /// A mutation: bumps generation() (see below).
  void set_pref_list(MemberId m, Gender g, std::span<const Index> order);

  /// Swaps the entries at ranks `rank_a` and `rank_b` in m's list over gender
  /// `g`, rewriting both the pref row and the two touched rank-table cells in
  /// place (no allocation). The list must already be set. A mutation: bumps
  /// generation(). rank_a == rank_b is a no-op that still bumps (callers
  /// treat every mutator call as a delta).
  void swap_pref_entries(MemberId m, Gender g, Index rank_a, Index rank_b);

  /// Mutation counter: starts at 0 and increments on every mutating call
  /// (set_pref_list, swap_pref_entries). Consumers that memoize per-instance
  /// results (core::GsEdgeCache) record the generation they were built
  /// against and fail loudly when it has moved — the staleness guard that
  /// replaced the old "instances are immutable" contract
  /// (docs/INCREMENTAL.md). Copies (including relaid()) inherit the source's
  /// generation: they are semantically equal at the moment of the copy.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Rank of `other` in m's list for other.gender (0 = most preferred).
  [[nodiscard]] std::int32_t rank_of(MemberId m, MemberId other) const;

  /// Unchecked row views for validated hot loops (the GS engines). Explicit
  /// backend only — the engines dispatch per backend through
  /// prefs::with_pref_view, so these are never reached on an implicit
  /// instance; other callers must check backend() first. One
  /// row_base computation buys the whole row, so a responder's accept/reject
  /// decision is two loads off rank_row and a compare. Callers must have
  /// range-checked (m, g) up front (the engines validate the gender pair once
  /// per solve); no per-call contract checks, no allocation.
  [[nodiscard]] std::span<const Index> pref_row(MemberId m,
                                                Gender g) const noexcept {
    return {pref_data() + row_base(m, g), static_cast<std::size_t>(n_)};
  }
  /// rank_row(m, g)[i] = rank of member (g, i) in m's list over gender g.
  /// The view dispatches on the stored width per access; width-critical
  /// loops use rank_base<R>() instead.
  [[nodiscard]] prefs::RankRow rank_row(MemberId m, Gender g) const noexcept {
    const std::size_t base = row_base(m, g);
    return width_ == prefs::RankWidth::narrow16
               ? prefs::RankRow(rank16_data() + base, width_)
               : prefs::RankRow(rank32_data() + base, width_);
  }

  /// Stored rank width (selection rule: natural_rank_width(n) unless the
  /// explicit-width constructor overrode it).
  [[nodiscard]] prefs::RankWidth rank_width() const noexcept { return width_; }

  /// Typed base pointer of the rank table, for loops monomorphized on the
  /// width (R must be std::uint16_t or std::uint32_t and match rank_width()).
  /// Entry layout matches the pref table: row_base(m, g) + i holds the rank
  /// of member (g, i) in m's list.
  template <typename R>
  [[nodiscard]] const R* rank_base() const noexcept {
    static_assert(std::is_same_v<R, std::uint16_t> ||
                      std::is_same_v<R, std::uint32_t>,
                  "rank tables store uint16_t or uint32_t");
    return arena_.at<R>(rank_offset_);
  }

  /// Flat element offset of row (m, g) into both tables. Public because the
  /// width-monomorphized engine loops pair it with rank_base<R>(); everyone
  /// else goes through pref_row/rank_row.
  [[nodiscard]] std::size_t row_base(MemberId m, Gender g) const noexcept {
    const std::size_t flat = static_cast<std::size_t>(m.gender) *
                                 static_cast<std::size_t>(n_) +
                             static_cast<std::size_t>(m.index);
    const std::size_t slot =
        static_cast<std::size_t>(g) - static_cast<std::size_t>(g > m.gender);
    return (flat * static_cast<std::size_t>(k_ - 1) + slot) *
           static_cast<std::size_t>(n_);
  }

  /// True iff `m` strictly prefers `a` over `b`; a and b must belong to the
  /// same gender, different from m's.
  [[nodiscard]] bool prefers(MemberId m, MemberId a, MemberId b) const;

  /// Full structural validation: every cross-gender list set and a
  /// permutation. Throws ContractViolation otherwise.
  void validate() const;

  /// True iff validate() would pass (no throw).
  [[nodiscard]] bool is_complete() const noexcept;

  /// Layout introspection for E19 and the docs' bytes/proposal accounting.
  [[nodiscard]] std::size_t cells() const noexcept { return cells_; }
  [[nodiscard]] std::size_t pref_bytes() const noexcept {
    return cells_ * sizeof(Index);
  }
  [[nodiscard]] std::size_t rank_bytes() const noexcept {
    return cells_ * prefs::rank_entry_bytes(width_);
  }
  /// Total slab footprint including extent-rounding slack.
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_.capacity();
  }

  /// Semantic equality: same shape and same preference lists. Rank width is
  /// a layout choice, not a semantic property — a narrow16 instance equals
  /// its wide32 relaid copy.
  friend bool operator==(const KPartiteInstance& a, const KPartiteInstance& b);

 private:
  /// make_implicit builds instances member-by-member without the allocating
  /// public constructors.
  KPartiteInstance() = default;

  [[nodiscard]] Index* pref_data() noexcept {
    return arena_.at<Index>(pref_offset_);
  }
  [[nodiscard]] const Index* pref_data() const noexcept {
    return arena_.at<Index>(pref_offset_);
  }
  [[nodiscard]] std::uint16_t* rank16_data() noexcept {
    return arena_.at<std::uint16_t>(rank_offset_);
  }
  [[nodiscard]] const std::uint16_t* rank16_data() const noexcept {
    return arena_.at<std::uint16_t>(rank_offset_);
  }
  [[nodiscard]] std::uint32_t* rank32_data() noexcept {
    return arena_.at<std::uint32_t>(rank_offset_);
  }
  [[nodiscard]] const std::uint32_t* rank32_data() const noexcept {
    return arena_.at<std::uint32_t>(rank_offset_);
  }
  /// Stored rank at flat element position `pos`, sentinel included (-1 for
  /// "unset" regardless of width).
  [[nodiscard]] std::int32_t raw_rank_at(std::size_t pos) const noexcept;
  /// The r-th choice on either backend without range checks; -1 for an unset
  /// explicit entry (implicit entries are never unset).
  [[nodiscard]] Index raw_pref_at(MemberId m, Gender g, Index r) const noexcept;
  void check_member(MemberId m) const;
  void check_target(MemberId m, Gender g) const;
  /// Throws ContractViolation when `op` needs the explicit tables but the
  /// backend is implicit.
  void require_explicit(const char* op) const;

  Gender k_ = 0;
  Index n_ = 0;
  std::uint64_t generation_ = 0;
  PrefBackend backend_ = PrefBackend::explicit_tables;
  prefs::imp::ImplicitPrefs implicit_;  ///< engaged iff backend_ == implicit_gen
  prefs::RankWidth width_ = prefs::RankWidth::narrow16;
  std::size_t cells_ = 0;        ///< k·(k-1)·n·n used entries per table
  std::size_t pref_offset_ = 0;  ///< byte offset of the pref carve (0)
  std::size_t rank_offset_ = 0;  ///< byte offset of the rank carve
  // One slab for both tables:
  //   pref[row_base(m,g) + r] = index of the r-th choice of m in gender g;
  //   rank[row_base(m,g) + i] = rank of member (g, i) in m's list.
  prefs::PrefArena arena_;
};

}  // namespace kstable
