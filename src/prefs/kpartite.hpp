// KPartiteInstance: the preference system of a complete, balanced k-partite
// graph (paper §II.B).
//
// Each of the k genders holds n members. Every member keeps k-1 *separate*
// strict preference orders, one per other gender — exactly the paper's model
// ("separate orders are maintained for different genders, one for each
// gender"), as opposed to the combination/cyclic preferences of prior
// multi-dimensional SMP work.
//
// Storage is flat and gender-major with a precomputed rank table so that
// "does m prefer a over b" is two loads and a compare (O(1)); this is the
// representation every engine (GS, roommates adapter, binding, stability
// checkers) runs on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prefs/ids.hpp"

namespace kstable {

/// A complete balanced k-partite preference instance.
class KPartiteInstance {
 public:
  /// Creates an instance with k genders of n members and *unset* preference
  /// lists (all entries -1). Call set_pref_list() for every (member, gender)
  /// pair and then validate(), or use a prefs::gen generator.
  KPartiteInstance(Gender k, Index n);

  [[nodiscard]] Gender genders() const noexcept { return k_; }
  [[nodiscard]] Index per_gender() const noexcept { return n_; }
  [[nodiscard]] std::int32_t total_members() const noexcept { return k_ * n_; }

  /// Preference order of member `m` over gender `g` (best first); entries are
  /// indices into gender `g`. Requires g != m.gender.
  [[nodiscard]] std::span<const Index> pref_list(MemberId m, Gender g) const;

  /// Overwrites the preference order of `m` over gender `g`. `order` must be
  /// a permutation of [0, n) — enforced here (fail-fast on malformed input).
  void set_pref_list(MemberId m, Gender g, std::span<const Index> order);

  /// Rank of `other` in m's list for other.gender (0 = most preferred).
  [[nodiscard]] std::int32_t rank_of(MemberId m, MemberId other) const;

  /// Unchecked row views for validated hot loops (the GS engines): one
  /// list_base computation buys the whole row, so a responder's accept/reject
  /// decision is two loads off rank_row and a compare. Callers must have
  /// range-checked (m, g) up front (the engines validate the gender pair once
  /// per solve); no per-call contract checks, no allocation.
  [[nodiscard]] std::span<const Index> pref_row(MemberId m,
                                                Gender g) const noexcept {
    return {pref_.data() + list_base(m, g), static_cast<std::size_t>(n_)};
  }
  /// rank_row(m, g)[i] = rank of member (g, i) in m's list over gender g.
  [[nodiscard]] std::span<const std::int32_t> rank_row(MemberId m,
                                                       Gender g) const noexcept {
    return {rank_.data() + list_base(m, g), static_cast<std::size_t>(n_)};
  }

  /// True iff `m` strictly prefers `a` over `b`; a and b must belong to the
  /// same gender, different from m's.
  [[nodiscard]] bool prefers(MemberId m, MemberId a, MemberId b) const;

  /// Full structural validation: every cross-gender list set and a
  /// permutation. Throws ContractViolation otherwise.
  void validate() const;

  /// True iff validate() would pass (no throw).
  [[nodiscard]] bool is_complete() const noexcept;

  friend bool operator==(const KPartiteInstance&, const KPartiteInstance&) = default;

 private:
  [[nodiscard]] std::size_t list_base(MemberId m, Gender g) const noexcept {
    return (static_cast<std::size_t>(flat_id(m, n_)) * static_cast<std::size_t>(k_) +
            static_cast<std::size_t>(g)) *
           static_cast<std::size_t>(n_);
  }
  void check_member(MemberId m) const;

  Gender k_;
  Index n_;
  // pref_[list_base(m,g) + r]  = index of the r-th choice of m in gender g.
  // rank_[list_base(m,g) + i]  = rank of member (g, i) in m's list.
  std::vector<Index> pref_;
  std::vector<std::int32_t> rank_;
};

}  // namespace kstable
