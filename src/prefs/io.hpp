// Text serialization for KPartiteInstance.
//
// Format (line oriented, '#' comments allowed):
//   kstable-kpartite v1
//   <k> <n>
//   pref <g> <i> <h> : <idx_0> <idx_1> ... <idx_{n-1}>   (one line per list)
// Lists may appear in any order; all k*n*(k-1) lists must be present.
#pragma once

#include <iosfwd>
#include <string>

#include "prefs/kpartite.hpp"

namespace kstable::io {

/// Writes `inst` in the v1 text format.
void save(const KPartiteInstance& inst, std::ostream& os);

/// Parses a v1 text instance; throws ContractViolation on malformed input.
KPartiteInstance load(std::istream& is);

/// Convenience wrappers over save/load using files.
void save_file(const KPartiteInstance& inst, const std::string& path);
KPartiteInstance load_file(const std::string& path);

/// Round-trip helper: serialize to a string.
std::string to_string(const KPartiteInstance& inst);
KPartiteInstance from_string(const std::string& text);

}  // namespace kstable::io
