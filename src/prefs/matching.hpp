// Matching value types over a balanced k-partite instance.
//
// BinaryMatchingKP — a perfect *binary* matching: every member paired with
// exactly one member of a different gender (paper §III).
// KaryMatching — a perfect *k-ary* matching: n families (k-tuples), one
// member per gender per family, every member in exactly one family (§IV).
#pragma once

#include <cstdint>
#include <vector>

#include "prefs/ids.hpp"

namespace kstable {

/// Perfect binary matching on a k-partite member set.
class BinaryMatchingKP {
 public:
  /// `partner[flat_id(m, n)]` = flat id of m's partner. Must be a
  /// fixed-point-free involution pairing members of different genders;
  /// validated on construction.
  BinaryMatchingKP(Gender k, Index n, std::vector<std::int32_t> partner);

  [[nodiscard]] Gender genders() const noexcept { return k_; }
  [[nodiscard]] Index per_gender() const noexcept { return n_; }

  /// Partner of member `m`.
  [[nodiscard]] MemberId partner(MemberId m) const;

  [[nodiscard]] const std::vector<std::int32_t>& raw() const noexcept {
    return partner_;
  }

 private:
  Gender k_;
  Index n_;
  std::vector<std::int32_t> partner_;
};

/// Perfect k-ary matching: n families of k members, one per gender.
class KaryMatching {
 public:
  /// `families[t * k + g]` = index (within gender g) of family t's gender-g
  /// member. Each gender's column must be a permutation of [0, n); validated
  /// on construction.
  KaryMatching(Gender k, Index n, std::vector<Index> families);

  [[nodiscard]] Gender genders() const noexcept { return k_; }
  [[nodiscard]] Index per_gender() const noexcept { return n_; }
  [[nodiscard]] Index family_count() const noexcept { return n_; }

  /// Gender-g member of family `t`.
  [[nodiscard]] MemberId member_at(Index t, Gender g) const;

  /// Family index containing member `m`.
  [[nodiscard]] Index family_of(MemberId m) const;

  /// Gender-g member of m's family (the "corresponding member").
  [[nodiscard]] MemberId family_member(MemberId m, Gender g) const {
    return member_at(family_of(m), g);
  }

  [[nodiscard]] const std::vector<Index>& raw() const noexcept {
    return families_;
  }

  friend bool operator==(const KaryMatching&, const KaryMatching&) = default;

 private:
  Gender k_;
  Index n_;
  std::vector<Index> families_;   // n * k, family-major
  std::vector<Index> family_of_;  // k * n, by flat member id
};

}  // namespace kstable
