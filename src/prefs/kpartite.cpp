#include "prefs/kpartite.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kstable {

KPartiteInstance::KPartiteInstance(Gender k, Index n) : k_(k), n_(n) {
  KSTABLE_REQUIRE(k >= 2, "need at least two genders, got k=" << k);
  KSTABLE_REQUIRE(n >= 1, "need at least one member per gender, got n=" << n);
  const auto cells = static_cast<std::size_t>(k) * static_cast<std::size_t>(k) *
                     static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  pref_.assign(cells, Index{-1});
  rank_.assign(cells, std::int32_t{-1});
}

void KPartiteInstance::check_member(MemberId m) const {
  KSTABLE_REQUIRE(m.gender >= 0 && m.gender < k_ && m.index >= 0 && m.index < n_,
                  "member " << m << " out of range (k=" << k_ << ", n=" << n_ << ")");
}

std::span<const Index> KPartiteInstance::pref_list(MemberId m, Gender g) const {
  check_member(m);
  KSTABLE_REQUIRE(g >= 0 && g < k_ && g != m.gender,
                  "gender " << g << " invalid as a preference target for " << m);
  return {pref_.data() + list_base(m, g), static_cast<std::size_t>(n_)};
}

void KPartiteInstance::set_pref_list(MemberId m, Gender g,
                                     std::span<const Index> order) {
  check_member(m);
  KSTABLE_REQUIRE(g >= 0 && g < k_ && g != m.gender,
                  "gender " << g << " invalid as a preference target for " << m);
  KSTABLE_REQUIRE(order.size() == static_cast<std::size_t>(n_),
                  "list for " << m << " over gender " << g << " has "
                              << order.size() << " entries, expected " << n_);
  // Permutation check (fail-fast, I.6): each index in [0, n) exactly once.
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  for (Index idx : order) {
    KSTABLE_REQUIRE(idx >= 0 && idx < n_, "preference entry " << idx
                                              << " out of range for " << m);
    KSTABLE_REQUIRE(!seen[static_cast<std::size_t>(idx)],
                    "duplicate preference entry " << idx << " for " << m);
    seen[static_cast<std::size_t>(idx)] = true;
  }
  const std::size_t base = list_base(m, g);
  for (std::size_t r = 0; r < order.size(); ++r) {
    pref_[base + r] = order[r];
    rank_[base + static_cast<std::size_t>(order[r])] =
        static_cast<std::int32_t>(r);
  }
}

std::int32_t KPartiteInstance::rank_of(MemberId m, MemberId other) const {
  check_member(m);
  check_member(other);
  KSTABLE_REQUIRE(other.gender != m.gender,
                  "rank_of: " << other << " has the same gender as " << m);
  const std::int32_t r =
      rank_[list_base(m, other.gender) + static_cast<std::size_t>(other.index)];
  KSTABLE_REQUIRE(r >= 0, "preference list of " << m << " over gender "
                                                << other.gender << " is unset");
  return r;
}

bool KPartiteInstance::prefers(MemberId m, MemberId a, MemberId b) const {
  KSTABLE_REQUIRE(a.gender == b.gender,
                  "prefers: " << a << " and " << b << " differ in gender");
  return rank_of(m, a) < rank_of(m, b);
}

void KPartiteInstance::validate() const {
  for (Gender g = 0; g < k_; ++g) {
    for (Index i = 0; i < n_; ++i) {
      const MemberId m{g, i};
      for (Gender h = 0; h < k_; ++h) {
        if (h == g) continue;
        const std::size_t base = list_base(m, h);
        std::vector<bool> seen(static_cast<std::size_t>(n_), false);
        for (Index r = 0; r < n_; ++r) {
          const Index idx = pref_[base + static_cast<std::size_t>(r)];
          KSTABLE_REQUIRE(idx >= 0 && idx < n_,
                          "unset/out-of-range preference for " << m
                              << " over gender " << h << " at rank " << r);
          KSTABLE_REQUIRE(!seen[static_cast<std::size_t>(idx)],
                          "duplicate entry " << idx << " in list of " << m
                                             << " over gender " << h);
          seen[static_cast<std::size_t>(idx)] = true;
          KSTABLE_REQUIRE(
              rank_[base + static_cast<std::size_t>(idx)] == r,
              "rank table inconsistent for " << m << " over gender " << h);
        }
      }
    }
  }
}

bool KPartiteInstance::is_complete() const noexcept {
  try {
    validate();
    return true;
  } catch (const ContractViolation&) {
    return false;
  }
}

}  // namespace kstable
