#include "prefs/kpartite.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/check.hpp"

namespace kstable {

namespace {

/// Sentinel-filled table initialization: every pref entry -1, every rank
/// entry the all-ones unset marker of its width.
template <typename T>
void fill_all(T* data, std::size_t count, T value) {
  std::fill_n(data, count, value);
}

}  // namespace

const char* to_string(PrefBackend backend) noexcept {
  switch (backend) {
    case PrefBackend::explicit_tables: return "explicit";
    case PrefBackend::implicit_gen: return "implicit";
  }
  return "unknown";
}

KPartiteInstance::KPartiteInstance(Gender k, Index n)
    : KPartiteInstance(k, n, prefs::natural_rank_width(n)) {}

KPartiteInstance::KPartiteInstance(Gender k, Index n, prefs::RankWidth width)
    : k_(k), n_(n), width_(width) {
  KSTABLE_REQUIRE(k >= 2, "need at least two genders, got k=" << k);
  KSTABLE_REQUIRE(n >= 1, "need at least one member per gender, got n=" << n);
  // Boundary audit (docs/PERFORMANCE.md): narrow16 is admissible only while
  // the largest storable rank (n-1) stays below the all-ones unset sentinel.
  // At the n == 65535 boundary the max rank is 65534 — no collision; n ==
  // 65536 would need rank 65535 == kUnsetRank<u16> and must reject BEFORE
  // any allocation happens (the compact_layout boundary test relies on the
  // cheap throw).
  static_assert(prefs::kUnsetRank<std::uint16_t> == 65535,
                "u16 unset sentinel must sit one past the max narrow16 rank");
  KSTABLE_REQUIRE(width == prefs::RankWidth::wide32 || n < 65536,
                  "narrow16 rank storage cannot represent ranks for n=" << n);
  // Overflow-checked 64-bit sizing (the old code multiplied k·k·n·n straight
  // into size_t — wrapped, silently undersized tables, UB on index — and
  // sized the diagonal (m.gender == g) rows nobody can ever address).
  cells_ = prefs::checked_mul(
      prefs::checked_mul(static_cast<std::size_t>(k),
                         static_cast<std::size_t>(k - 1)),
      prefs::checked_mul(static_cast<std::size_t>(n),
                         static_cast<std::size_t>(n)));
  const std::size_t pref_sz = prefs::checked_mul(cells_, sizeof(Index));
  const std::size_t rank_sz =
      prefs::checked_mul(cells_, prefs::rank_entry_bytes(width_));
  pref_offset_ = 0;
  rank_offset_ = prefs::round_up(pref_sz, prefs::kArenaAlign);
  const std::size_t total = prefs::checked_add(rank_offset_, rank_sz);
  arena_ = prefs::PrefArena(total);

  fill_all(pref_data(), cells_, Index{-1});
  if (width_ == prefs::RankWidth::narrow16) {
    fill_all(rank16_data(), cells_, prefs::kUnsetRank<std::uint16_t>);
  } else {
    fill_all(rank32_data(), cells_, prefs::kUnsetRank<std::uint32_t>);
  }
}

KPartiteInstance KPartiteInstance::make_implicit(Gender k, Index n,
                                                 prefs::imp::ImplicitSpec spec) {
  KSTABLE_REQUIRE(k >= 2, "need at least two genders, got k=" << k);
  KSTABLE_REQUIRE(n >= 1, "need at least one member per gender, got n=" << n);
  KPartiteInstance out;
  out.k_ = k;
  out.n_ = n;
  out.backend_ = PrefBackend::implicit_gen;
  out.implicit_ = prefs::imp::ImplicitPrefs(spec, k, n);
  // No tables: cells_ stays 0 (pref_bytes/rank_bytes report the true
  // footprint — nothing), the arena stays unallocated, and width_ records
  // what natural_rank_width would pick so introspection stays meaningful.
  out.width_ = prefs::natural_rank_width(n);
  return out;
}

const prefs::imp::ImplicitPrefs& KPartiteInstance::implicit_prefs() const {
  KSTABLE_REQUIRE(backend_ == PrefBackend::implicit_gen,
                  "implicit_prefs() on an explicit-table instance");
  return implicit_;
}

void KPartiteInstance::require_explicit(const char* op) const {
  KSTABLE_REQUIRE(backend_ == PrefBackend::explicit_tables,
                  op << ": this instance uses the implicit preference backend "
                        "(no stored tables); use pref_at/rank_of, or "
                        "materialized() for an explicit copy — "
                        "docs/PERFORMANCE.md §Implicit preferences");
}

Index KPartiteInstance::raw_pref_at(MemberId m, Gender g,
                                    Index r) const noexcept {
  if (backend_ == PrefBackend::implicit_gen) {
    return implicit_.pref(m, g, r);
  }
  return pref_data()[row_base(m, g) + static_cast<std::size_t>(r)];
}

Index KPartiteInstance::pref_at(MemberId m, Gender g, Index r) const {
  check_member(m);
  check_target(m, g);
  KSTABLE_REQUIRE(r >= 0 && r < n_,
                  "pref_at rank " << r << " out of range for n=" << n_);
  const Index choice = raw_pref_at(m, g, r);
  KSTABLE_REQUIRE(choice >= 0, "preference list of " << m << " over gender "
                                                     << g << " is unset");
  return choice;
}

KPartiteInstance KPartiteInstance::materialized(prefs::RankWidth width) const {
  KPartiteInstance out(k_, n_, width);
  std::vector<Index> order(static_cast<std::size_t>(n_));
  for (Gender g = 0; g < k_; ++g) {
    for (Index i = 0; i < n_; ++i) {
      const MemberId m{g, i};
      for (Gender h = 0; h < k_; ++h) {
        if (h == g) continue;
        for (Index r = 0; r < n_; ++r) {
          order[static_cast<std::size_t>(r)] = pref_at(m, h, r);
        }
        out.set_pref_list(m, h, order);
      }
    }
  }
  out.generation_ = generation_;
  return out;
}

KPartiteInstance KPartiteInstance::relaid(const KPartiteInstance& src,
                                          prefs::RankWidth width) {
  src.require_explicit("relaid");
  KPartiteInstance out(src.k_, src.n_, width);
  // The pref carve is width-independent: copy it wholesale, then rebuild the
  // rank table row by row (set entries only — unset rows stay sentinel).
  std::memcpy(out.pref_data(), src.pref_data(), src.pref_bytes());
  for (std::size_t pos = 0; pos < src.cells_; ++pos) {
    const Index choice = src.pref_data()[pos];
    if (choice < 0) continue;
    const std::size_t row = pos / static_cast<std::size_t>(src.n_);
    const std::size_t rank = pos % static_cast<std::size_t>(src.n_);
    const std::size_t cell =
        row * static_cast<std::size_t>(src.n_) + static_cast<std::size_t>(choice);
    if (width == prefs::RankWidth::narrow16) {
      out.rank16_data()[cell] = static_cast<std::uint16_t>(rank);
    } else {
      out.rank32_data()[cell] = static_cast<std::uint32_t>(rank);
    }
  }
  // A relaid copy is semantically equal to its source at this moment, so it
  // inherits the source's generation (caches keyed on generation accept it).
  out.generation_ = src.generation_;
  return out;
}

void KPartiteInstance::check_member(MemberId m) const {
  KSTABLE_REQUIRE(m.gender >= 0 && m.gender < k_ && m.index >= 0 && m.index < n_,
                  "member " << m << " out of range (k=" << k_ << ", n=" << n_ << ")");
}

void KPartiteInstance::check_target(MemberId m, Gender g) const {
  KSTABLE_REQUIRE(g >= 0 && g < k_ && g != m.gender,
                  "gender " << g << " invalid as a preference target for " << m);
}

std::int32_t KPartiteInstance::raw_rank_at(std::size_t pos) const noexcept {
  if (width_ == prefs::RankWidth::narrow16) {
    const std::uint16_t r = rank16_data()[pos];
    return r == prefs::kUnsetRank<std::uint16_t> ? -1
                                                 : static_cast<std::int32_t>(r);
  }
  const std::uint32_t r = rank32_data()[pos];
  return r == prefs::kUnsetRank<std::uint32_t> ? -1
                                               : static_cast<std::int32_t>(r);
}

std::span<const Index> KPartiteInstance::pref_list(MemberId m, Gender g) const {
  require_explicit("pref_list");
  check_member(m);
  check_target(m, g);
  return {pref_data() + row_base(m, g), static_cast<std::size_t>(n_)};
}

void KPartiteInstance::set_pref_list(MemberId m, Gender g,
                                     std::span<const Index> order) {
  require_explicit("set_pref_list");
  check_member(m);
  check_target(m, g);
  KSTABLE_REQUIRE(order.size() == static_cast<std::size_t>(n_),
                  "list for " << m << " over gender " << g << " has "
                              << order.size() << " entries, expected " << n_);
  // Permutation check (fail-fast, I.6): each index in [0, n) exactly once.
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  for (Index idx : order) {
    KSTABLE_REQUIRE(idx >= 0 && idx < n_, "preference entry " << idx
                                              << " out of range for " << m);
    KSTABLE_REQUIRE(!seen[static_cast<std::size_t>(idx)],
                    "duplicate preference entry " << idx << " for " << m);
    seen[static_cast<std::size_t>(idx)] = true;
  }
  const std::size_t base = row_base(m, g);
  Index* const pref = pref_data();
  if (width_ == prefs::RankWidth::narrow16) {
    std::uint16_t* const rank = rank16_data();
    for (std::size_t r = 0; r < order.size(); ++r) {
      pref[base + r] = order[r];
      rank[base + static_cast<std::size_t>(order[r])] =
          static_cast<std::uint16_t>(r);
    }
  } else {
    std::uint32_t* const rank = rank32_data();
    for (std::size_t r = 0; r < order.size(); ++r) {
      pref[base + r] = order[r];
      rank[base + static_cast<std::size_t>(order[r])] =
          static_cast<std::uint32_t>(r);
    }
  }
  ++generation_;
}

void KPartiteInstance::swap_pref_entries(MemberId m, Gender g, Index rank_a,
                                         Index rank_b) {
  require_explicit("swap_pref_entries");
  check_member(m);
  check_target(m, g);
  KSTABLE_REQUIRE(rank_a >= 0 && rank_a < n_ && rank_b >= 0 && rank_b < n_,
                  "swap_pref_entries ranks (" << rank_a << ',' << rank_b
                                              << ") out of range for n=" << n_);
  const std::size_t base = row_base(m, g);
  Index* const pref = pref_data();
  const Index at_a = pref[base + static_cast<std::size_t>(rank_a)];
  const Index at_b = pref[base + static_cast<std::size_t>(rank_b)];
  KSTABLE_REQUIRE(at_a >= 0 && at_b >= 0,
                  "swap_pref_entries on an unset list of " << m
                                                           << " over gender "
                                                           << g);
  pref[base + static_cast<std::size_t>(rank_a)] = at_b;
  pref[base + static_cast<std::size_t>(rank_b)] = at_a;
  // Only the two swapped members' rank cells move; the rest of the row is
  // untouched (the in-place rewrite the incremental layer relies on).
  if (width_ == prefs::RankWidth::narrow16) {
    std::uint16_t* const rank = rank16_data();
    rank[base + static_cast<std::size_t>(at_a)] =
        static_cast<std::uint16_t>(rank_b);
    rank[base + static_cast<std::size_t>(at_b)] =
        static_cast<std::uint16_t>(rank_a);
  } else {
    std::uint32_t* const rank = rank32_data();
    rank[base + static_cast<std::size_t>(at_a)] =
        static_cast<std::uint32_t>(rank_b);
    rank[base + static_cast<std::size_t>(at_b)] =
        static_cast<std::uint32_t>(rank_a);
  }
  ++generation_;
}

std::int32_t KPartiteInstance::rank_of(MemberId m, MemberId other) const {
  check_member(m);
  check_member(other);
  KSTABLE_REQUIRE(other.gender != m.gender,
                  "rank_of: " << other << " has the same gender as " << m);
  if (backend_ == PrefBackend::implicit_gen) {
    // O(1) on this backend too: the PRP inversion is the rank table.
    return implicit_.rank(m, other.gender, other.index);
  }
  const std::int32_t r = raw_rank_at(row_base(m, other.gender) +
                                     static_cast<std::size_t>(other.index));
  KSTABLE_REQUIRE(r >= 0, "preference list of " << m << " over gender "
                                                << other.gender << " is unset");
  return r;
}

bool KPartiteInstance::prefers(MemberId m, MemberId a, MemberId b) const {
  KSTABLE_REQUIRE(a.gender == b.gender,
                  "prefers: " << a << " and " << b << " differ in gender");
  return rank_of(m, a) < rank_of(m, b);
}

void KPartiteInstance::validate() const {
  if (backend_ == PrefBackend::implicit_gen) {
    // Complete by construction: every list is a PRP (hence a permutation)
    // of [0, n) — the bijectivity property test pins this.
    return;
  }
  for (Gender g = 0; g < k_; ++g) {
    for (Index i = 0; i < n_; ++i) {
      const MemberId m{g, i};
      for (Gender h = 0; h < k_; ++h) {
        if (h == g) continue;
        const std::size_t base = row_base(m, h);
        const Index* const pref = pref_data();
        std::vector<bool> seen(static_cast<std::size_t>(n_), false);
        for (Index r = 0; r < n_; ++r) {
          const Index idx = pref[base + static_cast<std::size_t>(r)];
          KSTABLE_REQUIRE(idx >= 0 && idx < n_,
                          "unset/out-of-range preference for " << m
                              << " over gender " << h << " at rank " << r);
          KSTABLE_REQUIRE(!seen[static_cast<std::size_t>(idx)],
                          "duplicate entry " << idx << " in list of " << m
                                             << " over gender " << h);
          seen[static_cast<std::size_t>(idx)] = true;
          KSTABLE_REQUIRE(
              raw_rank_at(base + static_cast<std::size_t>(idx)) == r,
              "rank table inconsistent for " << m << " over gender " << h);
        }
      }
    }
  }
}

bool KPartiteInstance::is_complete() const noexcept {
  try {
    validate();
    return true;
  } catch (const ContractViolation&) {
    return false;
  }
}

bool operator==(const KPartiteInstance& a, const KPartiteInstance& b) {
  if (a.k_ != b.k_ || a.n_ != b.n_) return false;
  if (a.backend_ == PrefBackend::explicit_tables &&
      b.backend_ == PrefBackend::explicit_tables) {
    // The rank table is derived from the pref table, so pref equality is
    // semantic equality; memcmp is sound because unset entries are a
    // deterministic -1 fill.
    return std::memcmp(a.pref_data(), b.pref_data(), a.pref_bytes()) == 0;
  }
  if (a.backend_ == PrefBackend::implicit_gen &&
      b.backend_ == PrefBackend::implicit_gen &&
      a.implicit_.spec() == b.implicit_.spec()) {
    return true;  // same generator, same shape: identical lists in O(1)
  }
  // Cross-backend (or different implicit specs): element-wise semantic
  // comparison. O(k·(k-1)·n²) evaluations — the DiffRunner/test sizes this
  // path exists for are tiny.
  for (Gender g = 0; g < a.k_; ++g) {
    for (Index i = 0; i < a.n_; ++i) {
      for (Gender h = 0; h < a.k_; ++h) {
        if (h == g) continue;
        for (Index r = 0; r < a.n_; ++r) {
          if (a.raw_pref_at({g, i}, h, r) != b.raw_pref_at({g, i}, h, r)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace kstable
