// Named-instance catalog: every built-in instance reachable by a string name
// (CLI `kmatch example <name> <file>`, notebooks, test fixtures).
#pragma once

#include <string>
#include <vector>

#include "prefs/kpartite.hpp"

namespace kstable::examples {

struct CatalogEntry {
  std::string name;
  std::string description;
};

/// Names and one-line descriptions of every cataloged k-partite instance.
std::vector<CatalogEntry> catalog();

/// Builds a cataloged instance by name; throws ContractViolation for unknown
/// names (the message lists the valid ones).
KPartiteInstance build(const std::string& name);

}  // namespace kstable::examples
