#include "prefs/matching.hpp"

#include "util/check.hpp"

namespace kstable {

BinaryMatchingKP::BinaryMatchingKP(Gender k, Index n,
                                   std::vector<std::int32_t> partner)
    : k_(k), n_(n), partner_(std::move(partner)) {
  const auto total = static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  KSTABLE_REQUIRE(partner_.size() == total, "partner array has "
                      << partner_.size() << " entries, expected " << total);
  for (std::size_t f = 0; f < total; ++f) {
    const std::int32_t p = partner_[f];
    KSTABLE_REQUIRE(p >= 0 && p < static_cast<std::int32_t>(total),
                    "partner of member " << f << " out of range: " << p);
    KSTABLE_REQUIRE(p != static_cast<std::int32_t>(f),
                    "member " << f << " matched to itself");
    KSTABLE_REQUIRE(partner_[static_cast<std::size_t>(p)] ==
                        static_cast<std::int32_t>(f),
                    "matching not an involution at member " << f);
    const MemberId a = member_of(static_cast<std::int32_t>(f), n_);
    const MemberId b = member_of(p, n_);
    KSTABLE_REQUIRE(a.gender != b.gender,
                    "members " << a << " and " << b << " share a gender");
  }
}

MemberId BinaryMatchingKP::partner(MemberId m) const {
  const std::int32_t f = flat_id(m, n_);
  KSTABLE_REQUIRE(f >= 0 && f < static_cast<std::int32_t>(partner_.size()),
                  "member " << m << " out of range");
  return member_of(partner_[static_cast<std::size_t>(f)], n_);
}

KaryMatching::KaryMatching(Gender k, Index n, std::vector<Index> families)
    : k_(k), n_(n), families_(std::move(families)) {
  const auto total = static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  KSTABLE_REQUIRE(families_.size() == total, "family table has "
                      << families_.size() << " entries, expected " << total);
  family_of_.assign(total, Index{-1});
  for (Index t = 0; t < n_; ++t) {
    for (Gender g = 0; g < k_; ++g) {
      const Index idx =
          families_[static_cast<std::size_t>(t) * static_cast<std::size_t>(k_) +
                    static_cast<std::size_t>(g)];
      KSTABLE_REQUIRE(idx >= 0 && idx < n_, "family " << t << " gender " << g
                          << " member index " << idx << " out of range");
      const std::int32_t flat = flat_id({g, idx}, n_);
      KSTABLE_REQUIRE(family_of_[static_cast<std::size_t>(flat)] == -1,
                      "member " << (MemberId{g, idx}) << " in two families");
      family_of_[static_cast<std::size_t>(flat)] = t;
    }
  }
}

MemberId KaryMatching::member_at(Index t, Gender g) const {
  KSTABLE_REQUIRE(t >= 0 && t < n_ && g >= 0 && g < k_,
                  "member_at(" << t << ',' << g << ") out of range");
  return {g, families_[static_cast<std::size_t>(t) * static_cast<std::size_t>(k_) +
                       static_cast<std::size_t>(g)]};
}

Index KaryMatching::family_of(MemberId m) const {
  const std::int32_t flat = flat_id(m, n_);
  KSTABLE_REQUIRE(flat >= 0 &&
                      flat < static_cast<std::int32_t>(family_of_.size()),
                  "member " << m << " out of range");
  return family_of_[static_cast<std::size_t>(flat)];
}

}  // namespace kstable
