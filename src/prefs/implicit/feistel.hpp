// Seeded pseudorandom permutations over [0, n) via a cycle-walking Feistel
// network — the primitive behind the implicit preference backend
// (docs/PERFORMANCE.md §Implicit preferences).
//
// A uniform-random preference list is a permutation of [0, n); storing it
// costs O(n) per row and O(k·(k-1)·n²) per instance — ~100 GB at n = 10^5.
// A keyed bijection gives the same list without storing it:
//
//   pref(m, g, r)  = forward(keys(m, g), r)   — the r-th choice, O(1)
//   rank(m, g, t)  = inverse(keys(m, g), t)   — rank of member t, O(1)
//
// The bijection is a 4-round balanced Feistel network over the smallest even
// power-of-two domain 2^(2w) >= n, with *cycle walking* to restrict it to
// [0, n): values that land outside [0, n) are re-encrypted until they fall
// inside. Because the network permutes the whole domain and the domain is
// less than 4n (minimality of w), the walk terminates and takes < 4 steps in
// expectation. Both directions walk, so forward and inverse stay exact
// mutual inverses on [0, n).
//
// Per-row round keys are derived from (master seed, flat row id) through
// splitmix64 chains (util/rng.hpp) — no state beyond the 64-bit seed, and
// distinct rows get independent permutations. This is a statistical PRP
// (instance generation), not a cryptographic one.
#pragma once

#include <cstdint>

#include "prefs/ids.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::prefs::imp {

/// splitmix64's finalizer as a standalone 64-bit mixer (stateless flavor of
/// util/rng.hpp's splitmix64 step), used by the Feistel round function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Feistel geometry shared by every row of one instance: half-width w such
/// that the domain 2^(2w) is the smallest even power of two covering n.
struct FeistelGeometry {
  std::uint32_t half_bits = 1;   ///< w
  std::uint32_t half_mask = 1;   ///< (1 << w) - 1
  Index n = 0;                   ///< permutation size (walk target)
};

/// Geometry for permutations of [0, n). Requires n >= 1; w >= 1 always, so
/// the network has real halves even for tiny n (the walk absorbs the slack).
[[nodiscard]] constexpr FeistelGeometry feistel_geometry(Index n) noexcept {
  FeistelGeometry g;
  g.n = n;
  std::uint32_t w = 1;
  // Smallest w with 4^w >= n; n <= 2^31 so w <= 16 and the loop is bounded.
  while ((std::uint64_t{1} << (2 * w)) < static_cast<std::uint64_t>(n)) ++w;
  g.half_bits = w;
  g.half_mask = static_cast<std::uint32_t>((std::uint64_t{1} << w) - 1);
  return g;
}

/// Round keys of one row's permutation (one per Feistel round).
struct RowKeys {
  std::uint64_t k[4] = {0, 0, 0, 0};
};

/// Derives one row's keys from the instance seed and the row's flat id (the
/// same flat row index KPartiteInstance::row_base uses), via a splitmix64
/// chain so rows with adjacent ids still get decorrelated keys.
[[nodiscard]] constexpr RowKeys derive_row_keys(std::uint64_t seed,
                                                std::uint64_t row) noexcept {
  std::uint64_t state =
      mix64(seed ^ 0x6a09e667f3bcc909ULL) ^
      mix64(row * 0x9e3779b97f4a7c15ULL + 0xbb67ae8584caa73bULL);
  RowKeys keys;
  for (auto& k : keys.k) k = splitmix64(state);
  return keys;
}

/// Round function: keyed mix of one half, truncated to w bits. Any good
/// 64-bit mixer works — only the bijection structure needs to be exact.
[[nodiscard]] constexpr std::uint32_t feistel_round(
    std::uint32_t half, std::uint64_t key,
    const FeistelGeometry& g) noexcept {
  return static_cast<std::uint32_t>(mix64(key ^ half)) & g.half_mask;
}

/// One encryption pass over the full domain [0, 2^(2w)).
[[nodiscard]] constexpr std::uint32_t feistel_encrypt(
    const FeistelGeometry& g, const RowKeys& keys, std::uint32_t x) noexcept {
  std::uint32_t left = x >> g.half_bits;
  std::uint32_t right = x & g.half_mask;
  for (const std::uint64_t key : keys.k) {
    const std::uint32_t next = left ^ feistel_round(right, key, g);
    left = right;
    right = next;
  }
  return (left << g.half_bits) | right;
}

/// One decryption pass (exact inverse of feistel_encrypt).
[[nodiscard]] constexpr std::uint32_t feistel_decrypt(
    const FeistelGeometry& g, const RowKeys& keys, std::uint32_t y) noexcept {
  std::uint32_t left = y >> g.half_bits;
  std::uint32_t right = y & g.half_mask;
  for (int r = 3; r >= 0; --r) {
    const std::uint32_t prev = right ^ feistel_round(left, keys.k[r], g);
    right = left;
    left = prev;
  }
  return (left << g.half_bits) | right;
}

/// forward(x) for x in [0, n): the permutation value, cycle-walked back into
/// [0, n). Terminates because the network permutes the finite domain and the
/// cycle through x re-enters [0, n) at the latest back at x itself.
[[nodiscard]] constexpr Index prp_forward(const FeistelGeometry& g,
                                          const RowKeys& keys,
                                          Index x) noexcept {
  std::uint32_t v = static_cast<std::uint32_t>(x);
  do {
    v = feistel_encrypt(g, keys, v);
  } while (v >= static_cast<std::uint32_t>(g.n));
  return static_cast<Index>(v);
}

/// inverse(y) for y in [0, n): prp_forward's exact inverse (walks the same
/// cycle in the opposite direction).
[[nodiscard]] constexpr Index prp_inverse(const FeistelGeometry& g,
                                          const RowKeys& keys,
                                          Index y) noexcept {
  std::uint32_t v = static_cast<std::uint32_t>(y);
  do {
    v = feistel_decrypt(g, keys, v);
  } while (v >= static_cast<std::uint32_t>(g.n));
  return static_cast<Index>(v);
}

}  // namespace kstable::prefs::imp
