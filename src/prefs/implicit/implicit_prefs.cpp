#include "prefs/implicit/implicit_prefs.hpp"

namespace kstable::prefs::imp {

const char* to_string(Family family) noexcept {
  switch (family) {
    case Family::uniform: return "uniform";
    case Family::cyclic: return "cyclic";
  }
  return "unknown";
}

bool parse_family(std::string_view text, Family& out) noexcept {
  if (text == "uniform") {
    out = Family::uniform;
    return true;
  }
  if (text == "cyclic") {
    out = Family::cyclic;
    return true;
  }
  return false;
}

}  // namespace kstable::prefs::imp
