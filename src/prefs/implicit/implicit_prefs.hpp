// Implicit (generator-backed) preference families: preference entries and
// ranks computed in O(1) from a seed, never stored
// (docs/PERFORMANCE.md §Implicit preferences).
//
// An ImplicitPrefs value replaces both arena tables of a KPartiteInstance:
// it answers the two table queries —
//
//   pref_in(row, r)  — the r-th choice of the row's member        (pref table)
//   rank_in(row, t)  — the rank of member t in the row's list     (rank table)
//
// — from a handful of 64-bit words. Two families:
//
//   * Family::uniform — each (member, target-gender) row is an independent
//     seeded Feistel permutation (prefs/implicit/feistel.hpp). This is the
//     uniform-random instance family of the Mertens experiment
//     (cond-mat/0509221): distributionally the same instances gen::uniform
//     materializes, at O(1) memory per row.
//   * Family::cyclic  — the structured/identity family: member x's list over
//     any other gender is x, x+1, ..., x-1 (mod n). Closed-form rank, a
//     worst-case-free "everyone nearly agrees" workload, and a cheap
//     smoke-test family whose lists are human-predictable.
//
// A Row handle caches one row's derived keys the way the explicit engines
// hoist one row pointer: derive once per proposal (responder side), then
// rank_in is a pure PRP inversion.
#pragma once

#include <string_view>

#include "prefs/ids.hpp"
#include "prefs/implicit/feistel.hpp"

namespace kstable::prefs::imp {

/// Implicit preference family selector.
enum class Family : std::uint8_t {
  uniform,  ///< independent seeded PRP per row
  cyclic,   ///< pref(x, r) = (x + r) mod n, rank(x, t) = (t - x) mod n
};

[[nodiscard]] const char* to_string(Family family) noexcept;
/// Parses "uniform"/"cyclic"; returns false on anything else.
bool parse_family(std::string_view text, Family& out) noexcept;

/// Full description of an implicit instance's preference system: the family
/// plus the 64-bit master seed. Two instances with equal specs (and shapes)
/// have identical preference lists.
struct ImplicitSpec {
  Family family = Family::uniform;
  std::uint64_t seed = 0;

  friend bool operator==(const ImplicitSpec&, const ImplicitSpec&) = default;
};

/// The generator: evaluates one instance's preference system on the fly.
/// A value type of a few words — copying an implicit instance is O(1).
class ImplicitPrefs {
 public:
  ImplicitPrefs() = default;
  ImplicitPrefs(ImplicitSpec spec, Gender k, Index n) noexcept
      : spec_(spec), k_(k), n_(n), geom_(feistel_geometry(n)) {}

  /// One (member, target-gender) row: the derived permutation keys plus the
  /// member index (the cyclic family's closed form needs only the latter).
  struct Row {
    RowKeys keys;
    Index member = 0;
  };

  /// Row handle for member m's list over gender g. Requires valid m, g
  /// (g != m.gender) — callers are the instance's checked accessors and the
  /// engines, which validate the gender pair once per solve.
  [[nodiscard]] Row row(MemberId m, Gender g) const noexcept {
    Row out;
    out.member = m.index;
    if (spec_.family == Family::uniform) {
      out.keys = derive_row_keys(spec_.seed, flat_row(m, g));
    }
    return out;
  }

  /// The rank-r entry of the row's list, in O(1).
  [[nodiscard]] Index pref_in(const Row& row, Index rank) const noexcept {
    if (spec_.family == Family::cyclic) {
      const Index sum = row.member + rank;
      return sum >= n_ ? sum - n_ : sum;
    }
    return prp_forward(geom_, row.keys, rank);
  }

  /// The rank of member `target` in the row's list, in O(1).
  [[nodiscard]] Index rank_in(const Row& row, Index target) const noexcept {
    if (spec_.family == Family::cyclic) {
      const Index diff = target - row.member;
      return diff < 0 ? diff + n_ : diff;
    }
    return prp_inverse(geom_, row.keys, target);
  }

  /// Convenience forms that derive the row handle per call.
  [[nodiscard]] Index pref(MemberId m, Gender g, Index rank) const noexcept {
    return pref_in(row(m, g), rank);
  }
  [[nodiscard]] Index rank(MemberId m, Gender g, Index target) const noexcept {
    return rank_in(row(m, g), target);
  }

  [[nodiscard]] const ImplicitSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const FeistelGeometry& geometry() const noexcept {
    return geom_;
  }

 private:
  /// Flat row id, matching KPartiteInstance::row_base's row indexing (the
  /// k-1 other-gender rows of flat member m.gender·n + m.index).
  [[nodiscard]] std::uint64_t flat_row(MemberId m, Gender g) const noexcept {
    const std::uint64_t flat = static_cast<std::uint64_t>(m.gender) *
                                   static_cast<std::uint64_t>(n_) +
                               static_cast<std::uint64_t>(m.index);
    const std::uint64_t slot =
        static_cast<std::uint64_t>(g) - static_cast<std::uint64_t>(g > m.gender);
    return flat * static_cast<std::uint64_t>(k_ - 1) + slot;
  }

  ImplicitSpec spec_{};
  Gender k_ = 0;
  Index n_ = 0;
  FeistelGeometry geom_{};
};

}  // namespace kstable::prefs::imp
