// PrefView: the per-backend preference accessors the GS engines monomorphize
// on (docs/PERFORMANCE.md §Implicit preferences).
//
// The engines' hot loops need exactly four operations for one oriented
// gender pair (i proposes to j):
//
//   pref_at(p, c)        — proposer p's c-th choice
//   resp_row(r)          — a hoisted handle for responder r's rank row
//   rank_in(row, p)      — p's rank with responder r (the accept/reject load)
//   resp_pref_in(row, c) — responder r's c-th choice (scan engines only)
//
// ExplicitView<R> implements them as the raw-pointer arithmetic the engines
// used to inline directly (one row-base multiply per proposal, typed rank
// loads, real software prefetches) — the explicit backend keeps its
// zero-overhead path, checked by the E19 baseline gate. ImplicitView
// implements them as O(1) generator evaluations (prefs/implicit/feistel.hpp)
// with no-op prefetches (there is no memory to warm). with_pref_view()
// performs the one dispatch per solve; everything inside is monomorphized.
#pragma once

#include <span>

#include "prefs/kpartite.hpp"

namespace kstable::prefs {

/// Read-mostly prefetch (mirrors gs/simd.hpp's prefetch_ro; duplicated here
/// so the prefs layer stays below gs in the dependency order).
inline void view_prefetch_ro(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

/// Arena-table view, monomorphized on the stored rank type R. Construction
/// hoists the three row bases the old engine code computed inline; all
/// accessors compile to the identical loads.
template <typename R>
class ExplicitView {
 public:
  using Rank = R;
  /// Hoisted responder row: the rank row for the accept/reject compare plus
  /// the pref row for the scan engines' list walks.
  struct RespRow {
    const R* ranks;
    const Index* prefs;
  };
  /// Responder pref rows are contiguous memory (the SIMD scan kernel's
  /// requirement); ImplicitView says false and scan_simd falls back to the
  /// generic walk there.
  static constexpr bool kContiguousRows = true;

  ExplicitView(const KPartiteInstance& inst, Gender i, Gender j) noexcept
      : pref_(inst.pref_row({i, 0}, j).data()),
        resp_pref_(inst.pref_row({j, 0}, i).data()),
        resp_rank_(inst.rank_base<R>() + inst.row_base({j, 0}, i)),
        stride_(static_cast<std::size_t>(inst.genders() - 1) *
                static_cast<std::size_t>(inst.per_gender())) {}

  [[nodiscard]] Index pref_at(Index p, Index c) const noexcept {
    return pref_[static_cast<std::size_t>(p) * stride_ +
                 static_cast<std::size_t>(c)];
  }
  [[nodiscard]] RespRow resp_row(Index r) const noexcept {
    const std::size_t off = static_cast<std::size_t>(r) * stride_;
    return {resp_rank_ + off, resp_pref_ + off};
  }
  [[nodiscard]] static Rank rank_in(const RespRow& row, Index p) noexcept {
    return row.ranks[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] static Index resp_pref_in(const RespRow& row,
                                          Index c) noexcept {
    return row.prefs[static_cast<std::size_t>(c)];
  }
  /// Responder r's whole pref row, for the vectorized first-of-pair kernel.
  [[nodiscard]] std::span<const Index> resp_pref_span(Index r,
                                                      Index n) const noexcept {
    return {resp_pref_ + static_cast<std::size_t>(r) * stride_,
            static_cast<std::size_t>(n)};
  }

  void prefetch_pref(Index p, Index c) const noexcept {
    view_prefetch_ro(pref_ + static_cast<std::size_t>(p) * stride_ +
                     static_cast<std::size_t>(c));
  }
  static void prefetch_rank(const RespRow& row, Index p) noexcept {
    view_prefetch_ro(row.ranks + static_cast<std::size_t>(p));
  }

 private:
  const Index* pref_;       ///< pref row base of proposer (i, 0) over j
  const Index* resp_pref_;  ///< pref row base of responder (j, 0) over i
  const R* resp_rank_;      ///< rank row base of responder (j, 0) over i
  std::size_t stride_;      ///< (k-1)·n elements between consecutive members
};

/// Generator view: every accessor is an O(1) Feistel evaluation. resp_row
/// derives the responder's round keys once per proposal — the implicit
/// analogue of hoisting the rank-row pointer — and rank_in is then a pure
/// PRP inversion. Ranks surface as uint32_t (any rank < n fits).
class ImplicitView {
 public:
  using Rank = std::uint32_t;
  using RespRow = imp::ImplicitPrefs::Row;
  static constexpr bool kContiguousRows = false;

  ImplicitView(const KPartiteInstance& inst, Gender i, Gender j) noexcept
      : gen_(&inst.implicit_prefs()), i_(i), j_(j) {}

  [[nodiscard]] Index pref_at(Index p, Index c) const noexcept {
    return gen_->pref({i_, p}, j_, c);
  }
  [[nodiscard]] RespRow resp_row(Index r) const noexcept {
    return gen_->row({j_, r}, i_);
  }
  [[nodiscard]] Rank rank_in(const RespRow& row, Index p) const noexcept {
    return static_cast<Rank>(gen_->rank_in(row, p));
  }
  [[nodiscard]] Index resp_pref_in(const RespRow& row, Index c) const noexcept {
    return gen_->pref_in(row, c);
  }

  static void prefetch_pref(Index, Index) noexcept {}
  static void prefetch_rank(const RespRow&, Index) noexcept {}

 private:
  const imp::ImplicitPrefs* gen_;
  Gender i_;
  Gender j_;
};

/// One backend + width dispatch per solve: calls `fn` with the matching
/// monomorphized view. The callable is instantiated for ExplicitView<u16>,
/// ExplicitView<u32>, and ImplicitView.
template <typename Fn>
decltype(auto) with_pref_view(const KPartiteInstance& inst, Gender i, Gender j,
                              Fn&& fn) {
  if (inst.backend() == PrefBackend::implicit_gen) {
    return fn(ImplicitView(inst, i, j));
  }
  if (inst.rank_width() == RankWidth::narrow16) {
    return fn(ExplicitView<std::uint16_t>(inst, i, j));
  }
  return fn(ExplicitView<std::uint32_t>(inst, i, j));
}

}  // namespace kstable::prefs
