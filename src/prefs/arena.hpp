// PrefArena: one extent-granular, cache-line-aligned slab per instance.
//
// The preference and rank tables of a KPartiteInstance used to live in two
// std::vectors sized cell-by-cell. At the large-n scale the ROADMAP targets
// (10^5-10^6 agents) those tables ARE the working set, so their layout is
// managed explicitly, in the style of tarantool's bps_tree/matras allocator
// (SNIPPETS.md): storage is requested in compile-time-sized *extents*
// (KSTABLE_ARENA_EXTENT_BYTES, default 16 KiB), each table is carved out of
// the slab at a 64-byte boundary, and the whole instance owns exactly one
// allocation — no per-row vectors, no interleaved headers, nothing between
// consecutive rows of the hot tables.
//
// Sizing is overflow-checked end to end: every multiply/add that feeds the
// slab size goes through checked_mul/checked_add, and a request that cannot
// be represented throws ParseError (malformed *input* dimensions — the
// caller asked for an instance no machine can hold) instead of wrapping into
// a silently undersized allocation (UB when the tables are then indexed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "resilience/errors.hpp"

namespace kstable::prefs {

/// Compile-time extent (block) size of the arena, in bytes. Tunable the same
/// way bps_tree tunes its block size: -DKSTABLE_ARENA_EXTENT_BYTES=<n> at
/// configure time. Must be a power of two and a multiple of the 64-byte
/// carve alignment; 16 KiB matches matras' default extent and keeps slack
/// under 0.1% for every instance above n ≈ 64.
#ifndef KSTABLE_ARENA_EXTENT_BYTES
#define KSTABLE_ARENA_EXTENT_BYTES 16384
#endif
inline constexpr std::size_t kArenaExtentBytes = KSTABLE_ARENA_EXTENT_BYTES;
static_assert((kArenaExtentBytes & (kArenaExtentBytes - 1)) == 0,
              "KSTABLE_ARENA_EXTENT_BYTES must be a power of two");
static_assert(kArenaExtentBytes >= 64,
              "KSTABLE_ARENA_EXTENT_BYTES must cover one cache line");

/// Carve alignment inside the slab: one x86/ARM cache line, which is also
/// enough for any 512-bit vector load the SIMD scan kernels issue.
inline constexpr std::size_t kArenaAlign = 64;

/// a * b, or throws ParseError if the product does not fit std::size_t.
inline std::size_t checked_mul(std::size_t a, std::size_t b) {
  if (a != 0 && b > SIZE_MAX / a) {
    throw ParseError("instance dimensions too large: size computation "
                     "overflows");
  }
  return a * b;
}

/// a + b, or throws ParseError on std::size_t overflow.
inline std::size_t checked_add(std::size_t a, std::size_t b) {
  if (b > SIZE_MAX - a) {
    throw ParseError("instance dimensions too large: size computation "
                     "overflows");
  }
  return a + b;
}

/// Rounds `bytes` up to the next multiple of `granule` (a power of two),
/// overflow-checked.
inline std::size_t round_up(std::size_t bytes, std::size_t granule) {
  return checked_add(bytes, granule - 1) & ~(granule - 1);
}

/// True when KSTABLE_ARENA_HUGEPAGES=1 (checked once per process): newly
/// allocated slabs are advised MADV_HUGEPAGE so the kernel backs them with
/// transparent huge pages where it can. Opt-in because THP helps the big
/// sequential rank tables (fewer dTLB misses on the random-probe side; see
/// docs/PERFORMANCE.md §Huge pages) but can cost latency/memory on small
/// instances. No-op on non-Linux builds and when the env var is unset.
inline bool arena_hugepages_requested() noexcept {
#if defined(__linux__)
  static const bool requested = [] {
    const char* env = std::getenv("KSTABLE_ARENA_HUGEPAGES");
    return env != nullptr && env[0] == '1' && env[1] == '\0';
  }();
  return requested;
#else
  return false;
#endif
}

/// Advises [addr, addr+bytes) toward transparent huge pages. madvise needs
/// page-aligned addresses and the slab is only 64-byte aligned, so only the
/// page-aligned interior range is advised; failure (old kernel, THP disabled
/// system-wide) is deliberately ignored — the knob is advisory.
inline void arena_advise_hugepages(std::byte* addr,
                                   std::size_t bytes) noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t first = (lo + page - 1) & ~(page - 1);
  const std::uintptr_t last = (lo + bytes) & ~(page - 1);
  if (last > first) {
    (void)::madvise(reinterpret_cast<void*>(first), last - first,
                    MADV_HUGEPAGE);
  }
#else
  (void)addr;
  (void)bytes;
#endif
}

/// One aligned slab, allocated once at construction. Copy duplicates the
/// bytes (instances are value types: the catalog and the shrinker copy
/// them); move steals the slab. Never grows: an arena is sized for exactly
/// one instance shape for its whole lifetime.
class PrefArena {
 public:
  PrefArena() = default;

  /// Allocates round_up(bytes, extent) zero-initialized bytes at 64-byte
  /// alignment. Throws ParseError if the rounding overflows and
  /// std::bad_alloc if the machine refuses.
  explicit PrefArena(std::size_t bytes)
      : bytes_(round_up(bytes, kArenaExtentBytes)) {
    if (bytes_ == 0) bytes_ = kArenaExtentBytes;
    slab_.reset(static_cast<std::byte*>(
        ::operator new(bytes_, std::align_val_t{kArenaAlign})));
    if (arena_hugepages_requested()) {
      arena_advise_hugepages(slab_.get(), bytes_);
    }
    std::memset(slab_.get(), 0, bytes_);
  }

  PrefArena(const PrefArena& other) : bytes_(other.bytes_) {
    if (other.slab_ != nullptr) {
      slab_.reset(static_cast<std::byte*>(
          ::operator new(bytes_, std::align_val_t{kArenaAlign})));
      if (arena_hugepages_requested()) {
        arena_advise_hugepages(slab_.get(), bytes_);
      }
      std::memcpy(slab_.get(), other.slab_.get(), bytes_);
    }
  }
  PrefArena& operator=(const PrefArena& other) {
    if (this != &other) *this = PrefArena(other);  // copy, then move in
    return *this;
  }
  PrefArena(PrefArena&&) noexcept = default;
  PrefArena& operator=(PrefArena&&) noexcept = default;

  /// Extent-rounded slab size (0 for a default-constructed arena).
  [[nodiscard]] std::size_t capacity() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t extents() const noexcept {
    return bytes_ / kArenaExtentBytes;
  }

  /// Typed pointer to `offset` bytes into the slab. The offset must be
  /// 64-byte aligned (carves are laid out that way by the owner).
  template <typename T>
  [[nodiscard]] T* at(std::size_t offset) noexcept {
    return reinterpret_cast<T*>(slab_.get() + offset);
  }
  template <typename T>
  [[nodiscard]] const T* at(std::size_t offset) const noexcept {
    return reinterpret_cast<const T*>(slab_.get() + offset);
  }

  [[nodiscard]] const std::byte* raw() const noexcept { return slab_.get(); }

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(p, std::align_val_t{kArenaAlign});
    }
  };
  std::size_t bytes_ = 0;
  std::unique_ptr<std::byte[], AlignedDelete> slab_;
};

}  // namespace kstable::prefs
