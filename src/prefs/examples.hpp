// Exact instances from the paper's worked examples (KPartiteInstance form).
//
// The combined-ranking examples of §III.B (roommate-style lists over mixed
// genders) live in roommates/examples.hpp, since they are inputs to the
// stable-roommates solver rather than per-gender preference systems.
#pragma once

#include "prefs/kpartite.hpp"

namespace kstable::examples {

/// Gender labels used by every paper example: M = 0, W = 1, U = 2.
inline constexpr Gender kMen = 0;
inline constexpr Gender kWomen = 1;
inline constexpr Gender kUndecided = 2;

/// Example 1, first preference set (§II.A): both men rank w first; both women
/// rank m' first. GS (men propose) yields (m', w), (m, w').
KPartiteInstance example1_first();

/// Example 1, second preference set (§II.A): m:w>w', m':w'>w, w:m'>m,
/// w':m>m'. Two stable matchings exist; GS with men proposing yields the
/// man-optimal (m, w), (m', w'); women proposing yields (m, w'), (m', w).
KPartiteInstance example1_second();

/// Fig. 3 instance (§IV.A): tripartite, two members per gender, consistent
/// with every constraint the text states — GS(M,W) binds (m,w),(m',w');
/// GS(W,U) binds (w,u),(w',u'); both u and u' rank m above m'; m ranks u'
/// above u while m' ranks u above u'.
KPartiteInstance fig3_instance();

}  // namespace kstable::examples
