// Instance generators for balanced complete k-partite preference systems.
//
// Every generator is deterministic given its Rng, so all experiments replay
// from a seed. The adversarial generators encode the constructive proofs of
// the paper (Theorem 1 non-existence construction; §IV.B cycle preferences).
#pragma once

#include <cstdint>

#include "prefs/kpartite.hpp"
#include "util/rng.hpp"

namespace kstable::gen {

/// Uniform instance: every preference list is an independent uniformly random
/// permutation.
KPartiteInstance uniform(Gender k, Index n, Rng& rng);

/// Master-list instance: within each (observer gender, target gender) pair,
/// *all* observers share one global random order. Degenerate but useful: GS
/// then terminates after exactly n(n+1)/2 proposals and every matching
/// algorithm has a unique stable outcome.
KPartiteInstance master_list(Gender k, Index n, Rng& rng);

/// Popularity-biased instance. Each member gets an attractiveness score;
/// each observer ranks a target gender by score plus personal noise of
/// magnitude `noise` (0 = identical master lists, large = uniform-like).
/// Models the correlated preferences common in real matching markets.
KPartiteInstance popularity(Gender k, Index n, Rng& rng, double noise);

/// Euclidean instance: every member is a random point in the unit
/// d-dimensional cube and ranks a target gender by increasing distance.
/// Preferences are strongly correlated AND mutually consistent (if a is very
/// close to b, b is very close to a) — a geometry common in real matching
/// markets (location-based assignment). Ties are broken by index.
KPartiteInstance euclidean(Gender k, Index n, std::int32_t dims, Rng& rng);

/// Tiered instance: members are split into `tiers` quality tiers (tier 0 is
/// best). Every observer ranks whole tiers in order and shuffles within each
/// tier independently — a middle ground between master_list (one tier per
/// member) and uniform (a single tier).
KPartiteInstance tiered(Gender k, Index n, std::int32_t tiers, Rng& rng);

/// Per-gender scaffold of the Theorem 1 adversarial construction (§III.A):
///  (1) member (pariah_gender, 0) is ranked last (within its gender's lists)
///      by every other member;
///  (2) the members of the remaining k-1 genders sit on a gender-alternating
///      cycle and rank their successor first within that gender's list.
/// Remaining positions are filled randomly from `rng`. Requires k > 2.
///
/// NOTE: binary-matching stability in §III is defined over COMBINED rankings
/// (one total order per member across all other genders); this per-gender
/// instance only guarantees the construction's properties within each
/// per-gender list, so a linearization may or may not preserve the
/// no-stable-matching property. The guaranteed-unstable combined form is
/// core::theorem1_adversarial_roommates(). This scaffold exists for
/// experiments on how linearizations interact with adversarial structure (E2).
KPartiteInstance theorem1_adversarial(Gender k, Index n, Rng& rng,
                                      Gender pariah_gender = 0);

/// §IV.B cycle preferences (k = 3, n = 2): the paper's witness that a binding
/// *cycle* (three binary bindings M-W, W-U, U-M) cannot all be stable
/// simultaneously — used by the Theorem 4 tightness experiment (E6).
KPartiteInstance theorem4_cycle_prefs();

/// Applies `swaps` random adjacent transpositions across random preference
/// lists of `inst` — perturbation operator for property tests.
void swap_noise(KPartiteInstance& inst, Rng& rng, std::int64_t swaps);

}  // namespace kstable::gen
