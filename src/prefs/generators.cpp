#include "prefs/generators.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace kstable::gen {

KPartiteInstance uniform(Gender k, Index n, Rng& rng) {
  KPartiteInstance inst(k, n);
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        const auto perm = rng.permutation(n);
        inst.set_pref_list({g, i}, h, perm);
      }
    }
  }
  return inst;
}

KPartiteInstance master_list(Gender k, Index n, Rng& rng) {
  KPartiteInstance inst(k, n);
  for (Gender g = 0; g < k; ++g) {
    for (Gender h = 0; h < k; ++h) {
      if (h == g) continue;
      const auto shared = rng.permutation(n);
      for (Index i = 0; i < n; ++i) inst.set_pref_list({g, i}, h, shared);
    }
  }
  return inst;
}

KPartiteInstance popularity(Gender k, Index n, Rng& rng, double noise) {
  KSTABLE_REQUIRE(noise >= 0.0, "noise must be non-negative, got " << noise);
  KPartiteInstance inst(k, n);
  // One global attractiveness score per member.
  std::vector<std::vector<double>> score(static_cast<std::size_t>(k));
  for (auto& s : score) {
    s.resize(static_cast<std::size_t>(n));
    for (auto& v : s) v = rng.uniform01();
  }
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::vector<double> key(static_cast<std::size_t>(n));
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        for (Index t = 0; t < n; ++t) {
          key[static_cast<std::size_t>(t)] =
              score[static_cast<std::size_t>(h)][static_cast<std::size_t>(t)] +
              noise * rng.uniform01();
        }
        std::iota(order.begin(), order.end(), Index{0});
        std::sort(order.begin(), order.end(), [&](Index a, Index b) {
          const double ka = key[static_cast<std::size_t>(a)];
          const double kb = key[static_cast<std::size_t>(b)];
          return ka != kb ? ka > kb : a < b;  // higher score = better rank
        });
        inst.set_pref_list({g, i}, h, order);
      }
    }
  }
  return inst;
}

KPartiteInstance euclidean(Gender k, Index n, std::int32_t dims, Rng& rng) {
  KSTABLE_REQUIRE(dims >= 1, "need at least one dimension, got " << dims);
  KPartiteInstance inst(k, n);
  // points[g][i] is member (g, i)'s position in the unit cube.
  std::vector<std::vector<std::vector<double>>> points(
      static_cast<std::size_t>(k));
  for (auto& gender_points : points) {
    gender_points.resize(static_cast<std::size_t>(n));
    for (auto& p : gender_points) {
      p.resize(static_cast<std::size_t>(dims));
      for (auto& coordinate : p) coordinate = rng.uniform01();
    }
  }
  auto squared_distance = [dims](const std::vector<double>& a,
                                 const std::vector<double>& b) {
    double sum = 0;
    for (std::int32_t d = 0; d < dims; ++d) {
      const double delta = a[static_cast<std::size_t>(d)] -
                           b[static_cast<std::size_t>(d)];
      sum += delta * delta;
    }
    return sum;
  };
  std::vector<Index> order(static_cast<std::size_t>(n));
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      const auto& self = points[static_cast<std::size_t>(g)]
                               [static_cast<std::size_t>(i)];
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        std::iota(order.begin(), order.end(), Index{0});
        std::sort(order.begin(), order.end(), [&](Index a, Index b) {
          const double da = squared_distance(
              self, points[static_cast<std::size_t>(h)]
                          [static_cast<std::size_t>(a)]);
          const double db = squared_distance(
              self, points[static_cast<std::size_t>(h)]
                          [static_cast<std::size_t>(b)]);
          return da != db ? da < db : a < b;
        });
        inst.set_pref_list({g, i}, h, order);
      }
    }
  }
  return inst;
}

KPartiteInstance tiered(Gender k, Index n, std::int32_t tiers, Rng& rng) {
  KSTABLE_REQUIRE(tiers >= 1 && tiers <= n,
                  "tier count " << tiers << " invalid for n=" << n);
  KPartiteInstance inst(k, n);
  // tier_members[g][t]: the members of gender g in quality tier t (tiers are
  // roughly balanced; tier assignment is a random permutation per gender).
  std::vector<std::vector<std::vector<Index>>> tier_members(
      static_cast<std::size_t>(k));
  for (Gender g = 0; g < k; ++g) {
    auto perm = rng.permutation(n);
    tier_members[static_cast<std::size_t>(g)].resize(
        static_cast<std::size_t>(tiers));
    for (Index i = 0; i < n; ++i) {
      const auto tier = static_cast<std::size_t>(
          (static_cast<std::int64_t>(i) * tiers) / n);
      tier_members[static_cast<std::size_t>(g)][tier].push_back(
          perm[static_cast<std::size_t>(i)]);
    }
  }
  std::vector<Index> order;
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        order.clear();
        for (auto tier : tier_members[static_cast<std::size_t>(h)]) {
          rng.shuffle(tier);  // personal order within the tier
          order.insert(order.end(), tier.begin(), tier.end());
        }
        inst.set_pref_list({g, i}, h, order);
      }
    }
  }
  return inst;
}

KPartiteInstance theorem1_adversarial(Gender k, Index n, Rng& rng,
                                      Gender pariah_gender) {
  KSTABLE_REQUIRE(k > 2, "Theorem 1 construction needs k > 2, got k=" << k);
  KSTABLE_REQUIRE(pariah_gender >= 0 && pariah_gender < k,
                  "pariah gender " << pariah_gender << " out of range");
  KPartiteInstance inst = uniform(k, n, rng);
  const MemberId pariah{pariah_gender, 0};

  // (1) Everyone ranks the pariah last: move index 0 of the pariah gender to
  // the back of every list over that gender.
  for (Gender g = 0; g < k; ++g) {
    if (g == pariah_gender) continue;
    for (Index i = 0; i < n; ++i) {
      const auto cur = inst.pref_list({g, i}, pariah_gender);
      std::vector<Index> order(cur.begin(), cur.end());
      auto it = std::find(order.begin(), order.end(), pariah.index);
      order.erase(it);
      order.push_back(pariah.index);
      inst.set_pref_list({g, i}, pariah_gender, order);
    }
  }

  // (2) Gender-alternating cycle over all members of the k-1 non-pariah
  // genders, member-major so consecutive entries always differ in gender
  // (k-1 >= 2): (g_0,0), (g_1,0), ..., (g_{k-2},0), (g_0,1), ...
  // Each member ranks its successor first, so each member is ranked first by
  // exactly one member of a different gender — the paper's condition (2).
  std::vector<Gender> others;
  for (Gender g = 0; g < k; ++g) {
    if (g != pariah_gender) others.push_back(g);
  }
  std::vector<MemberId> cycle;
  cycle.reserve(static_cast<std::size_t>(k - 1) * static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    for (Gender g : others) cycle.push_back({g, i});
  }
  for (std::size_t pos = 0; pos < cycle.size(); ++pos) {
    const MemberId from = cycle[pos];
    const MemberId to = cycle[(pos + 1) % cycle.size()];
    KSTABLE_ASSERT(from.gender != to.gender);
    const auto cur = inst.pref_list(from, to.gender);
    std::vector<Index> order(cur.begin(), cur.end());
    auto it = std::find(order.begin(), order.end(), to.index);
    order.erase(it);
    order.insert(order.begin(), to.index);
    inst.set_pref_list(from, to.gender, order);
  }
  return inst;
}

KPartiteInstance theorem4_cycle_prefs() {
  // Paper §IV.B, genders M=0, W=1, U=2, two members each. The listed pair
  // preferences (m: w, m': w, w: m, w': m', w: u, w': u, u: w, u': w',
  // m: u, m': u, u: m', u': m') pin down every 2-member list.
  KPartiteInstance inst(3, 2);
  const Index first = 0, second = 1;
  auto set2 = [&inst](MemberId m, Gender g, Index top) {
    const std::vector<Index> order = top == 0 ? std::vector<Index>{0, 1}
                                              : std::vector<Index>{1, 0};
    inst.set_pref_list(m, g, order);
  };
  const Gender M = 0, W = 1, U = 2;
  set2({M, 0}, W, first);   // m : w
  set2({M, 1}, W, first);   // m': w
  set2({W, 0}, M, first);   // w : m
  set2({W, 1}, M, second);  // w': m'
  set2({W, 0}, U, first);   // w : u
  set2({W, 1}, U, first);   // w': u
  set2({U, 0}, W, first);   // u : w
  set2({U, 1}, W, second);  // u': w'
  set2({M, 0}, U, first);   // m : u
  set2({M, 1}, U, first);   // m': u
  set2({U, 0}, M, second);  // u : m'
  set2({U, 1}, M, second);  // u': m'
  inst.validate();
  return inst;
}

void swap_noise(KPartiteInstance& inst, Rng& rng, std::int64_t swaps) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  if (n < 2) return;
  for (std::int64_t s = 0; s < swaps; ++s) {
    const auto g = static_cast<Gender>(rng.below(static_cast<std::uint64_t>(k)));
    const auto i = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    auto h = static_cast<Gender>(rng.below(static_cast<std::uint64_t>(k - 1)));
    if (h >= g) ++h;
    const auto cur = inst.pref_list({g, i}, h);
    std::vector<Index> order(cur.begin(), cur.end());
    const auto pos =
        static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(n - 1)));
    std::swap(order[pos], order[pos + 1]);
    inst.set_pref_list({g, i}, h, order);
  }
}

}  // namespace kstable::gen
