// CompactRanks: width-adaptive rank storage for the GS hot path.
//
// The rank table answers "what does responder r think of proposer p" — two
// loads and a compare per proposal — and at large n it is the
// memory-bandwidth bottleneck of every engine (E19). A rank is a position in
// a length-n list, so it needs exactly as many bits as n: instances with
// n < 65536 store ranks as std::uint16_t (half the bytes, twice the cache
// coverage) and larger instances fall back to std::uint32_t transparently.
//
// The width is selected per instance at construction and never changes.
// Generic callers read through RankRow (one predictable branch per access);
// the engines dispatch ONCE per solve on RankWidth and run a loop
// monomorphized on the stored type (KPartiteInstance::rank_base<R>()), so
// the per-proposal path has no width branches at all. Both widths produce
// bitwise-identical matchings — pinned by the DiffRunner layout battery.
//
// Unset entries (preference list not yet assigned) hold the all-ones
// sentinel of their width. Only rank_of() maps the sentinel back to the
// legacy "unset" contract; validated hot loops never see it.
#pragma once

#include <cstdint>

namespace kstable::prefs {

/// Storage width of one rank entry.
enum class RankWidth : std::uint8_t {
  narrow16,  ///< std::uint16_t, selected when n < 65536
  wide32,    ///< std::uint32_t fallback for giant instances
};

[[nodiscard]] constexpr const char* to_string(RankWidth width) noexcept {
  return width == RankWidth::narrow16 ? "u16" : "u32";
}

/// Width the constructor picks for n members per gender (the forced-width
/// factory can override to wide32 for ablation benchmarks, never the
/// reverse — narrow16 cannot represent ranks >= 65535).
[[nodiscard]] constexpr RankWidth natural_rank_width(std::int32_t n) noexcept {
  return n < 65536 ? RankWidth::narrow16 : RankWidth::wide32;
}

[[nodiscard]] constexpr std::size_t rank_entry_bytes(RankWidth width) noexcept {
  return width == RankWidth::narrow16 ? sizeof(std::uint16_t)
                                      : sizeof(std::uint32_t);
}

/// All-ones "list unset" sentinel of a width, as the stored unsigned value.
template <typename R>
inline constexpr R kUnsetRank = static_cast<R>(~R{0});

/// Dual-width view of one contiguous rank row (the per-responder row the
/// engines hoist). operator[] costs one perfectly-predicted branch; loops
/// that cannot afford even that use KPartiteInstance::rank_base<R>().
class RankRow {
 public:
  RankRow(const void* base, RankWidth width) noexcept
      : base_(base), width_(width) {}

  /// Stored rank of member i in this row. Unset entries read as the raw
  /// sentinel (65535 / 4294967295), never as a negative number.
  [[nodiscard]] std::int32_t operator[](std::size_t i) const noexcept {
    return width_ == RankWidth::narrow16
               ? static_cast<std::int32_t>(
                     static_cast<const std::uint16_t*>(base_)[i])
               : static_cast<std::int32_t>(
                     static_cast<const std::uint32_t*>(base_)[i]);
  }

  [[nodiscard]] RankWidth width() const noexcept { return width_; }

 private:
  const void* base_;
  RankWidth width_;
};

}  // namespace kstable::prefs
