#include "prefs/ids.hpp"

#include <ostream>

namespace kstable {

std::ostream& operator<<(std::ostream& os, MemberId m) {
  // Genders print as letters (a, b, c, ...) so small examples read like the
  // paper's (m, w, u) notation; indices print as subscript numbers.
  if (m.gender >= 0 && m.gender < 26) {
    os << static_cast<char>('a' + m.gender) << m.index;
  } else {
    os << '(' << m.gender << ',' << m.index << ')';
  }
  return os;
}

}  // namespace kstable
