// Identifier types for members of a k-partite preference system.
//
// A balanced k-partite instance has `k` genders (disjoint sets) with `n`
// members each. A member is addressed either structurally, as (gender, index),
// or by a flat id in [0, k*n) — gender-major — used by union-find and other
// dense per-member arrays.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace kstable {

/// Gender (disjoint-set) identifier in [0, k).
using Gender = std::int32_t;

/// Member index within its gender, in [0, n).
using Index = std::int32_t;

/// Structural member address: (gender, index).
struct MemberId {
  Gender gender = -1;
  Index index = -1;

  friend constexpr auto operator<=>(const MemberId&, const MemberId&) = default;
};

/// Flat id of `m` in a balanced instance with `n` members per gender.
constexpr std::int32_t flat_id(MemberId m, Index n) noexcept {
  return m.gender * n + m.index;
}

/// Inverse of flat_id().
constexpr MemberId member_of(std::int32_t flat, Index n) noexcept {
  return MemberId{flat / n, flat % n};
}

std::ostream& operator<<(std::ostream& os, MemberId m);

}  // namespace kstable
