#include "prefs/examples.hpp"

#include <vector>

namespace kstable::examples {

namespace {

/// Sets a two-member preference list: top = index ranked first.
void set2(KPartiteInstance& inst, MemberId m, Gender g, Index top) {
  const std::vector<Index> order =
      top == 0 ? std::vector<Index>{0, 1} : std::vector<Index>{1, 0};
  inst.set_pref_list(m, g, order);
}

}  // namespace

KPartiteInstance example1_first() {
  KPartiteInstance inst(2, 2);
  set2(inst, {kMen, 0}, kWomen, 0);    // m : w > w'
  set2(inst, {kMen, 1}, kWomen, 0);    // m': w > w'
  set2(inst, {kWomen, 0}, kMen, 1);    // w : m' > m
  set2(inst, {kWomen, 1}, kMen, 1);    // w': m' > m
  inst.validate();
  return inst;
}

KPartiteInstance example1_second() {
  KPartiteInstance inst(2, 2);
  set2(inst, {kMen, 0}, kWomen, 0);    // m : w > w'
  set2(inst, {kMen, 1}, kWomen, 1);    // m': w' > w
  set2(inst, {kWomen, 0}, kMen, 1);    // w : m' > m
  set2(inst, {kWomen, 1}, kMen, 0);    // w': m > m'
  inst.validate();
  return inst;
}

KPartiteInstance fig3_instance() {
  KPartiteInstance inst(3, 2);
  // M over W / W over M: mutual first choices (m,w) and (m',w').
  set2(inst, {kMen, 0}, kWomen, 0);        // m : w > w'
  set2(inst, {kMen, 1}, kWomen, 1);        // m': w' > w
  set2(inst, {kWomen, 0}, kMen, 0);        // w : m > m'
  set2(inst, {kWomen, 1}, kMen, 1);        // w': m' > m
  // W over U / U over W: mutual first choices (w,u) and (w',u').
  set2(inst, {kWomen, 0}, kUndecided, 0);  // w : u > u'
  set2(inst, {kWomen, 1}, kUndecided, 1);  // w': u' > u
  set2(inst, {kUndecided, 0}, kWomen, 0);  // u : w > w'
  set2(inst, {kUndecided, 1}, kWomen, 1);  // u': w' > w
  // M over U / U over M: the text's stated asymmetry.
  set2(inst, {kMen, 0}, kUndecided, 1);    // m : u' > u
  set2(inst, {kMen, 1}, kUndecided, 0);    // m': u > u'
  set2(inst, {kUndecided, 0}, kMen, 0);    // u : m > m'
  set2(inst, {kUndecided, 1}, kMen, 0);    // u': m > m'
  inst.validate();
  return inst;
}

}  // namespace kstable::examples
