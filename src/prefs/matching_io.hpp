// Text serialization for matching results, so pipelines can persist and
// exchange solver outputs.
//
// KaryMatching format:
//   kstable-kary v1
//   <k> <n>
//   family <t> : <idx_gender0> <idx_gender1> ... <idx_gender{k-1}>
// BinaryMatchingKP format:
//   kstable-binary v1
//   <k> <n>
//   pair <flat_a> <flat_b>            (each unordered pair once)
#pragma once

#include <iosfwd>
#include <string>

#include "prefs/matching.hpp"

namespace kstable::io {

void save(const KaryMatching& matching, std::ostream& os);
KaryMatching load_kary(std::istream& is);
std::string to_string(const KaryMatching& matching);
KaryMatching kary_from_string(const std::string& text);

void save(const BinaryMatchingKP& matching, std::ostream& os);
BinaryMatchingKP load_binary(std::istream& is);
std::string to_string(const BinaryMatchingKP& matching);
BinaryMatchingKP binary_from_string(const std::string& text);

}  // namespace kstable::io
