// Tests for the compact memory layout (ISSUE 7 tentpole): width-adaptive
// rank tables (prefs/compact_ranks.hpp), the extent-granular arena slab
// (prefs/arena.hpp), overflow-checked instance sizing, the re-laid-width
// agreement contract, and the SIMD row-scan kernels (gs/simd.hpp) pinned
// against their scalar references.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/binding_structure.hpp"
#include "gs/gale_shapley.hpp"
#include "gs/scan_gs.hpp"
#include "gs/simd.hpp"
#include "prefs/arena.hpp"
#include "prefs/compact_ranks.hpp"
#include "prefs/generators.hpp"
#include "prefs/kpartite.hpp"
#include "resilience/errors.hpp"
#include "util/rng.hpp"
#include "verify/diff_runner.hpp"

namespace kstable {
namespace {

// ------------------------------------------------------------- rank width --

TEST(CompactRanks, NaturalWidthSelection) {
  EXPECT_EQ(prefs::natural_rank_width(1), prefs::RankWidth::narrow16);
  EXPECT_EQ(prefs::natural_rank_width(255), prefs::RankWidth::narrow16);
  EXPECT_EQ(prefs::natural_rank_width(65535), prefs::RankWidth::narrow16);
  EXPECT_EQ(prefs::natural_rank_width(65536), prefs::RankWidth::wide32);
  EXPECT_EQ(prefs::natural_rank_width(1 << 20), prefs::RankWidth::wide32);
  EXPECT_EQ(prefs::rank_entry_bytes(prefs::RankWidth::narrow16), 2u);
  EXPECT_EQ(prefs::rank_entry_bytes(prefs::RankWidth::wide32), 4u);
}

TEST(CompactRanks, InstancePicksNarrowStorageForSmallN) {
  const KPartiteInstance inst(3, 16);
  EXPECT_EQ(inst.rank_width(), prefs::RankWidth::narrow16);
  // k·(k-1)·n·n cells per table; the dead same-gender diagonal rows of the
  // old k·k layout are gone.
  EXPECT_EQ(inst.cells(), std::size_t{3} * 2 * 16 * 16);
  EXPECT_EQ(inst.rank_bytes(), inst.cells() * 2);
  EXPECT_EQ(inst.pref_bytes(), inst.cells() * sizeof(Index));
}

TEST(CompactRanks, NarrowWidthRejectsLargeN) {
  EXPECT_THROW(KPartiteInstance(2, 70000, prefs::RankWidth::narrow16),
               ContractViolation);
}

// The narrow16 boundary, audited cell by cell: ranks live in [0, n), so at
// the largest narrow16 size (n = 65535) the maximum stored rank is 65534 —
// one below the u16 all-ones "unset" sentinel — and no valid rank can ever
// collide with the sentinel at ANY accepted size. n = 65536 is the first
// invalid size and must be rejected exactly there (the width REQUIRE runs
// before the arena allocation, so the throw is cheap even for sizes whose
// tables would be tens of GB).
TEST(CompactRanks, Narrow16BoundaryRanksCannotCollideWithSentinel) {
  static_assert(prefs::kUnsetRank<std::uint16_t> == 65535,
                "u16 sentinel is the all-ones value");
  static_assert(prefs::kUnsetRank<std::uint32_t> == 0xffffffffu,
                "u32 sentinel is the all-ones value");
  // Largest accepted narrow16 size: max rank 65534 != sentinel 65535.
  EXPECT_EQ(prefs::natural_rank_width(65535), prefs::RankWidth::narrow16);
  EXPECT_LT(65535 - 1, static_cast<std::int32_t>(
                           prefs::kUnsetRank<std::uint16_t>));
  // First invalid size, rejected exactly at the boundary.
  EXPECT_EQ(prefs::natural_rank_width(65536), prefs::RankWidth::wide32);
  EXPECT_THROW(KPartiteInstance(2, 65536, prefs::RankWidth::narrow16),
               ContractViolation);
  // The explicit-width ctor accepts the reverse override (wide32 at small n).
  EXPECT_NO_THROW(KPartiteInstance(2, 4, prefs::RankWidth::wide32));
}

TEST(CompactRanks, RelaidRoundTripPreservesContentsAndGeneration) {
  Rng rng(77);
  auto inst = gen::uniform(3, 9, rng);
  inst.swap_pref_entries({0, 2}, 1, 0, 5);
  inst.swap_pref_entries({2, 1}, 0, 3, 4);
  const auto gen_before = inst.generation();
  ASSERT_GT(gen_before, 0u);
  // narrow16 -> wide32 -> narrow16: contents and generation both survive (a
  // relaid copy is semantically equal at the moment of the copy, so the
  // staleness guard must treat it as the same generation).
  const auto wide = KPartiteInstance::relaid(inst, prefs::RankWidth::wide32);
  EXPECT_EQ(wide.generation(), gen_before);
  EXPECT_TRUE(wide == inst);
  const auto back = KPartiteInstance::relaid(wide, prefs::RankWidth::narrow16);
  EXPECT_EQ(back.generation(), gen_before);
  EXPECT_TRUE(back == inst);
  for (Index i = 0; i < 9; ++i) {
    for (Index j = 0; j < 9; ++j) {
      EXPECT_EQ(back.rank_of({0, i}, {1, j}), inst.rank_of({0, i}, {1, j}));
    }
  }
}

TEST(CompactRanks, RankRowViewReadsBothWidths) {
  Rng rng(1200);
  const auto narrow = gen::uniform(2, 20, rng);
  const auto wide = KPartiteInstance::relaid(narrow, prefs::RankWidth::wide32);
  for (Index i = 0; i < 20; ++i) {
    const auto nrow = narrow.rank_row({0, i}, 1);
    const auto wrow = wide.rank_row({0, i}, 1);
    for (Index j = 0; j < 20; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      EXPECT_EQ(nrow[idx], wrow[idx]);
      EXPECT_EQ(nrow[idx], narrow.rank_of({0, i}, {1, j}));
    }
  }
}

// ------------------------------------------------------ overflow-safe size --

TEST(ArenaSizing, CheckedArithmeticThrowsInsteadOfWrapping) {
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(prefs::checked_mul(huge, 4), ParseError);
  EXPECT_THROW(prefs::checked_add(huge * 2, 2), ParseError);
  EXPECT_EQ(prefs::checked_mul(huge, 2), huge * 2);
  EXPECT_EQ(prefs::checked_add(0, 17), 17u);
}

TEST(ArenaSizing, GiantInstanceThrowsParseErrorNotUb) {
  // The old sizing multiplied k·k·n·n straight into size_t: for n near
  // INT32_MAX the product wraps and the constructor would have handed out
  // undersized tables. Now it throws before allocating anything.
  const Index n = std::numeric_limits<Index>::max();
  EXPECT_THROW(KPartiteInstance(4, n), ParseError);
}

TEST(ArenaSizing, SlabIsExtentRoundedAndAligned) {
  const KPartiteInstance inst(2, 10);
  EXPECT_EQ(inst.arena_bytes() % prefs::kArenaExtentBytes, 0u);
  EXPECT_GE(inst.arena_bytes(), inst.pref_bytes() + inst.rank_bytes());
  EXPECT_EQ(prefs::round_up(1, 4096), 4096u);
  EXPECT_EQ(prefs::round_up(4096, 4096), 4096u);
  EXPECT_EQ(prefs::round_up(0, 4096), 0u);
}

TEST(ArenaSizing, HugepageAdviceIsSafeOnAnySlab) {
  // The KSTABLE_ARENA_HUGEPAGES env knob is latched process-wide at first
  // allocation, so this exercises the advice path directly: madvise only
  // touches the page-aligned interior of the 64-byte-aligned slab, ignores
  // kernel refusal, and must leave the bytes untouched on every platform
  // (non-Linux builds compile it to a no-op).
  prefs::PrefArena arena(3 * prefs::kArenaExtentBytes + 7);
  auto* p = arena.at<std::uint8_t>(0);
  for (std::size_t i = 0; i < arena.capacity(); ++i) {
    p[i] = static_cast<std::uint8_t>(i * 31 + 5);
  }
  prefs::arena_advise_hugepages(arena.at<std::byte>(0), arena.capacity());
  for (std::size_t i = 0; i < arena.capacity(); ++i) {
    ASSERT_EQ(p[i], static_cast<std::uint8_t>(i * 31 + 5));
  }
  // Sub-page slivers round to an empty interior range: still a no-op.
  prefs::arena_advise_hugepages(arena.at<std::byte>(64), 128);
  (void)prefs::arena_hugepages_requested();  // env latch is callable anywhere
}

TEST(ArenaSizing, CopyAndMovePreserveContents) {
  Rng rng(1201);
  const auto inst = gen::uniform(3, 12, rng);
  KPartiteInstance copy = inst;  // deep slab copy
  EXPECT_TRUE(copy == inst);
  EXPECT_EQ(copy.rank_of({2, 3}, {0, 7}), inst.rank_of({2, 3}, {0, 7}));
  KPartiteInstance moved = std::move(copy);  // slab steal
  EXPECT_TRUE(moved == inst);
  const auto a = gs::gale_shapley_queue(inst, 0, 2);
  const auto b = gs::gale_shapley_queue(moved, 0, 2);
  EXPECT_EQ(a.proposer_match, b.proposer_match);
}

// ------------------------------------------------------- width agreement --

TEST(WidthAgreement, RelaidInstanceIsSemanticallyEqual) {
  Rng rng(1202);
  const auto narrow = gen::uniform(3, 24, rng);
  ASSERT_EQ(narrow.rank_width(), prefs::RankWidth::narrow16);
  const auto wide = KPartiteInstance::relaid(narrow, prefs::RankWidth::wide32);
  EXPECT_EQ(wide.rank_width(), prefs::RankWidth::wide32);
  EXPECT_TRUE(wide == narrow);
  EXPECT_TRUE(wide.is_complete());
  // And back again.
  const auto renarrowed =
      KPartiteInstance::relaid(wide, prefs::RankWidth::narrow16);
  EXPECT_TRUE(renarrowed == narrow);
  EXPECT_EQ(renarrowed.rank_width(), prefs::RankWidth::narrow16);
}

TEST(WidthAgreement, AllSequentialEnginesBitwiseIdenticalAcrossWidths) {
  Rng rng(1203);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = static_cast<Index>(2 + rng.below(50));
    const auto narrow = gen::uniform(3, n, rng);
    const auto wide =
        KPartiteInstance::relaid(narrow, prefs::RankWidth::wide32);
    for (const GenderEdge edge : {GenderEdge{0, 1}, GenderEdge{2, 0}}) {
      const auto q16 = gs::gale_shapley_queue(narrow, edge.a, edge.b);
      const auto q32 = gs::gale_shapley_queue(wide, edge.a, edge.b);
      EXPECT_EQ(q16.proposer_match, q32.proposer_match) << "n=" << n;
      EXPECT_EQ(q16.proposals, q32.proposals);
      const auto r16 = gs::gale_shapley_rounds(narrow, edge.a, edge.b);
      const auto r32 = gs::gale_shapley_rounds(wide, edge.a, edge.b);
      EXPECT_EQ(r16.proposer_match, r32.proposer_match);
      EXPECT_EQ(r16.rounds, r32.rounds);
      const auto p16 = gs::gale_shapley_prefetch(narrow, edge.a, edge.b);
      const auto p32 = gs::gale_shapley_prefetch(wide, edge.a, edge.b);
      EXPECT_EQ(p16.proposer_match, p32.proposer_match);
      EXPECT_EQ(p16.responder_match, q16.responder_match);
      EXPECT_EQ(p32.proposals, q16.proposals);
    }
  }
}

TEST(WidthAgreement, DiffBatteryPassesOnBothWidths) {
  Rng rng(1204);
  const auto narrow = gen::uniform(3, 10, rng);
  const auto wide = KPartiteInstance::relaid(narrow, prefs::RankWidth::wide32);
  for (const KPartiteInstance* inst : {&narrow, &wide}) {
    const auto result = verify::run_battery(*inst, verify::Shape::kpartite,
                                            {}, verify::Dist::uniform, 1204);
    EXPECT_TRUE(result.mismatches.empty())
        << "width " << prefs::to_string(inst->rank_width()) << ": "
        << (result.mismatches.empty() ? ""
                                      : result.mismatches.front().to_json());
    EXPECT_GT(result.checks, 0);
  }
}

// ------------------------------------------------------------ SIMD kernels --

TEST(SimdKernels, FirstOfPairMatchesScalarExhaustively) {
  Rng rng(1205);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + rng.below(70);
    std::vector<Index> row(len);
    for (auto& v : row) v = static_cast<Index>(rng.below(40));
    const auto a = static_cast<Index>(rng.below(40));
    const auto b = static_cast<Index>(rng.below(40));
    const std::size_t expected =
        gs::simd::first_of_pair_scalar(row.data(), len, a, b);
    EXPECT_EQ(gs::simd::first_of_pair(row.data(), len, a, b), expected)
        << "trial=" << trial << " len=" << len;
#if KSTABLE_SIMD_X86
    if (gs::simd::isa_supported(gs::simd::Isa::sse2)) {
      EXPECT_EQ(gs::simd::first_of_pair_sse2(row.data(), len, a, b), expected);
    }
    if (gs::simd::isa_supported(gs::simd::Isa::avx2)) {
      EXPECT_EQ(gs::simd::first_of_pair_avx2(row.data(), len, a, b), expected);
    }
#endif
  }
}

TEST(SimdKernels, ArgminMatchesScalarOnBothWidths) {
  Rng rng(1206);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + rng.below(100);
    std::vector<std::uint16_t> r16(len);
    std::vector<std::uint32_t> r32(len);
    for (std::size_t i = 0; i < len; ++i) {
      r16[i] = static_cast<std::uint16_t>(rng.below(30));  // ties guaranteed
      r32[i] = static_cast<std::uint32_t>(rng.below(30));
    }
    EXPECT_EQ(gs::simd::argmin_u16(r16.data(), len),
              gs::simd::argmin_scalar(r16.data(), len))
        << "trial=" << trial << " len=" << len;
    EXPECT_EQ(gs::simd::argmin_u32(r32.data(), len),
              gs::simd::argmin_scalar(r32.data(), len))
        << "trial=" << trial << " len=" << len;
  }
}

TEST(SimdKernels, DispatchReportsASupportedIsa) {
  const auto isa = gs::simd::best_isa();
  EXPECT_TRUE(gs::simd::isa_supported(isa));
  EXPECT_STRNE(gs::simd::to_string(isa), "unknown");
}

}  // namespace
}  // namespace kstable
