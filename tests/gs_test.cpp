// Unit & property tests for the Gale-Shapley engines: paper Example 1,
// stability, proposer-optimality, confluence across engines, proposal bounds.
#include <gtest/gtest.h>

#include <tuple>

#include "gs/gale_shapley.hpp"
#include "gs/parallel_gs.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

TEST(GaleShapley, Example1FirstPreferences) {
  // Paper §II.A: men propose; m is rejected by w and ends with w'.
  const auto inst = examples::example1_first();
  const auto result =
      gs::gale_shapley_queue(inst, examples::kMen, examples::kWomen);
  EXPECT_EQ(result.proposer_match[0], 1);  // (m, w')
  EXPECT_EQ(result.proposer_match[1], 0);  // (m', w)
  EXPECT_TRUE(gs::is_stable_binding(inst, result));
}

TEST(GaleShapley, Example1SecondPreferencesManOptimal) {
  // Men propose: (m, w), (m', w') — the man-optimal matching.
  const auto inst = examples::example1_second();
  const auto men_propose =
      gs::gale_shapley_queue(inst, examples::kMen, examples::kWomen);
  EXPECT_EQ(men_propose.proposer_match[0], 0);
  EXPECT_EQ(men_propose.proposer_match[1], 1);
  // Women propose: (m, w'), (m', w) — the woman-optimal matching the paper
  // notes GS cannot produce for men proposing.
  const auto women_propose =
      gs::gale_shapley_queue(inst, examples::kWomen, examples::kMen);
  EXPECT_EQ(women_propose.proposer_match[0], 1);  // w -> m'
  EXPECT_EQ(women_propose.proposer_match[1], 0);  // w' -> m
  EXPECT_TRUE(gs::is_stable_binding(inst, men_propose));
  EXPECT_TRUE(gs::is_stable_binding(inst, women_propose));
}

TEST(GaleShapley, TraceRecordsEvents) {
  const auto inst = examples::example1_first();
  std::vector<gs::ProposalEvent> trace;
  gs::GsOptions options;
  options.trace = &trace;
  const auto result =
      gs::gale_shapley_queue(inst, examples::kMen, examples::kWomen, options);
  EXPECT_EQ(static_cast<std::int64_t>(trace.size()), result.proposals);
  // First proposal: m proposes to w (his first choice) and is accepted.
  EXPECT_EQ(trace[0].proposer, 0);
  EXPECT_EQ(trace[0].responder, 0);
  EXPECT_TRUE(trace[0].accepted);
  // Some later event must displace m (m' outranks him at w).
  bool saw_displacement = false;
  for (const auto& event : trace) saw_displacement |= event.displaced >= 0;
  EXPECT_TRUE(saw_displacement);
}

TEST(GaleShapley, RejectsInvalidGenderArguments) {
  const auto inst = examples::example1_first();
  EXPECT_THROW(gs::gale_shapley_queue(inst, 0, 0), ContractViolation);
  EXPECT_THROW(gs::gale_shapley_queue(inst, 0, 5), ContractViolation);
}

TEST(GaleShapley, MasterListProposalCount) {
  // With one shared list, proposer i (in acceptance order) is accepted after
  // being rejected by all higher-ranked responders: total = n(n+1)/2.
  Rng rng(70);
  const Index n = 16;
  const auto inst = gen::master_list(2, n, rng);
  const auto result = gs::gale_shapley_queue(inst, 0, 1);
  EXPECT_EQ(result.proposals, static_cast<std::int64_t>(n) * (n + 1) / 2);
  EXPECT_TRUE(gs::is_stable_binding(inst, result));
}

TEST(GaleShapley, SingleMemberInstance) {
  Rng rng(71);
  const auto inst = gen::uniform(2, 1, rng);
  const auto result = gs::gale_shapley_queue(inst, 0, 1);
  EXPECT_EQ(result.proposals, 1);
  EXPECT_EQ(result.proposer_match[0], 0);
}

/// Property sweep over (seed, n): all engines stable, identical, and within
/// the n² proposal bound.
class GsPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Index>> {};

TEST_P(GsPropertyTest, EnginesAgreeAndAreStable) {
  const auto [seed, n] = GetParam();
  Rng rng(seed);
  const auto inst = gen::uniform(2, n, rng);

  const auto queue = gs::gale_shapley_queue(inst, 0, 1);
  const auto rounds = gs::gale_shapley_rounds(inst, 0, 1);
  ThreadPool pool(4);
  const auto parallel = gs::gale_shapley_parallel(inst, 0, 1, pool, 8);

  // Confluence: the proposer-optimal matching is engine-independent.
  EXPECT_EQ(queue.proposer_match, rounds.proposer_match);
  EXPECT_EQ(queue.proposer_match, parallel.proposer_match);
  EXPECT_EQ(queue.proposals, rounds.proposals);

  EXPECT_TRUE(gs::is_stable_binding(inst, queue));
  EXPECT_LE(queue.proposals, static_cast<std::int64_t>(n) * n);
  EXPECT_GE(queue.proposals, n);  // everyone proposes at least once
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GsPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values(Index{2}, Index{3}, Index{8},
                                         Index{33}, Index{64})));

/// Proposer-optimality: every proposer weakly prefers the GS outcome to any
/// other stable matching (checked by exhaustive enumeration for small n).
TEST(GaleShapley, ProposerOptimalAgainstAllStableMatchings) {
  Rng rng(80);
  for (int trial = 0; trial < 30; ++trial) {
    const Index n = 5;
    const auto inst = gen::uniform(2, n, rng);
    const auto result = gs::gale_shapley_queue(inst, 0, 1);
    // Enumerate all perfect matchings (permutations) and keep the stable ones.
    std::vector<Index> perm(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    do {
      bool stable = true;
      for (Index p = 0; p < n && stable; ++p) {
        for (Index r = 0; r < n && stable; ++r) {
          if (perm[static_cast<std::size_t>(p)] == r) continue;
          const bool p_wants =
              inst.prefers({0, p}, {1, r}, {1, perm[static_cast<std::size_t>(p)]});
          // Find r's partner.
          Index rp = -1;
          for (Index q = 0; q < n; ++q) {
            if (perm[static_cast<std::size_t>(q)] == r) rp = q;
          }
          const bool r_wants = inst.prefers({1, r}, {0, p}, {0, rp});
          if (p_wants && r_wants) stable = false;
        }
      }
      if (stable) {
        for (Index p = 0; p < n; ++p) {
          const Index gs_rank =
              inst.rank_of({0, p}, {1, result.proposer_match[static_cast<std::size_t>(p)]});
          const Index other_rank =
              inst.rank_of({0, p}, {1, perm[static_cast<std::size_t>(p)]});
          EXPECT_LE(gs_rank, other_rank)
              << "proposer " << p << " does better in another stable matching";
        }
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(ParallelGs, MatchesSequentialAcrossThreadCountsAndChunks) {
  Rng rng(90);
  const auto inst = gen::uniform(2, 64, rng);
  const auto reference = gs::gale_shapley_queue(inst, 0, 1);
  for (const std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    for (const std::size_t chunk : {1u, 3u, 64u, 1024u}) {
      const auto parallel = gs::gale_shapley_parallel(inst, 0, 1, pool, chunk);
      EXPECT_EQ(parallel.proposer_match, reference.proposer_match)
          << "threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST(ParallelGs, WorksOnNonAdjacentGenderPair) {
  Rng rng(91);
  const auto inst = gen::uniform(4, 10, rng);
  ThreadPool pool(2);
  const auto parallel = gs::gale_shapley_parallel(inst, 3, 1, pool);
  const auto reference = gs::gale_shapley_queue(inst, 3, 1);
  EXPECT_EQ(parallel.proposer_match, reference.proposer_match);
}

TEST(ParallelGs, RejectsZeroChunk) {
  Rng rng(92);
  const auto inst = gen::uniform(2, 4, rng);
  ThreadPool pool(1);
  EXPECT_THROW(gs::gale_shapley_parallel(inst, 0, 1, pool, 0),
               ContractViolation);
}

TEST(RoundEngine, RoundCountIsReasonable) {
  Rng rng(93);
  const auto inst = gen::uniform(2, 32, rng);
  const auto result = gs::gale_shapley_rounds(inst, 0, 1);
  EXPECT_GE(result.rounds, 1);
  EXPECT_LE(result.rounds, result.proposals);
}

TEST(StabilityCheck, DetectsBlockingPair) {
  // Build an unstable matching by hand on Example 1's second preferences:
  // (m, w'), (m', w) is stable; (m, w), (m', w') is stable; but under the
  // FIRST preference set, (m, w), (m', w') is blocked by (m', w).
  const auto inst = examples::example1_first();
  gs::GsResult fake;
  fake.proposer_gender = examples::kMen;
  fake.responder_gender = examples::kWomen;
  fake.proposer_match = {0, 1};  // (m, w), (m', w')
  fake.responder_match = {0, 1};
  EXPECT_FALSE(gs::is_stable_binding(inst, fake));
}

TEST(StabilityCheck, RejectsPartialMatching) {
  const auto inst = examples::example1_first();
  gs::GsResult fake;
  fake.proposer_gender = examples::kMen;
  fake.responder_gender = examples::kWomen;
  fake.proposer_match = {-1, 1};
  fake.responder_match = {-1, 1};
  EXPECT_FALSE(gs::is_stable_binding(inst, fake));
}

}  // namespace
}  // namespace kstable
