// Tests for the Theorem 1 constructions (§III.A): perfect matchings always
// exist for even node counts; adversarial preferences kill stability for
// k > 2.
#include <gtest/gtest.h>

#include "analysis/oracle.hpp"
#include "core/existence.hpp"
#include "roommates/solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

TEST(PerfectMatching, EvenKPairsGenders) {
  const auto m = theorem1_perfect_matching(4, 3);
  for (Index i = 0; i < 3; ++i) {
    EXPECT_EQ(m.partner({0, i}), (MemberId{1, i}));
    EXPECT_EQ(m.partner({2, i}), (MemberId{3, i}));
  }
}

TEST(PerfectMatching, OddKUsesHalfSplit) {
  const auto m = theorem1_perfect_matching(3, 4);
  // First half of gender g pairs with second half of gender g+1 (mod 3).
  EXPECT_EQ(m.partner({0, 0}), (MemberId{1, 2}));
  EXPECT_EQ(m.partner({0, 1}), (MemberId{1, 3}));
  EXPECT_EQ(m.partner({1, 0}), (MemberId{2, 2}));
  EXPECT_EQ(m.partner({2, 0}), (MemberId{0, 2}));
  // Construction validated by BinaryMatchingKP (involution, cross-gender).
}

TEST(PerfectMatching, VariousSizesValidate) {
  for (const auto& [k, n] : std::vector<std::pair<Gender, Index>>{
           {2, 1}, {2, 7}, {3, 2}, {3, 8}, {4, 5}, {5, 4}, {6, 3}, {7, 2}}) {
    EXPECT_NO_THROW(theorem1_perfect_matching(k, n)) << k << 'x' << n;
  }
}

TEST(PerfectMatching, RejectsOddNodeCounts) {
  EXPECT_THROW(theorem1_perfect_matching(3, 3), ContractViolation);
  EXPECT_THROW(theorem1_perfect_matching(5, 1), ContractViolation);
}

TEST(Adversarial, RequiresKGreaterThan2) {
  Rng rng(500);
  EXPECT_THROW(theorem1_adversarial_roommates(2, 3, rng), ContractViolation);
}

TEST(Adversarial, StructuralProperties) {
  Rng rng(501);
  const Gender k = 4;
  const Index n = 3;
  const auto inst = theorem1_adversarial_roommates(k, n, rng, 1);
  const rm::Person pariah = flat_id({1, 0}, n);
  for (rm::Person p = 0; p < inst.size(); ++p) {
    const auto& list = inst.list(p);
    if (p / n == 1) {
      // Pariah gender members list the 3 other genders: 9 entries.
      EXPECT_EQ(list.size(), 9U);
      continue;
    }
    // Everyone else ranks the pariah last.
    ASSERT_FALSE(list.empty());
    EXPECT_EQ(list.back(), pariah);
    // Never lists its own gender.
    for (const rm::Person q : list) EXPECT_NE(q / n, p / n);
  }
}

TEST(Adversarial, CycleTopChoicesAreMutualAcrossGenders) {
  Rng rng(502);
  const Gender k = 3;
  const Index n = 2;
  const auto inst = theorem1_adversarial_roommates(k, n, rng, 0);
  // Each non-pariah-gender member's top choice belongs to a different gender
  // and is itself top-ranked by exactly one member.
  std::vector<int> top_count(static_cast<std::size_t>(k * n), 0);
  for (Gender g = 1; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      const rm::Person p = flat_id({g, i}, n);
      const rm::Person top = inst.list(p).front();
      EXPECT_NE(top / n, p / n);
      EXPECT_NE(top / n, 0);  // never the pariah gender... the cycle stays
                              // within non-pariah genders
      ++top_count[static_cast<std::size_t>(top)];
    }
  }
  for (Gender g = 1; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      EXPECT_EQ(top_count[static_cast<std::size_t>(flat_id({g, i}, n))], 1);
    }
  }
}

/// Theorem 1 end-to-end: adversarial instances admit perfect matchings but no
/// stable ones (solver verdict cross-checked against the census).
TEST(Theorem1, NoStableBinaryMatchingExists) {
  for (const auto& [k, n] : std::vector<std::pair<Gender, Index>>{
           {3, 2}, {3, 4}, {4, 2}, {5, 2}, {4, 3}}) {
    if ((k * n) % 2 != 0) continue;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      Rng rng(seed * 100 + static_cast<std::uint64_t>(k));
      const auto inst = theorem1_adversarial_roommates(k, n, rng);
      const auto result = rm::solve(inst);
      EXPECT_FALSE(result.has_stable)
          << "k=" << k << " n=" << n << " seed=" << seed;
      // Perfect matchings exist (limit the census so big cases stay fast).
      const auto census = analysis::binary_census(inst, 1);
      EXPECT_GT(census.perfect_matchings, 0);
    }
  }
}

TEST(Theorem1, OracleConfirmsNoStableOnSmallestCase) {
  Rng rng(503);
  const auto inst = theorem1_adversarial_roommates(3, 2, rng);
  const auto census = analysis::binary_census(inst);
  EXPECT_GT(census.perfect_matchings, 0);
  EXPECT_EQ(census.stable_matchings, 0);
}

TEST(Theorem1, BipartiteControlGroupIsAlwaysStable) {
  // k = 2 control (the theorem's exception): random bipartite instances are
  // always solvable.
  Rng rng(504);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::vector<rm::Person>> lists(8);
    for (rm::Person p = 0; p < 4; ++p) {
      for (rm::Person q = 4; q < 8; ++q) {
        lists[static_cast<std::size_t>(p)].push_back(q);
        lists[static_cast<std::size_t>(q)].push_back(p);
      }
      rng.shuffle(lists[static_cast<std::size_t>(p)]);
    }
    for (rm::Person q = 4; q < 8; ++q) rng.shuffle(lists[static_cast<std::size_t>(q)]);
    const rm::RoommatesInstance inst(std::move(lists));
    EXPECT_TRUE(rm::solve(inst).has_stable);
  }
}

}  // namespace
}  // namespace kstable::core
