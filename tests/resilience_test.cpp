// Resilience subsystem tests: budgets/deadlines/cancellation (ExecControl),
// the ParseError/ExecutionAborted taxonomy, deterministic fault injection,
// and the tree-fallback solve ladder.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/stability.hpp"
#include "core/binding.hpp"
#include "core/parallel_binding.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/generators.hpp"
#include "prefs/io.hpp"
#include "resilience/control.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/solve_ladder.hpp"
#include "roommates/examples.hpp"
#include "roommates/solver.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

using resilience::Budget;
using resilience::CancellationToken;
using resilience::ExecControl;
using resilience::FaultConfig;
using resilience::FaultRegistry;
using resilience::ScopedFault;

// --- ExecControl -----------------------------------------------------------

TEST(ExecControl, UnlimitedBudgetNeverAborts) {
  ExecControl control;
  for (int i = 0; i < 10000; ++i) control.charge();
  control.check_now();
  EXPECT_EQ(control.spent(), 10000);
}

TEST(ExecControl, ProposalBudgetAbortsWithReason) {
  ExecControl control{Budget::proposals(100)};
  try {
    for (int i = 0; i < 200; ++i) control.charge();
    FAIL() << "budget never tripped";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::proposal_budget);
    EXPECT_NE(std::string(e.what()).find("proposal-budget"),
              std::string::npos);
  }
}

TEST(ExecControl, ExpiredDeadlineAbortsAtCheckNow) {
  ExecControl control{Budget::deadline(0.0001)};
  while (control.elapsed_ms() <= 0.0001) {
  }
  try {
    control.check_now();
    FAIL() << "deadline never tripped";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::deadline);
  }
}

TEST(ExecControl, CancellationObservedWithinClockStrideCharges) {
  // The token's acquire load is amortized onto the same kClockStride
  // boundary as the wall clock, so a charge()-only loop must observe a
  // cancellation within at most kClockStride further charged units — never
  // later, and regardless of whether any budget is set.
  CancellationToken token;
  ExecControl control{Budget{}, token};
  control.charge();  // fine before cancellation
  token.request_cancel();
  std::int64_t charges_after_cancel = 0;
  try {
    for (std::int64_t i = 0; i <= ExecControl::kClockStride; ++i) {
      control.charge();
      ++charges_after_cancel;
    }
    FAIL() << "cancellation not observed within kClockStride charges";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::cancelled);
    EXPECT_LE(charges_after_cancel, ExecControl::kClockStride);
  }
}

TEST(ExecControl, CancellationObservedImmediatelyAtCheckNow) {
  // check_now() is the unamortized checkpoint: it must observe a
  // cancellation at once, without waiting for a stride boundary.
  CancellationToken token;
  ExecControl control{Budget{}, token};
  control.charge();
  token.request_cancel();
  try {
    control.check_now();
    FAIL() << "check_now did not observe the cancellation";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::cancelled);
  }
}

TEST(ExecControl, CheckNowEnforcesProposalBudget) {
  // Regression: check_now() used to consult only the token and the clock, so
  // a solver that hits coarse checkpoints without charging (cache-served
  // edges, or a shared control pushed over budget by other workers) could
  // overrun a proposal budget indefinitely.
  ExecControl control{Budget::proposals(10)};
  control.charge(10);   // exactly at the limit: still fine
  control.check_now();  // and check_now agrees
  EXPECT_THROW(control.charge(10), ExecutionAborted);  // now over (spent=20)
  try {
    control.check_now();
    FAIL() << "check_now ignored an exhausted proposal budget";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::proposal_budget);
  }
}

TEST(ExecControl, ChargeStillChecksBudgetEveryCall) {
  // The budget comparison is NOT amortized: it runs on the fetch_add result
  // every call, so overruns are caught at the exact crossing charge.
  ExecControl control{Budget::proposals(5)};
  for (int i = 0; i < 5; ++i) control.charge();
  try {
    control.charge();
    FAIL() << "budget crossing not caught immediately";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::proposal_budget);
    EXPECT_EQ(control.spent(), 6);
  }
}

TEST(ExecControl, AbortedStatusCarriesCounters) {
  ExecControl control{Budget::proposals(5)};
  control.charge(4);
  const auto status =
      control.aborted_status(AbortReason::deadline, "test detail");
  EXPECT_EQ(status.outcome, resilience::SolveOutcome::aborted);
  EXPECT_EQ(status.abort_reason, AbortReason::deadline);
  EXPECT_EQ(status.proposals, 4);
  EXPECT_FALSE(status.ok());
}

// --- Solver integration ----------------------------------------------------

TEST(SolverAbort, GsQueueHonorsProposalBudget) {
  Rng rng(7001);
  const auto inst = gen::uniform(3, 32, rng);
  ExecControl control{Budget::proposals(10)};
  gs::GsOptions options;
  options.control = &control;
  // A perfect matching needs >= 32 proposals; the budget trips first — and
  // as an ExecutionAborted, not a ContractViolation.
  EXPECT_THROW(gs::gale_shapley_queue(inst, 0, 1, options), ExecutionAborted);
  EXPECT_LE(control.spent(), 10 + 1);
}

TEST(SolverAbort, GsResultUnchangedByNullControl) {
  Rng rng(7002);
  const auto inst = gen::uniform(3, 24, rng);
  const auto plain = gs::gale_shapley_queue(inst, 0, 1);
  ExecControl control;  // attached but unlimited
  gs::GsOptions options;
  options.control = &control;
  const auto guarded = gs::gale_shapley_queue(inst, 0, 1, options);
  EXPECT_EQ(guarded.proposer_match, plain.proposer_match);
  EXPECT_EQ(guarded.proposals, plain.proposals);
  EXPECT_EQ(control.spent(), plain.proposals);
}

TEST(SolverAbort, IterativeBindingDeadlineAbortsNotHangs) {
  Rng rng(7003);
  const auto inst = gen::uniform(4, 48, rng);
  ExecControl control{Budget::deadline(0.0001)};
  while (control.elapsed_ms() <= 0.0001) {
  }
  core::BindingOptions options;
  options.control = &control;
  try {
    core::iterative_binding(inst, trees::path(4), options);
    FAIL() << "expired deadline did not abort the binding";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::deadline);
  }
}

TEST(SolverAbort, RoommatesSolveHonorsProposalBudget) {
  const auto inst = rm::examples::sec3b_left();
  rm::SolveOptions options;
  ExecControl control{Budget::proposals(2)};
  options.control = &control;
  EXPECT_THROW(rm::solve(inst, options), ExecutionAborted);
}

TEST(SolverAbort, RoommatesStatusReportsOkAndNoStable) {
  const auto ok = rm::solve(rm::examples::sec3b_left());
  EXPECT_EQ(ok.status.outcome, resilience::SolveOutcome::ok);
  EXPECT_GT(ok.status.proposals, 0);
  EXPECT_TRUE(ok.status.ok());

  const auto gone = rm::solve(rm::examples::sec3b_right());
  EXPECT_EQ(gone.status.outcome, resilience::SolveOutcome::no_stable);
  EXPECT_FALSE(gone.status.ok());
}

TEST(SolverAbort, ExecuteBindingAbortsThroughThePool) {
  Rng rng(7004);
  const auto inst = gen::uniform(4, 32, rng);
  ThreadPool pool(4);
  ExecControl control{Budget::proposals(8)};
  EXPECT_THROW(core::execute_binding(inst, trees::path(4),
                                     core::ExecutionMode::crew_full, pool,
                                     &control),
               ExecutionAborted);
}

TEST(SolverAbort, BindingStatusFilledOnSuccess) {
  Rng rng(7005);
  const auto inst = gen::uniform(3, 16, rng);
  const auto result = core::iterative_binding(inst, trees::path(3));
  EXPECT_EQ(result.status.outcome, resilience::SolveOutcome::ok);
  EXPECT_EQ(result.status.proposals, result.total_proposals);
  EXPECT_GE(result.status.wall_ms, 0.0);
}

// --- Fault injection -------------------------------------------------------

TEST(FaultInjection, DisarmedPointsAreFree) {
  Rng rng(7006);
  const auto inst = gen::uniform(3, 8, rng);
  // No fault armed: loads work, and the registry records nothing.
  const auto text = io::to_string(inst);
  EXPECT_NO_THROW(io::from_string(text));
  EXPECT_EQ(FaultRegistry::instance().hits("io/load"), 0);
}

TEST(FaultInjection, ScopedFaultFiresOnceThenStops) {
  Rng rng(7007);
  const auto inst = gen::uniform(3, 8, rng);
  const auto text = io::to_string(inst);
  ScopedFault fault("io/load");  // defaults: fire on first hit, max_fires 1
  EXPECT_THROW(io::from_string(text), InjectedFault);
  EXPECT_NO_THROW(io::from_string(text));
  EXPECT_EQ(fault.hits(), 2);
  EXPECT_EQ(fault.fires(), 1);
}

TEST(FaultInjection, InjectedFaultIsAnExecutionAborted) {
  ScopedFault fault("io/load");
  try {
    io::from_string("never reaches the parser");
    FAIL() << "fault did not fire";
  } catch (const ExecutionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::injected_fault);
    const auto* injected = dynamic_cast<const InjectedFault*>(&e);
    ASSERT_NE(injected, nullptr);
    EXPECT_EQ(injected->point(), "io/load");
  }
}

TEST(FaultInjection, FireAfterSkipsEarlyHits) {
  Rng rng(7008);
  const auto text = io::to_string(gen::uniform(3, 4, rng));
  FaultConfig config;
  config.fire_after = 2;  // hits 1 and 2 pass, hit 3 fires
  ScopedFault fault("io/load", config);
  EXPECT_NO_THROW(io::from_string(text));
  EXPECT_NO_THROW(io::from_string(text));
  EXPECT_THROW(io::from_string(text), InjectedFault);
}

TEST(FaultInjection, ProbabilisticFiringReplaysExactly) {
  Rng rng(7009);
  const auto text = io::to_string(gen::uniform(3, 4, rng));
  FaultConfig config;
  config.probability = 0.35;
  config.seed = 77;
  config.max_fires = 0;  // unlimited
  const auto run = [&] {
    std::vector<int> fired_at;
    ScopedFault fault("io/load", config);
    for (int i = 0; i < 60; ++i) {
      try {
        io::from_string(text);
      } catch (const InjectedFault&) {
        fired_at.push_back(i);
      }
    }
    // The registry's own fingerprint must agree with what we observed.
    const auto log = FaultRegistry::instance().fire_log("io/load");
    EXPECT_EQ(log.size(), fired_at.size());
    return fired_at;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_FALSE(first.empty()) << "p=0.35 over 60 trials should fire";
  EXPECT_LT(first.size(), 60u) << "p=0.35 should not fire every time";
  EXPECT_EQ(first, second) << "same seed must replay the same firing pattern";
}

// --- Fallback ladder -------------------------------------------------------

TEST(FallbackLadder, CleanInstanceSucceedsOnFirstRung) {
  Rng rng(7010);
  const auto inst = gen::uniform(4, 12, rng);
  const auto report = resilience::solve_with_fallback(inst);
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.rung, resilience::Rung::strict_tree);
  EXPECT_FALSE(report.degraded());
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_TRUE(analysis::find_blocking_family(inst, report.matching()) ==
              std::nullopt);
}

TEST(FallbackLadder, FaultOnFirstTreeRecoversViaDifferentTree) {
  Rng rng(7011);
  const auto inst = gen::uniform(4, 12, rng);
  ScopedFault fault("core/binding_edge");  // fires once: first edge, tree 1
  const auto report = resilience::solve_with_fallback(inst);
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.rung, resilience::Rung::strict_tree);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].status.abort_reason,
            AbortReason::injected_fault);
  EXPECT_NE(report.attempts[1].tree_edges, report.attempts[0].tree_edges)
      << "the retry must bind along a different spanning tree";
  EXPECT_TRUE(analysis::find_blocking_family(inst, report.matching()) ==
              std::nullopt);
}

TEST(FallbackLadder, AllStrictRungsFailDegradesToPriorityModel) {
  Rng rng(7012);
  const auto inst = gen::uniform(4, 12, rng);
  resilience::FallbackOptions options;
  options.max_tree_attempts = 3;
  FaultConfig config;
  config.max_fires = 3;  // every strict attempt aborts; the degraded rung runs
  ScopedFault fault("core/binding_edge", config);
  const auto report = resilience::solve_with_fallback(inst, options);
  EXPECT_TRUE(report.succeeded);
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.rung, resilience::Rung::degraded_priority);
  ASSERT_EQ(report.attempts.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(report.attempts[static_cast<std::size_t>(i)].status.abort_reason,
              AbortReason::injected_fault);
  }
  // Theorem 5 / §IV.D: still a spanning-tree binding, so strictly stable.
  EXPECT_TRUE(analysis::find_blocking_family(inst, report.matching()) ==
              std::nullopt);
}

TEST(FallbackLadder, EveryRungExhaustedReportsFailure) {
  Rng rng(7013);
  const auto inst = gen::uniform(4, 12, rng);
  FaultConfig config;
  config.max_fires = 0;  // unlimited: the degraded rung aborts too
  ScopedFault fault("core/binding_edge", config);
  resilience::FallbackOptions options;
  options.max_tree_attempts = 2;
  const auto report = resilience::solve_with_fallback(inst, options);
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(report.rung, resilience::Rung::none);
  EXPECT_EQ(report.attempts.size(), 3u);  // 2 strict + 1 degraded
  EXPECT_FALSE(report.result.has_value());
  EXPECT_EQ(report.status.abort_reason, AbortReason::injected_fault);
}

TEST(FallbackLadder, CancellationStopsTheWholeLadder) {
  Rng rng(7014);
  const auto inst = gen::uniform(4, 12, rng);
  resilience::FallbackOptions options;
  options.token.request_cancel();  // cancelled before the first attempt
  const auto report = resilience::solve_with_fallback(inst, options);
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(report.attempts.size(), 1u)
      << "a cancellation must not burn the remaining rungs";
  EXPECT_EQ(report.status.abort_reason, AbortReason::cancelled);
}

TEST(FallbackLadder, PerAttemptBudgetsAreScaledByBackoff) {
  Rng rng(7015);
  const auto inst = gen::uniform(3, 48, rng);
  resilience::FallbackOptions options;
  options.per_attempt = Budget::proposals(4);  // far too small for n=48
  options.backoff = 100.0;  // second attempt gets 400: plenty
  options.max_tree_attempts = 2;
  const auto report = resilience::solve_with_fallback(inst, options);
  EXPECT_TRUE(report.succeeded);
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].status.abort_reason,
            AbortReason::proposal_budget);
  EXPECT_EQ(report.rung, resilience::Rung::strict_tree);
}

// --- Error taxonomy --------------------------------------------------------

TEST(Taxonomy, ParseErrorIsAContractViolation) {
  // Legacy catch sites (catch ContractViolation) keep working.
  EXPECT_THROW(io::from_string(""), ParseError);
  EXPECT_THROW(io::from_string(""), ContractViolation);
}

TEST(Taxonomy, ExecutionAbortedIsNotAContractViolation) {
  ExecControl control{Budget::proposals(1)};
  bool caught_contract = false;
  try {
    control.charge(5);
  } catch (const ContractViolation&) {
    caught_contract = true;
  } catch (const ExecutionAborted&) {
  }
  EXPECT_FALSE(caught_contract)
      << "an abort is an operational outcome, not a programming error";
}

TEST(Taxonomy, LoaderRejectsOutOfRangeIndices) {
  const std::string base = "kstable-kpartite v1\n2 2\n";
  // Gender out of range.
  EXPECT_THROW(io::from_string(base + "pref 5 0 1 : 0 1\n"), ParseError);
  // Member out of range.
  EXPECT_THROW(io::from_string(base + "pref 0 9 1 : 0 1\n"), ParseError);
  // Target gender equal to observer gender.
  EXPECT_THROW(io::from_string(base + "pref 0 0 0 : 0 1\n"), ParseError);
  // Dimensions out of range.
  EXPECT_THROW(io::from_string("kstable-kpartite v1\n1 2\n"), ParseError);
  EXPECT_THROW(io::from_string("kstable-kpartite v1\n2 0\n"), ParseError);
}

TEST(Taxonomy, LoaderRejectsDuplicatePrefLines) {
  Rng rng(7016);
  const auto inst = gen::uniform(2, 2, rng);
  auto text = io::to_string(inst);
  // Duplicate the first pref line: same count as dropping another line would
  // give, so only explicit duplicate detection can catch it.
  const auto first_pref = text.find("pref");
  const auto line_end = text.find('\n', first_pref);
  const auto line = text.substr(first_pref, line_end - first_pref + 1);
  text.insert(first_pref, line);
  try {
    io::from_string(text);
    FAIL() << "duplicate pref line accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(Taxonomy, SolveStatusSummaryIsHumanReadable) {
  resilience::SolveStatus status;
  status.outcome = resilience::SolveOutcome::aborted;
  status.abort_reason = AbortReason::deadline;
  status.proposals = 123;
  const auto text = status.summary();
  EXPECT_NE(text.find("aborted"), std::string::npos);
  EXPECT_NE(text.find("deadline"), std::string::npos);
}

}  // namespace
}  // namespace kstable
