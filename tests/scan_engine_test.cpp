// Tests for the scan-based GS engine (rank-table ablation baseline).
#include <gtest/gtest.h>

#include "gs/gale_shapley.hpp"
#include "gs/scan_gs.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::gs {
namespace {

TEST(ScanEngine, MatchesQueueEngineOnExamples) {
  for (const auto& inst :
       {examples::example1_first(), examples::example1_second()}) {
    const auto scan = gale_shapley_scan(inst, 0, 1);
    const auto queue = gale_shapley_queue(inst, 0, 1);
    EXPECT_EQ(scan.proposer_match, queue.proposer_match);
    EXPECT_EQ(scan.proposals, queue.proposals);
  }
}

TEST(ScanEngine, MatchesQueueEngineOnRandomSweep) {
  Rng rng(900);
  for (int trial = 0; trial < 30; ++trial) {
    const Index n = static_cast<Index>(2 + rng.below(40));
    const auto inst = gen::uniform(2, n, rng);
    const auto scan = gale_shapley_scan(inst, 0, 1);
    const auto queue = gale_shapley_queue(inst, 0, 1);
    EXPECT_EQ(scan.proposer_match, queue.proposer_match)
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(scan.proposals, queue.proposals);
    EXPECT_TRUE(is_stable_binding(inst, scan));
  }
}

TEST(ScanEngine, WorksOnMultiGenderInstances) {
  Rng rng(901);
  const auto inst = gen::uniform(5, 12, rng);
  const auto scan = gale_shapley_scan(inst, 4, 2);
  const auto queue = gale_shapley_queue(inst, 4, 2);
  EXPECT_EQ(scan.proposer_match, queue.proposer_match);
}

TEST(ScanEngine, RejectsInvalidArguments) {
  Rng rng(902);
  const auto inst = gen::uniform(2, 2, rng);
  EXPECT_THROW(gale_shapley_scan(inst, 0, 0), ContractViolation);
  EXPECT_THROW(gale_shapley_scan(inst, 0, 7), ContractViolation);
  EXPECT_THROW(gale_shapley_scan_simd(inst, 0, 0), ContractViolation);
  EXPECT_THROW(gale_shapley_prefetch(inst, 1, 1), ContractViolation);
}

TEST(SimdScanEngine, MatchesScalarScanOnRandomSweep) {
  Rng rng(903);
  for (int trial = 0; trial < 30; ++trial) {
    const Index n = static_cast<Index>(2 + rng.below(60));
    const auto inst = gen::uniform(2, n, rng);
    const auto vec = gale_shapley_scan_simd(inst, 0, 1);
    const auto scalar = gale_shapley_scan(inst, 0, 1);
    EXPECT_EQ(vec.proposer_match, scalar.proposer_match)
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(vec.responder_match, scalar.responder_match);
    EXPECT_EQ(vec.proposals, scalar.proposals);
  }
}

TEST(PrefetchEngine, MatchesQueueEngineBitwise) {
  Rng rng(904);
  for (int trial = 0; trial < 30; ++trial) {
    const Index n = static_cast<Index>(2 + rng.below(80));
    const auto inst = gen::uniform(2, n, rng);
    const auto pre = gale_shapley_prefetch(inst, 0, 1);
    const auto queue = gale_shapley_queue(inst, 0, 1);
    EXPECT_EQ(pre.proposer_match, queue.proposer_match)
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(pre.responder_match, queue.responder_match);
    EXPECT_EQ(pre.proposals, queue.proposals);
    EXPECT_TRUE(is_stable_binding(inst, pre));
  }
}

TEST(PrefetchEngine, TraceMatchesQueueEngineEventForEvent) {
  Rng rng(905);
  const auto inst = gen::uniform(3, 24, rng);
  std::vector<ProposalEvent> queue_trace;
  std::vector<ProposalEvent> prefetch_trace;
  GsOptions qopts;
  qopts.trace = &queue_trace;
  GsOptions popts;
  popts.trace = &prefetch_trace;
  gale_shapley_queue(inst, 1, 2, qopts);
  gale_shapley_prefetch(inst, 1, 2, popts);
  ASSERT_EQ(prefetch_trace.size(), queue_trace.size());
  for (std::size_t t = 0; t < queue_trace.size(); ++t) {
    EXPECT_EQ(prefetch_trace[t].proposer, queue_trace[t].proposer) << t;
    EXPECT_EQ(prefetch_trace[t].responder, queue_trace[t].responder) << t;
    EXPECT_EQ(prefetch_trace[t].accepted, queue_trace[t].accepted) << t;
    EXPECT_EQ(prefetch_trace[t].displaced, queue_trace[t].displaced) << t;
  }
}

TEST(PrefetchEngine, WorksOnMultiGenderInstances) {
  Rng rng(906);
  const auto inst = gen::uniform(5, 12, rng);
  const auto pre = gale_shapley_prefetch(inst, 4, 2);
  const auto queue = gale_shapley_queue(inst, 4, 2);
  EXPECT_EQ(pre.proposer_match, queue.proposer_match);
  EXPECT_EQ(pre.proposals, queue.proposals);
}

}  // namespace
}  // namespace kstable::gs
