// Tests for the scan-based GS engine (rank-table ablation baseline).
#include <gtest/gtest.h>

#include "gs/gale_shapley.hpp"
#include "gs/scan_gs.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::gs {
namespace {

TEST(ScanEngine, MatchesQueueEngineOnExamples) {
  for (const auto& inst :
       {examples::example1_first(), examples::example1_second()}) {
    const auto scan = gale_shapley_scan(inst, 0, 1);
    const auto queue = gale_shapley_queue(inst, 0, 1);
    EXPECT_EQ(scan.proposer_match, queue.proposer_match);
    EXPECT_EQ(scan.proposals, queue.proposals);
  }
}

TEST(ScanEngine, MatchesQueueEngineOnRandomSweep) {
  Rng rng(900);
  for (int trial = 0; trial < 30; ++trial) {
    const Index n = static_cast<Index>(2 + rng.below(40));
    const auto inst = gen::uniform(2, n, rng);
    const auto scan = gale_shapley_scan(inst, 0, 1);
    const auto queue = gale_shapley_queue(inst, 0, 1);
    EXPECT_EQ(scan.proposer_match, queue.proposer_match)
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(scan.proposals, queue.proposals);
    EXPECT_TRUE(is_stable_binding(inst, scan));
  }
}

TEST(ScanEngine, WorksOnMultiGenderInstances) {
  Rng rng(901);
  const auto inst = gen::uniform(5, 12, rng);
  const auto scan = gale_shapley_scan(inst, 4, 2);
  const auto queue = gale_shapley_queue(inst, 4, 2);
  EXPECT_EQ(scan.proposer_match, queue.proposer_match);
}

TEST(ScanEngine, RejectsInvalidArguments) {
  Rng rng(902);
  const auto inst = gen::uniform(2, 2, rng);
  EXPECT_THROW(gale_shapley_scan(inst, 0, 0), ContractViolation);
  EXPECT_THROW(gale_shapley_scan(inst, 0, 7), ContractViolation);
}

}  // namespace
}  // namespace kstable::gs
