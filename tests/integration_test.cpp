// Cross-module integration tests: full pipelines exercising generation,
// serialization, binding, parallel execution, verification, and metrics
// together at moderately large sizes.
#include <gtest/gtest.h>

#include "core/kstable.hpp"

namespace kstable {
namespace {

TEST(Pipeline, GenerateSerializeBindVerify) {
  Rng rng(600);
  const Gender k = 5;
  const Index n = 24;
  const auto inst = gen::uniform(k, n, rng);

  // Serialize, reload, and run the binding on the reloaded copy: results
  // must match exactly.
  const auto reloaded = io::from_string(io::to_string(inst));
  const auto tree = prufer::random_tree(k, rng);
  const auto a = core::iterative_binding(inst, tree);
  const auto b = core::iterative_binding(reloaded, tree);
  ASSERT_TRUE(a.has_matching());
  EXPECT_EQ(a.matching(), b.matching());

  // Verify stability with the polynomial pairs checker plus random probes.
  EXPECT_FALSE(analysis::find_blocking_family_pairs(
                   inst, a.matching(), analysis::BlockingMode::strict)
                   .has_value());
  Rng probe_rng(601);
  EXPECT_FALSE(analysis::find_blocking_family_sampled(inst, a.matching(),
                                                      probe_rng, 20000)
                   .has_value());
}

TEST(Pipeline, ParallelAndSequentialAgreeAtScale) {
  Rng rng(610);
  const Gender k = 8;
  const Index n = 64;
  const auto inst = gen::uniform(k, n, rng);
  const auto tree = prufer::random_tree(k, rng);
  ThreadPool pool(4);
  const auto seq =
      core::execute_binding(inst, tree, core::ExecutionMode::sequential, pool);
  const auto crew =
      core::execute_binding(inst, tree, core::ExecutionMode::crew_full, pool);
  EXPECT_EQ(seq.binding.matching(), crew.binding.matching());
  // Model accounting: CREW charged cost <= sequential cost.
  EXPECT_LE(crew.cost.total_cost(), seq.cost.sequential_iterations);
}

TEST(Pipeline, FairSmpBeatsGsOnSexEquality) {
  // Across random instances, alternate-policy fair SMP should (weakly) reduce
  // the sex-equality cost versus man-proposing GS on average — the §III.B
  // procedural-fairness claim. Checked in aggregate, not per instance.
  Rng rng(620);
  std::int64_t gs_total = 0;
  std::int64_t fair_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Index n = 16;
    const auto inst = gen::uniform(2, n, rng);
    const auto gs_result = gs::gale_shapley_queue(inst, 0, 1);
    const auto gs_costs =
        analysis::bipartite_costs(inst, 0, 1, gs_result.proposer_match);
    gs_total += gs_costs.sex_equality();

    const auto fair = rm::solve_fair_smp(inst, 0, 1, rm::FairPolicy::alternate);
    const auto fair_costs =
        analysis::bipartite_costs(inst, 0, 1, fair.man_match);
    fair_total += fair_costs.sex_equality();
  }
  EXPECT_LE(fair_total, gs_total);
}

TEST(Pipeline, PopularityInstancesBindStably) {
  Rng rng(630);
  for (const double noise : {0.0, 0.3, 2.0}) {
    const auto inst = gen::popularity(4, 16, rng, noise);
    const auto result = core::iterative_binding(inst, trees::path(4));
    EXPECT_FALSE(analysis::find_blocking_family_pairs(
                     inst, result.matching(), analysis::BlockingMode::strict)
                     .has_value())
        << "noise=" << noise;
  }
}

TEST(Pipeline, MasterListBindingIsAssortative) {
  // With master lists, every binding pairs rank-by-rank: the most popular
  // members of each gender end up in one family.
  Rng rng(640);
  const auto inst = gen::master_list(3, 8, rng);
  const auto result = core::iterative_binding(inst, trees::path(3));
  const auto& m = result.matching();
  for (Index t = 0; t < 8; ++t) {
    const MemberId a = m.member_at(t, 0);
    const MemberId b = m.member_at(t, 1);
    const MemberId c = m.member_at(t, 2);
    // Ranks line up: the member of gender 1 in a's family sits at the same
    // master-list position as a does in gender 0's master list.
    EXPECT_EQ(inst.rank_of(a, b), inst.rank_of(b, a));
    EXPECT_EQ(inst.rank_of(b, c), inst.rank_of(c, b));
  }
}

TEST(Pipeline, BindingCostDependsOnTreeShape) {
  // Tree-restricted costs are low on bound pairs; all-pairs costs include
  // unoptimized cross pairs, so all-pairs >= tree-restricted.
  Rng rng(650);
  const auto inst = gen::uniform(5, 16, rng);
  const auto tree = trees::star(5, 2);
  const auto result = core::iterative_binding(inst, tree);
  const auto all_costs = analysis::kary_costs(inst, result.matching());
  const auto tree_costs =
      analysis::kary_tree_costs(inst, result.matching(), tree);
  EXPECT_LE(tree_costs.total_cost, all_costs.total_cost);
  EXPECT_GE(all_costs.regret, tree_costs.regret);
}

TEST(Pipeline, KPartiteBinarySolverOnAdversarialAndBenign) {
  Rng rng(660);
  // Benign: bipartite always works.
  const auto benign = gen::uniform(2, 12, rng);
  EXPECT_TRUE(
      rm::solve_kpartite_binary(benign, rm::Linearization::round_robin)
          .has_stable);
  // Adversarial (combined model): never stable.
  const auto bad = core::theorem1_adversarial_roommates(3, 4, rng);
  EXPECT_FALSE(rm::solve(bad).has_stable);
}

TEST(Pipeline, PriorityBindingEndToEnd) {
  Rng rng(670);
  const Gender k = 6;
  const Index n = 12;
  const auto inst = gen::uniform(k, n, rng);
  core::PriorityBindingOptions options;
  options.priority = {5, 3, 1, 0, 2, 4};
  const auto result = core::priority_binding(inst, options);
  EXPECT_TRUE(sched::is_bitonic_tree(result.tree, options.priority));
  // Weakened stability probed with the polynomial pairs checker.
  EXPECT_FALSE(analysis::find_blocking_family_pairs(
                   inst, result.binding.matching(),
                   analysis::BlockingMode::weakened, options.priority)
                   .has_value());
}

TEST(Pipeline, Theorem3BoundTightUnderMasterLists) {
  // Master lists are near-worst-case for proposal counts: the total over a
  // path tree is (k-1) * n(n+1)/2, inside but close to the (k-1)n² bound.
  Rng rng(680);
  const Gender k = 4;
  const Index n = 32;
  const auto inst = gen::master_list(k, n, rng);
  const auto result = core::iterative_binding(inst, trees::path(k));
  EXPECT_EQ(result.total_proposals,
            static_cast<std::int64_t>(k - 1) * n * (n + 1) / 2);
  EXPECT_LE(result.total_proposals, static_cast<std::int64_t>(k - 1) * n * n);
}

TEST(Pipeline, StressModerateScaleSmoke) {
  // One larger end-to-end smoke: k = 10, n = 128 (90 preference lists of 128
  // entries per member is still tiny in memory but exercises indexing).
  Rng rng(690);
  const Gender k = 10;
  const Index n = 128;
  const auto inst = gen::uniform(k, n, rng);
  ThreadPool pool(4);
  const auto report = core::execute_binding(
      inst, trees::path(k), core::ExecutionMode::erew_rounds, pool);
  ASSERT_TRUE(report.binding.has_matching());
  EXPECT_EQ(report.rounds_executed, 2);
  Rng probe(691);
  EXPECT_FALSE(analysis::find_blocking_family_sampled(
                   inst, report.binding.matching(), probe, 5000)
                   .has_value());
}

}  // namespace
}  // namespace kstable
