// Tests for union-find and the equivalence-class derivation of §IV.A.
#include <gtest/gtest.h>

#include "core/equivalence.hpp"
#include "graph/prufer.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

TEST(UnionFind, BasicOperations) {
  UnionFind uf(6);
  EXPECT_EQ(uf.size(), 6);
  EXPECT_NE(uf.find(0), uf.find(1));
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.find(1), uf.find(2));
  EXPECT_NE(uf.find(4), uf.find(5));
}

TEST(UnionFind, Reflexivity) {
  UnionFind uf(3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(uf.find(i), uf.find(i));
}

/// Builds the GS results for a structure's edges.
std::vector<gs::GsResult> run_edges(const KPartiteInstance& inst,
                                    const BindingStructure& s) {
  std::vector<gs::GsResult> results;
  for (const auto& e : s.edges()) {
    results.push_back(gs::gale_shapley_queue(inst, e.a, e.b));
  }
  return results;
}

TEST(DeriveFamilies, Fig3TreeGivesPaperTuples) {
  // Bindings M-W and W-U on the Fig. 3 instance produce (m,w,u), (m',w',u').
  const auto inst = kstable::examples::fig3_instance();
  BindingStructure tree(3);
  tree.add_edge({0, 1});
  tree.add_edge({1, 2});
  const auto results = run_edges(inst, tree);
  const auto report = derive_families(inst, tree, results);
  ASSERT_TRUE(report.consistent);
  EXPECT_EQ(report.class_count, 2);
  const auto& m = *report.matching;
  // Family containing m must contain w and u.
  const Index fam_m = m.family_of({0, 0});
  EXPECT_EQ(m.member_at(fam_m, 1), (MemberId{1, 0}));
  EXPECT_EQ(m.member_at(fam_m, 2), (MemberId{2, 0}));
}

TEST(DeriveFamilies, SpanningTreesAlwaysConsistent) {
  Rng rng(200);
  for (int trial = 0; trial < 20; ++trial) {
    const Gender k = static_cast<Gender>(3 + rng.below(4));
    const Index n = static_cast<Index>(2 + rng.below(6));
    const auto inst = gen::uniform(k, n, rng);
    const auto tree = prufer::random_tree(k, rng);
    const auto results = run_edges(inst, tree);
    const auto report = derive_families(inst, tree, results);
    ASSERT_TRUE(report.consistent) << report.inconsistency;
    EXPECT_EQ(report.class_count, n);
    // Every member is in exactly one family (KaryMatching validated it).
    EXPECT_EQ(report.matching->family_count(), n);
  }
}

TEST(DeriveFamilies, ForestAssemblesByIndex) {
  Rng rng(201);
  const auto inst = gen::uniform(4, 3, rng);
  BindingStructure forest(4);
  forest.add_edge({0, 1});  // component {0,1}; genders 2, 3 isolated
  const auto results = run_edges(inst, forest);
  const auto report = derive_families(inst, forest, results);
  ASSERT_TRUE(report.consistent);
  // Classes: 3 pairs + 3 + 3 singletons = 9.
  EXPECT_EQ(report.class_count, 9);
  ASSERT_TRUE(report.matching.has_value());
  const auto& m = *report.matching;
  // Isolated genders are joined by index: family t gets (2, t) and (3, t).
  for (Index t = 0; t < 3; ++t) {
    EXPECT_EQ(m.member_at(t, 2).index, t);
    EXPECT_EQ(m.member_at(t, 3).index, t);
  }
  // The bound component's pairs stay together.
  for (Index t = 0; t < 3; ++t) {
    const MemberId a = m.member_at(t, 0);
    const MemberId b = m.member_at(t, 1);
    const auto& gs_result = results[0];
    EXPECT_EQ(gs_result.proposer_match[static_cast<std::size_t>(a.index)],
              b.index);
  }
}

TEST(DeriveFamilies, EmptyStructureIsIdentityAssembly) {
  Rng rng(202);
  const auto inst = gen::uniform(3, 4, rng);
  const BindingStructure empty(3);
  const auto report = derive_families(inst, empty, {});
  ASSERT_TRUE(report.consistent);
  EXPECT_EQ(report.class_count, 12);  // all singletons
  for (Index t = 0; t < 4; ++t) {
    for (Gender g = 0; g < 3; ++g) {
      EXPECT_EQ(report.matching->member_at(t, g).index, t);
    }
  }
}

TEST(DeriveFamilies, DetectsCycleInconsistency) {
  // Force a conflict: on a 3-cycle, make GS(0,1) and GS(1,2) pair index-wise
  // but GS(2,0) pair crosswise; the class of (0,0) then contains (0,1) too.
  KPartiteInstance inst(3, 2);
  auto set2 = [&inst](MemberId m, Gender g, Index top) {
    inst.set_pref_list(m, g, top == 0 ? std::vector<Index>{0, 1}
                                      : std::vector<Index>{1, 0});
  };
  // Mutual first choices: (0,i)-(1,i) and (1,i)-(2,i).
  for (Index i = 0; i < 2; ++i) {
    set2({0, i}, 1, i);
    set2({1, i}, 0, i);
    set2({1, i}, 2, i);
    set2({2, i}, 1, i);
  }
  // Crosswise mutual first choices between genders 2 and 0.
  for (Index i = 0; i < 2; ++i) {
    set2({2, i}, 0, 1 - i);
    set2({0, i}, 2, 1 - i);
  }
  inst.validate();

  BindingStructure cycle(3);
  cycle.add_edge({0, 1});
  cycle.add_edge({1, 2});
  cycle.add_edge({2, 0});
  const auto results = run_edges(inst, cycle);
  const auto report = derive_families(inst, cycle, results);
  EXPECT_FALSE(report.consistent);
  EXPECT_NE(report.inconsistency.find("cycle"), std::string::npos);
  EXPECT_FALSE(report.matching.has_value());
}

TEST(DeriveFamilies, ConsistentCycleIsAccepted) {
  // If all three bindings agree (index-wise mutual first choices everywhere),
  // a cycle is harmless and the classes are valid tuples.
  KPartiteInstance inst(3, 2);
  auto set2 = [&inst](MemberId m, Gender g, Index top) {
    inst.set_pref_list(m, g, top == 0 ? std::vector<Index>{0, 1}
                                      : std::vector<Index>{1, 0});
  };
  for (Gender g = 0; g < 3; ++g) {
    for (Gender h = 0; h < 3; ++h) {
      if (g == h) continue;
      for (Index i = 0; i < 2; ++i) set2({g, i}, h, i);
    }
  }
  inst.validate();
  BindingStructure cycle(3);
  cycle.add_edge({0, 1});
  cycle.add_edge({1, 2});
  cycle.add_edge({2, 0});
  const auto results = run_edges(inst, cycle);
  const auto report = derive_families(inst, cycle, results);
  ASSERT_TRUE(report.consistent);
  for (Index t = 0; t < 2; ++t) {
    for (Gender g = 0; g < 3; ++g) {
      EXPECT_EQ(report.matching->member_at(t, g).index, t);
    }
  }
}

TEST(DeriveFamilies, RejectsMismatchedResults) {
  Rng rng(203);
  const auto inst = gen::uniform(3, 2, rng);
  BindingStructure tree(3);
  tree.add_edge({0, 1});
  tree.add_edge({1, 2});
  auto results = run_edges(inst, tree);
  std::swap(results[0], results[1]);  // wrong order vs. edges()
  EXPECT_THROW(derive_families(inst, tree, results), ContractViolation);
  results.pop_back();
  EXPECT_THROW(derive_families(inst, tree, results), ContractViolation);
}

}  // namespace
}  // namespace kstable::core
