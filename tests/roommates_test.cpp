// Tests for Irving's stable-roommates solver: paper §III.B examples, classic
// no-stable instances, random cross-checks against the exhaustive oracle,
// k-partite binary matching front-end, and fair-SMP rotation policies.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/oracle.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "roommates/adapters.hpp"
#include "roommates/examples.hpp"
#include "roommates/solver.hpp"
#include "roommates/table.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::rm {
namespace {

/// Complete-list instance from per-person orders.
RoommatesInstance complete_instance(std::vector<std::vector<Person>> lists) {
  return RoommatesInstance(std::move(lists));
}

TEST(Instance, ValidationRejectsMalformedLists) {
  EXPECT_THROW(complete_instance({{0}}), ContractViolation);       // self
  EXPECT_THROW(complete_instance({{1, 1}, {0}}), ContractViolation);  // dup
  EXPECT_THROW(complete_instance({{5}, {0}}), ContractViolation);  // range
  EXPECT_THROW(complete_instance({{1}, {}}), ContractViolation);   // asymmetric
  EXPECT_NO_THROW(complete_instance({{1}, {0}}));
}

TEST(Instance, RankAndPrefers) {
  const auto inst = complete_instance({{1, 2}, {0, 2}, {1, 0}});
  EXPECT_EQ(inst.rank_of(0, 1), 0);
  EXPECT_EQ(inst.rank_of(0, 2), 1);
  EXPECT_EQ(inst.rank_of(2, 2), kUnacceptable);
  EXPECT_TRUE(inst.prefers(2, 1, 0));
  EXPECT_EQ(inst.entry_count(), 6);
}

TEST(Table, DeletionAndCursors) {
  const auto inst = complete_instance({{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}});
  ReductionTable table(inst);
  EXPECT_EQ(table.first(0), 1);
  EXPECT_EQ(table.second(0), 2);
  EXPECT_EQ(table.last(0), 3);
  EXPECT_EQ(table.list_size(0), 3);
  table.delete_pair(0, 1);
  EXPECT_EQ(table.first(0), 2);
  EXPECT_FALSE(table.active(1, 0));  // bidirectional
  EXPECT_EQ(table.list_size(1), 2);
  table.truncate_after(0, 2);
  EXPECT_EQ(table.list_size(0), 1);
  EXPECT_EQ(table.first(0), 2);
  EXPECT_EQ(table.last(0), 2);
  EXPECT_EQ(table.second(0), -1);
  EXPECT_EQ(table.active_list(0), std::vector<Person>{2});
  EXPECT_EQ(table.deletions(), 2);
}

TEST(Solver, Sec3bLeftMatchesPaper) {
  const auto inst = examples::sec3b_left();
  const auto result = solve(inst);
  ASSERT_TRUE(result.has_stable);
  // Paper: final matching (m, u'), (m', w), (w', u).
  EXPECT_EQ(result.match[examples::kM], examples::kUp);
  EXPECT_EQ(result.match[examples::kMp], examples::kW);
  EXPECT_EQ(result.match[examples::kWp], examples::kU);
}

TEST(Solver, Sec3bRightHasNoStableMatching) {
  const auto inst = examples::sec3b_right();
  const auto result = solve(inst);
  EXPECT_FALSE(result.has_stable);
  // Cross-check with brute force: no perfect matching is stable.
  const auto census = analysis::binary_census(inst);
  EXPECT_GT(census.perfect_matchings, 0);
  EXPECT_EQ(census.stable_matchings, 0);
}

TEST(Solver, SelfMatchingExampleUnstable) {
  const auto inst = examples::self_matching_unstable();
  EXPECT_FALSE(solve(inst).has_stable);
  const auto census = analysis::binary_census(inst);
  EXPECT_GT(census.perfect_matchings, 0);
  EXPECT_EQ(census.stable_matchings, 0);
}

TEST(Solver, ClassicNoStableQuartet) {
  // The textbook unsolvable instance: 0, 1, 2 rank each other cyclically and
  // all rank 3 last.
  const auto inst = complete_instance({
      {1, 2, 3},
      {2, 0, 3},
      {0, 1, 3},
      {0, 1, 2},
  });
  const auto result = solve(inst);
  EXPECT_FALSE(result.has_stable);
  EXPECT_GE(result.failed_person, 0);
  const auto census = analysis::binary_census(inst);
  EXPECT_EQ(census.perfect_matchings, 3);
  EXPECT_EQ(census.stable_matchings, 0);
}

TEST(Solver, SimpleSolvableQuartet) {
  // Mutual first choices (0,1) and (2,3).
  const auto inst = complete_instance({
      {1, 2, 3},
      {0, 2, 3},
      {3, 0, 1},
      {2, 0, 1},
  });
  const auto result = solve(inst);
  ASSERT_TRUE(result.has_stable);
  EXPECT_EQ(result.match[0], 1);
  EXPECT_EQ(result.match[2], 3);
}

TEST(Solver, TwoPeople) {
  const auto result = solve(complete_instance({{1}, {0}}));
  ASSERT_TRUE(result.has_stable);
  EXPECT_EQ(result.match[0], 1);
}

TEST(Solver, OddCompleteInstanceHasNoPerfectMatching) {
  const auto inst = complete_instance({{1, 2}, {2, 0}, {0, 1}});
  EXPECT_FALSE(solve(inst).has_stable);
}

TEST(Solver, RotationLogIsRecorded) {
  SolveOptions options;
  options.record_rotations = true;
  // The Fig. 2 deadlock needs exactly one rotation elimination.
  const auto result = solve(examples::fig2_deadlock(), options);
  ASSERT_TRUE(result.has_stable);
  EXPECT_EQ(result.rotations_eliminated,
            static_cast<std::int64_t>(result.rotation_log.size()));
  EXPECT_GE(result.rotations_eliminated, 1);
}

/// Random complete instances cross-checked against the exhaustive oracle.
class RoommatesOracleTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Person>> {};

TEST_P(RoommatesOracleTest, AgreesWithBruteForce) {
  const auto [seed, n] = GetParam();
  Rng rng(seed);
  std::vector<std::vector<Person>> lists(static_cast<std::size_t>(n));
  for (Person p = 0; p < n; ++p) {
    for (Person q = 0; q < n; ++q) {
      if (q != p) lists[static_cast<std::size_t>(p)].push_back(q);
    }
    rng.shuffle(lists[static_cast<std::size_t>(p)]);
  }
  const RoommatesInstance inst(std::move(lists));
  const auto result = solve(inst);
  const auto census = analysis::binary_census(inst);
  EXPECT_EQ(result.has_stable, census.stable_matchings > 0)
      << "seed=" << seed << " n=" << n;
  if (result.has_stable) {
    EXPECT_TRUE(is_stable_matching(inst, result.match));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoommatesOracleTest,
    ::testing::Combine(::testing::Values(11u, 12u, 13u, 14u, 15u, 16u, 17u,
                                         18u, 19u, 20u, 21u, 22u),
                       ::testing::Values(Person{4}, Person{6}, Person{8})));

TEST(Phase1, InvariantHoldsOnRandomInstances) {
  Rng rng(140);
  for (int trial = 0; trial < 20; ++trial) {
    const Person n = 8;
    std::vector<std::vector<Person>> lists(static_cast<std::size_t>(n));
    for (Person p = 0; p < n; ++p) {
      for (Person q = 0; q < n; ++q) {
        if (q != p) lists[static_cast<std::size_t>(p)].push_back(q);
      }
      rng.shuffle(lists[static_cast<std::size_t>(p)]);
    }
    const RoommatesInstance inst(std::move(lists));
    ReductionTable table(inst);
    std::int64_t proposals = 0;
    Person failed = -1;
    if (run_phase1(table, proposals, failed)) {
      EXPECT_TRUE(table.check_phase1_invariant());
      EXPECT_GE(proposals, n);
    }
  }
}

TEST(StabilityCheck, RejectsNonInvolutionsAndBlockingPairs) {
  const auto inst = complete_instance({
      {1, 2, 3},
      {0, 2, 3},
      {3, 0, 1},
      {2, 0, 1},
  });
  EXPECT_FALSE(is_stable_matching(inst, {1, 0, 3}));        // wrong size
  EXPECT_FALSE(is_stable_matching(inst, {1, 0, 3, 2, 0}));  // wrong size
  EXPECT_FALSE(is_stable_matching(inst, {0, 1, 3, 2}));     // fixed point
  EXPECT_FALSE(is_stable_matching(inst, {2, 3, 0, 1}));     // blocked by (0,1)
  EXPECT_TRUE(is_stable_matching(inst, {1, 0, 3, 2}));
}

TEST(KPartiteBinary, LinearizationsProduceSymmetricInstances) {
  Rng rng(150);
  const auto inst = gen::uniform(3, 4, rng);
  for (const auto lin : {Linearization::round_robin, Linearization::gender_blocks,
                         Linearization::random_interleave}) {
    const auto rm_inst = to_roommates(inst, lin, &rng);
    EXPECT_EQ(rm_inst.size(), 12);
    // Every member lists exactly the 8 other-gender members.
    for (Person p = 0; p < 12; ++p) {
      EXPECT_EQ(rm_inst.list(p).size(), 8U);
      for (const Person q : rm_inst.list(p)) {
        EXPECT_NE(q / 4, p / 4);  // never its own gender
      }
    }
  }
}

TEST(KPartiteBinary, LinearizationPreservesPerGenderOrder) {
  Rng rng(151);
  const auto inst = gen::uniform(3, 5, rng);
  for (const auto lin : {Linearization::round_robin, Linearization::gender_blocks,
                         Linearization::random_interleave}) {
    const auto rm_inst = to_roommates(inst, lin, &rng);
    // Within each target gender, the combined list order must equal the
    // per-gender preference order (a valid topological linearization).
    for (Gender g = 0; g < 3; ++g) {
      for (Index i = 0; i < 5; ++i) {
        const Person p = flat_id({g, i}, 5);
        for (Gender h = 0; h < 3; ++h) {
          if (h == g) continue;
          std::vector<Index> seen;
          for (const Person q : rm_inst.list(p)) {
            if (q / 5 == h) seen.push_back(q % 5);
          }
          const auto expected = inst.pref_list({g, i}, h);
          EXPECT_TRUE(std::equal(expected.begin(), expected.end(), seen.begin()))
              << "lin broke per-gender order";
        }
      }
    }
  }
}

TEST(KPartiteBinary, BipartiteAlwaysStable) {
  Rng rng(152);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(2, 6, rng);
    const auto result = solve_kpartite_binary(inst, Linearization::round_robin);
    EXPECT_TRUE(result.has_stable);  // k = 2: SMP always solvable
  }
}

TEST(KPartiteBinary, RandomInterleaveRequiresRng) {
  Rng rng(153);
  const auto inst = gen::uniform(3, 2, rng);
  EXPECT_THROW(to_roommates(inst, Linearization::random_interleave, nullptr),
               ContractViolation);
}

TEST(FairSmp, PoliciesReproduceOptimalMatchingsOnExample1Second) {
  const auto inst = kstable::examples::example1_second();
  const auto man = solve_fair_smp(inst, kstable::examples::kMen, kstable::examples::kWomen,
                                  FairPolicy::man_oriented);
  ASSERT_TRUE(man.has_stable);
  EXPECT_EQ(man.man_match[0], 0);  // (m, w)
  EXPECT_EQ(man.man_match[1], 1);  // (m', w')

  const auto woman = solve_fair_smp(inst, kstable::examples::kMen, kstable::examples::kWomen,
                                    FairPolicy::woman_oriented);
  ASSERT_TRUE(woman.has_stable);
  EXPECT_EQ(woman.man_match[0], 1);  // (m, w')
  EXPECT_EQ(woman.man_match[1], 0);  // (m', w)
}

TEST(FairSmp, MatchesGsWhenUniqueStableMatching) {
  // Example 1 first preferences have a unique stable matching; every policy
  // must find it, and it must equal the GS outcome.
  const auto inst = kstable::examples::example1_first();
  const auto gs_result =
      gs::gale_shapley_queue(inst, kstable::examples::kMen, kstable::examples::kWomen);
  for (const auto policy : {FairPolicy::man_oriented, FairPolicy::woman_oriented,
                            FairPolicy::alternate}) {
    const auto fair =
        solve_fair_smp(inst, kstable::examples::kMen, kstable::examples::kWomen, policy);
    ASSERT_TRUE(fair.has_stable);
    for (Index i = 0; i < 2; ++i) {
      EXPECT_EQ(fair.man_match[static_cast<std::size_t>(i)],
                gs_result.proposer_match[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(FairSmp, ManOrientedEqualsMenProposingGsOnRandomInstances) {
  Rng rng(160);
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = gen::uniform(2, 8, rng);
    const auto gs_result = gs::gale_shapley_queue(inst, 0, 1);
    const auto fair = solve_fair_smp(inst, 0, 1, FairPolicy::man_oriented);
    ASSERT_TRUE(fair.has_stable);
    EXPECT_EQ(fair.man_match, gs_result.proposer_match) << "trial " << trial;
    // Symmetrically for women.
    const auto gs_women = gs::gale_shapley_queue(inst, 1, 0);
    const auto fair_women = solve_fair_smp(inst, 0, 1, FairPolicy::woman_oriented);
    EXPECT_EQ(fair_women.woman_match, gs_women.proposer_match);
  }
}

TEST(FairSmp, AlternatePolicyStillStable) {
  Rng rng(161);
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = gen::uniform(2, 10, rng);
    const auto fair = solve_fair_smp(inst, 0, 1, FairPolicy::alternate);
    ASSERT_TRUE(fair.has_stable);
    // Verify stability directly against the instance.
    for (Index m = 0; m < 10; ++m) {
      for (Index w = 0; w < 10; ++w) {
        const Index mw = fair.man_match[static_cast<std::size_t>(m)];
        const Index wm = fair.woman_match[static_cast<std::size_t>(w)];
        if (mw == w) continue;
        const bool m_wants = inst.prefers({0, m}, {1, w}, {1, mw});
        const bool w_wants = inst.prefers({1, w}, {0, m}, {0, wm});
        EXPECT_FALSE(m_wants && w_wants)
            << "blocking pair (" << m << ',' << w << ")";
      }
    }
  }
}

TEST(Census, LimitAbortsEarly) {
  Rng rng(170);
  std::vector<std::vector<Person>> lists(8);
  for (Person p = 0; p < 8; ++p) {
    for (Person q = 0; q < 8; ++q) {
      if (q != p) lists[static_cast<std::size_t>(p)].push_back(q);
    }
    rng.shuffle(lists[static_cast<std::size_t>(p)]);
  }
  const RoommatesInstance inst(std::move(lists));
  const auto census = analysis::binary_census(inst, 10);
  EXPECT_EQ(census.perfect_matchings, 10);
}

}  // namespace
}  // namespace kstable::rm
