// Tests for core::BatchSolver — the serving-shaped API. The concurrency
// property that matters: a batch is just N solo solves that happen to share
// a pool, so each item's matching and SolveStatus must match what a solo run
// under the same budget produces, for every mix of deadlines and budgets.
// The CI ThreadSanitizer job runs this whole file under TSan.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/oracle.hpp"
#include "core/batch_solver.hpp"
#include "core/binding.hpp"
#include "core/tree_selection.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

std::vector<KPartiteInstance> make_batch() {
  std::vector<KPartiteInstance> instances;
  for (int seed = 0; seed < 4; ++seed) {
    for (Gender k = 3; k <= 5; ++k) {
      Rng rng(static_cast<std::uint64_t>(seed) * 977 + k);
      instances.push_back(gen::uniform(k, 16, rng));
    }
  }
  return instances;
}

TEST(BatchSolver, EveryItemMatchesItsSoloRun) {
  const auto instances = make_batch();
  ThreadPool pool(4);
  BatchSolver solver(pool);
  const auto results = solver.solve(instances);

  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& item = results[i];
    ASSERT_TRUE(item.status.ok()) << "item " << i;
    ASSERT_TRUE(item.matching.has_value());
    const auto solo =
        iterative_binding(instances[i], trees::path(instances[i].genders()));
    EXPECT_EQ(*item.matching, solo.matching()) << "item " << i;
    EXPECT_EQ(item.total_proposals, solo.total_proposals);
    // Single-tree path solve: every edge is a compulsory miss.
    EXPECT_EQ(item.cache_hits, 0);
    EXPECT_EQ(item.cache_misses, instances[i].genders() - 1);
  }
}

TEST(BatchSolver, MixedProposalBudgetsMatchSoloStatuses) {
  const auto instances = make_batch();
  ThreadPool pool(4);
  BatchSolver solver(pool);

  BatchOptions options;
  // Mixed deadlines: unlimited / generous / starved, round-robin.
  for (std::size_t i = 0; i < instances.size(); ++i) {
    switch (i % 3) {
      case 0: options.per_item_budgets.push_back({}); break;
      case 1:
        options.per_item_budgets.push_back(
            resilience::Budget::proposals(100000));
        break;
      default:
        options.per_item_budgets.push_back(resilience::Budget::proposals(3));
    }
  }
  const auto results = solver.solve(instances, options);

  for (std::size_t i = 0; i < instances.size(); ++i) {
    // Solo run under the identical budget (proposal budgets are
    // deterministic, unlike wall clocks).
    resilience::ExecControl control(options.per_item_budgets[i]);
    BindingOptions solo_options;
    solo_options.control = &control;
    resilience::SolveStatus solo_status;
    std::int64_t solo_proposals = 0;
    try {
      const auto solo = iterative_binding(
          instances[i], trees::path(instances[i].genders()), solo_options);
      solo_status = solo.status;
      solo_proposals = solo.total_proposals;
    } catch (const ExecutionAborted& e) {
      solo_status = control.aborted_status(e.reason(), e.what());
      solo_proposals = control.spent();
    }

    const auto& item = results[i];
    EXPECT_EQ(item.status.outcome, solo_status.outcome) << "item " << i;
    EXPECT_EQ(item.status.abort_reason, solo_status.abort_reason)
        << "item " << i;
    EXPECT_EQ(item.total_proposals, solo_proposals) << "item " << i;
    EXPECT_EQ(item.matching.has_value(), solo_status.ok());
  }
}

TEST(BatchSolver, CostAwareTreeMatchesSoloCostAwareBinding) {
  std::vector<KPartiteInstance> instances;
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 311 + 5);
    instances.push_back(gen::uniform(5, 16, rng));
  }
  ThreadPool pool(3);
  BatchSolver solver(pool);
  BatchOptions options;
  options.tree = BatchTree::cost_aware;
  const auto results = solver.solve(instances, options);

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& item = results[i];
    ASSERT_TRUE(item.status.ok());
    const auto solo = cost_aware_binding(instances[i]);
    EXPECT_EQ(*item.matching, solo.matching()) << "item " << i;
    // The probe phase warms the per-item cache, so the selected tree's k-1
    // edges all replay as hits.
    EXPECT_EQ(item.cache_hits, instances[i].genders() - 1);
    EXPECT_EQ(item.cache_misses,
              instances[i].genders() * (instances[i].genders() - 1) / 2);
  }
}

TEST(BatchSolver, SharedCancellationAbortsEveryItem) {
  const auto instances = make_batch();
  ThreadPool pool(4);
  BatchSolver solver(pool);
  BatchOptions options;
  options.token.request_cancel();  // cancelled before the batch starts
  const auto results = solver.solve(instances, options);
  for (const auto& item : results) {
    EXPECT_EQ(item.status.outcome, resilience::SolveOutcome::aborted);
    EXPECT_EQ(item.status.abort_reason, AbortReason::cancelled);
    EXPECT_FALSE(item.matching.has_value());
  }
}

TEST(BatchSolver, RoundsEngineAndCacheOffStillCorrect) {
  std::vector<KPartiteInstance> instances;
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 99);
    instances.push_back(gen::uniform(4, 12, rng));
  }
  ThreadPool pool(2);
  BatchSolver solver(pool);
  BatchOptions options;
  options.engine = GsEngine::rounds;
  options.use_cache = false;
  const auto results = solver.solve(instances, options);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    BindingOptions solo_options;
    solo_options.engine = GsEngine::rounds;
    const auto solo = iterative_binding(instances[i], trees::path(4),
                                        solo_options);
    EXPECT_EQ(*results[i].matching, solo.matching());
    EXPECT_EQ(results[i].cache_hits, 0);
    EXPECT_EQ(results[i].cache_misses, 0);
  }
}

TEST(BatchSolver, EveryMatchingIsStable) {
  std::vector<KPartiteInstance> instances;
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 53 + 11);
    instances.push_back(gen::uniform(4, 6, rng));
  }
  ThreadPool pool(4);
  BatchSolver solver(pool);
  const auto results = solver.solve(instances);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_FALSE(
        analysis::find_blocking_family(instances[i], *results[i].matching)
            .has_value())
        << "item " << i;
  }
}

TEST(BatchSolver, ContractChecksOnOptions) {
  const auto instances = make_batch();
  ThreadPool pool(2);
  BatchSolver solver(pool);
  BatchOptions parallel_engine;
  parallel_engine.engine = GsEngine::parallel;
  EXPECT_THROW(solver.solve(instances, parallel_engine), ContractViolation);

  BatchOptions short_budgets;
  short_budgets.per_item_budgets.resize(2);  // batch has more items
  EXPECT_THROW(solver.solve(instances, short_budgets), ContractViolation);
}

TEST(BatchSolver, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  BatchSolver solver(pool);
  EXPECT_TRUE(solver.solve({}).empty());
}

}  // namespace
}  // namespace kstable::core
