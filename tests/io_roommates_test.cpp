// Tests for RoommatesInstance text serialization.
#include <gtest/gtest.h>

#include "roommates/examples.hpp"
#include "roommates/io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::rm {
namespace {

TEST(RoommatesIo, RoundTripExamples) {
  for (const auto& inst :
       {examples::sec3b_left(), examples::sec3b_right(),
        examples::self_matching_unstable(), examples::fig2_deadlock()}) {
    const auto text = io::to_string(inst);
    const auto back = io::from_string(text);
    ASSERT_EQ(back.size(), inst.size());
    for (Person p = 0; p < inst.size(); ++p) {
      EXPECT_EQ(back.list(p), inst.list(p));
    }
  }
}

TEST(RoommatesIo, RoundTripRandomIncompleteLists) {
  Rng rng(910);
  // Random symmetric acceptability graph.
  const Person n = 10;
  std::vector<std::vector<Person>> lists(static_cast<std::size_t>(n));
  for (Person p = 0; p < n; ++p) {
    for (Person q = p + 1; q < n; ++q) {
      if (rng.chance(0.6)) {
        lists[static_cast<std::size_t>(p)].push_back(q);
        lists[static_cast<std::size_t>(q)].push_back(p);
      }
    }
  }
  for (auto& list : lists) rng.shuffle(list);
  const RoommatesInstance inst(std::move(lists));
  const auto back = io::from_string(io::to_string(inst));
  for (Person p = 0; p < n; ++p) EXPECT_EQ(back.list(p), inst.list(p));
}

TEST(RoommatesIo, EmptyListsSurvive) {
  const RoommatesInstance inst({{1}, {0}, {}});
  const auto back = io::from_string(io::to_string(inst));
  EXPECT_EQ(back.size(), 3);
  EXPECT_TRUE(back.list(2).empty());
}

TEST(RoommatesIo, RejectsMalformedInput) {
  EXPECT_THROW(io::from_string(""), ContractViolation);
  EXPECT_THROW(io::from_string("wrong v1\n2\nlist 0 : 1\nlist 1 : 0\n"),
               ContractViolation);
  EXPECT_THROW(io::from_string("kstable-roommates v1\n0\n"),
               ContractViolation);
  // Missing person 1.
  EXPECT_THROW(io::from_string("kstable-roommates v1\n2\nlist 0 : 1\n"),
               ContractViolation);
  // Duplicate person.
  EXPECT_THROW(io::from_string(
                   "kstable-roommates v1\n2\nlist 0 : 1\nlist 0 : 1\n"),
               ContractViolation);
  // Asymmetric lists rejected by instance validation.
  EXPECT_THROW(io::from_string(
                   "kstable-roommates v1\n2\nlist 0 : 1\nlist 1 :\n"),
               ContractViolation);
}

TEST(RoommatesIo, CommentsIgnored) {
  const auto inst = io::from_string(
      "# header comment\nkstable-roommates v1\n2\nlist 0 : 1 # trailing\n"
      "list 1 : 0\n");
  EXPECT_EQ(inst.size(), 2);
  EXPECT_EQ(inst.list(0), std::vector<Person>{1});
}

TEST(RoommatesIo, FileRoundTrip) {
  const auto inst = examples::sec3b_left();
  const std::string path = testing::TempDir() + "/kstable_rm_io_test.inst";
  io::save_file(inst, path);
  const auto back = io::load_file(path);
  EXPECT_EQ(back.size(), inst.size());
  EXPECT_THROW(io::load_file("/nonexistent/nowhere.inst"), ContractViolation);
}

}  // namespace
}  // namespace kstable::rm
