// Tests for Algorithm 2 (priority-based iterative binding), bitonic-tree
// guarantees (Theorem 5), and the (k-1)! tree count (Fig. 6).
#include <gtest/gtest.h>

#include <set>

#include "analysis/stability.hpp"
#include "core/priority_binding.hpp"
#include "graph/prufer.hpp"
#include "graph/scheduling.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

std::vector<std::int32_t> identity_priority(Gender k) {
  std::vector<std::int32_t> p(static_cast<std::size_t>(k));
  for (Gender g = 0; g < k; ++g) p[static_cast<std::size_t>(g)] = g;
  return p;
}

TEST(PriorityBinding, DefaultGrowsStarAtHighestPriority) {
  Rng rng(300);
  const auto inst = gen::uniform(4, 3, rng);
  const auto result = priority_binding(inst);
  // Default attach policy hosts everyone at imax = 3.
  EXPECT_EQ(result.tree.degree(3), 3);
  EXPECT_TRUE(result.tree.is_spanning_tree());
  EXPECT_EQ(result.order.front(), 3);
  EXPECT_TRUE(sched::is_bitonic_tree(result.tree, identity_priority(4)));
}

TEST(PriorityBinding, RespectsCustomPriorities) {
  Rng rng(301);
  const auto inst = gen::uniform(4, 3, rng);
  PriorityBindingOptions options;
  options.priority = {10, 40, 20, 30};  // gender 1 is imax
  const auto result = priority_binding(inst, options);
  EXPECT_EQ(result.order.front(), 1);
  EXPECT_EQ(result.order, (std::vector<Gender>{1, 3, 2, 0}));
  EXPECT_TRUE(sched::is_bitonic_tree(result.tree, options.priority));
}

TEST(PriorityBinding, RejectsDuplicatePriorities) {
  Rng rng(302);
  const auto inst = gen::uniform(3, 2, rng);
  PriorityBindingOptions options;
  options.priority = {1, 1, 2};
  EXPECT_THROW(priority_binding(inst, options), ContractViolation);
  options.priority = {1, 2};
  EXPECT_THROW(priority_binding(inst, options), ContractViolation);
}

TEST(PriorityBinding, CustomAttachSelectorIsValidated) {
  Rng rng(303);
  const auto inst = gen::uniform(4, 2, rng);
  PriorityBindingOptions options;
  options.attach = [](const BindingStructure&, const std::vector<Gender>&,
                      Gender) { return Gender{0}; };  // 0 is unbound at step 1
  EXPECT_THROW(priority_binding(inst, options), ContractViolation);
}

TEST(PriorityBinding, ChainAttachSelectorGrowsPath) {
  Rng rng(304);
  const auto inst = gen::uniform(5, 2, rng);
  PriorityBindingOptions options;
  options.attach = [](const BindingStructure&, const std::vector<Gender>& bound,
                      Gender) { return bound.back(); };
  const auto result = priority_binding(inst, options);
  EXPECT_EQ(result.tree.max_degree(), 2);  // a path 4-3-2-1-0
  EXPECT_TRUE(sched::is_bitonic_tree(result.tree, identity_priority(5)));
}

TEST(PriorityTrees, CountIsFactorial) {
  EXPECT_EQ(priority_tree_count(2), 1);
  EXPECT_EQ(priority_tree_count(3), 2);
  EXPECT_EQ(priority_tree_count(4), 6);   // Fig. 6: 3! = 6 trees
  EXPECT_EQ(priority_tree_count(5), 24);
  EXPECT_EQ(priority_tree_count(6), 120);
}

TEST(PriorityTrees, EnumerationMatchesCountAndAllBitonic) {
  for (Gender k = 2; k <= 6; ++k) {
    std::int64_t count = 0;
    std::set<std::vector<Gender>> distinct;
    for_each_priority_tree(k, {}, [&](const BindingStructure& tree) {
      ASSERT_TRUE(tree.is_spanning_tree());
      // Theorem 5 precondition: every priority-grown tree is bitonic.
      EXPECT_TRUE(sched::is_bitonic_tree(tree, identity_priority(k)));
      distinct.insert(prufer::encode(tree));
      ++count;
    });
    EXPECT_EQ(count, priority_tree_count(k)) << "k=" << k;
    EXPECT_EQ(static_cast<std::int64_t>(distinct.size()), count)
        << "trees must be distinct";
  }
}

TEST(PriorityTrees, NonBitonicTreesExistOutsideTheFamily) {
  // Sanity: for k = 4 there are 16 labeled trees but only 6 priority-grown
  // ones; at least one of the remaining 10 is non-bitonic.
  std::int64_t non_bitonic = 0;
  prufer::enumerate_trees(4, [&](const BindingStructure& tree) {
    if (!sched::is_bitonic_tree(tree, identity_priority(4))) ++non_bitonic;
  });
  EXPECT_GT(non_bitonic, 0);
}

/// Theorem 5 property: Algorithm 2's matching admits no weakened blocking
/// family (exact search on small instances).
TEST(Theorem5, PriorityBindingIsWeakenedStable) {
  Rng rng(310);
  for (int trial = 0; trial < 25; ++trial) {
    const Gender k = static_cast<Gender>(3 + rng.below(2));  // 3 or 4
    const Index n = static_cast<Index>(2 + rng.below(3));    // 2..4
    const auto inst = gen::uniform(k, n, rng);
    const auto result = priority_binding(inst);
    const auto witness = analysis::find_weakened_blocking_family(
        inst, result.binding.matching(), identity_priority(k));
    EXPECT_FALSE(witness.has_value())
        << "k=" << k << " n=" << n << " trial=" << trial;
  }
}

TEST(Theorem5, StarAtImaxIsAlwaysWeakenedStable) {
  // The provable core of Theorem 5 (see DESIGN.md "Deviations"): with the
  // star at the highest-priority gender — Algorithm 2's literal "select i
  // with the highest priority" — every group's lead is tree-adjacent to
  // imax's member, which is its own group's lead, so any weakened blocking
  // family would yield a lead-lead blocking pair on a GS-stable edge.
  Rng rng(311);
  for (int trial = 0; trial < 30; ++trial) {
    const Gender k = static_cast<Gender>(3 + rng.below(2));
    const Index n = static_cast<Index>(2 + rng.below(3));
    const auto inst = gen::uniform(k, n, rng);
    const auto star = trees::star(k, k - 1);
    const auto result = iterative_binding(inst, star);
    EXPECT_FALSE(analysis::find_weakened_blocking_family(
                     inst, result.matching(), identity_priority(k))
                     .has_value())
        << "k=" << k << " n=" << n << " trial=" << trial;
  }
}

TEST(Theorem5, PaperGapBitonicNonStarTreesCanAdmitWeakenedBlocking) {
  // Documented deviation from the paper: Theorem 5 claims EVERY bitonic tree
  // prevents weakened blocking families, but the proof's "(i,k) or (j,k)
  // forms a blocking pair" step needs k's member to reciprocate, which the
  // weakened condition only guarantees for lead members. A bitonic
  // counterexample: a singleton group led by a low-priority gender whose only
  // tree neighbor is a non-lead of the other group. This test pins the
  // empirical witness (see E8 for rates).
  bool found = false;
  for (std::uint64_t seed = 300; seed < 340 && !found; ++seed) {
    Rng rng(seed);
    const auto inst = gen::uniform(4, 3, rng);
    for_each_priority_tree(4, {}, [&](const BindingStructure& tree) {
      if (found || tree.degree(3) == 3) return;  // skip the star at imax
      ASSERT_TRUE(sched::is_bitonic_tree(tree, identity_priority(4)));
      const auto result = iterative_binding(inst, tree);
      found |= analysis::find_weakened_blocking_family(
                   inst, result.matching(), identity_priority(4))
                   .has_value();
    });
  }
  EXPECT_TRUE(found)
      << "expected to reproduce the Theorem 5 gap on some bitonic tree";
}

TEST(Theorem5, NonBitonicTreesCanAdmitWeakenedBlockingFamilies) {
  // Fig. 5(a)'s message: a non-bitonic tree (here the star at the LOWEST
  // priority gender) can leave a weakened blocking family. Search seeds
  // until a witness instance is found — must happen quickly.
  bool found = false;
  for (std::uint64_t seed = 0; seed < 60 && !found; ++seed) {
    Rng rng(seed);
    const auto inst = gen::uniform(4, 3, rng);
    const auto tree = trees::star(4, 0);  // non-bitonic under identity
    ASSERT_FALSE(sched::is_bitonic_tree(tree, identity_priority(4)));
    const auto result = iterative_binding(inst, tree);
    found = analysis::find_weakened_blocking_family(inst, result.matching(),
                                                    identity_priority(4))
                .has_value();
  }
  EXPECT_TRUE(found) << "no weakened blocking family found on any seed; "
                        "either extremely unlucky or the checker is broken";
}

TEST(Theorem5, StrictStabilityStillHolds) {
  // Algorithm 2 is still a spanning-tree binding, so Theorem 2 applies too.
  Rng rng(312);
  const auto inst = gen::uniform(4, 3, rng);
  const auto result = priority_binding(inst);
  EXPECT_FALSE(analysis::find_blocking_family(inst, result.binding.matching())
                   .has_value());
}

}  // namespace
}  // namespace kstable::core
