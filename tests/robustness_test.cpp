// Robustness & failure-injection tests across the stack: serialized-input
// fuzzing (mutated instances must load equal or throw — never crash or load
// garbage), contract enforcement at module boundaries, and concurrency
// stress for the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <string>

#include "analysis/stability.hpp"
#include "core/parallel_binding.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/generators.hpp"
#include "prefs/io.hpp"
#include "prefs/matching_io.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "roommates/examples.hpp"
#include "roommates/io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

/// Applies `count` random single-character mutations to `text`.
std::string mutate(std::string text, Rng& rng, int count) {
  static constexpr char kAlphabet[] = "0123456789 \n:abcprefg-";
  for (int i = 0; i < count && !text.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(rng.below(text.size()));
    switch (rng.below(3)) {
      case 0:  // replace
        text[pos] = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      default:  // insert
        text.insert(pos, 1, kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
        break;
    }
  }
  return text;
}

TEST(Fuzz, MutatedKPartiteInstancesLoadValidOrThrow) {
  Rng rng(2000);
  const auto inst = gen::uniform(3, 4, rng);
  const auto text = io::to_string(inst);
  int threw = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const auto mutated = mutate(text, rng, 1 + static_cast<int>(rng.below(4)));
    try {
      const auto loaded = io::from_string(mutated);
      // If it loads, it must be a fully valid instance.
      EXPECT_NO_THROW(loaded.validate());
    } catch (const ContractViolation&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, trials / 2) << "mutations should usually be rejected";
}

TEST(Fuzz, MutatedRoommatesInstancesLoadValidOrThrow) {
  const auto inst = rm::examples::sec3b_left();
  const auto text = rm::io::to_string(inst);
  Rng rng(2001);
  for (int trial = 0; trial < 300; ++trial) {
    const auto mutated = mutate(text, rng, 1 + static_cast<int>(rng.below(4)));
    try {
      const auto loaded = rm::io::from_string(mutated);
      // Symmetry is re-validated by the constructor; nothing else to check
      // beyond not crashing.
      EXPECT_GE(loaded.size(), 1);
    } catch (const ContractViolation&) {
      // expected for most mutations
    }
  }
}

TEST(Contracts, BindingRejectsMismatchedInstanceAndStructure) {
  Rng rng(2002);
  const auto inst = gen::uniform(3, 2, rng);
  const BindingStructure wrong_k(4);
  EXPECT_THROW(core::bind_structure(inst, wrong_k), ContractViolation);
}

TEST(Contracts, StabilityCheckersRejectDimensionMismatches) {
  Rng rng(2003);
  const auto inst = gen::uniform(3, 2, rng);
  const KaryMatching matching(3, 2, {0, 0, 0, 1, 1, 1});
  EXPECT_THROW(
      analysis::tuple_blocks(inst, matching, {0, 0},
                             analysis::BlockingMode::strict),
      ContractViolation);
  // Matching from a different-sized instance.
  const auto big = gen::uniform(3, 3, rng);
  const KaryMatching big_matching(3, 3, {0, 0, 0, 1, 1, 1, 2, 2, 2});
  EXPECT_THROW(analysis::find_blocking_family(inst, big_matching),
               ContractViolation);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  constexpr int kTasks = 20000;
  pool.for_each_index(kTasks, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, NestedSubmissionsDoNotDeadlock) {
  // Tasks submitting further tasks must not deadlock the pool (they only
  // enqueue; the barrier helper is not used re-entrantly).
  ThreadPool pool(2);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  std::vector<std::future<void>> futures;
  futures.reserve(8);
  std::vector<std::future<void>> inner_futures(8);
  std::mutex m;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&, i] {
      ++outer;
      std::scoped_lock lock(m);
      inner_futures[static_cast<std::size_t>(i)] =
          pool.submit([&inner] { ++inner; });
    }));
  }
  for (auto& f : futures) f.get();
  for (auto& f : inner_futures) f.get();
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPool, ManyConcurrentBindingsShareOnePool) {
  Rng rng(2004);
  const auto inst = gen::uniform(4, 16, rng);
  ThreadPool pool(4);
  // Launch several CREW bindings back to back; all must agree.
  const auto reference =
      core::execute_binding(inst, trees::path(4),
                            core::ExecutionMode::crew_full, pool);
  for (int i = 0; i < 10; ++i) {
    const auto repeat = core::execute_binding(
        inst, trees::path(4), core::ExecutionMode::crew_full, pool);
    EXPECT_EQ(repeat.binding.matching(), reference.binding.matching());
  }
}

TEST(Fuzz, MutatedKaryMatchingsRoundTripOrThrow) {
  Rng rng(2006);
  const auto inst = gen::uniform(3, 4, rng);
  // A valid matching to serialize: identity families.
  const KaryMatching matching(3, 4, [] {
    std::vector<Index> fams;
    for (Index t = 0; t < 4; ++t) {
      for (Gender g = 0; g < 3; ++g) fams.push_back(t);
    }
    return fams;
  }());
  const auto text = io::to_string(matching);
  int threw = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    // Deeper mutations than the instance fuzz: up to 8 edits.
    const auto mutated = mutate(text, rng, 1 + static_cast<int>(rng.below(8)));
    try {
      const auto loaded = io::kary_from_string(mutated);
      // Constructor validated it; the serialized form must be a fixpoint.
      EXPECT_EQ(io::kary_from_string(io::to_string(loaded)), loaded);
    } catch (const ContractViolation&) {
      ++threw;  // includes ParseError
    }
  }
  EXPECT_GT(threw, trials / 2) << "mutations should usually be rejected";
}

TEST(Fuzz, MutatedBinaryMatchingsRoundTripOrThrow) {
  const BinaryMatchingKP matching(2, 2, {2, 3, 0, 1});
  const auto text = io::to_string(matching);
  Rng rng(2007);
  for (int trial = 0; trial < 400; ++trial) {
    const auto mutated = mutate(text, rng, 1 + static_cast<int>(rng.below(8)));
    try {
      const auto loaded = io::binary_from_string(mutated);
      const auto reloaded = io::binary_from_string(io::to_string(loaded));
      EXPECT_EQ(reloaded.raw(), loaded.raw());
    } catch (const ContractViolation&) {
      // expected for most mutations
    }
  }
}

TEST(Fuzz, ParseFailuresAreParseErrorsNotBareViolations) {
  // The taxonomy contract: malformed *input* surfaces as ParseError, so
  // callers can distinguish bad data from programming errors.
  EXPECT_THROW(io::from_string("garbage"), ParseError);
  EXPECT_THROW(rm::io::from_string("garbage"), ParseError);
  EXPECT_THROW(io::kary_from_string("garbage"), ParseError);
  EXPECT_THROW(io::binary_from_string("garbage"), ParseError);
}

TEST(ThreadPool, SubmitPropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 41 + 1; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task blew"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task: later work still runs.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor joins after the queue drains; nothing is dropped.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ForEachIndexZeroIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.for_each_index(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, InjectedTaskFaultSurfacesInFuture) {
  ThreadPool pool(2);
  resilience::ScopedFault fault("thread_pool/task");
  auto f = pool.submit([] { return 1; });
  EXPECT_THROW(f.get(), InjectedFault);
  EXPECT_EQ(fault.fires(), 1);
  // max_fires=1 reached: the next task runs clean.
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, InjectedForEachFaultRethrowsWithoutHanging) {
  ThreadPool pool(4);
  resilience::ScopedFault fault("thread_pool/for_each_index");
  std::atomic<int> ran{0};
  // The injected fault must propagate to the caller AFTER the completion
  // barrier releases — a hang here is the bug this test guards against.
  EXPECT_THROW(pool.for_each_index(
                   64,
                   [&ran](std::size_t) {
                     ran.fetch_add(1, std::memory_order_relaxed);
                   }),
               InjectedFault);
  EXPECT_EQ(ran.load(), 63);  // exactly one task was replaced by the fault
  EXPECT_EQ(fault.fires(), 1);
}

TEST(Rng, StreamsSurviveHeavyForking) {
  Rng root(2005);
  // 64 forked generators must all be distinct streams.
  std::vector<std::uint64_t> first_draws;
  for (int i = 0; i < 64; ++i) {
    Rng child = root.fork();
    first_draws.push_back(child());
  }
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::unique(first_draws.begin(), first_draws.end()) -
                first_draws.begin(),
            64);
}

}  // namespace
}  // namespace kstable
