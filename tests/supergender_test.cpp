// Tests for k-ary matching in k'-partite graphs via super-gender coalitions
// (the paper's §VII future-work direction).
#include <gtest/gtest.h>

#include "analysis/stability.hpp"
#include "core/supergender.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

TEST(Partition, ContiguousConstruction) {
  const auto p = SupergenderPartition::contiguous(6, 2);
  ASSERT_EQ(p.groups.size(), 3U);
  EXPECT_EQ(p.groups[0], (std::vector<Gender>{0, 1}));
  EXPECT_EQ(p.groups[2], (std::vector<Gender>{4, 5}));
  EXPECT_NO_THROW(p.validate(6));
  EXPECT_THROW(SupergenderPartition::contiguous(6, 4), ContractViolation);
}

TEST(Partition, ValidationRejectsBadPartitions) {
  SupergenderPartition uneven;
  uneven.groups = {{0, 1}, {2}};
  EXPECT_THROW(uneven.validate(3), ContractViolation);

  SupergenderPartition overlapping;
  overlapping.groups = {{0, 1}, {1, 2}};
  EXPECT_THROW(overlapping.validate(4), ContractViolation);

  SupergenderPartition incomplete;
  incomplete.groups = {{0}, {1}};
  EXPECT_THROW(incomplete.validate(3), ContractViolation);

  SupergenderPartition single;
  single.groups = {{0, 1, 2}};
  EXPECT_THROW(single.validate(3), ContractViolation);
}

TEST(Supergender, MemberMappingRoundTrips) {
  Rng rng(800);
  const auto inst = gen::uniform(6, 4, rng);
  const auto partition = SupergenderPartition::contiguous(6, 3);
  const auto system = derive_supergender_system(
      inst, partition, rm::Linearization::round_robin);
  EXPECT_EQ(system.derived.genders(), 2);
  EXPECT_EQ(system.derived.per_gender(), 12);  // n * c = 4 * 3
  for (Gender g = 0; g < 6; ++g) {
    for (Index i = 0; i < 4; ++i) {
      const MemberId original{g, i};
      const MemberId derived = system.derived_id(original);
      EXPECT_EQ(system.original(derived), original);
    }
  }
}

TEST(Supergender, DerivedListsPreservePerGenderOrder) {
  Rng rng(801);
  const auto inst = gen::uniform(4, 3, rng);
  const auto partition = SupergenderPartition::contiguous(4, 2);
  for (const auto lin : {rm::Linearization::round_robin,
                         rm::Linearization::gender_blocks,
                         rm::Linearization::random_interleave}) {
    const auto system = derive_supergender_system(inst, partition, lin, &rng);
    // For every derived member and target super-gender, the relative order of
    // same-original-gender entries must match the original preference list.
    for (Gender G = 0; G < 2; ++G) {
      for (Index j = 0; j < 6; ++j) {
        const MemberId self = system.original({G, j});
        const Gender H = 1 - G;
        std::vector<std::vector<Index>> seen(4);
        for (const Index d : system.derived.pref_list({G, j}, H)) {
          const MemberId target = system.original({H, d});
          seen[static_cast<std::size_t>(target.gender)].push_back(target.index);
        }
        for (const Gender h : partition.groups[static_cast<std::size_t>(H)]) {
          const auto expected = inst.pref_list(self, h);
          ASSERT_EQ(seen[static_cast<std::size_t>(h)].size(), expected.size());
          EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                                 seen[static_cast<std::size_t>(h)].begin()));
        }
      }
    }
  }
}

TEST(Supergender, SingletonGroupsReproduceOriginalInstance) {
  // c = 1: the derived instance is the original one (identity partition).
  Rng rng(802);
  const auto inst = gen::uniform(3, 4, rng);
  const auto partition = SupergenderPartition::contiguous(3, 1);
  const auto system = derive_supergender_system(
      inst, partition, rm::Linearization::round_robin);
  EXPECT_EQ(system.derived, inst);
}

TEST(Supergender, RandomInterleaveNeedsRng) {
  Rng rng(803);
  const auto inst = gen::uniform(4, 2, rng);
  const auto partition = SupergenderPartition::contiguous(4, 2);
  EXPECT_THROW(derive_supergender_system(
                   inst, partition, rm::Linearization::random_interleave),
               ContractViolation);
}

TEST(Coalition, SatisfiesPaperSizeConstraint) {
  // k' = 6 genders, groups of c = 2 -> k = 3 super-genders, n*c = 8
  // coalitions of k = 3 members: ck = nk' members total.
  Rng rng(804);
  const Index n = 4;
  const auto inst = gen::uniform(6, n, rng);
  const auto result = coalition_binding(
      inst, SupergenderPartition::contiguous(6, 2),
      rm::Linearization::round_robin);
  EXPECT_EQ(result.coalitions.size(), 8U);  // n * c
  for (const auto& coalition : result.coalitions) {
    EXPECT_EQ(coalition.members.size(), 3U);  // k
  }
  // Every original member appears in exactly one coalition.
  std::vector<int> uses(6 * static_cast<std::size_t>(n), 0);
  for (const auto& coalition : result.coalitions) {
    for (const MemberId m : coalition.members) {
      ++uses[static_cast<std::size_t>(flat_id(m, n))];
    }
  }
  for (const int u : uses) EXPECT_EQ(u, 1);
}

TEST(Coalition, EachCoalitionDrawsOneMemberPerSupergender) {
  Rng rng(805);
  const auto inst = gen::uniform(4, 3, rng);
  const auto partition = SupergenderPartition::contiguous(4, 2);
  const auto result =
      coalition_binding(inst, partition, rm::Linearization::gender_blocks);
  for (const auto& coalition : result.coalitions) {
    // members[G] must belong to a gender of group G.
    for (std::size_t G = 0; G < 2; ++G) {
      const auto& group = partition.groups[G];
      EXPECT_NE(std::find(group.begin(), group.end(),
                          coalition.members[G].gender),
                group.end());
    }
  }
}

TEST(Coalition, StableOnDerivedInstance) {
  // Theorem 2 applies to the derived instance: no blocking family w.r.t. the
  // linearized preferences.
  Rng rng(806);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(4, 3, rng);
    const auto result = coalition_binding(
        inst, SupergenderPartition::contiguous(4, 2),
        rm::Linearization::round_robin);
    EXPECT_FALSE(analysis::find_blocking_family(result.system.derived,
                                                result.binding.matching())
                     .has_value())
        << "trial " << trial;
  }
}

TEST(Coalition, LinearizationChangesOutcomes) {
  // Different linearizations generally give different coalition sets (the
  // footnote-4 freedom); check they at least sometimes differ.
  Rng rng(807);
  bool any_difference = false;
  for (int trial = 0; trial < 10 && !any_difference; ++trial) {
    const auto inst = gen::uniform(4, 4, rng);
    const auto a = coalition_binding(inst,
                                     SupergenderPartition::contiguous(4, 2),
                                     rm::Linearization::round_robin);
    const auto b = coalition_binding(inst,
                                     SupergenderPartition::contiguous(4, 2),
                                     rm::Linearization::gender_blocks);
    any_difference =
        !(a.binding.matching() == b.binding.matching());
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace kstable::core
