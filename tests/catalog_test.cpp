// Tests for the named-instance catalog.
#include <gtest/gtest.h>

#include <set>

#include "prefs/catalog.hpp"
#include "prefs/examples.hpp"
#include "util/check.hpp"

namespace kstable::examples {
namespace {

TEST(Catalog, AllEntriesBuildValidInstances) {
  const auto entries = catalog();
  EXPECT_GE(entries.size(), 8U);
  for (const auto& entry : entries) {
    const auto inst = build(entry.name);
    EXPECT_NO_THROW(inst.validate()) << entry.name;
    EXPECT_FALSE(entry.description.empty());
  }
}

TEST(Catalog, NamesAreUnique) {
  const auto entries = catalog();
  std::set<std::string> names;
  for (const auto& entry : entries) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate name " << entry.name;
  }
}

TEST(Catalog, KnownInstancesMatchDirectConstructors) {
  EXPECT_EQ(build("fig3"), fig3_instance());
  EXPECT_EQ(build("example1-first"), example1_first());
}

TEST(Catalog, BuildsAreDeterministic) {
  EXPECT_EQ(build("uniform-3x8"), build("uniform-3x8"));
  EXPECT_EQ(build("euclidean-3x16"), build("euclidean-3x16"));
}

TEST(Catalog, UnknownNameThrowsWithSuggestions) {
  try {
    build("nope");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown instance"), std::string::npos);
    EXPECT_NE(what.find("fig3"), std::string::npos);
  }
}

}  // namespace
}  // namespace kstable::examples
