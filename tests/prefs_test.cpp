// Unit tests for the prefs substrate: instance model, generators, IO,
// matching types, and the paper's example instances.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "prefs/io.hpp"
#include "prefs/kpartite.hpp"
#include "prefs/matching.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

TEST(Ids, FlatRoundTrip) {
  const Index n = 7;
  for (Gender g = 0; g < 4; ++g) {
    for (Index i = 0; i < n; ++i) {
      const MemberId m{g, i};
      EXPECT_EQ(member_of(flat_id(m, n), n), m);
    }
  }
}

TEST(Ids, StreamFormat) {
  std::ostringstream os;
  os << MemberId{0, 3} << ' ' << MemberId{2, 0};
  EXPECT_EQ(os.str(), "a3 c0");
}

TEST(KPartite, ConstructionBounds) {
  EXPECT_THROW(KPartiteInstance(1, 4), ContractViolation);
  EXPECT_THROW(KPartiteInstance(3, 0), ContractViolation);
  const KPartiteInstance inst(3, 4);
  EXPECT_EQ(inst.genders(), 3);
  EXPECT_EQ(inst.per_gender(), 4);
  EXPECT_EQ(inst.total_members(), 12);
}

TEST(KPartite, SetAndReadPrefList) {
  KPartiteInstance inst(2, 3);
  const std::vector<Index> order{2, 0, 1};
  inst.set_pref_list({0, 0}, 1, order);
  const auto list = inst.pref_list({0, 0}, 1);
  EXPECT_EQ(std::vector<Index>(list.begin(), list.end()), order);
  EXPECT_EQ(inst.rank_of({0, 0}, {1, 2}), 0);
  EXPECT_EQ(inst.rank_of({0, 0}, {1, 0}), 1);
  EXPECT_EQ(inst.rank_of({0, 0}, {1, 1}), 2);
  EXPECT_TRUE(inst.prefers({0, 0}, {1, 2}, {1, 1}));
  EXPECT_FALSE(inst.prefers({0, 0}, {1, 1}, {1, 2}));
}

TEST(KPartite, RejectsMalformedLists) {
  KPartiteInstance inst(2, 3);
  EXPECT_THROW(inst.set_pref_list({0, 0}, 1, std::vector<Index>{0, 1}),
               ContractViolation);  // wrong length
  EXPECT_THROW(inst.set_pref_list({0, 0}, 1, std::vector<Index>{0, 1, 1}),
               ContractViolation);  // duplicate
  EXPECT_THROW(inst.set_pref_list({0, 0}, 1, std::vector<Index>{0, 1, 3}),
               ContractViolation);  // out of range
  EXPECT_THROW(inst.set_pref_list({0, 0}, 0, std::vector<Index>{0, 1, 2}),
               ContractViolation);  // own gender
  EXPECT_THROW(inst.set_pref_list({0, 5}, 1, std::vector<Index>{0, 1, 2}),
               ContractViolation);  // member out of range
}

TEST(KPartite, ValidateDetectsUnsetLists) {
  KPartiteInstance inst(2, 2);
  inst.set_pref_list({0, 0}, 1, std::vector<Index>{0, 1});
  EXPECT_THROW(inst.validate(), ContractViolation);
  EXPECT_FALSE(inst.is_complete());
}

TEST(KPartite, RankOfUnsetListThrows) {
  const KPartiteInstance inst(2, 2);
  EXPECT_THROW((void)inst.rank_of({0, 0}, {1, 0}), ContractViolation);
}

TEST(KPartite, PrefersRequiresSameGenderTargets) {
  Rng rng(1);
  const auto inst = gen::uniform(3, 2, rng);
  EXPECT_THROW((void)inst.prefers({0, 0}, {1, 0}, {2, 0}), ContractViolation);
}

TEST(Generators, UniformProducesCompleteInstances) {
  Rng rng(10);
  for (Gender k : {2, 3, 5}) {
    for (Index n : {1, 2, 8}) {
      const auto inst = gen::uniform(k, n, rng);
      EXPECT_NO_THROW(inst.validate()) << "k=" << k << " n=" << n;
    }
  }
}

TEST(Generators, UniformIsSeedDeterministic) {
  Rng a(77), b(77);
  EXPECT_EQ(gen::uniform(3, 6, a), gen::uniform(3, 6, b));
}

TEST(Generators, MasterListSharesOrders) {
  Rng rng(20);
  const auto inst = gen::master_list(3, 5, rng);
  inst.validate();
  for (Gender g = 0; g < 3; ++g) {
    for (Gender h = 0; h < 3; ++h) {
      if (h == g) continue;
      const auto reference = inst.pref_list({g, 0}, h);
      for (Index i = 1; i < 5; ++i) {
        const auto list = inst.pref_list({g, i}, h);
        EXPECT_TRUE(std::equal(reference.begin(), reference.end(), list.begin()));
      }
    }
  }
}

TEST(Generators, PopularityZeroNoiseIsMasterList) {
  Rng rng(30);
  const auto inst = gen::popularity(3, 6, rng, 0.0);
  inst.validate();
  for (Gender h = 0; h < 3; ++h) {
    // All observers of gender h (from any other gender) share one order.
    std::vector<Index> reference;
    for (Gender g = 0; g < 3; ++g) {
      if (g == h) continue;
      for (Index i = 0; i < 6; ++i) {
        const auto list = inst.pref_list({g, i}, h);
        if (reference.empty()) {
          reference.assign(list.begin(), list.end());
        } else {
          EXPECT_TRUE(
              std::equal(reference.begin(), reference.end(), list.begin()));
        }
      }
    }
  }
}

TEST(Generators, PopularityHighNoiseDiversifies) {
  Rng rng(31);
  const auto inst = gen::popularity(2, 16, rng, 50.0);
  inst.validate();
  // With overwhelming noise, observers should disagree somewhere.
  bool any_disagreement = false;
  const auto first = inst.pref_list({0, 0}, 1);
  for (Index i = 1; i < 16 && !any_disagreement; ++i) {
    const auto list = inst.pref_list({0, i}, 1);
    any_disagreement = !std::equal(first.begin(), first.end(), list.begin());
  }
  EXPECT_TRUE(any_disagreement);
  EXPECT_THROW(gen::popularity(2, 4, rng, -1.0), ContractViolation);
}

TEST(Generators, SwapNoisePreservesValidity) {
  Rng rng(40);
  auto inst = gen::uniform(3, 8, rng);
  gen::swap_noise(inst, rng, 200);
  EXPECT_NO_THROW(inst.validate());
}

TEST(Generators, Theorem4CyclePrefsMatchPaper) {
  const auto inst = gen::theorem4_cycle_prefs();
  // Spot checks against §IV.B's listed pairs (M=0, W=1, U=2).
  EXPECT_TRUE(inst.prefers({0, 0}, {1, 0}, {1, 1}));  // m: w over w'
  EXPECT_TRUE(inst.prefers({1, 0}, {0, 0}, {0, 1}));  // w: m over m'
  EXPECT_TRUE(inst.prefers({1, 1}, {0, 1}, {0, 0}));  // w': m' over m
  EXPECT_TRUE(inst.prefers({2, 0}, {0, 1}, {0, 0}));  // u: m' over m
  EXPECT_TRUE(inst.prefers({2, 1}, {1, 1}, {1, 0}));  // u': w' over w
}

TEST(Generators, Theorem1RequiresKGreaterThan2) {
  Rng rng(50);
  EXPECT_THROW(gen::theorem1_adversarial(2, 4, rng), ContractViolation);
}

TEST(Generators, Theorem1StructuralProperties) {
  Rng rng(51);
  const Gender k = 4;
  const Index n = 5;
  const Gender pariah_gender = 1;
  const auto inst = gen::theorem1_adversarial(k, n, rng, pariah_gender);
  inst.validate();
  // (1) Pariah (pariah_gender, 0) ranked last by everyone.
  for (Gender g = 0; g < k; ++g) {
    if (g == pariah_gender) continue;
    for (Index i = 0; i < n; ++i) {
      EXPECT_EQ(inst.rank_of({g, i}, {pariah_gender, 0}), n - 1);
    }
  }
  // (2) Every non-pariah-gender member is ranked first by at least one
  // non-pariah observer of a different gender (the cycle property).
  std::vector<int> first_count(static_cast<std::size_t>(k * n), 0);
  for (Gender g = 0; g < k; ++g) {
    if (g == pariah_gender) continue;
    for (Index i = 0; i < n; ++i) {
      for (Gender h = 0; h < k; ++h) {
        if (h == g || h == pariah_gender) continue;
        const Index t = inst.pref_list({g, i}, h)[0];
        ++first_count[static_cast<std::size_t>(flat_id({h, t}, n))];
      }
    }
  }
  for (Gender h = 0; h < k; ++h) {
    if (h == pariah_gender) continue;
    for (Index j = 0; j < n; ++j) {
      const int count =
          first_count[static_cast<std::size_t>(flat_id({h, j}, n))];
      EXPECT_GE(count, 1) << "member (" << h << ',' << j
                          << ") never ranked first";
    }
  }
}

TEST(Examples, Example1FirstMatchesPaper) {
  const auto inst = examples::example1_first();
  // m and m' both rank w first; w and w' both rank m' first.
  EXPECT_EQ(inst.pref_list({examples::kMen, 0}, examples::kWomen)[0], 0);
  EXPECT_EQ(inst.pref_list({examples::kMen, 1}, examples::kWomen)[0], 0);
  EXPECT_EQ(inst.pref_list({examples::kWomen, 0}, examples::kMen)[0], 1);
  EXPECT_EQ(inst.pref_list({examples::kWomen, 1}, examples::kMen)[0], 1);
}

TEST(Examples, Fig3MatchesStatedConstraints) {
  const auto inst = examples::fig3_instance();
  using namespace examples;
  // u and u' rank m above m'.
  EXPECT_TRUE(inst.prefers({kUndecided, 0}, {kMen, 0}, {kMen, 1}));
  EXPECT_TRUE(inst.prefers({kUndecided, 1}, {kMen, 0}, {kMen, 1}));
  // m ranks u' higher; m' ranks u higher.
  EXPECT_TRUE(inst.prefers({kMen, 0}, {kUndecided, 1}, {kUndecided, 0}));
  EXPECT_TRUE(inst.prefers({kMen, 1}, {kUndecided, 0}, {kUndecided, 1}));
}

TEST(Io, RoundTripPreservesInstance) {
  Rng rng(60);
  const auto inst = gen::uniform(4, 6, rng);
  const auto text = io::to_string(inst);
  const auto back = io::from_string(text);
  EXPECT_EQ(inst, back);
}

TEST(Io, RejectsBadHeader) {
  EXPECT_THROW(io::from_string("garbage v1\n2 2\n"), ContractViolation);
  EXPECT_THROW(io::from_string(""), ContractViolation);
}

TEST(Io, RejectsMissingLists) {
  Rng rng(61);
  const auto inst = gen::uniform(2, 2, rng);
  auto text = io::to_string(inst);
  // Drop the last line.
  text.erase(text.rfind("pref"));
  EXPECT_THROW(io::from_string(text), ContractViolation);
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  Rng rng(62);
  const auto inst = gen::uniform(2, 2, rng);
  auto text = io::to_string(inst);
  text.insert(0, "# leading comment\n\n");
  EXPECT_EQ(io::from_string(text), inst);
}

TEST(Io, FileRoundTrip) {
  Rng rng(63);
  const auto inst = gen::uniform(3, 3, rng);
  const std::string path = testing::TempDir() + "/kstable_io_test.inst";
  io::save_file(inst, path);
  EXPECT_EQ(io::load_file(path), inst);
  EXPECT_THROW(io::load_file("/nonexistent/dir/file.inst"), ContractViolation);
}

TEST(BinaryMatchingKP, ValidatesInvolution) {
  // 2 genders x 2 members: pair (0,i) with (1,i).
  EXPECT_NO_THROW(BinaryMatchingKP(2, 2, {2, 3, 0, 1}));
  // Self match rejected.
  EXPECT_THROW(BinaryMatchingKP(2, 2, {0, 3, 2, 1}), ContractViolation);
  // Same-gender match rejected.
  EXPECT_THROW(BinaryMatchingKP(2, 2, {1, 0, 3, 2}), ContractViolation);
  // Non-involution rejected.
  EXPECT_THROW(BinaryMatchingKP(2, 2, {2, 2, 0, 1}), ContractViolation);
}

TEST(BinaryMatchingKP, PartnerLookup) {
  const BinaryMatchingKP m(2, 2, {3, 2, 1, 0});
  EXPECT_EQ(m.partner({0, 0}), (MemberId{1, 1}));
  EXPECT_EQ(m.partner({1, 0}), (MemberId{0, 1}));
}

TEST(KaryMatching, ValidatesColumns) {
  // k=3, n=2: families (0,0,0) and (1,1,1).
  EXPECT_NO_THROW(KaryMatching(3, 2, {0, 0, 0, 1, 1, 1}));
  // Member reused across families.
  EXPECT_THROW(KaryMatching(3, 2, {0, 0, 0, 1, 0, 1}), ContractViolation);
  // Index out of range.
  EXPECT_THROW(KaryMatching(3, 2, {0, 0, 0, 1, 2, 1}), ContractViolation);
}

TEST(KaryMatching, Lookups) {
  const KaryMatching m(3, 2, {0, 1, 0, 1, 0, 1});
  EXPECT_EQ(m.member_at(0, 1), (MemberId{1, 1}));
  EXPECT_EQ(m.family_of({1, 1}), 0);
  EXPECT_EQ(m.family_of({1, 0}), 1);
  EXPECT_EQ(m.family_member({0, 0}, 2), (MemberId{2, 0}));
}

}  // namespace
}  // namespace kstable
