// Metamorphic property tests: relabeling invariance.
//
// Renaming members within a gender, or renaming genders, must commute with
// every solver — a strong end-to-end check on index bookkeeping across the
// whole stack (instance storage, GS, binding, equivalence classes).
#include <gtest/gtest.h>

#include "core/binding.hpp"
#include "graph/prufer.hpp"
#include "gs/gale_shapley.hpp"
#include "prefs/generators.hpp"
#include "roommates/adapters.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

/// Applies a per-gender member relabeling: member (g, i) becomes
/// (g, perm[g][i]). Preference list contents and owners move accordingly.
KPartiteInstance relabel_members(const KPartiteInstance& inst,
                                 const std::vector<std::vector<Index>>& perm) {
  const Gender k = inst.genders();
  const Index n = inst.per_gender();
  KPartiteInstance out(k, n);
  for (Gender g = 0; g < k; ++g) {
    for (Index i = 0; i < n; ++i) {
      for (Gender h = 0; h < k; ++h) {
        if (h == g) continue;
        const auto list = inst.pref_list({g, i}, h);
        std::vector<Index> renamed;
        renamed.reserve(list.size());
        for (const Index idx : list) {
          renamed.push_back(perm[static_cast<std::size_t>(h)]
                                [static_cast<std::size_t>(idx)]);
        }
        out.set_pref_list({g, perm[static_cast<std::size_t>(g)]
                                  [static_cast<std::size_t>(i)]},
                          h, renamed);
      }
    }
  }
  return out;
}

TEST(Metamorphic, GsCommutesWithMemberRelabeling) {
  Rng rng(1100);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = 12;
    const auto inst = gen::uniform(2, n, rng);
    std::vector<std::vector<Index>> perm{rng.permutation(n),
                                         rng.permutation(n)};
    const auto renamed = relabel_members(inst, perm);

    const auto base = gs::gale_shapley_queue(inst, 0, 1);
    const auto mapped = gs::gale_shapley_queue(renamed, 0, 1);
    // perm must commute: renamed proposer perm[0][p] matches perm[1][base_p].
    for (Index p = 0; p < n; ++p) {
      const Index p2 = perm[0][static_cast<std::size_t>(p)];
      const Index expected =
          perm[1][static_cast<std::size_t>(
              base.proposer_match[static_cast<std::size_t>(p)])];
      EXPECT_EQ(mapped.proposer_match[static_cast<std::size_t>(p2)], expected)
          << "trial " << trial;
    }
    // Proposal counts are relabeling-invariant.
    EXPECT_EQ(base.proposals, mapped.proposals);
  }
}

TEST(Metamorphic, BindingCommutesWithMemberRelabeling) {
  Rng rng(1101);
  for (int trial = 0; trial < 8; ++trial) {
    const Gender k = 4;
    const Index n = 6;
    const auto inst = gen::uniform(k, n, rng);
    std::vector<std::vector<Index>> perm;
    for (Gender g = 0; g < k; ++g) perm.push_back(rng.permutation(n));
    const auto renamed = relabel_members(inst, perm);
    const auto tree = prufer::random_tree(k, rng);

    const auto base = core::iterative_binding(inst, tree);
    const auto mapped = core::iterative_binding(renamed, tree);
    EXPECT_EQ(base.total_proposals, mapped.total_proposals);

    // Families commute: the family of renamed member (g, perm[g][i]) contains
    // exactly the renamed members of (g, i)'s original family.
    const auto& bm = base.matching();
    const auto& mm = mapped.matching();
    for (Index i = 0; i < n; ++i) {
      const Index base_family = bm.family_of({0, i});
      const Index mapped_family =
          mm.family_of({0, perm[0][static_cast<std::size_t>(i)]});
      for (Gender g = 1; g < k; ++g) {
        const Index base_member = bm.member_at(base_family, g).index;
        EXPECT_EQ(mm.member_at(mapped_family, g).index,
                  perm[static_cast<std::size_t>(g)]
                      [static_cast<std::size_t>(base_member)])
            << "trial " << trial;
      }
    }
  }
}

TEST(Metamorphic, RoommatesVerdictInvariantUnderRelabeling) {
  Rng rng(1102);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(3, 4, rng);
    std::vector<std::vector<Index>> perm;
    for (Gender g = 0; g < 3; ++g) perm.push_back(rng.permutation(4));
    const auto renamed = relabel_members(inst, perm);
    const bool base =
        rm::solve_kpartite_binary(inst, rm::Linearization::gender_blocks)
            .has_stable;
    const bool mapped =
        rm::solve_kpartite_binary(renamed, rm::Linearization::gender_blocks)
            .has_stable;
    EXPECT_EQ(base, mapped) << "trial " << trial;
  }
}

TEST(Metamorphic, BindingProposalsInvariantUnderTreeEdgeOrder) {
  // Edges commute (DESIGN decision 2): permuting edge insertion order must
  // not change the assembled matching.
  Rng rng(1103);
  const auto inst = gen::uniform(5, 8, rng);
  const auto tree = prufer::random_tree(5, rng);
  const auto base = core::iterative_binding(inst, tree);
  for (int shuffle_trial = 0; shuffle_trial < 5; ++shuffle_trial) {
    auto edges = tree.edges();
    rng.shuffle(edges);
    BindingStructure reordered(5);
    for (const auto& e : edges) reordered.add_edge(e);
    const auto result = core::iterative_binding(inst, reordered);
    EXPECT_EQ(result.matching(), base.matching());
    EXPECT_EQ(result.total_proposals, base.total_proposals);
  }
}

}  // namespace
}  // namespace kstable
