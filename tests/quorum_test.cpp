// Tests for quorum-based blocking families (the §VII future-work model).
#include <gtest/gtest.h>

#include "analysis/oracle.hpp"
#include "analysis/quorum.hpp"
#include "core/binding.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::analysis {
namespace {

KaryMatching identity_matching(Gender k, Index n) {
  std::vector<Index> families(static_cast<std::size_t>(k) *
                              static_cast<std::size_t>(n));
  for (Index t = 0; t < n; ++t) {
    for (Gender g = 0; g < k; ++g) {
      families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(g)] = t;
    }
  }
  return KaryMatching(k, n, std::move(families));
}

TEST(Quorum, RejectsInvalidQuorumValues) {
  const auto inst = kstable::examples::fig3_instance();
  const auto matching = identity_matching(3, 2);
  EXPECT_THROW(tuple_blocks_quorum(inst, matching, {0, 1, 1}, 0.0),
               ContractViolation);
  EXPECT_THROW(tuple_blocks_quorum(inst, matching, {0, 1, 1}, 1.5),
               ContractViolation);
}

TEST(Quorum, FullQuorumEqualsStrictCondition) {
  // q = 1 is exactly the §IV.A strict blocking condition: cross-check the
  // two checkers on random small instances over every tuple.
  Rng rng(700);
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = gen::uniform(3, 3, rng);
    const auto matching = identity_matching(3, 3);
    std::vector<Index> members(3);
    for (Index a = 0; a < 3; ++a) {
      for (Index b = 0; b < 3; ++b) {
        for (Index c = 0; c < 3; ++c) {
          members = {a, b, c};
          EXPECT_EQ(
              tuple_blocks_quorum(inst, matching, members, 1.0),
              tuple_blocks(inst, matching, members, BlockingMode::strict))
              << "tuple (" << a << ',' << b << ',' << c << ") trial " << trial;
        }
      }
    }
  }
}

TEST(Quorum, BlockingIsAntitoneInQuorum) {
  // If a tuple blocks at quorum q, it blocks at any q' <= q.
  Rng rng(701);
  const std::vector<double> quorums{0.25, 0.5, 0.75, 1.0};
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = gen::uniform(4, 3, rng);
    const auto matching = identity_matching(4, 3);
    std::vector<Index> members(4);
    for (int probe = 0; probe < 50; ++probe) {
      for (Gender g = 0; g < 4; ++g) {
        members[static_cast<std::size_t>(g)] =
            static_cast<Index>(rng.below(3));
      }
      // Blocking at a higher quorum implies blocking at every lower one.
      for (std::size_t hi = 1; hi < quorums.size(); ++hi) {
        if (tuple_blocks_quorum(inst, matching, members, quorums[hi])) {
          EXPECT_TRUE(
              tuple_blocks_quorum(inst, matching, members, quorums[hi - 1]));
        }
      }
    }
  }
}

TEST(Quorum, ExistingFamilyNeverBlocks) {
  const auto inst = kstable::examples::fig3_instance();
  const auto matching = identity_matching(3, 2);
  EXPECT_FALSE(tuple_blocks_quorum(inst, matching, {0, 0, 0}, 0.1));
  EXPECT_FALSE(tuple_blocks_quorum(inst, matching, {1, 1, 1}, 0.1));
}

TEST(Quorum, SearchAgreesWithStrictSearchAtFullQuorum) {
  Rng rng(702);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = gen::uniform(3, 3, rng);
    const auto matching = identity_matching(3, 3);
    const bool strict = find_blocking_family(inst, matching).has_value();
    const bool quorum =
        find_quorum_blocking_family(inst, matching, 1.0).has_value();
    EXPECT_EQ(strict, quorum) << "trial " << trial;
  }
}

TEST(Quorum, LowQuorumIsWeakerThanLeadCondition) {
  // Any-representative (low q) blocking is implied by weakened (lead)
  // blocking: if all leads agree then each group has >= 1 agreeing member.
  Rng rng(703);
  const std::vector<std::int32_t> priority{0, 1, 2};
  for (int trial = 0; trial < 25; ++trial) {
    const auto inst = gen::uniform(3, 3, rng);
    const auto matching = identity_matching(3, 3);
    const bool weakened =
        find_weakened_blocking_family(inst, matching, priority).has_value();
    const bool low_quorum =
        find_quorum_blocking_family(inst, matching, 0.01).has_value();
    EXPECT_TRUE(!weakened || low_quorum)
        << "lead-blocked but not representative-blocked, trial " << trial;
  }
}

TEST(Quorum, Theorem2MatchingStableAtFullQuorumOnly) {
  // Algorithm 1 guarantees q=1 stability; at low quorums the same matching
  // can be blocked (blocking is easier) — verify both directions appear
  // across seeds.
  Rng rng(704);
  int low_blocked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = gen::uniform(3, 4, rng);
    const auto result = core::iterative_binding(inst, trees::path(3));
    EXPECT_FALSE(
        find_quorum_blocking_family(inst, result.matching(), 1.0).has_value());
    low_blocked +=
        find_quorum_blocking_family(inst, result.matching(), 0.01).has_value();
  }
  EXPECT_GT(low_blocked, 0) << "low quorums should block some bindings";
}

TEST(Quorum, CensusIsMonotoneInQuorum) {
  Rng rng(705);
  const auto inst = gen::uniform(3, 3, rng);
  const std::vector<double> quorums{0.2, 0.5, 1.0};
  const auto stable = quorum_stable_census(inst, quorums);
  ASSERT_EQ(stable.size(), 3U);
  EXPECT_LE(stable[0], stable[1]);
  EXPECT_LE(stable[1], stable[2]);
  // q = 1 census must match the strict oracle.
  const auto census = kary_census(inst);
  EXPECT_EQ(stable[2], census.stable_matchings);
}

TEST(Quorum, SampledProbeFindsKnownWitness) {
  // Build the §II.C blocking example; the sampled probe must find it fast.
  KPartiteInstance inst(3, 2);
  auto set2 = [&inst](MemberId m, Gender g, Index top) {
    inst.set_pref_list(m, g, top == 0 ? std::vector<Index>{0, 1}
                                      : std::vector<Index>{1, 0});
  };
  set2({0, 0}, 1, 1);
  set2({0, 0}, 2, 1);
  set2({1, 1}, 0, 0);
  set2({2, 1}, 0, 0);
  set2({0, 1}, 1, 0);
  set2({0, 1}, 2, 0);
  set2({1, 0}, 0, 0);
  set2({1, 0}, 2, 0);
  set2({1, 1}, 2, 0);
  set2({2, 0}, 0, 0);
  set2({2, 0}, 1, 0);
  set2({2, 1}, 1, 0);
  inst.validate();
  const auto matching = identity_matching(3, 2);
  Rng rng(706);
  EXPECT_TRUE(find_quorum_blocking_family_sampled(inst, matching, 1.0, rng, 500)
                  .has_value());
}

}  // namespace
}  // namespace kstable::analysis
