// Property suite for the differential verification harness (src/verify/):
// generator determinism, certificate-checker soundness (accepts real stable
// matchings, rejects every corruption class), a clean-battery sweep across
// all shapes, the sabotage self-test (a planted bug MUST be detected and the
// shrinker MUST emit a minimal loadable repro), shrinker move correctness,
// and the end-to-end run_verification exit contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "core/binding.hpp"
#include "graph/binding_structure.hpp"
#include "gs/gale_shapley.hpp"
#include "observability/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/generators.hpp"
#include "prefs/io.hpp"
#include "roommates/adapters.hpp"
#include "roommates/solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/cert_checker.hpp"
#include "verify/diff_runner.hpp"
#include "verify/instance_gen.hpp"
#include "verify/shrinker.hpp"
#include "verify/verify.hpp"

namespace kstable::verify {
namespace {

// --- InstanceGen -----------------------------------------------------------

TEST(InstanceGen, DeterministicPerSeed) {
  GenOptions options;
  options.shape = Shape::kpartite;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto a = generate(options, seed);
    const auto b = generate(options, seed);
    EXPECT_EQ(a.instance, b.instance) << "seed " << seed;
    EXPECT_EQ(a.dist, b.dist);
  }
}

TEST(InstanceGen, ShapesPinTheirGenderCounts) {
  GenOptions options;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    options.shape = Shape::bipartite;
    EXPECT_EQ(generate(options, seed).instance.genders(), 2);
    options.shape = Shape::kpartite;
    const auto kp = generate(options, seed);
    EXPECT_GE(kp.instance.genders(), 3);
    EXPECT_LE(kp.instance.genders(), options.max_k);
    EXPECT_TRUE(kp.instance.is_complete());
  }
}

TEST(InstanceGen, MixedResolvesToConcreteDistributions) {
  GenOptions options;
  options.dist = Dist::mixed;
  bool saw_multiple = false;
  Dist first = generate(options, 1).dist;
  for (std::uint64_t seed = 2; seed <= 40 && !saw_multiple; ++seed) {
    const auto drawn = generate(options, seed);
    EXPECT_NE(drawn.dist, Dist::mixed);
    saw_multiple = drawn.dist != first;
  }
  EXPECT_TRUE(saw_multiple) << "40 mixed draws never varied the distribution";
}

TEST(InstanceGen, ParseRoundTrips) {
  for (const Shape s : {Shape::bipartite, Shape::kpartite, Shape::roommates}) {
    EXPECT_EQ(parse_shape(to_string(s)), s);
  }
  for (const Dist d : {Dist::uniform, Dist::master, Dist::skewed,
                       Dist::adversarial, Dist::mixed}) {
    EXPECT_EQ(parse_dist(to_string(d)), d);
  }
  EXPECT_FALSE(parse_shape("tripartite").has_value());
  EXPECT_FALSE(parse_dist("gaussian").has_value());
}

// --- CertChecker soundness -------------------------------------------------

TEST(CertChecker, AcceptsRealGsOutcomes) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = gen::uniform(2, 6, rng);
    const auto result = gs::gale_shapley_queue(inst, 0, 1);
    EXPECT_FALSE(check_gs_certificate(inst, 0, 1, result).has_value());
  }
}

TEST(CertChecker, RejectsEveryGsCorruptionClass) {
  Rng rng(12);
  const auto inst = gen::uniform(2, 5, rng);
  const auto good = gs::gale_shapley_queue(inst, 0, 1);

  auto broken = good;  // non-permutation proposer side
  broken.proposer_match[0] = broken.proposer_match[1];
  EXPECT_TRUE(check_gs_certificate(inst, 0, 1, broken).has_value());

  broken = good;  // inverse inconsistency
  std::swap(broken.responder_match[0], broken.responder_match[1]);
  EXPECT_TRUE(check_gs_certificate(inst, 0, 1, broken).has_value());

  broken = good;  // proposal count outside [n, n^2]
  broken.proposals = 3;  // n = 5
  EXPECT_TRUE(check_gs_certificate(inst, 0, 1, broken).has_value());

  broken = good;  // a valid matching that is NOT stable (partner swap)
  sabotage_gs_result(broken);
  const auto failure = check_gs_certificate(inst, 0, 1, broken);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->what.find("blocking pair"), std::string::npos);
}

TEST(CertChecker, AcceptsRealBindingAndRejectsSabotage) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(4, 4, rng);
    const auto tree = trees::path(4);
    const auto result = core::iterative_binding(inst, tree);
    EXPECT_FALSE(
        check_kary_certificate(inst, result.matching(), tree).has_value());
    EXPECT_TRUE(
        check_kary_certificate(inst, sabotage_kary(result.matching()), tree)
            .has_value())
        << "trial " << trial << ": family swap passed the certificate";
  }
}

TEST(CertChecker, KaryShapeMismatchIsReported) {
  Rng rng(14);
  const auto inst = gen::uniform(3, 3, rng);
  const auto other = gen::uniform(3, 4, rng);
  const auto result =
      core::iterative_binding(other, trees::path(3));
  const auto failure =
      check_kary_certificate(inst, result.matching(), trees::path(3));
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->what.find("shape"), std::string::npos);
}

TEST(CertChecker, RoommatesAcceptsSolverOutputRejectsCorruption) {
  Rng rng(15);
  int solved = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = gen::uniform(2, 5, rng);
    const auto rinst = rm::to_roommates(inst, rm::Linearization::round_robin);
    const auto result = rm::solve(rinst);
    if (!result.has_stable) continue;
    ++solved;
    EXPECT_FALSE(check_roommates_certificate(rinst, result.match).has_value());
    auto corrupted = result.match;
    // Break the involution: point person 0 at its partner's partner.
    corrupted[0] = corrupted[static_cast<std::size_t>(corrupted[0])];
    EXPECT_TRUE(check_roommates_certificate(rinst, corrupted).has_value());
  }
  EXPECT_GT(solved, 0) << "no bipartite draw produced a stable matching";
}

TEST(CertChecker, ScanRankMatchesRankTable) {
  Rng rng(16);
  const auto inst = gen::uniform(3, 6, rng);
  for (Gender g = 0; g < 3; ++g) {
    for (Index i = 0; i < 6; ++i) {
      for (Gender h = 0; h < 3; ++h) {
        if (h == g) continue;
        for (Index j = 0; j < 6; ++j) {
          const MemberId m{g, i};
          const MemberId target{h, j};
          EXPECT_EQ(scan_rank(inst, m, target), inst.rank_of(m, target));
        }
      }
    }
  }
}

// --- DiffRunner ------------------------------------------------------------

TEST(DiffRunner, CleanSweepAcrossAllShapes) {
  GenOptions gen_options;
  for (const Shape shape :
       {Shape::bipartite, Shape::kpartite, Shape::roommates}) {
    gen_options.shape = shape;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      const auto drawn = generate(gen_options, seed);
      const auto battery = run_battery(drawn);
      EXPECT_GT(battery.checks, 0);
      for (const auto& m : battery.mismatches) {
        ADD_FAILURE() << "shape " << to_string(shape) << " seed " << seed
                      << ": " << m.check << " — " << m.detail;
      }
    }
  }
}

TEST(DiffRunner, ParallelEngineLegJoinsTheBattery) {
  ThreadPool pool(2);
  DiffOptions options;
  options.pool = &pool;
  GenOptions gen_options;
  gen_options.shape = Shape::kpartite;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto battery = run_battery(generate(gen_options, seed), options);
    EXPECT_TRUE(battery.clean())
        << battery.mismatches.front().check << ": "
        << battery.mismatches.front().detail;
  }
}

TEST(DiffRunner, GsSabotageIsDetected) {
  GenOptions gen_options;
  gen_options.shape = Shape::bipartite;
  DiffOptions options;
  options.sabotage = Sabotage::gs_swap;
  const auto battery = run_battery(generate(gen_options, 7), options);
  ASSERT_FALSE(battery.clean());
  EXPECT_EQ(battery.mismatches.front().check, "gs.engine.scan.bitwise");
}

TEST(DiffRunner, KarySabotageIsDetected) {
  GenOptions gen_options;
  gen_options.shape = Shape::kpartite;
  DiffOptions options;
  options.sabotage = Sabotage::kary_swap;
  const auto battery = run_battery(generate(gen_options, 7), options);
  ASSERT_FALSE(battery.clean());
  EXPECT_EQ(battery.mismatches.front().check, "binding.sweep.bitwise");
}

TEST(DiffRunner, MismatchJsonCarriesReplayProvenance) {
  Mismatch m;
  m.check = "gs.engine.scan.bitwise";
  m.detail = "first divergence at index 0: expected \"a\"\n";
  m.shape = Shape::kpartite;
  m.dist = Dist::skewed;
  m.seed = 42;
  m.k = 4;
  m.n = 3;
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"check\":\"gs.engine.scan.bitwise\""),
            std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"shape\":\"kpartite\""), std::string::npos);
  EXPECT_NE(json.find("\\\"a\\\"\\n"), std::string::npos)  // escaped quote+LF
      << json;
}

// --- Shrinker --------------------------------------------------------------

TEST(Shrinker, MovesPreserveValidity) {
  Rng rng(21);
  const auto inst = gen::uniform(4, 4, rng);
  const auto no_gender = remove_gender(inst, 1);
  ASSERT_TRUE(no_gender.has_value());
  EXPECT_EQ(no_gender->genders(), 3);
  EXPECT_EQ(no_gender->per_gender(), 4);
  EXPECT_TRUE(no_gender->is_complete());

  const auto no_member = remove_member(inst, 2);
  ASSERT_TRUE(no_member.has_value());
  EXPECT_EQ(no_member->genders(), 4);
  EXPECT_EQ(no_member->per_gender(), 3);
  EXPECT_TRUE(no_member->is_complete());

  EXPECT_FALSE(remove_gender(gen::uniform(2, 3, rng), 0).has_value());
  EXPECT_FALSE(remove_member(gen::uniform(3, 1, rng), 0).has_value());
}

TEST(Shrinker, RemoveMemberPreservesRelativeOrder) {
  Rng rng(22);
  const auto inst = gen::uniform(2, 5, rng);
  const Index removed = 2;
  const auto reduced = remove_member(inst, removed);
  ASSERT_TRUE(reduced.has_value());
  for (Index i = 0; i < 5; ++i) {
    if (i == removed) continue;
    const Index new_i = i > removed ? i - 1 : i;
    const auto before = inst.pref_list(MemberId{0, i}, 1);
    const auto after = reduced->pref_list(MemberId{0, new_i}, 1);
    std::size_t a = 0;
    for (const Index choice : before) {
      if (choice == removed) continue;
      const Index expected = choice > removed ? choice - 1 : choice;
      ASSERT_LT(a, after.size());
      EXPECT_EQ(after[a++], expected);
    }
  }
}

TEST(Shrinker, DescendsToTheKnownMinimalCore) {
  // Predicate: instance still has >= 2 genders and >= 2 members — the
  // shrinker must descend exactly to k = 2, n = 2 with canonical lists.
  Rng rng(23);
  const auto start = gen::uniform(5, 6, rng);
  const auto result = shrink(start, [](const KPartiteInstance& inst) {
    return inst.genders() >= 2 && inst.per_gender() >= 2;
  });
  EXPECT_EQ(result.instance.genders(), 2);
  EXPECT_EQ(result.instance.per_gender(), 2);
  EXPECT_GT(result.reductions, 0);
  EXPECT_GE(result.candidates_tried, result.reductions);
  // Every surviving list is canonical (identity): no uninformative entropy.
  for (Gender g = 0; g < 2; ++g) {
    for (Index i = 0; i < 2; ++i) {
      const auto list = result.instance.pref_list(MemberId{g, i}, 1 - g);
      EXPECT_EQ(list[0], 0);
      EXPECT_EQ(list[1], 1);
    }
  }
}

TEST(Shrinker, RejectsAPassingStart) {
  Rng rng(24);
  const auto inst = gen::uniform(3, 3, rng);
  EXPECT_THROW(shrink(inst, [](const KPartiteInstance&) { return false; }),
               ContractViolation);
}

// --- run_verification end to end -------------------------------------------

TEST(RunVerification, CleanSweepReportsZeroMismatches) {
  VerifyOptions options;
  options.seeds = 10;
  options.max_repros = 0;
  const auto summary = run_verification(options);
  EXPECT_TRUE(summary.clean());
  EXPECT_EQ(summary.seeds_run, 30);  // 3 shapes x 10 seeds
  EXPECT_GT(summary.checks, 0);
  EXPECT_TRUE(summary.repro_paths.empty());
  EXPECT_STREQ(summary.telemetry.engine, "verify");
  EXPECT_TRUE(summary.telemetry.status.ok());
}

TEST(RunVerification, SabotageProducesReportAndLoadableMinimalRepro) {
  // The acceptance-criteria demo: a deliberately re-introduced bug must be
  // detected, shrunk, and persisted as a repro the IO layer can load and on
  // which the battery still fails.
  VerifyOptions options;
  options.shapes = {Shape::kpartite};
  options.seeds = 2;
  options.sabotage = Sabotage::kary_swap;
  options.repro_dir = ::testing::TempDir();
  std::ostringstream report;
  options.report = &report;
  const auto summary = run_verification(options);
  EXPECT_FALSE(summary.clean());
  EXPECT_GT(summary.mismatch_count, 0);
  ASSERT_EQ(summary.repro_paths.size(), 1u);
  EXPECT_NE(report.str().find("\"check\":\"binding.sweep.bitwise\""),
            std::string::npos);
  EXPECT_NE(report.str().find("\"repro\":"), std::string::npos);

  const auto repro = io::load_file(summary.repro_paths.front());
  EXPECT_TRUE(repro.is_complete());
  // Minimality: the planted family swap needs only two families to diverge.
  EXPECT_EQ(repro.per_gender(), 2);
  DiffOptions diff;
  diff.sabotage = Sabotage::kary_swap;
  EXPECT_FALSE(run_battery(repro, Shape::kpartite, diff).clean());
  std::remove(summary.repro_paths.front().c_str());
}

TEST(RunVerification, MismatchCounterFeedsTheMetricsRegistry) {
  VerifyOptions options;
  options.shapes = {Shape::bipartite};
  options.seeds = 1;
  options.sabotage = Sabotage::gs_swap;
  options.max_repros = 0;
  const auto summary = run_verification(options);
  EXPECT_FALSE(summary.clean());
  EXPECT_EQ(summary.telemetry.status.outcome,
            resilience::SolveOutcome::no_stable);
#if KSTABLE_METRICS_ENABLED
  std::ostringstream os;
  obs::MetricsRegistry::global().write_json(os);
  EXPECT_NE(os.str().find("verify.mismatches"), std::string::npos);
#endif
}

}  // namespace
}  // namespace kstable::verify
