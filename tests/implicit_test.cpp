// Tests for the implicit preference backend (src/prefs/implicit/,
// docs/PERFORMANCE.md §Implicit preferences): the Feistel PRP is a bijection
// with an exact O(1) inverse, implicit instances are indistinguishable from
// their materialized explicit twins to every GS engine and to the binding /
// ladder / batch layers, the immutability contract holds, and the memory
// introspection reports the true O(1)-per-instance footprint.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_solver.hpp"
#include "core/binding.hpp"
#include "core/gs_cache.hpp"
#include "graph/binding_structure.hpp"
#include "gs/gale_shapley.hpp"
#include "gs/parallel_gs.hpp"
#include "gs/scan_gs.hpp"
#include "prefs/implicit/feistel.hpp"
#include "prefs/kpartite.hpp"
#include "resilience/solve_ladder.hpp"
#include "util/check.hpp"

namespace kstable {
namespace {

using prefs::imp::Family;
using prefs::imp::ImplicitSpec;

// ---------------------------------------------------------------------------
// PRP layer

TEST(Feistel, GeometryCoversDomain) {
  for (const Index n : {1, 2, 3, 4, 5, 16, 17, 255, 256, 1000, 4097, 65536}) {
    const auto g = prefs::imp::feistel_geometry(n);
    const std::uint64_t domain = 1ULL << (2 * g.half_bits);
    EXPECT_GE(domain, static_cast<std::uint64_t>(n)) << "n=" << n;
    // Cycle-walking stays cheap: the domain is < 4n, so the expected walk
    // length is below 4 (docs/PERFORMANCE.md).
    if (n > 1) {
      EXPECT_LT(domain, 4ULL * static_cast<std::uint64_t>(n)) << "n=" << n;
    }
  }
}

TEST(Feistel, PrpIsABijectionWithExactInverse) {
  for (const Index n : {1, 2, 3, 5, 16, 255, 1000, 4097}) {
    const auto g = prefs::imp::feistel_geometry(n);
    for (const std::uint64_t row : {0ULL, 1ULL, 977ULL}) {
      const auto keys = prefs::imp::derive_row_keys(0x5eedULL, row);
      std::vector<bool> seen(static_cast<std::size_t>(n), false);
      for (Index x = 0; x < n; ++x) {
        const Index y = prefs::imp::prp_forward(g, keys, x);
        ASSERT_GE(y, 0);
        ASSERT_LT(y, n);
        EXPECT_FALSE(seen[static_cast<std::size_t>(y)])
            << "collision at n=" << n << " x=" << x;
        seen[static_cast<std::size_t>(y)] = true;
        EXPECT_EQ(prefs::imp::prp_inverse(g, keys, y), x)
            << "inverse mismatch at n=" << n << " x=" << x;
      }
    }
  }
}

TEST(Feistel, DistinctRowsGetDistinctPermutations) {
  const Index n = 64;
  const auto g = prefs::imp::feistel_geometry(n);
  const auto a = prefs::imp::derive_row_keys(7, 0);
  const auto b = prefs::imp::derive_row_keys(7, 1);
  bool differs = false;
  for (Index x = 0; x < n && !differs; ++x) {
    differs = prefs::imp::prp_forward(g, a, x) !=
              prefs::imp::prp_forward(g, b, x);
  }
  EXPECT_TRUE(differs) << "rows 0 and 1 produced the same permutation";
}

// ---------------------------------------------------------------------------
// Instance layer

TEST(ImplicitInstance, CyclicClosedForm) {
  const Index n = 9;
  const auto inst =
      KPartiteInstance::make_implicit(3, n, {Family::cyclic, 0});
  for (Index i = 0; i < n; ++i) {
    for (Index r = 0; r < n; ++r) {
      EXPECT_EQ(inst.pref_at({0, i}, 1, r), (i + r) % n);
      EXPECT_EQ(inst.rank_of({0, i}, {1, (i + r) % n}),
                static_cast<std::int32_t>(r));
    }
  }
}

TEST(ImplicitInstance, RankOfInvertsPrefAt) {
  for (const auto family : {Family::uniform, Family::cyclic}) {
    const Index n = 33;
    const auto inst =
        KPartiteInstance::make_implicit(3, n, {family, 0xfeedULL});
    for (Gender g = 0; g < 3; ++g) {
      for (Index m = 0; m < n; ++m) {
        for (Gender h = 0; h < 3; ++h) {
          if (h == g) continue;
          for (Index r = 0; r < n; ++r) {
            const Index p = inst.pref_at({g, m}, h, r);
            ASSERT_EQ(inst.rank_of({g, m}, {h, p}),
                      static_cast<std::int32_t>(r))
                << "family=" << prefs::imp::to_string(family) << " g=" << g
                << " m=" << m << " h=" << h << " r=" << r;
          }
        }
      }
    }
  }
}

TEST(ImplicitInstance, MaterializedIsSemanticallyEqual) {
  for (const auto family : {Family::uniform, Family::cyclic}) {
    const auto inst =
        KPartiteInstance::make_implicit(3, 21, {family, 42});
    const auto wide = inst.materialized(prefs::RankWidth::wide32);
    const auto narrow = inst.materialized(prefs::RankWidth::narrow16);
    EXPECT_TRUE(wide == inst);
    EXPECT_TRUE(narrow == inst);
    EXPECT_NO_THROW(wide.validate());
    EXPECT_EQ(wide.backend(), PrefBackend::explicit_tables);
  }
  // Different seeds generate different instances (element-wise comparison).
  const auto a = KPartiteInstance::make_implicit(2, 16, {Family::uniform, 1});
  const auto b = KPartiteInstance::make_implicit(2, 16, {Family::uniform, 2});
  EXPECT_FALSE(a == b);
  // Same spec compares equal without any evaluation.
  const auto c = KPartiteInstance::make_implicit(2, 16, {Family::uniform, 1});
  EXPECT_TRUE(a == c);
}

TEST(ImplicitInstance, ReportsZeroTableFootprint) {
  const auto inst =
      KPartiteInstance::make_implicit(2, 100000, {Family::uniform, 9});
  EXPECT_EQ(inst.backend(), PrefBackend::implicit_gen);
  EXPECT_EQ(inst.pref_bytes(), 0u);
  EXPECT_EQ(inst.rank_bytes(), 0u);
  EXPECT_EQ(inst.arena_bytes(), 0u);
  EXPECT_EQ(inst.generation(), 0);
  EXPECT_NO_THROW(inst.validate());
}

TEST(ImplicitInstance, MutatorsAndTableAccessorsThrow) {
  const auto inst =
      KPartiteInstance::make_implicit(2, 4, {Family::uniform, 3});
  EXPECT_THROW((void)inst.pref_list({0, 0}, 1), ContractViolation);
  EXPECT_THROW(
      (void)KPartiteInstance::relaid(inst, prefs::RankWidth::wide32),
      ContractViolation);
  auto copy = inst;
  EXPECT_THROW(copy.set_pref_list({0, 0}, 1, std::vector<Index>{0, 1, 2, 3}),
               ContractViolation);
  EXPECT_THROW(copy.swap_pref_entries({0, 0}, 1, 0, 1), ContractViolation);
}

// ---------------------------------------------------------------------------
// Engine equivalence battery

TEST(ImplicitEngines, AllEnginesMatchMaterializedBitwise) {
  ThreadPool pool(4);
  for (const Gender k : {2, 3, 4}) {
    for (const auto family : {Family::uniform, Family::cyclic}) {
      const Index n = 40;
      const auto inst = KPartiteInstance::make_implicit(
          k, n, {family, 0x9000ULL + static_cast<std::uint64_t>(k)});
      const auto wide = inst.materialized(prefs::RankWidth::wide32);
      const auto narrow = inst.materialized(prefs::RankWidth::narrow16);
      for (Gender i = 0; i < k; ++i) {
        for (Gender j = 0; j < k; ++j) {
          if (i == j) continue;
          const auto reference = gs::gale_shapley_queue(inst, i, j);
          EXPECT_TRUE(gs::is_stable_binding(inst, reference));
          auto expect_same = [&](const gs::GsResult& other,
                                 bool check_proposals) {
            EXPECT_EQ(other.proposer_match, reference.proposer_match)
                << other.engine << " k=" << k << " (" << i << "," << j << ")";
            EXPECT_EQ(other.responder_match, reference.responder_match)
                << other.engine;
            if (check_proposals) {
              EXPECT_EQ(other.proposals, reference.proposals) << other.engine;
            }
          };
          // Every engine on the implicit backend...
          expect_same(gs::gale_shapley_rounds(inst, i, j), true);
          expect_same(gs::gale_shapley_prefetch(inst, i, j), true);
          expect_same(gs::gale_shapley_scan(inst, i, j), true);
          expect_same(gs::gale_shapley_scan_simd(inst, i, j), true);
          expect_same(gs::gale_shapley_parallel(inst, i, j, pool, 8), false);
          // ...and the queue engine on both explicit widths.
          expect_same(gs::gale_shapley_queue(wide, i, j), true);
          expect_same(gs::gale_shapley_queue(narrow, i, j), true);
          expect_same(gs::gale_shapley_prefetch(wide, i, j), true);
          expect_same(gs::gale_shapley_prefetch(narrow, i, j), true);
        }
      }
    }
  }
}

TEST(ImplicitEngines, TracesMatchMaterializedExactly) {
  const auto inst =
      KPartiteInstance::make_implicit(2, 48, {Family::uniform, 77});
  const auto wide = inst.materialized(prefs::RankWidth::wide32);
  std::vector<gs::ProposalEvent> trace_imp;
  std::vector<gs::ProposalEvent> trace_exp;
  gs::GsOptions opt;
  opt.trace = &trace_imp;
  (void)gs::gale_shapley_queue(inst, 0, 1, opt);
  opt.trace = &trace_exp;
  (void)gs::gale_shapley_queue(wide, 0, 1, opt);
  EXPECT_EQ(trace_imp, trace_exp);
}

// ---------------------------------------------------------------------------
// Binding / ladder / batch integration

TEST(ImplicitBinding, IterativeBindingMatchesMaterialized) {
  for (const Gender k : {3, 4}) {
    const auto inst =
        KPartiteInstance::make_implicit(k, 25, {Family::uniform, 1234});
    const auto wide = inst.materialized(prefs::RankWidth::wide32);
    const auto path = trees::path(k);
    const auto a = core::iterative_binding(inst, path);
    const auto b = core::iterative_binding(wide, path);
    EXPECT_TRUE(a.matching() == b.matching()) << "k=" << k;
    EXPECT_EQ(a.total_proposals, b.total_proposals);
  }
}

TEST(ImplicitBinding, GenerationBoundCacheReplaysForFree) {
  const auto inst =
      KPartiteInstance::make_implicit(3, 20, {Family::uniform, 5});
  const auto path = trees::path(3);
  core::GsEdgeCache cache(inst);
  core::BindingOptions opts;
  opts.cache = &cache;
  const auto first = core::iterative_binding(inst, path, opts);
  const auto replay = core::iterative_binding(inst, path, opts);
  EXPECT_TRUE(replay.matching() == first.matching());
  EXPECT_EQ(replay.executed_proposals, 0);
  EXPECT_EQ(replay.cache_hits, 2);
}

TEST(ImplicitLadder, FallbackSolvesImplicitInstances) {
  const auto inst =
      KPartiteInstance::make_implicit(3, 18, {Family::uniform, 321});
  const auto report = resilience::solve_with_fallback(inst, {});
  ASSERT_TRUE(report.succeeded);
  const auto reference = core::iterative_binding(inst, trees::path(3));
  EXPECT_TRUE(report.matching() == reference.matching());
}

TEST(ImplicitBatch, MixedBackendBatchMatchesSoloRuns) {
  std::vector<KPartiteInstance> instances;
  for (int s = 0; s < 3; ++s) {
    const auto imp = KPartiteInstance::make_implicit(
        3, 16, {Family::uniform, static_cast<std::uint64_t>(s)});
    instances.push_back(imp);
    instances.push_back(imp.materialized());
  }
  ThreadPool pool(4);
  core::BatchSolver solver(pool);
  const auto results = solver.solve(instances);
  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << "item " << i;
    ASSERT_TRUE(results[i].matching.has_value());
    const auto solo = core::iterative_binding(instances[i], trees::path(3));
    EXPECT_TRUE(*results[i].matching == solo.matching()) << "item " << i;
  }
  // Implicit item 2s and explicit item 2s+1 share the spec, so they must
  // land on identical matchings.
  for (std::size_t s = 0; s + 1 < results.size(); s += 2) {
    EXPECT_TRUE(*results[s].matching == *results[s + 1].matching);
  }
}

// ---------------------------------------------------------------------------
// Scale smoke: the acceptance-criteria shape at a CI-friendly size. The
// E21 benchmark covers n = 10^5+; here we pin that a large implicit solve
// stays exact (perfect matching + stability spot check) without tables.

TEST(ImplicitScale, LargeBipartiteSolveIsStable) {
  const Index n = 20000;
  const auto inst =
      KPartiteInstance::make_implicit(2, n, {Family::uniform, 0xabcdULL});
  EXPECT_EQ(inst.pref_bytes() + inst.rank_bytes(), 0u);
  const auto result = gs::gale_shapley_queue(inst, 0, 1);
  // Perfect matching is enforced by the engine's postcondition; spot-check
  // stability on a band of proposers (full O(n²) check is too slow here).
  for (Index p = 0; p < 64; ++p) {
    const Index matched = result.proposer_match[static_cast<std::size_t>(p)];
    const std::int32_t matched_rank = inst.rank_of({0, p}, {1, matched});
    for (std::int32_t r = 0; r < matched_rank; ++r) {
      const Index w = inst.pref_at({0, p}, 1, static_cast<Index>(r));
      const Index w_partner =
          result.responder_match[static_cast<std::size_t>(w)];
      EXPECT_FALSE(inst.prefers({1, w}, {0, p}, {0, w_partner}))
          << "blocking pair (" << p << "," << w << ")";
    }
  }
}

}  // namespace
}  // namespace kstable
