// Tests for core::TreeSweep: the work-stealing parallel sweep must be
// schedule-invariant — best tree, score table, and every per-tree matching
// bitwise-identical to the sequential sweep over all k^(k-2) trees — and its
// integrations (pair probes, oracle census, speculative ladder, BatchSolver
// sweep_best) must degrade correctly under pool nesting.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "analysis/oracle.hpp"
#include "analysis/stability.hpp"
#include "core/batch_solver.hpp"
#include "core/gs_cache.hpp"
#include "core/tree_selection.hpp"
#include "core/tree_sweep.hpp"
#include "graph/prufer.hpp"
#include "parallel/thread_pool.hpp"
#include "prefs/generators.hpp"
#include "resilience/control.hpp"
#include "resilience/solve_ladder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

KPartiteInstance test_instance(Gender k, Index n, std::uint64_t seed) {
  Rng rng(seed);
  return gen::uniform(k, n, rng);
}

/// The determinism property test (ISSUE satellite): parallel sweep output —
/// best tree, full score table, and every per-tree matching — is
/// bitwise-identical to the sequential sweep over all k^(k-2) trees.
class SweepDeterminismTest : public ::testing::TestWithParam<Gender> {};

TEST_P(SweepDeterminismTest, ParallelMatchesSequentialBitwise) {
  const Gender k = GetParam();
  const auto inst = test_instance(k, 5, 0xbeef0 + static_cast<std::uint64_t>(k));

  TreeSweepOptions seq;
  seq.fold = SweepFold::score_table;
  seq.keep_matchings = true;
  GsEdgeCache seq_cache(k);
  seq.cache = &seq_cache;
  const TreeSweepResult sequential = sweep_all_trees(inst, seq);

  ThreadPool pool(4);
  TreeSweepOptions par = seq;
  GsEdgeCache par_cache(k);
  par.cache = &par_cache;
  par.pool = &pool;
  par.chunk_trees = 2;  // small chunks: force many claims and steals
  const TreeSweepResult parallel = sweep_all_trees(inst, par);

  EXPECT_EQ(parallel.stats.workers, pool.thread_count());
  EXPECT_FALSE(parallel.stats.nested_fallback);
  EXPECT_EQ(sequential.stats.trees, prufer::cayley_count(k));
  EXPECT_EQ(parallel.stats.trees, sequential.stats.trees);

  // The fold's winner and its payload are schedule-invariant.
  EXPECT_EQ(parallel.best_index, sequential.best_index);
  EXPECT_EQ(parallel.best_cost, sequential.best_cost);
  ASSERT_TRUE(parallel.succeeded());
  ASSERT_TRUE(sequential.succeeded());
  EXPECT_EQ(parallel.matching(), sequential.matching());
  ASSERT_TRUE(parallel.best_tree.has_value());
  ASSERT_TRUE(sequential.best_tree.has_value());
  EXPECT_EQ(parallel.best_tree->edges(), sequential.best_tree->edges());
  EXPECT_EQ(parallel.best->total_proposals, sequential.best->total_proposals);

  // Full score table: every row identical, including the matchings.
  ASSERT_EQ(parallel.per_tree.size(), sequential.per_tree.size());
  for (std::size_t i = 0; i < sequential.per_tree.size(); ++i) {
    const TreePoint& p = parallel.per_tree[i];
    const TreePoint& s = sequential.per_tree[i];
    ASSERT_EQ(p.index, s.index);
    EXPECT_EQ(p.prufer, s.prufer);
    EXPECT_TRUE(p.succeeded);
    EXPECT_EQ(p.bound_pair_cost, s.bound_pair_cost);
    EXPECT_EQ(p.all_pairs_cost, s.all_pairs_cost);
    EXPECT_EQ(p.total_proposals, s.total_proposals);
    ASSERT_TRUE(p.matching.has_value());
    ASSERT_TRUE(s.matching.has_value());
    EXPECT_EQ(*p.matching, *s.matching);
  }

  // The winner really is the argmin of (bound-pair cost, index).
  for (const TreePoint& p : sequential.per_tree) {
    EXPECT_LE(sequential.best_cost, p.bound_pair_cost);
  }
  EXPECT_TRUE(
      analysis::find_blocking_family(inst, parallel.matching()) ==
      std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(TreeSweep, SweepDeterminismTest,
                         ::testing::Values<Gender>(3, 4, 5));

TEST(TreeSweepTest, SharedCacheReportsZeroDuplicateComputes) {
  const Gender k = 5;
  const auto inst = test_instance(k, 6, 0xcafe);
  ThreadPool pool(8);
  GsEdgeCache cache(k);
  TreeSweepOptions options;
  options.pool = &pool;
  options.cache = &cache;
  options.chunk_trees = 1;  // maximize concurrent misses on the same edges
  const TreeSweepResult result = sweep_all_trees(inst, options);

  // Zero duplicate GS computations under concurrency: every stored entry
  // cost exactly one miss, and every other lookup was a hit (single-flight
  // waiters count as hits).
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(cache.size()));
  EXPECT_LE(cache.size(),
            static_cast<std::size_t>(k) * static_cast<std::size_t>(k - 1));
  EXPECT_EQ(stats.hits + stats.misses,
            result.stats.trees * static_cast<std::int64_t>(k - 1));
  EXPECT_EQ(result.stats.cache_hits + result.stats.cache_misses,
            result.stats.trees * static_cast<std::int64_t>(k - 1));
  EXPECT_EQ(result.stats.single_flight_waits, stats.single_flight_waits);
}

TEST(TreeSweepTest, NestedSweepFallsBackToSequential) {
  const Gender k = 4;
  const auto inst = test_instance(k, 4, 0xfeed);
  ThreadPool pool(3);

  const TreeSweepResult direct = sweep_all_trees(inst, {});

  // Run the sweep from INSIDE a pool worker with the same pool attached:
  // the oversubscription guard must degrade it to the sequential path.
  auto future = pool.submit([&] {
    TreeSweepOptions options;
    options.pool = &pool;
    return sweep_all_trees(inst, options);
  });
  const TreeSweepResult nested = future.get();

  EXPECT_TRUE(nested.stats.nested_fallback);
  EXPECT_EQ(nested.stats.workers, 1u);
  EXPECT_EQ(nested.stats.steals, 0);
  EXPECT_EQ(nested.best_index, direct.best_index);
  EXPECT_EQ(nested.best_cost, direct.best_cost);
  EXPECT_EQ(nested.matching(), direct.matching());
}

TEST(TreeSweepTest, SharedControlAbortsTheWholeSweep) {
  const Gender k = 4;
  const auto inst = test_instance(k, 5, 0xabad);
  ThreadPool pool(4);
  for (const bool use_pool : {false, true}) {
    resilience::ExecControl control(resilience::Budget::proposals(1));
    TreeSweepOptions options;
    options.pool = use_pool ? &pool : nullptr;
    options.control = &control;
    EXPECT_THROW(sweep_all_trees(inst, options), ExecutionAborted);
  }
}

TEST(TreeSweepTest, RejectsParallelEngineAndBadChunk) {
  const auto inst = test_instance(3, 4, 0x1dea);
  ThreadPool pool(2);
  TreeSweepOptions parallel_engine;
  parallel_engine.engine = GsEngine::parallel;
  parallel_engine.pool = &pool;
  EXPECT_THROW(sweep_all_trees(inst, parallel_engine), ContractViolation);
  TreeSweepOptions bad_chunk;
  bad_chunk.chunk_trees = 0;
  EXPECT_THROW(sweep_all_trees(inst, bad_chunk), ContractViolation);
  TreeSweepOptions tiny_guard;
  tiny_guard.max_trees = 2;
  EXPECT_THROW(sweep_all_trees(inst, tiny_guard), ContractViolation);
}

TEST(TreeSweepTest, FirstStableFoldPicksLowestIndex) {
  const Gender k = 4;
  const auto inst = test_instance(k, 4, 0x57ab);
  std::vector<BindingStructure> candidates = {
      trees::path(k), trees::star(k, 0), trees::star(k, 2)};

  for (const bool use_pool : {false, true}) {
    ThreadPool pool(4);
    TreeSweepOptions options;
    options.fold = SweepFold::first_stable;
    options.pool = use_pool ? &pool : nullptr;
    options.chunk_trees = 1;
    const TreeSweepResult result = sweep_trees(inst, candidates, options);
    // Theorem 2: every spanning tree succeeds, so candidate 0 always wins.
    EXPECT_EQ(result.best_index, 0);
    ASSERT_TRUE(result.succeeded());
    EXPECT_EQ(result.matching(),
              iterative_binding(inst, candidates[0], {}).matching());
    // Every index was either evaluated or early-exit skipped.
    EXPECT_EQ(result.stats.trees + result.stats.skipped,
              static_cast<std::int64_t>(candidates.size()));
  }
}

TEST(TreeSweepTest, SweepIndexSpaceCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::int64_t count = 1000;
  std::vector<std::atomic<std::int32_t>> seen(count);
  std::mutex worker_mutex;
  std::vector<std::size_t> claiming_workers;
  const SweepSchedule schedule = sweep_index_space(
      count, pool, 7,
      [&](std::size_t worker, std::int64_t begin, std::int64_t end) {
        ASSERT_LT(begin, end);
        for (std::int64_t i = begin; i < end; ++i) {
          seen[static_cast<std::size_t>(i)].fetch_add(1);
        }
        std::scoped_lock lock(worker_mutex);
        claiming_workers.push_back(worker);
      });
  for (std::int64_t i = 0; i < count; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
  EXPECT_EQ(schedule.workers, pool.thread_count());
  EXPECT_GE(schedule.chunks, (count + 6) / 7);
  EXPECT_GE(schedule.chunks, static_cast<std::int64_t>(
                                 claiming_workers.size()));
  for (const std::size_t w : claiming_workers) {
    EXPECT_LT(w, pool.thread_count());
  }
}

TEST(TreeSweepTest, ParallelPairProbesMatchSequential) {
  const Gender k = 5;
  const auto inst = test_instance(k, 6, 0x9a0b);
  const std::vector<PairProbe> sequential = probe_all_pairs(inst, {});

  ThreadPool pool(4);
  BindingOptions options;
  options.pool = &pool;
  const std::vector<PairProbe> parallel = probe_all_pairs(inst, options);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].edge.a, sequential[i].edge.a);
    EXPECT_EQ(parallel[i].edge.b, sequential[i].edge.b);
    EXPECT_EQ(parallel[i].cost, sequential[i].cost);
    EXPECT_EQ(parallel[i].proposals, sequential[i].proposals);
  }
  // And the whole cost-aware pipeline lands on the same matching.
  BindingOptions cost_options;
  cost_options.pool = &pool;
  EXPECT_EQ(cost_aware_binding(inst, TreeObjective::min_cost, cost_options)
                .matching(),
            cost_aware_binding(inst, TreeObjective::min_cost, {}).matching());
}

TEST(TreeSweepTest, ParallelOracleCensusMatchesSequential) {
  const Gender k = 3;
  const auto inst = test_instance(k, 3, 0x0c51);
  const std::vector<std::int32_t> priority = {2, 0, 1};
  const auto sequential = analysis::kary_census(inst, priority);

  ThreadPool pool(4);
  const auto parallel = analysis::kary_census(inst, priority, &pool);

  EXPECT_EQ(parallel.total_matchings, sequential.total_matchings);
  EXPECT_EQ(parallel.stable_matchings, sequential.stable_matchings);
  EXPECT_EQ(parallel.weakened_stable_matchings,
            sequential.weakened_stable_matchings);
  ASSERT_EQ(parallel.witness.has_value(), sequential.witness.has_value());
  if (sequential.witness.has_value()) {
    // Same witness: the enumeration-order-first stable matching.
    EXPECT_EQ(*parallel.witness, *sequential.witness);
  }
}

TEST(TreeSweepTest, SpeculativeLadderMatchesSequentialWithoutCache) {
  const Gender k = 4;
  const auto inst = test_instance(k, 5, 0x1add);
  ThreadPool pool(4);

  // Unlimited budgets: the path tree wins immediately in both modes.
  {
    resilience::FallbackOptions seq;
    resilience::FallbackOptions spec = seq;
    spec.speculative = true;
    spec.pool = &pool;
    const auto a = resilience::solve_with_fallback(inst, seq);
    const auto b = resilience::solve_with_fallback(inst, spec);
    ASSERT_TRUE(a.succeeded);
    ASSERT_TRUE(b.succeeded);
    EXPECT_EQ(b.matching(), a.matching());
    EXPECT_EQ(b.rung, a.rung);
    EXPECT_EQ(b.attempts.size(), a.attempts.size());
    // Candidates above the winner may have been raced before the success
    // floor published; that work is waste, never an attempt.
    EXPECT_GE(b.speculative_waste, 0);
  }

  // Tight first budget, no shared cache: attempt 0 blows its budget in both
  // modes and attempt 1 wins — the speculative winner and logs match the
  // sequential ladder exactly (per-attempt work is cache-free, hence
  // deterministic).
  {
    resilience::FallbackOptions seq;
    seq.per_attempt = resilience::Budget::proposals(1);
    seq.backoff = 1e6;
    seq.max_tree_attempts = 3;
    resilience::FallbackOptions spec = seq;
    spec.speculative = true;
    spec.pool = &pool;
    const auto a = resilience::solve_with_fallback(inst, seq);
    const auto b = resilience::solve_with_fallback(inst, spec);
    ASSERT_TRUE(a.succeeded);
    ASSERT_TRUE(b.succeeded);
    EXPECT_EQ(a.rung, resilience::Rung::strict_tree);
    EXPECT_EQ(b.rung, a.rung);
    ASSERT_EQ(b.attempts.size(), a.attempts.size());
    for (std::size_t i = 0; i < a.attempts.size(); ++i) {
      EXPECT_EQ(b.attempts[i].tree_edges, a.attempts[i].tree_edges);
      EXPECT_EQ(b.attempts[i].status.ok(), a.attempts[i].status.ok());
    }
    EXPECT_EQ(b.matching(), a.matching());
  }
}

TEST(TreeSweepTest, BatchSweepBestMatchesDirectSweep) {
  ThreadPool pool(3);
  BatchSolver solver(pool);
  std::vector<KPartiteInstance> instances;
  instances.push_back(test_instance(3, 4, 0xb001));
  instances.push_back(test_instance(4, 4, 0xb002));

  BatchOptions options;
  options.tree = BatchTree::sweep_best;
  const auto results = solver.solve(instances, options);

  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    ASSERT_TRUE(results[i].matching.has_value());
    const TreeSweepResult direct = sweep_all_trees(instances[i], {});
    EXPECT_EQ(*results[i].matching, direct.matching());
  }
}

}  // namespace
}  // namespace kstable::core
