// Tests for the cyclic 3DSM baseline (§I / §V.A prior-work comparator).
#include <gtest/gtest.h>

#include "core/cyclic3dsm.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::c3d {
namespace {

KaryMatching identity_matching(Index n) {
  std::vector<Index> families(static_cast<std::size_t>(n) * 3);
  for (Index t = 0; t < n; ++t) {
    for (int g = 0; g < 3; ++g) {
      families[static_cast<std::size_t>(t) * 3 + static_cast<std::size_t>(g)] = t;
    }
  }
  return KaryMatching(3, n, std::move(families));
}

/// Instance where everyone cyclically prefers index-mates: identity stable.
KPartiteInstance identity_first_instance(Index n, Rng& rng) {
  auto inst = gen::uniform(3, n, rng);
  std::vector<Index> order(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    // i first, rest in rotational order.
    for (Index r = 0; r < n; ++r) {
      order[static_cast<std::size_t>(r)] = static_cast<Index>((i + r) % n);
    }
    inst.set_pref_list({kM, i}, kW, order);
    inst.set_pref_list({kW, i}, kU, order);
    inst.set_pref_list({kU, i}, kM, order);
  }
  return inst;
}

TEST(Cyclic3d, RequiresTripartiteInstance) {
  Rng rng(1300);
  const auto inst = gen::uniform(4, 2, rng);
  std::vector<Index> families(static_cast<std::size_t>(2) * 4);
  for (Index t = 0; t < 2; ++t) {
    for (int g = 0; g < 4; ++g) {
      families[static_cast<std::size_t>(t) * 4 + static_cast<std::size_t>(g)] = t;
    }
  }
  const KaryMatching matching(4, 2, families);
  EXPECT_THROW(find_blocking_triple(inst, matching), ContractViolation);
}

TEST(Cyclic3d, IdentityFirstInstanceIsStable) {
  Rng rng(1301);
  const auto inst = identity_first_instance(5, rng);
  const auto matching = identity_matching(5);
  EXPECT_FALSE(find_blocking_triple(inst, matching).has_value());
}

TEST(Cyclic3d, DetectsHandMadeBlockingTriple) {
  Rng rng(1302);
  auto inst = identity_first_instance(3, rng);
  // Make (m0, w1, u2) blocking for the identity matching:
  // m0 prefers w1 over w0; w1 prefers u2 over u1; u2 prefers m0 over m2.
  inst.set_pref_list({kM, 0}, kW, std::vector<Index>{1, 0, 2});
  inst.set_pref_list({kW, 1}, kU, std::vector<Index>{2, 1, 0});
  inst.set_pref_list({kU, 2}, kM, std::vector<Index>{0, 2, 1});
  const auto matching = identity_matching(3);
  EXPECT_TRUE(triple_blocks(inst, matching, 0, 1, 2));
  const auto witness = find_blocking_triple(inst, matching);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(triple_blocks(inst, matching, witness->m, witness->w, witness->u));
}

TEST(Cyclic3d, MatchedTripleNeverBlocksItself) {
  Rng rng(1303);
  const auto inst = gen::uniform(3, 3, rng);
  const auto matching = identity_matching(3);
  for (Index t = 0; t < 3; ++t) {
    EXPECT_FALSE(triple_blocks(inst, matching, t, t, t));
  }
}

TEST(Cyclic3d, ExhaustiveFindsStableMatchingOnSmallRandomInstances) {
  // Known result: cyclic 3DSM instances of small n always admit a (weakly)
  // stable matching; the exhaustive solver must find one.
  Rng rng(1304);
  for (int trial = 0; trial < 20; ++trial) {
    const Index n = static_cast<Index>(2 + rng.below(3));  // 2..4
    const auto inst = gen::uniform(3, n, rng);
    const auto witness = find_stable_exhaustive(inst);
    ASSERT_TRUE(witness.has_value()) << "n=" << n << " trial=" << trial;
    EXPECT_FALSE(find_blocking_triple(inst, *witness).has_value());
  }
}

TEST(Cyclic3d, LocalSearchConvergesOnSmallInstances) {
  Rng rng(1305);
  int converged = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = gen::uniform(3, 6, rng);
    const auto result = local_search(inst, 10000);
    if (result.converged) {
      ++converged;
      ASSERT_TRUE(result.matching.has_value());
      EXPECT_FALSE(find_blocking_triple(inst, *result.matching).has_value());
    }
  }
  EXPECT_GT(converged, 10);  // repair usually converges at this size
}

TEST(Cyclic3d, LocalSearchRespectsRepairCap) {
  Rng rng(1306);
  const auto inst = gen::uniform(3, 8, rng);
  const auto result = local_search(inst, 0);
  // With zero repairs allowed it either finds the identity stable or stops.
  EXPECT_LE(result.repairs, 0 + 1);
  if (!result.converged) {
    EXPECT_FALSE(result.matching.has_value());
  }
}

TEST(Cyclic3d, RepairStepKeepsMatchingValid) {
  // Run a handful of repairs and rely on KaryMatching's constructor (inside
  // local_search) to validate each intermediate family table.
  Rng rng(1307);
  const auto inst = gen::uniform(3, 10, rng);
  EXPECT_NO_THROW(local_search(inst, 50));
}

}  // namespace
}  // namespace kstable::c3d
