// Allocation tests for the zero-allocation GS hot path: this binary replaces
// the global operator new/delete with counting hooks so the tests can assert
// that gale_shapley_queue / gale_shapley_rounds with a warm GsWorkspace and a
// warm GsResult perform ZERO heap allocations per solve, and that traced runs
// reserve the Theorem 3 bound (n² events) up front instead of growing
// geometrically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/binding.hpp"
#include "gs/gale_shapley.hpp"
#include "gs/scan_gs.hpp"
#include "prefs/generators.hpp"
#include "util/rng.hpp"

namespace {
/// Counts every global allocation in this test binary. Relaxed is enough:
/// the tests snapshot/compare on one thread.
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kstable::gs {
namespace {

/// Runs `fn` and returns how many allocations it performed.
template <typename Fn>
std::int64_t allocations_during(Fn&& fn) {
  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(GsWorkspace, QueueEngineZeroAllocationsWhenWarm) {
  Rng rng(71);
  const auto inst = gen::uniform(4, 64, rng);
  GsWorkspace workspace;
  GsResult result;
  const GsOptions options;
  // Warm-up: the first solve may allocate the workspace and result buffers.
  gale_shapley_queue(inst, 0, 1, options, workspace, result);

  // Every subsequent solve — same pair, new pair, either orientation — must
  // allocate nothing.
  for (const GenderEdge edge :
       {GenderEdge{0, 1}, GenderEdge{2, 3}, GenderEdge{3, 0}}) {
    const std::int64_t allocs = allocations_during([&] {
      gale_shapley_queue(inst, edge.a, edge.b, options, workspace, result);
    });
    EXPECT_EQ(allocs, 0) << "GS(" << edge.a << ',' << edge.b << ") allocated";
    const auto expected = gale_shapley_queue(inst, edge.a, edge.b);
    EXPECT_EQ(result.proposer_match, expected.proposer_match);
    EXPECT_EQ(result.responder_match, expected.responder_match);
    EXPECT_EQ(result.proposals, expected.proposals);
  }
}

TEST(GsWorkspace, RoundsEngineZeroAllocationsWhenWarm) {
  Rng rng(72);
  const auto inst = gen::uniform(3, 48, rng);
  GsWorkspace workspace;
  GsResult result;
  const GsOptions options;
  gale_shapley_rounds(inst, 0, 1, options, workspace, result);

  for (const GenderEdge edge : {GenderEdge{1, 2}, GenderEdge{2, 0}}) {
    const std::int64_t allocs = allocations_during([&] {
      gale_shapley_rounds(inst, edge.a, edge.b, options, workspace, result);
    });
    EXPECT_EQ(allocs, 0) << "GS(" << edge.a << ',' << edge.b << ") allocated";
    const auto expected = gale_shapley_rounds(inst, edge.a, edge.b);
    EXPECT_EQ(result.proposer_match, expected.proposer_match);
    EXPECT_EQ(result.proposals, expected.proposals);
    EXPECT_EQ(result.rounds, expected.rounds);
  }
}

TEST(GsWorkspace, PrefetchEngineZeroAllocationsWhenWarm) {
  Rng rng(77);
  const auto inst = gen::uniform(4, 64, rng);
  GsWorkspace workspace;
  GsResult result;
  const GsOptions options;
  gale_shapley_prefetch(inst, 0, 1, options, workspace, result);

  for (const GenderEdge edge :
       {GenderEdge{0, 1}, GenderEdge{2, 3}, GenderEdge{3, 0}}) {
    const std::int64_t allocs = allocations_during([&] {
      gale_shapley_prefetch(inst, edge.a, edge.b, options, workspace, result);
    });
    EXPECT_EQ(allocs, 0) << "GS(" << edge.a << ',' << edge.b << ") allocated";
    const auto expected = gale_shapley_queue(inst, edge.a, edge.b);
    EXPECT_EQ(result.proposer_match, expected.proposer_match);
    EXPECT_EQ(result.responder_match, expected.responder_match);
    EXPECT_EQ(result.proposals, expected.proposals);
  }
}

TEST(GsWorkspace, ImplicitBackendZeroAllocationsWhenWarm) {
  // The implicit backend must keep the engines' zero-allocation warm-path
  // contract: generator evaluation is pure arithmetic, so a warm solve over
  // a generator-backed instance heap-allocates exactly as much as one over
  // arena tables — nothing.
  const auto inst = KPartiteInstance::make_implicit(
      3, 64, {prefs::imp::Family::uniform, 0x5eedULL});
  GsWorkspace workspace;
  GsResult result;
  const GsOptions options;
  gale_shapley_queue(inst, 0, 1, options, workspace, result);

  for (const GenderEdge edge :
       {GenderEdge{0, 1}, GenderEdge{1, 2}, GenderEdge{2, 0}}) {
    std::int64_t allocs = allocations_during([&] {
      gale_shapley_queue(inst, edge.a, edge.b, options, workspace, result);
    });
    EXPECT_EQ(allocs, 0) << "implicit GS(" << edge.a << ',' << edge.b
                         << ") allocated";
    allocs = allocations_during([&] {
      gale_shapley_prefetch(inst, edge.a, edge.b, options, workspace, result);
    });
    EXPECT_EQ(allocs, 0) << "implicit prefetch GS(" << edge.a << ','
                         << edge.b << ") allocated";
    const auto expected = gale_shapley_queue(inst, edge.a, edge.b);
    EXPECT_EQ(result.proposer_match, expected.proposer_match);
    EXPECT_EQ(result.proposals, expected.proposals);
  }
}

TEST(GsWorkspace, ArenaInstancesAllocateNothingPerSolve) {
  // The arena layout concentrates every byte of instance storage in one slab
  // carved at construction: a warm prefetch solve over a freshly *generated*
  // instance still allocates nothing, because reading pref/rank rows never
  // touches the allocator.
  Rng rng(78);
  const auto first = gen::uniform(3, 32, rng);
  const auto second = gen::uniform(3, 32, rng);
  GsWorkspace workspace;
  GsResult result;
  gale_shapley_prefetch(first, 0, 1, {}, workspace, result);
  const std::int64_t allocs = allocations_during([&] {
    gale_shapley_prefetch(second, 2, 0, {}, workspace, result);
    gale_shapley_prefetch(first, 1, 2, {}, workspace, result);
  });
  EXPECT_EQ(allocs, 0);
}

TEST(GsWorkspace, WarmHelpersPreallocate) {
  Rng rng(73);
  const Index n = 32;
  const auto inst = gen::uniform(2, n, rng);
  GsWorkspace workspace;
  GsResult result;
  workspace.warm(n);
  warm_result(result, n);
  // Explicit warming removes even the first solve's allocations.
  const std::int64_t allocs = allocations_during(
      [&] { gale_shapley_queue(inst, 0, 1, {}, workspace, result); });
  EXPECT_EQ(allocs, 0);
}

TEST(GsWorkspace, SmallerInstancesReuseWarmCapacity) {
  Rng rng(74);
  const auto big = gen::uniform(3, 64, rng);
  const auto small = gen::uniform(3, 16, rng);
  GsWorkspace workspace;
  GsResult result;
  gale_shapley_queue(big, 0, 1, {}, workspace, result);
  // A different, smaller instance fits inside the warm capacity.
  const std::int64_t allocs = allocations_during(
      [&] { gale_shapley_queue(small, 1, 2, {}, workspace, result); });
  EXPECT_EQ(allocs, 0);
  const auto expected = gale_shapley_queue(small, 1, 2);
  EXPECT_EQ(result.proposer_match, expected.proposer_match);
}

TEST(GsWorkspace, WorkspaceThreadedThroughRunBinding) {
  Rng rng(75);
  const auto inst = gen::uniform(4, 32, rng);
  GsWorkspace workspace;
  core::BindingOptions options;
  options.workspace = &workspace;
  const auto with_workspace = core::run_binding(inst, {1, 3}, options);
  const auto without = core::run_binding(inst, {1, 3}, {});
  EXPECT_EQ(with_workspace.proposer_match, without.proposer_match);
  EXPECT_EQ(with_workspace.proposals, without.proposals);

  options.engine = core::GsEngine::rounds;
  const auto rounds = core::run_binding(inst, {1, 3}, options);
  EXPECT_EQ(rounds.proposer_match, without.proposer_match);
}

TEST(GsTrace, TracedRunsReserveTheTheorem3Bound) {
  Rng rng(76);
  const Index n = 24;
  const auto inst = gen::uniform(2, n, rng);
  std::vector<ProposalEvent> trace;
  GsOptions options;
  options.trace = &trace;
  gale_shapley_queue(inst, 0, 1, options);
  // One up-front reserve of n² events instead of geometric growth.
  EXPECT_GE(trace.capacity(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  EXPECT_LE(trace.size(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n));

  // Appending a second traced run extends the reservation past the events
  // already recorded.
  const std::size_t first_run = trace.size();
  gale_shapley_rounds(inst, 1, 0, options);
  EXPECT_GE(trace.capacity(),
            first_run + static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace kstable::gs
