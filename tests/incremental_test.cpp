// Tests for src/incremental/: preference-churn mutations, the warm-restart
// GS continuation, and the rematch() driver. The load-bearing property —
// after any in-place delta, the incremental path reproduces a cold solve of
// the mutated instance bit for bit, with counter proof of strictly less
// work — is pinned here deterministically and at scale by the DiffRunner
// churn battery (kmatch verify --churn).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/binding.hpp"
#include "core/gs_cache.hpp"
#include "graph/binding_structure.hpp"
#include "gs/gale_shapley.hpp"
#include "incremental/mutation.hpp"
#include "incremental/rematch.hpp"
#include "incremental/warm_gs.hpp"
#include "prefs/generators.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/solve_ladder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::incremental {
namespace {

std::vector<Index> row_copy(const KPartiteInstance& inst, MemberId m,
                            Gender g) {
  const auto row = inst.pref_row(m, g);
  return {row.begin(), row.end()};
}

// ---------------------------------------------------------------------------
// Mutators: delta capture, generation accounting, instance integrity.

TEST(Mutation, SwapEntriesCapturesOldRowAndBumpsGeneration) {
  Rng rng(1);
  auto inst = gen::uniform(3, 5, rng);
  const auto gen0 = inst.generation();
  const MemberId m{0, 2};
  const auto before = row_copy(inst, m, 1);

  const auto delta = swap_entries(inst, m, 1, 0, 3);

  EXPECT_EQ(delta.from_generation, gen0);
  EXPECT_EQ(delta.to_generation, inst.generation());
  EXPECT_EQ(inst.generation(), gen0 + 1);
  EXPECT_FALSE(delta.shape_changed);
  ASSERT_EQ(delta.rows.size(), 1u);
  EXPECT_EQ(delta.rows[0].member, m);
  EXPECT_EQ(delta.rows[0].target, 1);
  EXPECT_EQ(delta.rows[0].old_row, before);

  auto expected = before;
  std::swap(expected[0], expected[3]);
  EXPECT_EQ(row_copy(inst, m, 1), expected);
  // Swapping keeps the list a permutation; ranks stay consistent.
  EXPECT_NO_THROW(inst.validate());
  EXPECT_EQ(inst.rank_of(m, {1, expected[0]}), 0);
  EXPECT_EQ(inst.rank_of(m, {1, expected[3]}), 3);
}

TEST(Mutation, ReplaceListCapturesOldRow) {
  Rng rng(2);
  auto inst = gen::uniform(3, 4, rng);
  const MemberId m{2, 1};
  const auto before = row_copy(inst, m, 0);
  const std::vector<Index> order{3, 1, 0, 2};

  const auto delta = replace_list(inst, m, 0, order);

  ASSERT_EQ(delta.rows.size(), 1u);
  EXPECT_EQ(delta.rows[0].old_row, before);
  EXPECT_EQ(row_copy(inst, m, 0), order);
  EXPECT_EQ(delta.to_generation, inst.generation());
  EXPECT_NO_THROW(inst.validate());
}

TEST(Mutation, TouchesAndTouchedPairsCoverBothOrientations) {
  Rng rng(3);
  auto inst = gen::uniform(4, 4, rng);
  auto delta = swap_entries(inst, {0, 0}, 2, 0, 1);  // pair (0, 2)

  EXPECT_TRUE(delta.touches(0, 2));
  EXPECT_TRUE(delta.touches(2, 0));
  EXPECT_FALSE(delta.touches(0, 1));
  EXPECT_FALSE(delta.touches(1, 3));

  // A second row on another pair; duplicates on the same pair collapse.
  delta.merge(swap_entries(inst, {1, 3}, 0, 1, 2));  // pair (0, 1)
  delta.merge(swap_entries(inst, {2, 1}, 0, 0, 3));  // pair (0, 2) again
  const auto pairs = delta.touched_pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].a, 0);
  EXPECT_EQ(pairs[0].b, 1);
  EXPECT_EQ(pairs[1].a, 0);
  EXPECT_EQ(pairs[1].b, 2);
}

TEST(Mutation, MergeKeepsEarliestOldRowAndChecksAdjacency) {
  Rng rng(4);
  auto inst = gen::uniform(3, 5, rng);
  const MemberId m{0, 0};
  const auto original = row_copy(inst, m, 1);

  auto delta = swap_entries(inst, m, 1, 0, 1);
  const auto second = swap_entries(inst, m, 1, 2, 4);
  delta.merge(second);

  // Same (member, target) twice: one row, the pre-FIRST-mutation order — the
  // state the last solved matching saw, which is what warm restart replays.
  ASSERT_EQ(delta.rows.size(), 1u);
  EXPECT_EQ(delta.rows[0].old_row, original);
  EXPECT_EQ(delta.from_generation, inst.generation() - 2);
  EXPECT_EQ(delta.to_generation, inst.generation());

  // Merging a delta that does not start where this one ends is a bug.
  auto stale = delta;
  EXPECT_THROW(delta.merge(stale), ContractViolation);
}

TEST(Mutation, AddMemberGrowsEveryGenderAndBridgesGenerations) {
  Rng rng(5);
  const auto inst = gen::uniform(3, 4, rng);
  Rng grow(6);
  const auto grown = add_member(inst, grow);

  EXPECT_TRUE(grown.delta.shape_changed);
  EXPECT_TRUE(grown.delta.touches(0, 1));  // shape change stales everything
  EXPECT_EQ(grown.delta.from_generation, inst.generation());
  EXPECT_EQ(grown.delta.to_generation, grown.instance.generation());
  EXPECT_EQ(grown.instance.per_gender(), inst.per_gender() + 1);
  EXPECT_EQ(grown.instance.genders(), inst.genders());
  EXPECT_NO_THROW(grown.instance.validate());
  EXPECT_TRUE(grown.instance.is_complete());
  // The source is untouched, and old relative orders survive the splice.
  EXPECT_EQ(inst.per_gender(), 4);
  const auto old_row = row_copy(inst, {0, 1}, 2);
  auto new_row = row_copy(grown.instance, {0, 1}, 2);
  std::erase(new_row, Index{4});
  EXPECT_EQ(new_row, old_row);
}

TEST(Mutation, RemoveMemberReindexesSurvivors) {
  Rng rng(7);
  const auto inst = gen::uniform(3, 5, rng);
  const Index victim = 2;
  const auto shrunk = remove_member(inst, victim);

  EXPECT_TRUE(shrunk.delta.shape_changed);
  EXPECT_EQ(shrunk.instance.per_gender(), 4);
  EXPECT_NO_THROW(shrunk.instance.validate());
  EXPECT_TRUE(shrunk.instance.is_complete());
  // Old member (1, 3) shifts down to (1, 2) (indices above the victim drop
  // by one), and its lists are the old lists with the victim deleted and the
  // tail reindexed the same way.
  auto expected = row_copy(inst, {1, 3}, 0);
  std::erase(expected, victim);
  for (Index& e : expected) {
    if (e > victim) --e;
  }
  EXPECT_EQ(row_copy(shrunk.instance, {1, 2}, 0), expected);

  EXPECT_THROW(remove_member(shrunk.instance, Index{7}), ContractViolation);
}

// ---------------------------------------------------------------------------
// Warm-restart GS: bitwise agreement with a cold solve, contract checks,
// and the closure stats.

TEST(WarmGs, MatchesColdSolveAcrossRandomChurn) {
  Rng seeds(8);
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng(seeds.below(1u << 30));
    auto inst = gen::uniform(3, 6, rng);
    const auto previous = gs::gale_shapley_queue(inst, 0, 1);

    auto delta = random_mutation(inst, rng);
    if (trial % 3 == 0) delta.merge(random_mutation(inst, rng));

    WarmGsStats stats;
    const auto warm =
        warm_gale_shapley(inst, 0, 1, previous, delta, {}, &stats);
    const auto cold = gs::gale_shapley_queue(inst, 0, 1);

    ASSERT_EQ(warm.proposer_match, cold.proposer_match) << "trial " << trial;
    ASSERT_EQ(warm.responder_match, cold.responder_match);
    EXPECT_EQ(std::string_view(warm.engine), "gs.warm");
    // Continuation work never exceeds a full cold re-solve, and the closure
    // is bounded by the population.
    EXPECT_LE(warm.proposals, cold.proposals);
    EXPECT_LE(stats.dirty_proposers, inst.per_gender());
    EXPECT_LE(stats.dirty_responders, inst.per_gender());
    // A delta that does not touch (0, 1) dirties nobody: pure replay.
    if (!delta.touches(0, 1)) {
      EXPECT_EQ(warm.proposals, 0);
      EXPECT_EQ(stats.dirty_proposers, 0);
    }
  }
}

TEST(WarmGs, RejectsShapeChangeStaleDeltaAndWrongOrientation) {
  Rng rng(9);
  auto inst = gen::uniform(3, 4, rng);
  const auto previous = gs::gale_shapley_queue(inst, 0, 1);

  auto shape = add_member(inst, rng);
  EXPECT_THROW(warm_gale_shapley(shape.instance, 0, 1, previous, shape.delta),
               ContractViolation);

  auto delta = swap_entries(inst, {0, 0}, 1, 0, 1);
  swap_entries(inst, {0, 0}, 1, 0, 1);  // generation moved past the delta
  EXPECT_THROW(warm_gale_shapley(inst, 0, 1, previous, delta),
               ContractViolation);

  auto fresh = swap_entries(inst, {0, 1}, 1, 0, 2);
  // `previous` solved (0, 1); presenting it as the (1, 0) result must throw.
  EXPECT_THROW(warm_gale_shapley(inst, 1, 0, previous, fresh),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// rematch(): the one-call driver, with cache and counter accounting.

TEST(Rematch, BitwiseEqualsColdWithTargetedInvalidation) {
  const Gender k = 4;
  Rng rng(10);
  auto inst = gen::uniform(k, 6, rng);
  const auto tree = trees::path(k);

  core::GsEdgeCache cache(inst);
  RematchOptions options;
  options.cache = &cache;

  core::BindingOptions cold_init;
  cold_init.cache = &cache;
  auto previous = core::iterative_binding(inst, tree, cold_init);
  ASSERT_TRUE(previous.has_matching());
  ASSERT_EQ(cache.size(), static_cast<std::size_t>(k - 1));

  for (int step = 0; step < 8; ++step) {
    const auto delta = random_mutation(inst, rng);
    const auto report = rematch(inst, tree, previous, delta, options);
    const auto cold = core::iterative_binding(inst, tree, {});
    ASSERT_TRUE(report.result.has_matching());
    ASSERT_EQ(report.result.matching(), cold.matching()) << "step " << step;
    EXPECT_FALSE(report.cold_fallback);
    // Per-edge results agree bitwise too (downstream consumers replay them).
    ASSERT_EQ(report.result.edge_results.size(), cold.edge_results.size());
    for (std::size_t e = 0; e < cold.edge_results.size(); ++e) {
      EXPECT_EQ(report.result.edge_results[e].proposer_match,
                cold.edge_results[e].proposer_match);
    }
    // One mutated row touches one gender pair: at most 2 oriented slots were
    // ready, strictly fewer than the k-1 a clear() would have dropped, and
    // the warm continuations did strictly less work than the cold re-solve.
    EXPECT_LT(report.slots_invalidated, static_cast<std::size_t>(k - 1));
    EXPECT_LE(report.slots_invalidated, 2u);
    EXPECT_EQ(report.edges_reused + report.edges_warm + report.edges_cold +
                  report.result.cache_hits,
              k - 1);
    EXPECT_LT(report.warm_executed_proposals, cold.total_proposals);
    EXPECT_EQ(*cache.bound_generation(), inst.generation());
    previous = cold;  // next step warm-starts from this step's ground truth
  }
}

TEST(Rematch, WarmStartOffStillInvalidatesAndMatchesCold) {
  const Gender k = 3;
  Rng rng(11);
  auto inst = gen::uniform(k, 5, rng);
  const auto tree = trees::path(k);
  const auto previous = core::iterative_binding(inst, tree, {});

  const auto delta = random_mutation(inst, rng);
  RematchOptions options;
  options.warm_start = false;
  const auto report = rematch(inst, tree, previous, delta, options);
  const auto cold = core::iterative_binding(inst, tree, {});
  EXPECT_EQ(report.result.matching(), cold.matching());
  EXPECT_EQ(report.edges_warm, 0);
  EXPECT_EQ(report.warm_executed_proposals, 0);
}

TEST(Rematch, ShapeChangeFallsBackToColdSolve) {
  const Gender k = 3;
  Rng rng(12);
  const auto inst = gen::uniform(k, 4, rng);
  const auto tree = trees::path(k);

  core::GsEdgeCache cache(inst);
  core::BindingOptions cold_init;
  cold_init.cache = &cache;
  const auto previous = core::iterative_binding(inst, tree, cold_init);

  auto grown = add_member(inst, rng);
  RematchOptions options;
  options.cache = &cache;
  const auto report =
      rematch(grown.instance, tree, previous, grown.delta, options);
  EXPECT_TRUE(report.cold_fallback);
  EXPECT_EQ(report.edges_warm, 0);
  EXPECT_EQ(report.slots_invalidated, static_cast<std::size_t>(k - 1));
  const auto cold = core::iterative_binding(grown.instance, tree, {});
  EXPECT_EQ(report.result.matching(), cold.matching());
  // The cache came out rebound to the grown instance and usable again.
  EXPECT_EQ(*cache.bound_generation(), grown.instance.generation());
  EXPECT_NO_THROW(cache.check_instance(grown.instance));
}

TEST(Rematch, StaleDeltaIsRejected) {
  Rng rng(13);
  auto inst = gen::uniform(3, 4, rng);
  const auto tree = trees::path(3);
  const auto previous = core::iterative_binding(inst, tree, {});
  const auto delta = random_mutation(inst, rng);
  random_mutation(inst, rng);  // instance moved past the delta
  EXPECT_THROW(rematch(inst, tree, previous, delta), ContractViolation);
}

// ---------------------------------------------------------------------------
// Ladder integration: a warm-start provider threaded through
// solve_with_fallback survives injected faults with the cold ladder's answer.

TEST(Rematch, LadderWithWarmStartSurvivesInjectedFaults) {
  const Gender k = 4;
  Rng rng(14);
  auto inst = gen::uniform(k, 6, rng);
  const auto previous = resilience::solve_with_fallback(inst, {});
  ASSERT_TRUE(previous.succeeded);

  const auto delta = random_mutation(inst, rng);
  DeltaWarmStart provider(*previous.result, delta);

  resilience::FaultConfig config;
  config.fire_after = 1;
  config.probability = 1.0;
  config.max_fires = 1;

  resilience::FallbackReport cold;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    cold = resilience::solve_with_fallback(inst, {});
  }
  resilience::FallbackOptions warm_options;
  warm_options.warm_start = &provider;
  resilience::FallbackReport warm;
  {
    resilience::ScopedFault fault("core/binding_edge", config);
    warm = resilience::solve_with_fallback(inst, warm_options);
  }

  ASSERT_TRUE(cold.succeeded);
  ASSERT_TRUE(warm.succeeded);
  EXPECT_EQ(warm.matching(), cold.matching());
  const auto stats = provider.stats();
  EXPECT_GT(stats.edges_reused + stats.edges_warm + stats.edges_cold, 0);
}

}  // namespace
}  // namespace kstable::incremental
