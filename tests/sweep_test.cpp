// Broad parameterized sweeps tying the whole stack together: every generator
// family x every tree shape must produce verified-stable k-ary matchings, and
// every gender-priority permutation must keep Algorithm 2's guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "analysis/stability.hpp"
#include "core/priority_binding.hpp"
#include "core/supergender.hpp"
#include "graph/prufer.hpp"
#include "graph/scheduling.hpp"
#include "prefs/generators.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

enum class Family { uniform, master, popularity, euclidean, tiered };
enum class Shape { path, star, random_tree };

KPartiteInstance make_instance(Family family, Gender k, Index n, Rng& rng) {
  switch (family) {
    case Family::uniform:
      return gen::uniform(k, n, rng);
    case Family::master:
      return gen::master_list(k, n, rng);
    case Family::popularity:
      return gen::popularity(k, n, rng, 0.4);
    case Family::euclidean:
      return gen::euclidean(k, n, 2, rng);
    case Family::tiered:
      return gen::tiered(k, n, std::min<Index>(3, n), rng);
  }
  return gen::uniform(k, n, rng);
}

BindingStructure make_tree(Shape shape, Gender k, Rng& rng) {
  switch (shape) {
    case Shape::path:
      return trees::path(k);
    case Shape::star:
      return trees::star(k, k / 2);
    case Shape::random_tree:
      return prufer::random_tree(k, rng);
  }
  return trees::path(k);
}

class GeneratorTreeSweep
    : public ::testing::TestWithParam<std::tuple<Family, Shape>> {};

TEST_P(GeneratorTreeSweep, BindingIsStableAcrossTheGrid) {
  const auto [family, shape] = GetParam();
  Rng rng(static_cast<std::uint64_t>(static_cast<int>(family)) * 31 +
          static_cast<std::uint64_t>(static_cast<int>(shape)) + 5000);
  for (int trial = 0; trial < 6; ++trial) {
    const Gender k = static_cast<Gender>(3 + rng.below(3));   // 3..5
    const Index n = static_cast<Index>(2 + rng.below(4));     // 2..5
    const auto inst = make_instance(family, k, n, rng);
    const auto tree = make_tree(shape, k, rng);
    const auto result = core::iterative_binding(inst, tree);
    // Exact stability check at these sizes.
    EXPECT_FALSE(
        analysis::find_blocking_family(inst, result.matching()).has_value())
        << "family=" << static_cast<int>(family)
        << " shape=" << static_cast<int>(shape) << " k=" << k << " n=" << n;
    // Theorem 3 bound.
    EXPECT_LE(result.total_proposals, static_cast<std::int64_t>(k - 1) * n * n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorTreeSweep,
    ::testing::Combine(::testing::Values(Family::uniform, Family::master,
                                         Family::popularity, Family::euclidean,
                                         Family::tiered),
                       ::testing::Values(Shape::path, Shape::star,
                                         Shape::random_tree)));

/// Every priority permutation of k = 4 genders: Algorithm 2's default tree is
/// the star at imax, is bitonic under that priority, and admits no weakened
/// blocking family.
class PriorityPermutationSweep
    : public ::testing::TestWithParam<int> {};

TEST_P(PriorityPermutationSweep, Algorithm2HoldsForEveryPriorityOrder) {
  // Decode the permutation index (0..23) into a priority vector.
  std::vector<std::int32_t> priority{0, 1, 2, 3};
  for (int step = 0; step < GetParam(); ++step) {
    std::next_permutation(priority.begin(), priority.end());
  }
  Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  const auto inst = gen::uniform(4, 3, rng);
  core::PriorityBindingOptions options;
  options.priority = priority;
  const auto result = core::priority_binding(inst, options);
  // The tree is rooted at the argmax of the priority vector.
  const auto imax = static_cast<Gender>(
      std::max_element(priority.begin(), priority.end()) - priority.begin());
  EXPECT_EQ(result.tree.degree(imax), 3);
  EXPECT_TRUE(sched::is_bitonic_tree(result.tree, priority));
  EXPECT_FALSE(analysis::find_weakened_blocking_family(
                   inst, result.binding.matching(), priority)
                   .has_value());
}

INSTANTIATE_TEST_SUITE_P(AllOrders, PriorityPermutationSweep,
                         ::testing::Range(0, 24));

/// Super-gender partitions of k' = 6 into c = 1, 2, 3: coalition binding
/// always satisfies ck = nk' and derived-instance stability.
class PartitionSweep : public ::testing::TestWithParam<Gender> {};

TEST_P(PartitionSweep, CoalitionsSatisfyInvariantForEveryGroupSize) {
  const Gender c = GetParam();
  Rng rng(7000 + static_cast<std::uint64_t>(c));
  const Index n = 3;
  const auto inst = gen::uniform(6, n, rng);
  const auto result = core::coalition_binding(
      inst, core::SupergenderPartition::contiguous(6, c),
      rm::Linearization::round_robin);
  const auto k = static_cast<Gender>(6 / c);
  EXPECT_EQ(static_cast<Index>(result.coalitions.size()), n * c);  // ck = nk'
  for (const auto& coalition : result.coalitions) {
    EXPECT_EQ(static_cast<Gender>(coalition.members.size()), k);
  }
  EXPECT_FALSE(analysis::find_blocking_family_pairs(
                   result.system.derived, result.binding.matching(),
                   analysis::BlockingMode::strict)
                   .has_value());
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, PartitionSweep,
                         ::testing::Values(Gender{1}, Gender{2}, Gender{3}));

}  // namespace
}  // namespace kstable
