// Tests for orientation-aware binding (fairness across genders in families).
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/metrics.hpp"
#include "analysis/stability.hpp"
#include "core/oriented_binding.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::core {
namespace {

TEST(OrientedBinding, AsGivenMatchesPlainBinding) {
  Rng rng(2200);
  const auto inst = gen::uniform(4, 8, rng);
  const auto tree = trees::path(4);
  const auto plain = iterative_binding(inst, tree);
  const auto oriented =
      oriented_binding(inst, tree, OrientationPolicy::as_given);
  EXPECT_EQ(oriented.binding.matching(), plain.matching());
  EXPECT_EQ(oriented.binding.total_proposals, plain.total_proposals);
}

TEST(OrientedBinding, AlternateFlipsEveryOtherEdge) {
  Rng rng(2201);
  const auto inst = gen::uniform(5, 4, rng);
  const auto tree = trees::path(5);
  const auto result =
      oriented_binding(inst, tree, OrientationPolicy::alternate);
  const auto& edges = result.oriented.edges();
  ASSERT_EQ(edges.size(), 4U);
  EXPECT_EQ(edges[0].a, 0);  // kept
  EXPECT_EQ(edges[1].a, 2);  // flipped: (2 proposes to 1)
  EXPECT_EQ(edges[2].a, 2);  // kept: (2, 3)
  EXPECT_EQ(edges[3].a, 4);  // flipped
}

TEST(OrientedBinding, AllPoliciesProduceStableMatchings) {
  Rng rng(2202);
  for (const auto policy :
       {OrientationPolicy::as_given, OrientationPolicy::alternate,
        OrientationPolicy::balance_greedy}) {
    const auto inst = gen::uniform(4, 4, rng);
    const auto tree = trees::path(4);
    const auto result = oriented_binding(inst, tree, policy);
    ASSERT_TRUE(result.binding.has_matching());
    EXPECT_FALSE(analysis::find_blocking_family(inst, result.binding.matching())
                     .has_value());
  }
}

TEST(OrientedBinding, GenderCostAccountingIsComplete) {
  Rng rng(2203);
  const auto inst = gen::uniform(4, 8, rng);
  const auto result = oriented_binding(inst, trees::star(4, 1),
                                       OrientationPolicy::as_given);
  // Sum of per-gender costs equals twice... no: equals the total bound-pair
  // cost (each edge contributes both directions exactly once).
  std::int64_t sum = 0;
  for (const auto c : result.gender_cost) sum += c;
  const auto tree_costs = analysis::kary_tree_costs(
      inst, result.binding.matching(), result.oriented);
  EXPECT_EQ(sum, tree_costs.total_cost);
}

TEST(OrientedBinding, BalanceGreedyReducesCostSpread) {
  // Across seeds, the balancing policy should not have a larger average
  // max-min per-gender cost spread than the fixed orientation.
  Rng rng(2204);
  std::int64_t fixed_spread = 0;
  std::int64_t balanced_spread = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = gen::uniform(5, 32, rng);
    const auto tree = trees::path(5);
    const auto fixed =
        oriented_binding(inst, tree, OrientationPolicy::as_given);
    const auto balanced =
        oriented_binding(inst, tree, OrientationPolicy::balance_greedy);
    auto spread = [](const std::vector<std::int64_t>& costs) {
      const auto [lo, hi] = std::minmax_element(costs.begin(), costs.end());
      return *hi - *lo;
    };
    fixed_spread += spread(fixed.gender_cost);
    balanced_spread += spread(balanced.gender_cost);
  }
  EXPECT_LE(balanced_spread, fixed_spread);
}

TEST(OrientedBinding, RequiresSpanningTree) {
  Rng rng(2205);
  const auto inst = gen::uniform(3, 2, rng);
  BindingStructure forest(3);
  forest.add_edge({0, 1});
  EXPECT_THROW(
      oriented_binding(inst, forest, OrientationPolicy::as_given),
      ContractViolation);
}

}  // namespace
}  // namespace kstable::core
