// Tests for the observability subsystem: the MetricsRegistry instruments and
// exporters, and the SolveTelemetry records every top-level driver attaches
// to its result (GS engines, iterative/priority/parallel binding, roommates,
// the fallback ladder, and the batch solver).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/kstable.hpp"

namespace {

using namespace kstable;

KPartiteInstance uniform_instance(Gender k, Index n, std::uint64_t seed) {
  Rng rng(seed);
  return gen::uniform(k, n, rng);
}

// --------------------------------------------------------------------------
// MetricsRegistry instruments
// --------------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.counter("a.count").add(2);
  registry.gauge("b.gauge").set(-7);
  registry.histogram("c.hist").observe(0);
  registry.histogram("c.hist").observe(5);
  registry.histogram("c.hist").observe(1000);

  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.counter("a.count").value(), 5);
  EXPECT_EQ(registry.gauge("b.gauge").value(), -7);
  EXPECT_EQ(registry.histogram("c.hist").count(), 3);
  EXPECT_EQ(registry.histogram("c.hist").sum(), 1005);
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("stable");
  // Force storage growth: deque-backed instruments never move.
  for (int i = 0; i < 200; ++i) {
    registry.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.counter("stable"));
}

TEST(MetricsRegistry, KindMismatchIsContractChecked) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), ContractViolation);
  EXPECT_THROW(registry.histogram("x"), ContractViolation);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  obs::MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.gauge("mid");
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(9);
  registry.gauge("g").set(9);
  registry.histogram("h").observe(9);
  registry.reset();
  EXPECT_EQ(registry.counter("c").value(), 0);
  EXPECT_EQ(registry.gauge("g").value(), 0);
  EXPECT_EQ(registry.histogram("h").count(), 0);
  EXPECT_EQ(registry.histogram("h").sum(), 0);
}

TEST(MetricsRegistry, HistogramBucketsAreExponential) {
  obs::Histogram h;
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1: [1, 2)
  h.observe(2);   // bucket 2: [2, 4)
  h.observe(3);   // bucket 2
  h.observe(4);   // bucket 3: [4, 8)
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_bound(3), 7);
}

TEST(MetricsRegistry, JsonExportIsWellFormed) {
  obs::MetricsRegistry registry;
  registry.counter("solve.count").add(4);
  registry.gauge("margin").set(12);
  registry.histogram("wall").observe(3);
  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"solve.count\":4"), std::string::npos);
  EXPECT_NE(json.find("\"margin\":12"), std::string::npos);
  EXPECT_NE(json.find("\"wall\":{\"count\":1,\"sum\":3,\"buckets\":"),
            std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be single-line";
}

TEST(MetricsRegistry, PrometheusExportFollowsConventions) {
  obs::MetricsRegistry registry;
  registry.counter("solve.count").add(4);
  registry.gauge("deadline.margin_us").set(250);
  registry.histogram("wall_us").observe(3);
  std::ostringstream os;
  registry.write_prometheus(os);
  const std::string text = os.str();
  // Counters: kstable_ prefix, dots sanitized, _total suffix.
  EXPECT_NE(text.find("# TYPE kstable_solve_count_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("kstable_solve_count_total 4"), std::string::npos);
  EXPECT_NE(text.find("kstable_deadline_margin_us 250"), std::string::npos);
  // Histograms: cumulative buckets plus _sum/_count.
  EXPECT_NE(text.find("kstable_wall_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("kstable_wall_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("kstable_wall_us_count 1"), std::string::npos);
}

#if KSTABLE_METRICS_ENABLED
TEST(MetricsMacros, FeedTheGlobalRegistry) {
  auto& counter = obs::MetricsRegistry::global().counter("test.macro.counter");
  const std::int64_t before = counter.value();
  KSTABLE_COUNTER_ADD("test.macro.counter", 2);
  KSTABLE_COUNTER_ADD("test.macro.counter", 3);
  EXPECT_EQ(counter.value(), before + 5);

  KSTABLE_GAUGE_SET("test.macro.gauge", 42);
  EXPECT_EQ(obs::MetricsRegistry::global().gauge("test.macro.gauge").value(),
            42);
  KSTABLE_GAUGE_SET_MS("test.macro.gauge_ms", 1.25);
  EXPECT_EQ(
      obs::MetricsRegistry::global().gauge("test.macro.gauge_ms").value(),
      1250);
}
#endif

// --------------------------------------------------------------------------
// SolveTelemetry: record shape and exporters
// --------------------------------------------------------------------------

void expect_valid_solved_telemetry(const obs::SolveTelemetry& t,
                                   const char* context) {
  SCOPED_TRACE(context);
  EXPECT_STRNE(t.engine, "") << "driver must label its telemetry";
  EXPECT_GT(t.wall_ms, 0.0) << "timing must be nonzero";
  EXPECT_GT(t.proposals, 0) << "a real solve spends proposals";
  EXPECT_TRUE(t.status.ok());
  // JSON and Prometheus exports agree with the record.
  const std::string json = t.to_json();
  EXPECT_NE(json.find(std::string("\"engine\":\"") + t.engine + '"'),
            std::string::npos);
  EXPECT_NE(json.find("\"proposals\":" + std::to_string(t.proposals)),
            std::string::npos);
  const std::string prom = t.to_prometheus();
  EXPECT_NE(prom.find(std::string("engine=\"") + t.engine + "\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("kstable_solve_proposals"), std::string::npos);
}

TEST(SolveTelemetry, GsEnginesProduceTelemetry) {
  const auto inst = uniform_instance(3, 16, 5);
  const auto queue = gs::gale_shapley_queue(inst, 0, 1);
  const auto t1 = gs::solve_telemetry(queue, inst.genders(), inst.per_gender());
  expect_valid_solved_telemetry(t1, "gs.queue");
  EXPECT_STREQ(t1.engine, "gs.queue");
  EXPECT_EQ(t1.proposals, queue.proposals);

  const auto rounds = gs::gale_shapley_rounds(inst, 0, 1);
  const auto t2 =
      gs::solve_telemetry(rounds, inst.genders(), inst.per_gender());
  expect_valid_solved_telemetry(t2, "gs.rounds");
  EXPECT_STREQ(t2.engine, "gs.rounds");
  EXPECT_GT(t2.rounds, 0);
}

TEST(SolveTelemetry, IterativeBindingAttachesTelemetry) {
  const auto inst = uniform_instance(4, 12, 7);
  const auto result = core::iterative_binding(inst, trees::path(4));
  expect_valid_solved_telemetry(result.telemetry, "iterative_binding");
  EXPECT_STREQ(result.telemetry.engine, "binding.queue");
  EXPECT_EQ(result.telemetry.genders, 4);
  EXPECT_EQ(result.telemetry.size, 12);
  EXPECT_EQ(result.telemetry.proposals, result.total_proposals);
  ASSERT_GE(result.telemetry.phase_count, 1);
  EXPECT_STREQ(result.telemetry.phases[0].name, "bind");
}

TEST(SolveTelemetry, BindingEngineLabelTracksOptions) {
  const auto inst = uniform_instance(3, 10, 9);
  core::BindingOptions options;
  options.engine = core::GsEngine::rounds;
  const auto result = core::iterative_binding(inst, trees::path(3), options);
  EXPECT_STREQ(result.telemetry.engine, "binding.rounds");
}

TEST(SolveTelemetry, PriorityBindingRelabelsPhases) {
  const auto inst = uniform_instance(4, 10, 11);
  const auto result = core::priority_binding(inst);
  expect_valid_solved_telemetry(result.binding.telemetry, "priority_binding");
  EXPECT_STREQ(result.binding.telemetry.engine, "binding.priority");
  ASSERT_EQ(result.binding.telemetry.phase_count, 2);
  EXPECT_STREQ(result.binding.telemetry.phases[0].name, "grow-tree");
  EXPECT_STREQ(result.binding.telemetry.phases[1].name, "bind");
}

TEST(SolveTelemetry, ParallelBindingReportsScheduleEngine) {
  const auto inst = uniform_instance(4, 10, 13);
  ThreadPool pool(2);
  const auto report = core::execute_binding(
      inst, trees::path(4), core::ExecutionMode::erew_rounds, pool);
  expect_valid_solved_telemetry(report.binding.telemetry, "execute_binding");
  EXPECT_STREQ(report.binding.telemetry.engine, "parallel.erew");
  EXPECT_EQ(report.binding.telemetry.rounds, report.rounds_executed);
}

TEST(SolveTelemetry, RoommatesSolverAttachesTelemetry) {
  const auto inst = uniform_instance(2, 8, 17);
  const auto result =
      rm::solve_kpartite_binary(inst, rm::Linearization::round_robin);
  ASSERT_TRUE(result.has_stable);
  expect_valid_solved_telemetry(result.detail.telemetry, "roommates");
  EXPECT_STREQ(result.detail.telemetry.engine, "roommates");
  EXPECT_EQ(result.detail.telemetry.genders, 0)
      << "roommates graphs are non-partite";
  ASSERT_GE(result.detail.telemetry.phase_count, 1);
  EXPECT_STREQ(result.detail.telemetry.phases[0].name, "phase1");
}

TEST(SolveTelemetry, FallbackLadderRecordsRungAndAttempts) {
  const auto inst = uniform_instance(3, 10, 19);
  const auto report = resilience::solve_with_fallback(inst);
  ASSERT_TRUE(report.succeeded);
  expect_valid_solved_telemetry(report.telemetry, "solve_with_fallback");
  EXPECT_STREQ(report.telemetry.engine, "ladder");
  EXPECT_GE(report.telemetry.rung, 0);
  EXPECT_EQ(report.telemetry.attempts,
            static_cast<std::int64_t>(report.attempts.size()));
}

TEST(SolveTelemetry, BatchSolverRecordsPerItemTelemetry) {
  std::vector<KPartiteInstance> instances;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    instances.push_back(uniform_instance(3, 8, 23 + seed));
  }
  ThreadPool pool(2);
  core::BatchSolver solver(pool);
  const auto results = solver.solve(instances);
  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect_valid_solved_telemetry(results[i].telemetry, "batch item");
    EXPECT_STREQ(results[i].telemetry.engine, "batch.item");
    EXPECT_EQ(results[i].telemetry.proposals, results[i].total_proposals);
  }
}

TEST(SolveTelemetry, AbortedSolveCarriesAbortStatus) {
  const auto inst = uniform_instance(4, 24, 29);
  resilience::ExecControl control{resilience::Budget::proposals(5)};
  core::BindingOptions options;
  options.control = &control;
  EXPECT_THROW(core::iterative_binding(inst, trees::path(4), options),
               ExecutionAborted);
  // The batch driver surfaces the same abort as telemetry instead of a throw.
  std::vector<KPartiteInstance> one;
  one.push_back(inst);
  ThreadPool pool(1);
  core::BatchSolver solver(pool);
  core::BatchOptions bopts;
  bopts.per_item.max_proposals = 5;
  const auto results = solver.solve(one, bopts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].telemetry.status.ok());
  const std::string json = results[0].telemetry.to_json();
  EXPECT_NE(json.find("\"outcome\":\"aborted\""), std::string::npos);
}

#if KSTABLE_METRICS_ENABLED
TEST(SolveTelemetry, RecordFoldsIntoGlobalRegistry) {
  auto& registry = obs::MetricsRegistry::global();
  const std::int64_t count_before =
      registry.counter("solve.test.record.count").value();
  const std::int64_t proposals_before =
      registry.counter("solve.test.record.proposals").value();

  obs::SolveTelemetry t;
  t.engine = "test.record";
  t.wall_ms = 1.5;
  t.proposals = 12;
  t.executed_proposals = 12;
  t.rounds = 3;
  t.attempts = 2;
  t.rung = 1;
  t.deadline_margin_ms = 4.0;
  obs::record(t);

  EXPECT_EQ(registry.counter("solve.test.record.count").value(),
            count_before + 1);
  EXPECT_EQ(registry.counter("solve.test.record.proposals").value(),
            proposals_before + 12);
  EXPECT_EQ(registry.gauge("ladder.last_rung").value(), 1);
  EXPECT_EQ(registry.gauge("deadline.margin_us").value(), 4000);
}

TEST(SolveTelemetry, CacheCountersComeFromTheCacheItself) {
  auto& registry = obs::MetricsRegistry::global();
  const std::int64_t hits_before = registry.counter("cache.hits").value();
  const std::int64_t misses_before = registry.counter("cache.misses").value();

  const auto inst = uniform_instance(3, 8, 31);
  core::GsEdgeCache cache(inst.genders());
  core::BindingOptions options;
  options.cache = &cache;
  const auto first = core::iterative_binding(inst, trees::path(3), options);
  const auto second = core::iterative_binding(inst, trees::path(3), options);
  EXPECT_GT(second.telemetry.cache_hits, 0);

  const std::int64_t hits = registry.counter("cache.hits").value();
  const std::int64_t misses = registry.counter("cache.misses").value();
  EXPECT_EQ(hits - hits_before,
            first.telemetry.cache_hits + second.telemetry.cache_hits);
  EXPECT_EQ(misses - misses_before,
            first.telemetry.cache_misses + second.telemetry.cache_misses);
}
#endif

}  // namespace
