// Tests for blocking-family checkers, the k-ary oracle, and metrics.
#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "analysis/oracle.hpp"
#include "analysis/stability.hpp"
#include "prefs/examples.hpp"
#include "prefs/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable::analysis {
namespace {

/// The paper's §II.C blocking example: families (m,w,u) and (m',w',u');
/// m prefers w' and u', and both prefer m — so (m, w', u') blocks.
KPartiteInstance blocking_example_instance() {
  KPartiteInstance inst(3, 2);
  auto set2 = [&inst](MemberId m, Gender g, Index top) {
    inst.set_pref_list(m, g, top == 0 ? std::vector<Index>{0, 1}
                                      : std::vector<Index>{1, 0});
  };
  const Gender M = 0, W = 1, U = 2;
  set2({M, 0}, W, 1);  // m prefers w' over w
  set2({M, 0}, U, 1);  // m prefers u' over u
  set2({W, 1}, M, 0);  // w' prefers m over m'
  set2({U, 1}, M, 0);  // u' prefers m over m'
  // Remaining lists: anything; keep identity-first.
  set2({M, 1}, W, 0);
  set2({M, 1}, U, 0);
  set2({W, 0}, M, 0);
  set2({W, 0}, U, 0);
  set2({W, 1}, U, 0);
  set2({U, 0}, M, 0);
  set2({U, 0}, W, 0);
  set2({U, 1}, W, 0);
  inst.validate();
  return inst;
}

/// Identity matching: family t = (members with index t).
KaryMatching identity_matching(Gender k, Index n) {
  std::vector<Index> families(static_cast<std::size_t>(k) *
                              static_cast<std::size_t>(n));
  for (Index t = 0; t < n; ++t) {
    for (Gender g = 0; g < k; ++g) {
      families[static_cast<std::size_t>(t) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(g)] = t;
    }
  }
  return KaryMatching(k, n, std::move(families));
}

TEST(BlockingFamily, PaperSection2cExampleBlocks) {
  const auto inst = blocking_example_instance();
  const auto matching = identity_matching(3, 2);
  const auto witness = find_blocking_family(inst, matching);
  ASSERT_TRUE(witness.has_value());
  // The witness (m, w', u') comes from two families.
  EXPECT_EQ(witness->members, (std::vector<Index>{0, 1, 1}));
  EXPECT_EQ(witness->source_families, 2);
}

TEST(BlockingFamily, TupleBlocksAgreesWithWitness) {
  const auto inst = blocking_example_instance();
  const auto matching = identity_matching(3, 2);
  EXPECT_TRUE(tuple_blocks(inst, matching, {0, 1, 1}, BlockingMode::strict));
  // An existing family never blocks (k' = 1).
  EXPECT_FALSE(tuple_blocks(inst, matching, {0, 0, 0}, BlockingMode::strict));
  EXPECT_FALSE(tuple_blocks(inst, matching, {1, 1, 1}, BlockingMode::strict));
}

TEST(BlockingFamily, MutualFirstChoicesAreStable) {
  // Fig. 3: binding (M-W, W-U) gives (m,w,u), (m',w',u') with every bound
  // pair a mutual first choice except the M-U cross pairs.
  const auto inst = kstable::examples::fig3_instance();
  const auto matching = identity_matching(3, 2);
  EXPECT_FALSE(find_blocking_family(inst, matching).has_value());
}

TEST(BlockingFamily, PairsCheckerFindsTwoFamilyWitness) {
  const auto inst = blocking_example_instance();
  const auto matching = identity_matching(3, 2);
  const auto witness =
      find_blocking_family_pairs(inst, matching, BlockingMode::strict);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(
      tuple_blocks(inst, matching, witness->members, BlockingMode::strict));
}

TEST(BlockingFamily, SampledCheckerFindsWitnessEventually) {
  const auto inst = blocking_example_instance();
  const auto matching = identity_matching(3, 2);
  Rng rng(5);
  const auto witness = find_blocking_family_sampled(inst, matching, rng, 1000);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(
      tuple_blocks(inst, matching, witness->members, BlockingMode::strict));
}

TEST(BlockingFamily, PairsCheckerIsSound) {
  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    const auto inst = gen::uniform(3, 3, rng);
    const auto matching = identity_matching(3, 3);
    const bool exact = find_blocking_family(inst, matching).has_value();
    const bool pairs =
        find_blocking_family_pairs(inst, matching, BlockingMode::strict)
            .has_value();
    // pairs => exact (soundness of the restricted checker).
    EXPECT_TRUE(!pairs || exact) << "pairs checker found a false witness";
  }
}

TEST(WeakenedBlocking, StrictWitnessImpliesWeakenedWitness) {
  Rng rng(7);
  const std::vector<std::int32_t> priority{0, 1, 2};
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = gen::uniform(3, 3, rng);
    const auto matching = identity_matching(3, 3);
    const bool strict = find_blocking_family(inst, matching).has_value();
    const bool weak =
        find_weakened_blocking_family(inst, matching, priority).has_value();
    EXPECT_TRUE(!strict || weak)
        << "strict witness exists but weakened search found none";
  }
}

TEST(WeakenedBlocking, LeadOnlyConditionIsWeaker) {
  // Construct a tuple where only the lead members agree: it must block in
  // weakened mode but not in strict mode.
  KPartiteInstance inst(3, 2);
  auto set2 = [&inst](MemberId m, Gender g, Index top) {
    inst.set_pref_list(m, g, top == 0 ? std::vector<Index>{0, 1}
                                      : std::vector<Index>{1, 0});
  };
  const Gender M = 0, W = 1, U = 2;  // priorities: U highest (2), M lowest
  // Candidate new family: (m, w', u) — m,u from family 0, w' from family 1.
  // Groups: {m, u} (lead u, priority 2) and {w'} (lead w').
  // Weakened needs: u prefers w' over w;   w' prefers u over u' AND
  //                 w' prefers m over m'.
  set2({U, 0}, W, 1);  // u prefers w'
  set2({W, 1}, U, 0);  // w' prefers u over u'
  set2({W, 1}, M, 0);  // w' prefers m over m'
  // Strict additionally needs m to prefer w' over w — make m prefer w.
  set2({M, 0}, W, 0);  // m prefers w (kills the strict condition)
  // Fill the rest arbitrarily.
  set2({M, 0}, U, 0);
  set2({M, 1}, W, 1);
  set2({M, 1}, U, 1);
  set2({W, 0}, M, 0);
  set2({W, 0}, U, 0);
  set2({U, 0}, M, 0);
  set2({U, 1}, M, 1);
  set2({U, 1}, W, 1);
  inst.validate();
  const auto matching = identity_matching(3, 2);
  const std::vector<std::int32_t> priority{0, 1, 2};
  EXPECT_TRUE(tuple_blocks(inst, matching, {0, 1, 0}, BlockingMode::weakened,
                           priority));
  EXPECT_FALSE(tuple_blocks(inst, matching, {0, 1, 0}, BlockingMode::strict));
}

TEST(WeakenedBlocking, RequiresPriorities) {
  const auto inst = blocking_example_instance();
  const auto matching = identity_matching(3, 2);
  EXPECT_THROW(find_weakened_blocking_family(inst, matching, {0, 1}),
               ContractViolation);
}

TEST(Oracle, Fig3CensusCountsFourMatchings) {
  const auto inst = kstable::examples::fig3_instance();
  const auto census = kary_census(inst);
  EXPECT_EQ(census.total_matchings, 4);  // (2!)^2, §II.C's enumeration
  EXPECT_GE(census.stable_matchings, 1);
  ASSERT_TRUE(census.witness.has_value());
  EXPECT_FALSE(find_blocking_family(inst, *census.witness).has_value());
}

TEST(Oracle, CensusCountsMatchTheory) {
  Rng rng(8);
  const auto inst = gen::uniform(4, 2, rng);
  const auto census = kary_census(inst);
  EXPECT_EQ(census.total_matchings, 8);  // (2!)^3
}

TEST(Oracle, WeakenedStableSubsetOfStrictStable) {
  Rng rng(9);
  const std::vector<std::int32_t> priority{0, 1, 2};
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = gen::uniform(3, 3, rng);
    const auto census = kary_census(inst, priority);
    // Weakened blocking is easier to trigger, so weakened-stable matchings
    // are a subset of strictly stable ones.
    EXPECT_LE(census.weakened_stable_matchings, census.stable_matchings);
  }
}

TEST(Metrics, BipartiteCostsOnExample1) {
  // Example 1, first preferences: GS gives (m, w'), (m', w).
  const auto inst = kstable::examples::example1_first();
  const std::vector<Index> man_match{1, 0};  // m->w', m'->w
  const auto costs = bipartite_costs(inst, 0, 1, man_match);
  // m has w' ranked 1, m' has w ranked 0 -> proposer cost 1.
  EXPECT_EQ(costs.proposer_cost, 1);
  // w' ranks m' first so m is rank 1; w ranks m' rank 0 -> responder cost 1.
  EXPECT_EQ(costs.responder_cost, 1);
  EXPECT_EQ(costs.egalitarian(), 2);
  EXPECT_EQ(costs.sex_equality(), 0);
  EXPECT_EQ(costs.proposer_regret, 1);
}

TEST(Metrics, KaryCostsOnFig3) {
  const auto inst = kstable::examples::fig3_instance();
  const auto matching = identity_matching(3, 2);
  const auto costs = kary_costs(inst, matching);
  // Mutual first choices M-W and W-U (rank 0 both ways) plus M-U pairs:
  // m ranks u second (1), u ranks m first (0), m' ranks u' second (1),
  // u' ranks m' second (1) -> total 3.
  EXPECT_EQ(costs.total_cost, 3);
  EXPECT_EQ(costs.regret, 1);
  EXPECT_EQ(costs.per_gender_cost.size(), 3U);
  std::int64_t sum = 0;
  for (const auto c : costs.per_gender_cost) sum += c;
  EXPECT_EQ(sum, costs.total_cost);
}

TEST(Metrics, TreeCostsChargeOnlyBoundPairs) {
  const auto inst = kstable::examples::fig3_instance();
  const auto matching = identity_matching(3, 2);
  BindingStructure tree(3);
  tree.add_edge({0, 1});
  tree.add_edge({1, 2});
  const auto costs = kary_tree_costs(inst, matching, tree);
  // All bound pairs are mutual first choices -> zero cost.
  EXPECT_EQ(costs.total_cost, 0);
  EXPECT_EQ(costs.regret, 0);

  BindingStructure with_mu(3);
  with_mu.add_edge({0, 2});
  const auto mu_costs = kary_tree_costs(inst, matching, with_mu);
  EXPECT_EQ(mu_costs.total_cost, 3);  // the M-U ranks computed above
}

TEST(Metrics, SizeChecksEnforced) {
  const auto inst = kstable::examples::fig3_instance();
  EXPECT_THROW(bipartite_costs(inst, 0, 1, {0}), ContractViolation);
  const auto matching = identity_matching(3, 2);
  BindingStructure wrong_k(4);
  wrong_k.add_edge({0, 1});
  EXPECT_THROW(kary_tree_costs(inst, matching, wrong_k), ContractViolation);
}

}  // namespace
}  // namespace kstable::analysis
