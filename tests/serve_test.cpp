// Serve subsystem tests (docs/SERVE.md): protocol framing robustness,
// bounded admission with load shedding, the transport-independent engine's
// exactly-one-bucket accounting contract, graceful drain (the TSan-covered
// shutdown test), overload behavior, and the 10k-request chaos soak over a
// real in-process TCP server with every service fault point armed.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "prefs/generators.hpp"
#include "prefs/io.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injection.hpp"
#include "serve/admission.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace kstable::serve {
namespace {

using resilience::FaultConfig;
using resilience::ScopedFault;

/// Thread-safe frame collector used as a response sink.
struct FrameLog {
  std::mutex mutex;
  std::vector<Frame> frames;

  ServeEngine::ResponseSink sink() {
    return [this](const Frame& frame) {
      std::scoped_lock lock(mutex);
      frames.push_back(frame);
    };
  }
  std::size_t count(FrameKind kind) {
    std::scoped_lock lock(mutex);
    return static_cast<std::size_t>(
        std::count_if(frames.begin(), frames.end(),
                      [kind](const Frame& f) { return f.kind == kind; }));
  }
  std::size_t size() {
    std::scoped_lock lock(mutex);
    return frames.size();
  }
};

std::string small_instance(std::uint64_t seed, Gender k = 3, Index n = 3) {
  Rng rng(seed);
  return io::to_string(gen::uniform(k, n, rng));
}

/// Continuous chaos config: keeps firing for the armed point's lifetime.
FaultConfig chaos(double probability, std::uint64_t seed) {
  FaultConfig config;
  config.probability = probability;
  config.seed = seed;
  config.max_fires = 0;
  return config;
}

// --- protocol --------------------------------------------------------------

TEST(ServeProtocol, RoundTripPreservesEveryField) {
  Frame out = Frame::request(FrameKind::solve, 42, "hello body", 1250.5);
  std::stringstream stream;
  write_frame(stream, out);
  const auto in = read_frame(stream);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(in->kind, FrameKind::solve);
  EXPECT_EQ(in->id, 42u);
  EXPECT_DOUBLE_EQ(in->deadline_ms, 1250.5);
  EXPECT_EQ(in->body, "hello body");

  Frame shed = Frame::response(FrameKind::shed, 7, {}, 75.0);
  std::stringstream stream2;
  write_frame(stream2, shed);
  const auto in2 = read_frame(stream2);
  ASSERT_TRUE(in2.has_value());
  EXPECT_EQ(in2->kind, FrameKind::shed);
  EXPECT_DOUBLE_EQ(in2->retry_after_ms, 75.0);
  EXPECT_TRUE(in2->body.empty());
}

TEST(ServeProtocol, CleanEofYieldsNullopt) {
  std::stringstream stream;
  EXPECT_FALSE(read_frame(stream).has_value());
}

TEST(ServeProtocol, BadMagicThrowsAndResyncRecovers) {
  std::stringstream stream("this is not a frame\nkmatch/1 PING id=5 len=0\n\n");
  EXPECT_THROW(read_frame(stream), ParseError);
  ASSERT_TRUE(resync_to_frame(stream));
  const auto frame = read_frame(stream);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::ping);
  EXPECT_EQ(frame->id, 5u);
}

TEST(ServeProtocol, OversizedLenRejectedBeforeAllocation) {
  // 1 TiB of claimed body: must throw on the header, not try to reserve.
  std::stringstream stream("kmatch/1 SOLVE id=1 len=1099511627776\n");
  EXPECT_THROW(read_frame(stream), ParseError);
}

TEST(ServeProtocol, TruncatedBodyThrows) {
  std::stringstream stream("kmatch/1 SOLVE id=1 len=10\nabc");
  EXPECT_THROW(read_frame(stream), ParseError);
}

TEST(ServeProtocol, MissingRequiredAttributesThrow) {
  std::stringstream no_id("kmatch/1 PING len=0\n\n");
  EXPECT_THROW(read_frame(no_id), ParseError);
  std::stringstream no_len("kmatch/1 PING id=1\n");
  EXPECT_THROW(read_frame(no_len), ParseError);
}

TEST(ServeProtocol, UnknownAttributeSkippedForForwardCompat) {
  std::stringstream stream("kmatch/1 PING id=4 future_knob=7 len=0\n\n");
  const auto frame = read_frame(stream);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::ping);
}

TEST(ServeProtocol, UnknownKindIsReturnedNotThrown) {
  std::stringstream stream("kmatch/1 BOGUS id=3 len=0\n\n");
  const auto frame = read_frame(stream);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::unknown);
}

// --- admission -------------------------------------------------------------

TEST(ServeAdmission, ShedsAtDepthWithBacklogScaledHint) {
  AdmissionController admission(2);
  EXPECT_TRUE(admission.try_admit(25.0).admitted);
  EXPECT_TRUE(admission.try_admit(25.0).admitted);
  const auto shed = admission.try_admit(25.0);
  EXPECT_FALSE(shed.admitted);
  // backlog = in_flight / depth = 2/2 = 1 -> hint = base * (1 + 1).
  EXPECT_DOUBLE_EQ(shed.retry_after_ms, 50.0);
}

TEST(ServeAdmission, ClosedControllerShedsEverything) {
  AdmissionController admission(8);
  admission.close();
  const auto shed = admission.try_admit(25.0);
  EXPECT_FALSE(shed.admitted);
  EXPECT_DOUBLE_EQ(shed.retry_after_ms, 100.0);  // restart hint: base * 4
}

TEST(ServeAdmission, AwaitIdleObservesCompletion) {
  AdmissionController admission(4);
  ASSERT_TRUE(admission.try_admit(1.0).admitted);
  EXPECT_FALSE(admission.await_idle(10.0));  // one pending: not idle
  std::thread finisher([&admission] {
    admission.on_start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    admission.on_finish();
  });
  EXPECT_TRUE(admission.await_idle(5000.0));
  EXPECT_EQ(admission.in_flight(), 0u);
  finisher.join();
}

TEST(ServeAdmission, AbandonedPendingReleasesSlot) {
  AdmissionController admission(1);
  ASSERT_TRUE(admission.try_admit(1.0).admitted);
  EXPECT_FALSE(admission.try_admit(1.0).admitted);
  admission.on_abandoned();
  EXPECT_EQ(admission.in_flight(), 0u);
  EXPECT_TRUE(admission.try_admit(1.0).admitted);
}

// --- engine ----------------------------------------------------------------

TEST(ServeEngineTest, PingGetsPong) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  engine.handle(Frame::request(FrameKind::ping, 9));
  EXPECT_EQ(log.count(FrameKind::pong), 1u);
  EXPECT_EQ(engine.stats().pings.load(), 1);
}

TEST(ServeEngineTest, SolveReturnsMatchingAndAccounts) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  engine.handle(Frame::request(FrameKind::solve, 1, small_instance(11)));
  EXPECT_TRUE(engine.drain().clean);
  ASSERT_EQ(log.count(FrameKind::ok), 1u);
  {
    std::scoped_lock lock(log.mutex);
    EXPECT_EQ(log.frames[0].id, 1u);
    EXPECT_EQ(log.frames[0].body.rfind("kstable-kary v1", 0), 0u);
  }
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.received.load(), 1);
  EXPECT_EQ(stats.completed.load(), 1);
  EXPECT_EQ(stats.accounted(), stats.received.load());
}

TEST(ServeEngineTest, UnparsableSolveBodyAnswersError) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  engine.handle(Frame::request(FrameKind::solve, 2, "not an instance"));
  EXPECT_TRUE(engine.drain().clean);
  EXPECT_EQ(log.count(FrameKind::error), 1u);
  EXPECT_EQ(engine.stats().errors.load(), 1);
  EXPECT_EQ(engine.stats().accounted(), engine.stats().received.load());
}

TEST(ServeEngineTest, MetricsReturnsStatsSchema) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  engine.handle(Frame::request(FrameKind::metrics, 3));
  ASSERT_EQ(log.count(FrameKind::stats), 1u);
  std::scoped_lock lock(log.mutex);
  EXPECT_NE(log.frames[0].body.find("\"kstable.stats.v1\""), std::string::npos);
  EXPECT_NE(log.frames[0].body.find("\"metrics\""), std::string::npos);
}

TEST(ServeEngineTest, ResponseKindAsRequestAnswersError) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  engine.handle(Frame::request(FrameKind::pong, 4));
  EXPECT_EQ(log.count(FrameKind::error), 1u);
  EXPECT_EQ(engine.stats().bad_frames.load(), 1);
  EXPECT_EQ(engine.stats().received.load(), 0);  // not a SOLVE
}

TEST(ServeEngineTest, TinyDeadlineDegradesOrTimesOutButAccounts) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  // 1 us across the whole ladder: strict rungs cannot finish; outcome is
  // DEGRADED (priority model squeaked through) or TIMEOUT — never a hang,
  // always exactly one bucket.
  engine.handle(
      Frame::request(FrameKind::solve, 5, small_instance(12, 3, 8), 0.001));
  EXPECT_TRUE(engine.drain().clean);
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.received.load(), 1);
  EXPECT_EQ(stats.accounted(), 1);
  EXPECT_EQ(stats.shed.load(), 0);
  EXPECT_EQ(log.size(), 1u);
}

#if !defined(KSTABLE_NO_FAULT_INJECTION)

TEST(ServeEngineTest, EnqueueFaultShedsWithRetryAfter) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  ScopedFault fault("serve/enqueue", FaultConfig{});  // fire once
  engine.handle(Frame::request(FrameKind::solve, 6, small_instance(13)));
  EXPECT_TRUE(engine.drain().clean);
  ASSERT_EQ(log.count(FrameKind::shed), 1u);
  std::scoped_lock lock(log.mutex);
  EXPECT_GT(log.frames[0].retry_after_ms, 0.0);
  EXPECT_EQ(engine.stats().shed.load(), 1);
  EXPECT_EQ(engine.stats().accounted(), 1);
}

TEST(ServeEngineTest, RespondFaultCountsDroppedNotUnaccounted) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  ScopedFault fault("serve/respond", FaultConfig{});  // drop one response
  engine.handle(Frame::request(FrameKind::solve, 7, small_instance(14)));
  EXPECT_TRUE(engine.drain().clean);
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.responses_dropped.load(), 1);
  EXPECT_EQ(stats.accounted(), 1);  // outcome bucket kept despite the drop
  EXPECT_EQ(log.size(), 0u);
}

TEST(ServeEngineTest, TaskDestroyedUnrunIsStillAccounted) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  // The pool-level fault fires inside the task wrapper BEFORE the serve
  // worker body runs: the request's TaskGuard must still account it and
  // release admission, or drain would wait forever.
  ScopedFault fault("thread_pool/task", FaultConfig{});
  engine.handle(Frame::request(FrameKind::solve, 8, small_instance(15)));
  EXPECT_TRUE(engine.drain().clean);
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.timed_out.load(), 1);
  EXPECT_EQ(stats.accounted(), 1);
  EXPECT_EQ(log.count(FrameKind::timeout), 1u);
  EXPECT_EQ(engine.admission().in_flight(), 0u);
}

#endif  // !KSTABLE_NO_FAULT_INJECTION

// --- pump (transport robustness) -------------------------------------------

TEST(ServePump, GarbageBetweenFramesIsSkipped) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  std::stringstream input(
      "%%% total garbage line %%%\n"
      "kmatch/1 PING id=1 len=0\n\n"
      "another bad line\n"
      "kmatch/1 PING id=2 len=0\n\n");
  pump_stream(engine, input);
  EXPECT_EQ(log.count(FrameKind::pong), 2u);
  EXPECT_EQ(log.count(FrameKind::error), 2u);  // one per garbage line
  EXPECT_EQ(engine.stats().bad_frames.load(), 2);
}

#if !defined(KSTABLE_NO_FAULT_INJECTION)

TEST(ServePump, FrameParseFaultKeepsStreamSynchronized) {
  FrameLog log;
  ServeEngine engine(ServeLimits{}, log.sink());
  ScopedFault fault("serve/frame_parse", FaultConfig{});  // first frame only
  std::stringstream input(
      "kmatch/1 PING id=1 len=0\n\n"
      "kmatch/1 PING id=2 len=0\n\n");
  pump_stream(engine, input);
  // Frame 1 is consumed by the injected fault (ERROR response), frame 2
  // parses normally — the fault cannot desynchronize the stream.
  EXPECT_EQ(log.count(FrameKind::error), 1u);
  ASSERT_EQ(log.count(FrameKind::pong), 1u);
  std::scoped_lock lock(log.mutex);
  EXPECT_EQ(log.frames.back().id, 2u);
}

#endif  // !KSTABLE_NO_FAULT_INJECTION

// --- overload and drain ----------------------------------------------------

#if !defined(KSTABLE_NO_FAULT_INJECTION)

TEST(ServeOverload, QueueFullShedsNeverHangsAndCountersMatch) {
  ServeLimits limits;
  limits.workers = 1;
  limits.queue_depth = 1;
  limits.chaos_stall_ms = 30.0;  // every started solve wedges 30 ms
  limits.drain_deadline_ms = 10000.0;
  FrameLog log;
  ServeEngine engine(limits, log.sink());
  ScopedFault stall("serve/stall", chaos(1.0, 3));

  constexpr int kOffered = 40;
  for (int i = 1; i <= kOffered; ++i) {
    engine.handle(Frame::request(FrameKind::solve,
                                 static_cast<std::uint64_t>(i),
                                 small_instance(20 + i)));
  }
  EXPECT_TRUE(engine.drain().clean);

  const auto& stats = engine.stats();
  EXPECT_EQ(stats.received.load(), kOffered);
  EXPECT_EQ(stats.accounted(), kOffered);  // nothing vanished
  EXPECT_GT(stats.shed.load(), 0);         // overload actually shed
  // The shed counter is exactly the number of SHED frames delivered, and
  // every offered request produced exactly one response.
  EXPECT_EQ(static_cast<std::size_t>(stats.shed.load()),
            log.count(FrameKind::shed));
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kOffered));
}

TEST(ServeDrain, CancelsWedgedWorkAfterDeadlineThenFinishesInGrace) {
  ServeLimits limits;
  limits.workers = 2;
  limits.chaos_stall_ms = 150.0;
  limits.drain_deadline_ms = 1.0;   // force the cancel path
  limits.drain_grace_ms = 10000.0;  // stalls end inside the grace window
  FrameLog log;
  ServeEngine engine(limits, log.sink());
  ScopedFault stall("serve/stall", chaos(1.0, 4));
  engine.handle(Frame::request(FrameKind::solve, 1, small_instance(31)));
  engine.handle(Frame::request(FrameKind::solve, 2, small_instance(32)));

  const auto drain = engine.drain();
  EXPECT_TRUE(drain.cancelled);  // deadline elapsed, token was pulled
  EXPECT_TRUE(drain.clean);      // ... but grace absorbed the stalls
  EXPECT_EQ(engine.stats().accounted(), 2);
  EXPECT_EQ(engine.admission().in_flight(), 0u);
}

TEST(ServeDrain, DeadlineExceededReportsAbandonedWork) {
  ServeLimits limits;
  limits.workers = 1;
  limits.chaos_stall_ms = 800.0;  // wedge far past deadline + grace
  limits.drain_deadline_ms = 5.0;
  limits.drain_grace_ms = 5.0;
  FrameLog log;
  ServeEngine engine(limits, log.sink());
  ScopedFault stall("serve/stall", chaos(1.0, 5));
  engine.handle(Frame::request(FrameKind::solve, 1, small_instance(33)));

  const auto drain = engine.drain();
  EXPECT_FALSE(drain.clean);  // the CLI maps this to exit code 3
  EXPECT_TRUE(drain.cancelled);
  EXPECT_GE(drain.abandoned, 1u);
  // Engine destruction joins the pool: the wedged task finishes, accounts,
  // and releases admission even after an exceeded drain.
}

#endif  // !KSTABLE_NO_FAULT_INJECTION

TEST(ServeDrain, DrainsInFlightSolvesCleanly) {
  // TSan-covered shutdown test: N in-flight solves across a real pool, then
  // drain — every request completes or cancels inside the deadline, the
  // admission ledger returns to zero, and the pool joins in the destructor.
  ServeLimits limits;
  limits.workers = 4;
  limits.queue_depth = 16;
  limits.drain_deadline_ms = 30000.0;
  FrameLog log;
  ServeEngine engine(limits, log.sink());

  constexpr int kInFlight = 12;
  for (int i = 1; i <= kInFlight; ++i) {
    engine.handle(Frame::request(FrameKind::solve,
                                 static_cast<std::uint64_t>(i),
                                 small_instance(40 + i, 3, 6)));
  }
  const auto drain = engine.drain();
  EXPECT_TRUE(drain.clean);
  EXPECT_EQ(drain.abandoned, 0u);

  const auto& stats = engine.stats();
  EXPECT_EQ(stats.received.load(), kInFlight);
  EXPECT_EQ(stats.accounted(), kInFlight);
  EXPECT_EQ(stats.shed.load(), 0);  // queue was deep enough
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kInFlight));
  EXPECT_EQ(engine.admission().in_flight(), 0u);

  // Exactly one response per request id.
  std::vector<int> seen(kInFlight + 1, 0);
  {
    std::scoped_lock lock(log.mutex);
    for (const auto& frame : log.frames) {
      ASSERT_GE(frame.id, 1u);
      ASSERT_LE(frame.id, static_cast<std::uint64_t>(kInFlight));
      ++seen[static_cast<std::size_t>(frame.id)];
    }
  }
  for (int i = 1; i <= kInFlight; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1);
}

// --- chaos soak (the ISSUE acceptance pin) ---------------------------------

#if !defined(KSTABLE_NO_FAULT_INJECTION)

TEST(ServeChaos, TenThousandRequestSoakUnderAllServiceFaults) {
  ServeLimits limits;
  limits.workers = 2;
  limits.queue_depth = 4;
  limits.default_deadline_ms = 500.0;
  limits.shed_retry_ms = 5.0;
  limits.drain_deadline_ms = 10000.0;
  limits.chaos_stall_ms = 2.0;
  FrameLog log;  // ctor sink; TCP responses go through per-connection sinks
  ServeEngine engine(limits, log.sink());
  TcpServer server(engine, 0);
  std::thread server_thread([&server] { server.run(); });

  // All four service fault points armed (plus the stall chaos hook), firing
  // continuously from deterministic seeds.
  ScopedFault accept_fault("serve/accept", chaos(0.10, 11));
  ScopedFault parse_fault("serve/frame_parse", chaos(0.01, 12));
  ScopedFault enqueue_fault("serve/enqueue", chaos(0.01, 13));
  ScopedFault respond_fault("serve/respond", chaos(0.01, 14));
  ScopedFault stall_fault("serve/stall", chaos(0.005, 15));

  PingOptions options;
  options.port = server.port();
  options.requests = 10000;
  // Offered concurrency 32 against capacity workers + queue_depth = 6:
  // sustained overload well above 2x, so shedding genuinely engages.
  options.window = 32;
  options.k = 3;
  options.n = 2;
  options.seed = 21;
  options.response_timeout_ms = 250.0;

  const auto report = run_ping(options);

  // Exactly-once-consistent delivery despite dropped frames, dropped
  // responses, refused connections, shed bursts, and wedged workers.
  EXPECT_EQ(report.acked, 10000u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.inconsistent, 0u);

  engine.request_drain();
  server_thread.join();
  const auto drain = engine.drain();
  EXPECT_TRUE(drain.clean);  // SIGTERM-equivalent drains inside the deadline

  // The accounting invariant: every SOLVE the server ever saw (including
  // client resends) landed in exactly one outcome bucket.
  const auto& stats = engine.stats();
  EXPECT_GE(stats.received.load(), 10000);
  EXPECT_EQ(stats.accounted(), stats.received.load());
  EXPECT_EQ(engine.admission().in_flight(), 0u);
}

#endif  // !KSTABLE_NO_FAULT_INJECTION

}  // namespace
}  // namespace kstable::serve
