// Tests for matching serialization (kary + binary formats).
#include <gtest/gtest.h>

#include "core/binding.hpp"
#include "core/existence.hpp"
#include "prefs/generators.hpp"
#include "prefs/matching_io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace kstable {
namespace {

TEST(MatchingIo, KaryRoundTrip) {
  Rng rng(2100);
  const auto inst = gen::uniform(4, 6, rng);
  const auto result = core::iterative_binding(inst, trees::path(4));
  const auto text = io::to_string(result.matching());
  const auto back = io::kary_from_string(text);
  EXPECT_EQ(back, result.matching());
}

TEST(MatchingIo, KaryRejectsMalformed) {
  EXPECT_THROW(io::kary_from_string(""), ContractViolation);
  EXPECT_THROW(io::kary_from_string("kstable-kary v2\n3 2\n"),
               ContractViolation);
  // Missing family.
  EXPECT_THROW(io::kary_from_string("kstable-kary v1\n3 2\n"
                                    "family 0 : 0 0 0\n"),
               ContractViolation);
  // Duplicate family.
  EXPECT_THROW(io::kary_from_string("kstable-kary v1\n3 2\n"
                                    "family 0 : 0 0 0\nfamily 0 : 1 1 1\n"),
               ContractViolation);
  // Too few members on a line.
  EXPECT_THROW(io::kary_from_string("kstable-kary v1\n3 2\n"
                                    "family 0 : 0 0\nfamily 1 : 1 1 1\n"),
               ContractViolation);
  // Member reuse caught by KaryMatching validation.
  EXPECT_THROW(io::kary_from_string("kstable-kary v1\n3 2\n"
                                    "family 0 : 0 0 0\nfamily 1 : 0 1 1\n"),
               ContractViolation);
}

TEST(MatchingIo, BinaryRoundTrip) {
  const auto matching = core::theorem1_perfect_matching(5, 4);
  const auto text = io::to_string(matching);
  const auto back = io::binary_from_string(text);
  EXPECT_EQ(back.raw(), matching.raw());
}

TEST(MatchingIo, BinaryRejectsMalformed) {
  EXPECT_THROW(io::binary_from_string("kstable-binary v1\n2 1\n"),
               ContractViolation);  // nobody paired
  EXPECT_THROW(io::binary_from_string("kstable-binary v1\n2 1\npair 0 5\n"),
               ContractViolation);  // out of range
  EXPECT_THROW(
      io::binary_from_string("kstable-binary v1\n2 2\npair 0 2\npair 0 3\n"),
      ContractViolation);  // member in two pairs
  // Same-gender pair rejected by BinaryMatchingKP validation.
  EXPECT_THROW(
      io::binary_from_string("kstable-binary v1\n2 2\npair 0 1\npair 2 3\n"),
      ContractViolation);
}

TEST(MatchingIo, CommentsAllowed) {
  const auto back = io::kary_from_string(
      "# saved by a pipeline\nkstable-kary v1\n2 2\n"
      "family 0 : 0 1 # note\nfamily 1 : 1 0\n");
  EXPECT_EQ(back.member_at(0, 1).index, 1);
}

}  // namespace
}  // namespace kstable
